"""Table 2: PDK adaptation to AIM Photonics (16x16 PTCs).

Regenerates the ADEPT-a0..a5 rows plus baselines on the AIM PDK, where
waveguide crossings (4900 um^2) cost more than couplers.  Hard
assertions: baseline footprints exact; searched designs honor their
windows and are no more crossing-dense than the butterfly baseline.
"""

from conftest import run_once
from repro.experiments import check_table2_shape, run_table2
from repro.photonics import AIM, butterfly_footprint, mzi_onn_footprint


def test_table2_aim(benchmark, scale):
    result = run_once(benchmark, run_table2, k=16, n_targets=6, scale=scale)

    assert round(mzi_onn_footprint(AIM, 16).in_paper_units()) == 4480
    assert round(butterfly_footprint(AIM, 16).in_paper_units()) == 1007

    problems = check_table2_shape(result, k=16)
    assert not problems, problems

    # The paper's ADEPT-a0 headline: comparable to FFT at ~2.4x smaller.
    smallest = min(r.footprint.total for r in result.searched)
    assert butterfly_footprint(AIM, 16).total / smallest > 1.5
