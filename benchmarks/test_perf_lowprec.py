"""Micro-benchmark: the complex64 execution backend's forward fast lane.

The ``"numpy-c64"`` backend exists to make forward-only workloads
(Monte-Carlo robustness trials, eval passes, population scoring) pay
single-precision cost.  This file gates that claim at the paper's
transfer mesh size: the complex64 cascade forward over a K = 16 trial
stack must run >= 1.5x faster than the complex128 reference engine,
while agreeing with it to 1e-4 relative (the precision contract of
``tests/autograd/test_backend_parity.py``).

Timing methodology follows ``test_perf_supermesh.py``: interleaved
per-trial ratios with a median verdict, so common-mode machine-load
drift cancels.  The CI workflow runs this file as a non-gating smoke
job on shared runners (see ``.github/workflows/ci.yml``).
"""

import time

import numpy as np

from repro.autograd.backend import get_backend
from repro.ptc import FixedTopologyFactory
from repro.ptc.unitary import block_constant_matrix

K = 16
N_BLOCKS = 16
N_STACK = 256  # trials x meshes in the flattened batch axis
SPEEDUP_FLOOR = 1.5
C64_TOL = 1e-4


def _median_ratio(fn_ref, fn_fast, reps=10, trials=9):
    """Per-trial interleaved ref/fast ratio; the median cancels the
    common-mode machine-load drift a sequential A-then-B timing keeps."""
    ratios = []
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn_ref()
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(reps):
            fn_fast()
        t_fast = time.perf_counter() - t0
        ratios.append(t_ref / t_fast)
    return float(np.median(ratios))


def _median_seconds(fn, reps=10, trials=9):
    best = []
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best.append((time.perf_counter() - t0) / reps)
    return float(np.median(best))


def _cascade_workload(seed=7):
    """A realistic K=16 cascade: unitary block constants, unit-modulus
    phase columns, N_STACK parallel realizations."""
    rng = np.random.default_rng(seed)
    consts = np.stack(
        [
            block_constant_matrix(
                K, rng.permutation(K), rng.random(K // 2) < 0.7, b % 2
            )
            for b in range(N_BLOCKS)
        ]
    )
    ps = np.exp(-1j * rng.uniform(0, 2 * np.pi, size=(N_STACK, N_BLOCKS, K)))
    return consts, ps


class TestC64FastLane:
    def test_cascade_forward_speedup_at_k16(self):
        consts, ps = _cascade_workload()
        b128 = get_backend("numpy")
        b64 = get_backend("numpy-c64")

        def run128():
            b128.phase_column_cascade_forward(consts, ps)

        def run64():
            b64.phase_column_cascade_forward(consts, ps)

        run128()  # warmup (allocator, BLAS thread pools)
        run64()
        t128 = _median_seconds(run128)
        t64 = _median_seconds(run64)
        speedup = _median_ratio(run128, run64)
        print(
            f"\ncascade forward K={K} B={N_BLOCKS} N={N_STACK}: "
            f"c128 {t128 * 1e3:.2f} ms, c64 {t64 * 1e3:.2f} ms, "
            f"speedup {speedup:.2f}x"
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"complex64 lane only {speedup:.2f}x over complex128 "
            f"(floor {SPEEDUP_FLOOR}x)"
        )

    def test_cascade_forward_parity_on_benchmark_workload(self):
        """The speed gate is meaningless if the lanes diverge — pin the
        precision contract on the exact benchmark workload."""
        consts, ps = _cascade_workload()
        ref = get_backend("numpy").phase_column_cascade_forward(consts, ps)
        fast = get_backend("numpy-c64").phase_column_cascade_forward(consts, ps)
        assert fast.dtype == np.complex64
        rel = np.abs(fast.astype(np.complex128) - ref).max() / np.abs(ref).max()
        assert rel <= C64_TOL

    def test_matmul_chain_forward_companion(self):
        """Companion numbers for the MZI-mesh chain kernel (soft gate:
        the fast lane must not be slower)."""
        rng = np.random.default_rng(11)
        q, _ = np.linalg.qr(
            rng.standard_normal((N_STACK, N_BLOCKS, K, K))
            + 1j * rng.standard_normal((N_STACK, N_BLOCKS, K, K))
        )
        b128 = get_backend("numpy")
        b64 = get_backend("numpy-c64")
        b128.matmul_chain_forward(q)
        b64.matmul_chain_forward(q)
        speedup = _median_ratio(
            lambda: b128.matmul_chain_forward(q),
            lambda: b64.matmul_chain_forward(q),
        )
        print(f"\nmatmul_chain K={K} B={N_BLOCKS} N={N_STACK}: {speedup:.2f}x")
        assert speedup > 1.0

    def test_factory_trial_stack_companion(self):
        """End-to-end Monte-Carlo trial stack (phase prep + cascade)
        through a K=16 factory — the workload ``repro.core.variation``
        runs under its complex64 default (soft gate)."""
        blocks = [(None, np.ones(K // 2, bool), i % 2) for i in range(8)]
        f = FixedTopologyFactory(K, 16, blocks, rng=np.random.default_rng(3))
        offsets = f.draw_trial_noise(np.full(64, 0.02), np.random.default_rng(9))

        def run128():
            f.build_trials(offsets, exec_backend="numpy")

        def run64():
            f.build_trials(offsets, exec_backend="numpy-c64")

        run128()
        run64()
        t128 = _median_seconds(run128, reps=5)
        t64 = _median_seconds(run64, reps=5)
        speedup = _median_ratio(run128, run64, reps=5)
        print(
            f"\ntrial stack K={K} T=64: c128 {t128 * 1e3:.1f} ms, "
            f"c64 {t64 * 1e3:.1f} ms, speedup {speedup:.2f}x"
        )
        assert speedup > 1.0
