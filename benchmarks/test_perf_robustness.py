"""Micro-benchmark: trial-batched Monte-Carlo robustness engine vs the
sequential reference loop.

A Fig.4-scale sweep (K = 8, 5 noise levels x 5 runs, multi-batch test
set) must run >= 3x faster through the trial-batched engine
(``backend="fast"``: one fused noisy build for all trials + one shared
pass over the test data) than through the sequential loop it replaces
(``backend="reference"``: per trial, install the noise offsets and run
a full evaluation pass, rebuilding every mesh each batch) — while
producing *identical* per-run accuracies, since both backends consume
the same pre-drawn noise offsets.

Timings use interleaved per-trial ratios and a median so a scheduler
hiccup cannot flip the verdict (same protocol as
``test_perf_supermesh.py``).  The CI workflow additionally runs this
file as a non-gating smoke job on shared runners (see
``.github/workflows/ci.yml``).
"""

import time

import numpy as np

from repro import nn
from repro.core import evaluate_noise_grid, scenario_robustness_grid
from repro.core.topology import random_topology
from repro.data import train_test_split
from repro.onn import PTCLinear
from repro.photonics.nonideality import NonidealitySpec

K = 8
NOISE_STDS = (0.02, 0.04, 0.06, 0.08, 0.10)
N_RUNS = 5
BATCH_SIZE = 32
SPEEDUP_FLOOR = 3.0


def _median_ratio(fn_ref, fn_fast, trials=5):
    """Interleaved ref/fast ratio; the median cancels common-mode
    machine-load drift."""
    ratios = []
    for _ in range(trials):
        t0 = time.perf_counter()
        fn_ref()
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        fn_fast()
        t_fast = time.perf_counter() - t0
        ratios.append(t_ref / t_fast)
    return float(np.median(ratios))


def _mzi_model():
    rng = np.random.default_rng(11)
    return nn.Sequential(nn.Flatten(), PTCLinear(784, 10, k=K, mesh="mzi", rng=rng))


class TestRobustnessEngine:
    def test_noise_grid_speedup_and_parity_at_k8(self):
        _, test_set = train_test_split("mnist", 64, 256, seed=0)
        model = _mzi_model()
        model.eval()

        def fast():
            return evaluate_noise_grid(
                model, test_set, NOISE_STDS, N_RUNS, seed=3,
                backend="fast", batch_size=BATCH_SIZE,
            )

        def ref():
            return evaluate_noise_grid(
                model, test_set, NOISE_STDS, N_RUNS, seed=3,
                backend="reference", batch_size=BATCH_SIZE,
            )

        g_fast, g_ref = fast(), ref()  # warmup + parity
        assert g_fast.shape == (len(NOISE_STDS), N_RUNS)
        assert np.array_equal(g_fast, g_ref), (
            "trial-batched engine diverged from the sequential reference "
            f"loop at fixed seeds: max |diff| = {np.abs(g_fast - g_ref).max()}"
        )
        speedup = _median_ratio(ref, fast)
        print(
            f"\nnoise grid K={K}, {len(NOISE_STDS)}x{N_RUNS} trials, "
            f"{len(test_set)} samples @ bs={BATCH_SIZE}: speedup {speedup:.1f}x"
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"trial-batched engine only {speedup:.2f}x over the sequential "
            f"reference loop (floor {SPEEDUP_FLOOR}x)"
        )

    def test_scenario_grid_faster_than_reference(self):
        """Companion number: fabrication x noise scenario grid on a
        searched topology (non-gating margin, parity gates)."""
        _, test_set = train_test_split("mnist", 64, 256, seed=0)
        topo = random_topology(K, 8, 8, np.random.default_rng(2))
        model = nn.Sequential(
            nn.Flatten(), PTCLinear(784, 10, k=K, mesh=topo, rng=np.random.default_rng(1))
        )
        model.eval()
        spec = NonidealitySpec(
            dc_t_std=0.02, loss_ps_db=0.05, loss_dc_db=0.1, crosstalk_gamma=0.05
        )

        def run(backend):
            return scenario_robustness_grid(
                model, test_set, spec, noise_stds=(0.02, 0.06, 0.10),
                n_fab_samples=3, n_runs=3, seed=1, backend=backend,
                batch_size=BATCH_SIZE,
            )

        t0 = time.perf_counter()
        g_fast = run("fast")
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        g_ref = run("reference")
        t_ref = time.perf_counter() - t0
        assert np.array_equal(g_fast.accs, g_ref.accs)
        print(
            f"\nscenario grid 3x3x3: fast {t_fast * 1e3:.0f} ms, "
            f"reference {t_ref * 1e3:.0f} ms, speedup {t_ref / t_fast:.1f}x"
        )
        assert t_fast < t_ref
