"""Figure 4: noise-robustness curves of 16x16 PTCs.

(a) 2-layer CNN on MNIST; (b) LeNet-5 on FashionMNIST.  All designs are
variation-aware trained (sigma = 0.02), then evaluated under phase
noise sigma in {0.02..0.10}, repeated runs per point.

Shape assertion: the searched ADEPT designs do not degrade meaningfully
faster than the deep MZI mesh (the paper shows them tracking or beating
the log-depth FFT design).
"""

import pytest

from conftest import run_once
from repro.experiments import check_fig4_shape, run_fig4_part


@pytest.mark.parametrize("part", ["a", "b"])
def test_fig4_part(benchmark, scale, transfer_topologies, part):
    result = run_once(
        benchmark, run_fig4_part, part, transfer_topologies, k=16, scale=scale
    )
    assert set(result.curves) >= {"MZI", "FFT"}
    for name, curve in result.curves.items():
        assert len(curve) == 5
        stds = [c[0] for c in curve]
        assert stds == sorted(stds)
        for _, mean_acc, std_acc in curve:
            assert 0.0 <= mean_acc <= 100.0
            assert std_acc >= 0.0
    problems = check_fig4_shape(result)
    assert not problems, problems
