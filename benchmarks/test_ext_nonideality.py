"""Extension bench: passive-nonideality robustness vs mesh depth.

Device-level mechanism behind Fig. 4's MZI-ONN collapse: insertion
loss, coupler imbalance, and thermal crosstalk all compound with
optical depth, so a deep mesh realizes its ideal transfer with lower
fidelity than a shallow one under identical device quality.
"""

from conftest import run_once
from repro.experiments import run_nonideality_study


def test_nonideality_depth_tradeoff(benchmark):
    res = run_once(benchmark, run_nonideality_study, k=8,
                   shallow_blocks=3, deep_blocks=16, n_trials=8)
    print("\n=== Nonideality robustness: shallow (3+3 blk) vs deep (16+16 blk) ===")
    print(f"  {'nonideality':>15} {'shallow':>9} {'deep':>9}")
    for name, s, d in zip(res.specs, res.shallow_fidelity, res.deep_fidelity):
        print(f"  {name:>15} {s:9.4f} {d:9.4f}")

    # Depth must hurt under every modelled nonideality.
    for name, s, d in zip(res.specs, res.shallow_fidelity, res.deep_fidelity):
        assert d < s, f"{name}: deep ({d:.4f}) should trail shallow ({s:.4f})"
    # Combined nonidealities are the worst case for the deep mesh.
    combined = res.deep_fidelity[res.specs.index("combined")]
    assert combined <= min(res.deep_fidelity) + 1e-9
