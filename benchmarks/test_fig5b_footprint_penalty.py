"""Figure 5(b): footprint-penalty beta scan.

Scans beta over the paper's range (0.001 .. 10) on the ADEPT-a1
window and verifies: a large beta (~10) bounds the expected footprint
inside [F_min, F_max]; small betas leave the constraint violated
because the task loss dominates the architecture gradients.
"""

from conftest import run_once
from repro.experiments import BETA_VALUES, check_fig5b_shape, run_fig5b


def test_fig5b_beta_scan(benchmark, scale):
    steps = 400 if scale.search_epochs > 10 else 150
    traces = run_once(
        benchmark, run_fig5b, k=8, window_kum2=(240.0, 300.0), steps=steps,
        beta_values=BETA_VALUES,
    )
    assert set(traces) == set(BETA_VALUES)
    problems = check_fig5b_shape(traces)
    assert not problems, problems
    # The paper's qualitative picture: beta = 10 in-window, beta <= 0.01
    # violated (task pressure pushes E[F] above F_max).
    assert traces[10.0].final_in_window
    assert not traces[0.001].final_in_window
