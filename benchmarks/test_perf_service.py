"""Perf gate: the sharded worker pool must actually buy wall-clock.

A Monte-Carlo robustness-grid job (K = 8, 160 trials) is executed
twice from identical submissions: once inline (single in-process
worker, the determinism oracle) and once on a 4-process pool.  On a
machine with >= 4 cores the pool must finish >= 2.5x faster; the
byte-identity of the two aggregated artifacts is asserted on every
machine, so the parity half of the contract is never skipped.

The shards are embarrassingly parallel (independent noise trials over
one deterministic model), so the residual cost is the service's own
overhead: SQLite claims, artifact writes, process startup.  The 2.5x
floor on 4 workers leaves room for that overhead plus the unsharded
train/build prologue each worker repeats.
"""

import os
import time

import pytest

from repro.service import DesignService

K = 8
N_WORKERS = 4
SPEEDUP_FLOOR = 2.5

GRID_PARAMS = {
    "mesh": "mzi",
    "k": K,
    "n_test": 96,
    "n_train": 32,
    "train_epochs": 0,
    "noise_stds": [0.02, 0.04, 0.06, 0.08, 0.10],
    "n_runs": 32,                      # 5 x 32 = 160 trials
    "shard_trials": 10,                # -> 16 shards
    "batch_size": 32,
}


def _timed_run(root, n_workers):
    svc = DesignService(root)
    job_id = svc.submit("robustness-grid", GRID_PARAMS)
    t0 = time.perf_counter()
    svc.run(n_workers=n_workers, timeout=600)
    elapsed = time.perf_counter() - t0
    data = svc.result_bytes(job_id)
    svc.close()
    return elapsed, data


class TestServiceThroughput:
    def test_pool_speedup_and_byte_parity(self, tmp_path):
        t_inline, bytes_inline = _timed_run(tmp_path / "inline", 0)
        t_pool, bytes_pool = _timed_run(tmp_path / "pool", N_WORKERS)

        # Parity always: worker count must never change the artifact.
        assert bytes_inline == bytes_pool

        cores = os.cpu_count() or 1
        if cores < N_WORKERS:
            pytest.skip(
                f"speedup gate needs >= {N_WORKERS} cores (found {cores}); "
                f"parity verified (inline {t_inline:.2f}s, "
                f"pool {t_pool:.2f}s)"
            )
        speedup = t_inline / t_pool
        assert speedup >= SPEEDUP_FLOOR, (
            f"{N_WORKERS}-worker pool speedup {speedup:.2f}x below "
            f"{SPEEDUP_FLOOR}x floor (inline {t_inline:.2f}s, "
            f"pool {t_pool:.2f}s)"
        )
