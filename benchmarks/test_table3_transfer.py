"""Table 3: transfer searched 16x16 PTCs to LeNet-5 / VGG-8 on
FashionMNIST / SVHN / CIFAR-10 (synthetic stand-ins).

The same fixed topologies searched on the MNIST proxy are instantiated
inside both target models on all three datasets, against the MZI and
FFT baselines — 24 training runs in total, exactly the paper's grid.
"""

import numpy as np

from conftest import run_once
from repro.experiments import PAPER_TABLE3, check_table3_shape, run_table3
from repro.photonics import AMF, mzi_onn_footprint


def test_table3_transfer(benchmark, scale, transfer_topologies):
    result = run_once(
        benchmark,
        run_table3,
        models=("lenet5", "vgg8"),
        datasets=("fmnist", "svhn", "cifar10"),
        k=16,
        scale=scale,
        topologies=transfer_topologies,
    )

    problems = check_table3_shape(result, k=16)
    assert not problems, problems

    # Full grid produced.
    assert len(result.accuracy) == 2 * 3 * 4

    # Print paper-vs-measured for the record.
    print("\npaper vs measured (accuracy %):")
    for (model, ds), paper in PAPER_TABLE3.items():
        mzi = result.accuracy.get((model, ds, "MZI"), float("nan"))
        print(f"  {model}/{ds}: paper MZI {paper['mzi']:.1f} -> measured {mzi:.1f}")

    # Sanity: every run learned something (above 10-class chance).
    accs = np.array(list(result.accuracy.values()))
    assert (accs > 15.0).mean() > 0.75, "most transfer runs should beat chance"
