"""Perf gate: micro-batching must actually buy streaming throughput.

The streaming server's whole reason to exist is that one chip call
per micro-batch amortizes the per-call cost (a factory build plus the
readout overhead) over every request riding the batch.  This gate
serves the same fixed workload twice — once with micro-batching
disabled (``max_batch=1``, one chip call per request) and once at the
chip's native ceiling — and requires the batched path to be >= 2x
faster in wall-clock time.

Timing is interleaved (alternating single/batched rounds, medians
compared) so background noise hits both paths symmetrically.  The
detections are also compared: batching must never change results.
"""

import time

import numpy as np
import pytest

from repro.core.topology import random_topology
from repro.hardware import SimulatedChip, StreamingServer
from repro.utils.rng import spawn_rng, stable_seed

K = 8
N_BLOCKS = 6
N_REQUESTS = 256
MAX_BATCH = 32
ROUNDS = 5
SPEEDUP_FLOOR = 2.0


def make_chip():
    topo = random_topology(K, N_BLOCKS, 0, rng=np.random.default_rng(0))
    return SimulatedChip(topo, seed=3, max_batch=MAX_BATCH)


def make_inputs():
    rng = spawn_rng(stable_seed("perf-streaming-inputs", 0))
    return [rng.normal(size=K) for _ in range(N_REQUESTS)]


def serve_once(max_batch, inputs):
    server = StreamingServer(make_chip(), max_batch=max_batch)
    t0 = time.perf_counter()
    results = server.serve_sync(inputs)
    return time.perf_counter() - t0, results


class TestStreamingThroughput:
    def test_batched_beats_one_at_a_time(self):
        inputs = make_inputs()
        # Warmup both paths (imports, first-build costs).
        serve_once(1, inputs[:8])
        serve_once(MAX_BATCH, inputs[:8])

        single_times, batched_times = [], []
        baseline = None
        for _ in range(ROUNDS):
            t_single, r_single = serve_once(1, inputs)
            t_batched, r_batched = serve_once(MAX_BATCH, inputs)
            single_times.append(t_single)
            batched_times.append(t_batched)
            # Batching must not change any detection.
            if baseline is None:
                baseline = r_single
            np.testing.assert_allclose(
                np.stack(r_batched), np.stack(r_single), atol=1e-12)

        speedup = (float(np.median(single_times))
                   / float(np.median(batched_times)))
        assert speedup >= SPEEDUP_FLOOR, (
            f"micro-batching speedup {speedup:.2f}x below "
            f"{SPEEDUP_FLOOR}x floor (single "
            f"{np.median(single_times) * 1e3:.1f}ms, batched "
            f"{np.median(batched_times) * 1e3:.1f}ms for "
            f"{N_REQUESTS} requests)"
        )
