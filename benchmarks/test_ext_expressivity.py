"""Extension bench: direct matrix-representability measurement.

The paper uses classification accuracy as an expressiveness proxy;
this bench measures the quantity itself — the error of fitting each
PTC family's programmable phases to Haar-random unitaries — and
checks that the footprint/expressivity Pareto structure of Table 1
appears: MZI is universal (lowest error, largest footprint); the
deep searched-space design beats the shallow one; the shallow one is
the cheapest.
"""

from conftest import run_once
from repro.experiments import run_expressivity_comparison


def test_expressivity_pareto(benchmark):
    res = run_once(benchmark, run_expressivity_comparison, k=8,
                   steps=400, n_targets=2)
    print("\n=== Unitary-fit expressivity, K=8 (AMF footprints) ===")
    print(f"  {'design':>9} {'fit error':>10} {'fidelity':>9} {'F (k um^2)':>11}")
    for n, e, f, fp in zip(res.names, res.errors, res.fidelities,
                           res.footprints_kum2):
        print(f"  {n:>9} {e:10.3f} {f:9.3f} {fp:11.0f}")
    front = res.front()
    print("  pareto front:", " -> ".join(p.label for p in front))

    # MZI is universal: far lower error than any restricted design.
    assert res.error_of("mzi") < 0.5 * min(
        res.error_of("fft"), res.error_of("adept-a1"))
    # More footprint buys more expressivity inside the searched space.
    assert res.error_of("adept-a5") < res.error_of("adept-a1")
    # MZI pays for universality with the largest footprint by far.
    mzi_fp = res.footprints_kum2[res.names.index("mzi")]
    assert mzi_fp > 2.0 * max(
        fp for n, fp in zip(res.names, res.footprints_kum2) if n != "mzi")
    # The front must keep at least one searched-space design.
    assert any(p.label.startswith("adept") for p in front)
