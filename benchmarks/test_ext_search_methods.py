"""Extension bench: differentiable search vs black-box baselines.

The paper argues the PTC design space, O((K * K!/2)^B_max), is too
large and discrete for off-the-shelf search.  This ablation runs
random sampling and evolutionary mutation in the *same* space under
the *same* footprint window and compares the expressivity of the
designs each method returns.
"""

from conftest import run_once
from repro.experiments import run_search_method_ablation


def test_search_method_ablation(benchmark, scale):
    res = run_once(benchmark, run_search_method_ablation, k=8,
                   budget=12, scale=scale)
    print("\n=== Search-method ablation (K=8, AMF window [240, 300]k) ===")
    print(f"  {'method':>13} {'score':>8} {'F (um^2)':>10} {'feasible':>9}")
    for m, s, f, ok in zip(res.methods, res.scores, res.footprints,
                           res.feasible):
        print(f"  {m:>13} {s:8.4f} {f:10.0f} {str(ok):>9}")

    # Every method must return a design inside the footprint window.
    assert all(res.feasible)
    # The differentiable search must be competitive with the best
    # black-box baseline (paper claim; small budgets leave noise, so
    # allow a 10%-of-range margin).
    best_bb = max(res.score_of("random"), res.score_of("evolutionary"))
    assert res.score_of("adept") >= best_bb - 0.1
