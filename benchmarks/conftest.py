"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper (see the
artifact map in README.md).  Runs are single-shot (``benchmark.pedantic``
with one round) because each one is a full search/training pipeline,
not a micro-kernel.  Set ``REPRO_FULL=1`` for paper-scale budgets.
"""

import pytest

from repro.experiments import ExperimentScale, search_transfer_topologies
from repro.utils.rng import set_seed


@pytest.fixture(autouse=True)
def _seed():
    set_seed(2022)  # DAC'22
    yield


@pytest.fixture(scope="session")
def scale():
    return ExperimentScale.from_env()


@pytest.fixture(scope="session")
def transfer_topologies(scale):
    """ADEPT-a2/a4 16x16 topologies shared by Table 3 and Fig. 4."""
    return search_transfer_topologies(k=16, scale=scale)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a pipeline exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
