"""Figure 5(a): permutation-ALM rho0 scan.

Scans the initial penalty coefficient over the paper's range
(1e-8 .. 5e-6) and verifies the headline claim: the permutation error
Delta_P converges toward zero for EVERY rho0 under the adaptive
lambda/rho schedule — the method is insensitive to this
hyper-parameter.
"""

from conftest import run_once
from repro.experiments import RHO0_VALUES, check_fig5a_shape, run_fig5a


def test_fig5a_rho_scan(benchmark, scale):
    steps = 2000 if scale.search_epochs > 10 else 600
    traces = run_once(
        benchmark, run_fig5a, k=8, n_blocks=6, steps=steps,
        rho0_values=RHO0_VALUES,
    )
    assert set(traces) == set(RHO0_VALUES)
    problems = check_fig5a_shape(traces)
    assert not problems, problems
    for trace in traces.values():
        # lambda grows monotonically (dual ascent) and the error trace
        # has the length of the scan.
        assert len(trace.perm_error) == steps
        lam = trace.mean_lambda
        assert all(b >= a - 1e-12 for a, b in zip(lam, lam[1:]))
