"""Extension bench: low-bit phase-control quantization (ROQ-style).

Not a paper table; substantiates the robustness discussion of
reference [8] with this library's meshes: quantization-aware (STE)
finetuning dominates post-training quantization at every bit width,
and both approach full precision as bits grow.
"""

from conftest import run_once
from repro.experiments import run_quantization_study


def test_quantization_study(benchmark):
    res = run_once(benchmark, run_quantization_study, k=6, steps=400)
    print("\n=== Phase-control quantization (K=6, MZI mesh) ===")
    print(f"  full precision fit error: {res.full_precision_error:.4f}")
    print(f"  {'bits':>5} {'PTQ':>8} {'QAT':>8}")
    for bits, ptq, qat in zip(res.bit_widths, res.ptq_errors, res.qat_errors):
        print(f"  {bits:>5} {ptq:8.3f} {qat:8.3f}")

    # PTQ degrades monotonically as bits shrink.
    assert res.ptq_errors == sorted(res.ptq_errors)
    # QAT (best-seen STE finetune from the PTQ point) never loses to PTQ.
    for ptq, qat in zip(res.ptq_errors, res.qat_errors):
        assert qat <= ptq + 1e-9
    # At the highest bit width both sit near the full-precision floor.
    assert res.ptq_errors[0] < 2.5 * max(res.full_precision_error, 0.05)
