"""Table 1: ADEPT search vs MZI-ONN / FFT-ONN on AMF PDKs.

Regenerates every row of Table 1: for each PTC size, the two manual
baselines plus five searched designs under the paper's footprint
windows, reporting #CR/#DC/#Blk, footprint, and proxy-task accuracy.

Hard assertions: baseline footprints match the paper exactly (they are
analytic); searched footprints satisfy their windows; ADEPT beats
MZI-ONN by >= 2x in area.  Accuracy levels are scale-dependent and are
reported (EXPERIMENTS.md) rather than asserted.
"""

import pytest

from conftest import run_once
from repro.experiments import check_table1_shape, run_table1
from repro.photonics import AMF, butterfly_footprint, mzi_onn_footprint

PAPER_BASELINE_FOOTPRINTS = {  # 1000 um^2
    8: {"mzi": 1909, "fft": 363},
    16: {"mzi": 7683, "fft": 972},
    32: {"mzi": 30829, "fft": 2443},
}


@pytest.mark.parametrize("k", [8, 16, 32])
def test_table1_size(benchmark, scale, k):
    results = run_once(
        benchmark, run_table1, sizes=(k,), n_targets=5, scale=scale
    )
    res = results[k]

    # Exact targets: baseline footprints.
    assert round(mzi_onn_footprint(AMF, k).in_paper_units()) == (
        PAPER_BASELINE_FOOTPRINTS[k]["mzi"]
    )
    assert round(butterfly_footprint(AMF, k).in_paper_units()) == (
        PAPER_BASELINE_FOOTPRINTS[k]["fft"]
    )

    # Shape targets: constraints + compactness.
    problems = [
        p
        for p in check_table1_shape({k: res})
        if "monotone" not in p  # monotonicity reported, not asserted
    ]
    assert not problems, problems

    # Every searched design is a valid, instantiable topology.
    for row in res.searched:
        assert row.topology is not None
        assert row.topology.n_blocks >= 2
