"""Extension bench: power / latency / energy-per-MAC comparison.

Quantifies the paper's motivation ("sub-nanosecond latency,
near-zero energy") for the three design families with a link-budget
model: heaters + DACs + ADCs + laser (covering worst-path insertion
loss), optical propagation latency over the column floorplan.
"""

from conftest import run_once
from repro.experiments import run_power_comparison


def test_power_latency_comparison(benchmark):
    res = run_once(benchmark, run_power_comparison, k=8)
    print("\n=== Link-budget comparison, K=8 (AMF) ===")
    print(f"  {'design':>7} {'power (mW)':>11} {'latency (ps)':>13} "
          f"{'fJ/MAC':>8} {'loss (dB)':>10}")
    for n, p, l, e, d in zip(res.names, res.total_power_mw, res.latency_ps,
                             res.energy_per_mac_fj, res.worst_loss_db):
        print(f"  {n:>7} {p:11.1f} {l:13.1f} {e:8.1f} {d:10.2f}")

    mzi_p, mzi_l, mzi_e = res.of("mzi")
    fft_p, fft_l, fft_e = res.of("fft")
    adept_p, adept_l, adept_e = res.of("adept")
    # The MZI mesh loses on every axis, by a wide margin.
    assert mzi_p > 2.0 * max(fft_p, adept_p)
    assert mzi_l > 2.0 * max(fft_l, adept_l)
    assert mzi_e > 2.0 * max(fft_e, adept_e)
    # All designs hold the paper's sub-nanosecond latency claim.
    assert all(l < 1000.0 for l in res.latency_ps)
    # The footprint-constrained searched design is the leanest.
    assert adept_p <= fft_p * 1.2
