"""Ablation benches for the reproduction's load-bearing design choices
(:mod:`repro.experiments.ablations`).

1. Smoothed-identity permutation init vs random permutation init.
2. Row/col L2 normalization of relaxed U, V.
3. Adaptive (lambda-scaled quadratic) ALM vs standard ALM.
"""

from conftest import run_once
from repro.experiments import (
    run_alm_variant_ablation,
    run_normalization_ablation,
    run_perm_init_ablation,
)


def test_perm_init_ablation(benchmark):
    """Paper: random-permutation init blocks gradient flow (zeros get
    no gradient); smoothed identity feeds every entry."""
    res = run_once(benchmark, run_perm_init_ablation, k=8)
    assert res.nonzero_grad_fraction_smoothed > 0.95
    assert res.nonzero_grad_fraction_random < 0.5


def test_normalization_ablation(benchmark):
    """Relaxed permutations are contractions, so without row/col L2
    normalization the cascaded layers collapse the signal toward zero;
    normalization keeps the output statistics near unit scale."""
    res = run_once(benchmark, run_normalization_ablation, k=8)
    assert res.output_std_without_norm < 0.1 * res.output_std_with_norm
    assert 0.1 < res.output_std_with_norm < 20.0


def test_alm_variant_ablation(benchmark):
    """The adaptive ALM exerts (near-)zero constraint pressure at the
    start (lambda = 0), letting the task loss dominate early; standard
    ALM applies its quadratic penalty immediately."""
    res = run_once(benchmark, run_alm_variant_ablation, k=8)
    assert abs(res.early_penalty_adaptive) < 1e-12
    assert res.early_penalty_standard > 0.0


def test_crossing_cost_sweep(benchmark):
    """PDK what-if extension: as the hypothetical foundry's crossing
    area grows from AMF-like (64 um^2) to AIM-like (4900 um^2), the
    searched designs must not spend a growing share of their budget on
    routing — expensive crossings get pruned."""
    from repro.experiments import run_crossing_cost_sweep

    res = run_once(benchmark, run_crossing_cost_sweep, k=8)
    shares = [
        n_cr * area / max(f, 1.0)
        for n_cr, area, f in zip(res.crossings, res.cr_areas, res.footprints)
    ]
    # Cheapest-crossing PDK tolerates the largest routing share.
    assert shares[-1] <= shares[0] + 0.15
    # Designs stay in their windows regardless of PDK.
    assert all(235_000 <= f <= 305_000 for f in res.footprints)
