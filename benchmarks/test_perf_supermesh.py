"""Micro-benchmark: vectorized supermesh fast path vs reference loops.

Unlike the table/figure benchmarks in this directory (full pipelines),
this is a micro-kernel check of the PR-2 fast path: the fused cascade
forward (``backend="fast"``) must beat the per-block op loop
(``backend="reference"``) by >= 3x at the paper's default K = 8, while
agreeing with it to 1e-9 on both the forward values and every
parameter gradient.

Timings use the median of several trials so a single scheduler hiccup
cannot flip the verdict.  The CI workflow additionally runs this file
as a non-gating smoke job on shared runners (see
``.github/workflows/ci.yml``).
"""

import time

import numpy as np
import pytest

from repro.core.supermesh import SuperMeshCore, SuperMeshSpace
from repro.photonics import AMF
from repro.ptc import FixedTopologyFactory, MZIMeshFactory

K = 8
SPEEDUP_FLOOR = 3.0
TOL = 1e-9


def _median_seconds(fn, reps=20, trials=9):
    best = []
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best.append((time.perf_counter() - t0) / reps)
    return float(np.median(best))


def _median_ratio(fn_ref, fn_fast, reps=20, trials=9):
    """Per-trial interleaved ref/fast ratio; the median cancels the
    common-mode machine-load drift a sequential A-then-B timing keeps."""
    ratios = []
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn_ref()
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(reps):
            fn_fast()
        t_fast = time.perf_counter() - t0
        ratios.append(t_ref / t_fast)
    return float(np.median(ratios))


def _make_pair(seed=5):
    pair = []
    for backend in ("fast", "reference"):
        space = SuperMeshSpace(
            k=K, pdk=AMF, f_min=240_000, f_max=300_000, b_min=4, b_max=16,
            rng=np.random.default_rng(seed),
        )
        core = SuperMeshCore(
            space, 2 * K, 2 * K, rng=np.random.default_rng(seed + 1), backend=backend
        )
        space.sample(tau=1.0, rng=np.random.default_rng(seed + 2))
        pair.append((space, core))
    return pair


class TestSupermeshFastPath:
    def test_forward_speedup_at_k8(self):
        (sf, cf), (sr, cr) = _make_pair()
        cf()  # warmup (allocator, BLAS thread pools)
        cr()
        t_fast = _median_seconds(cf)
        t_ref = _median_seconds(cr)
        speedup = _median_ratio(cr, cf)
        print(
            f"\nsupermesh forward K={K}: fast {t_fast * 1e3:.2f} ms, "
            f"reference {t_ref * 1e3:.2f} ms, speedup {speedup:.1f}x"
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"fast path only {speedup:.2f}x over reference "
            f"(floor {SPEEDUP_FLOOR}x)"
        )

    def test_forward_and_grad_parity(self):
        (sf, cf), (sr, cr) = _make_pair()
        wf, wr = cf(), cr()
        assert np.abs(wf.data - wr.data).max() <= TOL
        (wf ** 2).sum().backward()
        (wr ** 2).sum().backward()
        pairs = [
            (cf.phases.grad, cr.phases.grad),
            (cf.sigma.grad, cr.sigma.grad),
            (sf.perms.raw.grad, sr.perms.raw.grad),
            (sf.couplers.latent.grad, sr.couplers.latent.grad),
            (sf.theta.grad, sr.theta.grad),
        ]
        for gf, gr in pairs:
            assert gf is not None and gr is not None
            assert np.abs(gf - gr).max() <= TOL


class TestFactoryFastPath:
    """Companion numbers for the fixed-topology and MZI factories."""

    @pytest.mark.parametrize(
        "make",
        [
            pytest.param(
                lambda b: MZIMeshFactory(K, 16, rng=np.random.default_rng(1), backend=b),
                id="mzi",
            ),
            pytest.param(
                lambda b: FixedTopologyFactory(
                    K, 16, [(None, np.ones(K // 2, bool), i % 2) for i in range(8)],
                    rng=np.random.default_rng(1), backend=b,
                ),
                id="fixed-b8",
            ),
        ],
    )
    def test_factory_forward_faster_than_reference(self, make):
        fast, ref = make("fast"), make("reference")
        fast.build()
        ref.build()
        t_fast = _median_seconds(fast.build)
        t_ref = _median_seconds(ref.build)
        print(
            f"\nfactory build: fast {t_fast * 1e3:.2f} ms, "
            f"reference {t_ref * 1e3:.2f} ms, speedup {t_ref / t_fast:.1f}x"
        )
        assert t_fast < t_ref
