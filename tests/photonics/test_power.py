"""Tests for the power / latency / energy-per-MAC model."""

import numpy as np
import pytest

from repro.core.topology import random_topology
from repro.photonics import AIM, AMF
from repro.photonics.nonideality import NonidealitySpec
from repro.photonics.power import PowerConfig, PowerReport, estimate_power


def topo(nb=3, k=8, seed=0):
    return random_topology(k, nb, nb, np.random.default_rng(seed),
                           permute_prob=0.5)


class TestPowerConfig:
    def test_defaults_valid(self):
        cfg = PowerConfig()
        assert cfg.heater_p_pi_mw > 0

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError, match="efficiency"):
            PowerConfig(laser_wall_plug_efficiency=0.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            PowerConfig(modulation_rate_ghz=-1)

    def test_rejects_bad_group_index(self):
        with pytest.raises(ValueError, match="group_index"):
            PowerConfig(group_index=0.5)


class TestEstimatePower:
    def test_report_structure(self):
        report = estimate_power(topo(), AMF)
        assert isinstance(report, PowerReport)
        assert report.total_power_mw == pytest.approx(
            report.heater_power_mw + report.dac_power_mw
            + report.adc_power_mw + report.laser_power_mw)

    def test_heater_power_counts_ps(self):
        t = topo(nb=3)
        n_ps = t.device_counts()[0]
        report = estimate_power(t, AMF)
        assert report.heater_power_mw == pytest.approx(
            n_ps * PowerConfig().heater_p_pi_mw / 2)

    def test_deeper_mesh_draws_more_power(self):
        shallow = estimate_power(topo(nb=2, seed=1), AMF)
        deep = estimate_power(topo(nb=10, seed=1), AMF)
        assert deep.total_power_mw > shallow.total_power_mw
        assert deep.worst_path_loss_db > shallow.worst_path_loss_db

    def test_sub_nanosecond_latency(self):
        # The paper's headline: light traverses the core in < 1 ns.
        report = estimate_power(topo(nb=5), AMF)
        assert 0.0 < report.latency_ps < 1000.0

    def test_latency_scales_with_depth(self):
        shallow = estimate_power(topo(nb=2, seed=2), AMF)
        deep = estimate_power(topo(nb=10, seed=2), AMF)
        assert deep.latency_ps > shallow.latency_ps

    def test_lossless_laser_floor(self):
        spec = NonidealitySpec()  # zero loss
        report = estimate_power(topo(), AMF, loss_spec=spec)
        cfg = PowerConfig()
        floor = (topo().k * 10 ** (cfg.detector_sensitivity_dbm / 10.0)
                 / cfg.laser_wall_plug_efficiency)
        assert report.laser_power_mw == pytest.approx(floor)
        assert report.worst_path_loss_db == 0.0

    def test_loss_raises_laser_power_exponentially(self):
        mild = estimate_power(topo(nb=4, seed=3), AMF,
                              loss_spec=NonidealitySpec(loss_ps_db=0.1))
        harsh = estimate_power(topo(nb=4, seed=3), AMF,
                               loss_spec=NonidealitySpec(loss_ps_db=0.5))
        ratio = harsh.laser_power_mw / mild.laser_power_mw
        db_delta = harsh.worst_path_loss_db - mild.worst_path_loss_db
        assert ratio == pytest.approx(10 ** (db_delta / 10.0), rel=1e-6)

    def test_energy_per_mac_scale(self):
        # Photonic cores land in the fJ/MAC-to-pJ/MAC regime.
        report = estimate_power(topo(nb=4, k=16, seed=4), AMF)
        assert 1.0 < report.energy_per_mac_fj < 1e6

    def test_bigger_k_better_efficiency(self):
        # MAC count grows as K^2 while power grows roughly as K:
        # larger cores amortize better (the scaling argument for PTCs).
        small = estimate_power(topo(nb=4, k=8, seed=5), AMF)
        large = estimate_power(topo(nb=4, k=16, seed=5), AMF)
        assert large.energy_per_mac_fj < small.energy_per_mac_fj

    def test_summary_string(self):
        s = estimate_power(topo(), AIM).summary()
        assert "mW" in s and "fJ/MAC" in s and "ps" in s

    def test_custom_config_respected(self):
        cfg = PowerConfig(heater_p_pi_mw=50.0)
        a = estimate_power(topo(seed=6), AMF)
        b = estimate_power(topo(seed=6), AMF, config=cfg)
        assert b.heater_power_mw == pytest.approx(2 * a.heater_power_mw)
