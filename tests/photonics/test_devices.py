"""Photonic device transfer matrices."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.photonics import (
    T_5050,
    apply_ps,
    crossing_matrix,
    dc_layer_matrix,
    dc_layer_matrix_np,
    dc_matrix,
    is_unitary,
    mzi_matrix,
    ps_matrix,
    scatter_matrix,
)


class TestPhaseShifter:
    def test_diagonal_phase(self):
        phases = np.array([0.0, np.pi / 2, np.pi])
        m = ps_matrix(phases)
        assert np.allclose(np.diag(m), np.exp(-1j * phases))
        assert is_unitary(m)

    def test_apply_ps_matches_matrix(self, rng):
        phases = rng.uniform(0, 2 * np.pi, 4)
        x = rng.normal(size=(4, 3)) + 1j * rng.normal(size=(4, 3))
        out = apply_ps(Tensor(x), Tensor(phases))
        assert np.allclose(out.data, ps_matrix(phases) @ x)

    def test_phase_gradient(self, rng):
        phases = Tensor(rng.uniform(0, 2 * np.pi, 3), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 2)).astype(complex))
        assert gradcheck(lambda p: (apply_ps(x, p).real() ** 2).sum(), [phases])


class TestDirectionalCoupler:
    def test_5050_split(self):
        m = dc_matrix(T_5050)
        out = m @ np.array([1.0, 0.0])
        assert np.allclose(np.abs(out) ** 2, [0.5, 0.5])

    def test_unitary_any_t(self):
        for t in (0.0, 0.3, T_5050, 0.9, 1.0):
            assert is_unitary(dc_matrix(t))

    def test_invalid_t_raises(self):
        with pytest.raises(ValueError):
            dc_matrix(1.5)

    def test_layer_matrix_np_structure(self):
        m = dc_layer_matrix_np([T_5050, 1.0], 4, 0)
        # First pair coupled, second pair pass-through (t=1).
        assert np.isclose(m[0, 0], T_5050)
        assert np.isclose(abs(m[0, 1]), np.sqrt(1 - T_5050 ** 2))
        assert np.isclose(m[2, 2], 1.0) and np.isclose(m[2, 3], 0.0)

    def test_layer_offset_one(self):
        m = dc_layer_matrix_np([T_5050], 4, 1)
        assert np.isclose(m[0, 0], 1.0)  # waveguide 0 passes through
        assert np.isclose(m[1, 1], T_5050)

    def test_differentiable_layer_matches_np(self, rng):
        ts = np.array([0.6, 0.9])
        m_diff = dc_layer_matrix(Tensor(ts), 5, 1)
        m_np = dc_layer_matrix_np(ts, 5, 1)
        assert np.allclose(m_diff.data, m_np, atol=1e-6)

    def test_layer_unitary(self):
        m = dc_layer_matrix(Tensor(np.array([T_5050, T_5050, T_5050])), 6, 0)
        assert is_unitary(m.data, atol=1e-6)

    def test_transmission_gradient(self, rng):
        ts = Tensor(rng.uniform(0.2, 0.8, 2), requires_grad=True)
        x = Tensor(rng.normal(size=(4, 2)).astype(complex))
        assert gradcheck(
            lambda t: ((dc_layer_matrix(t, 4, 0) @ x).abs() ** 2).sum(), [ts],
            atol=1e-4,
        )


class TestCrossing:
    def test_permutation_matrix(self):
        m = crossing_matrix([2, 0, 1])
        x = np.array([10.0, 20.0, 30.0])
        assert np.allclose(m @ x, [30.0, 10.0, 20.0])
        assert is_unitary(m)


class TestMZI:
    def test_unitary_everywhere(self, rng):
        for _ in range(10):
            theta, phi = rng.uniform(0, 2 * np.pi, 2)
            assert is_unitary(mzi_matrix(theta, phi))

    def test_bar_and_cross_states(self):
        # theta = pi: |m01| = |(a+1)/2| = 0 -> bar state.
        bar = mzi_matrix(np.pi, 0.0)
        assert np.isclose(abs(bar[0, 1]), 0.0, atol=1e-12)
        # theta = 0: |m00| = 0 -> full cross state.
        cross = mzi_matrix(0.0, 0.0)
        assert np.isclose(abs(cross[0, 0]), 0.0, atol=1e-12)

    def test_power_conservation(self, rng):
        m = mzi_matrix(1.1, 0.3)
        x = rng.normal(size=2) + 1j * rng.normal(size=2)
        assert np.isclose(np.linalg.norm(m @ x), np.linalg.norm(x))


class TestScatter:
    def test_scatter_values(self):
        v = Tensor(np.array([1.0, 2.0]))
        m = scatter_matrix(v, np.array([0, 1]), np.array([1, 0]), (2, 2))
        assert np.allclose(m.data, [[0, 1], [2, 0]])

    def test_scatter_gradient(self, rng):
        v = Tensor(rng.normal(size=3), requires_grad=True)
        rows, cols = np.array([0, 1, 2]), np.array([2, 0, 1])
        assert gradcheck(
            lambda v: (scatter_matrix(v, rows, cols, (3, 3)) ** 2).sum(), [v]
        )
