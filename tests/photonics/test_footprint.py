"""Footprint math: exact reproduction of the paper's baseline numbers."""

import numpy as np
import pytest

from repro.photonics import (
    AIM,
    AMF,
    FoundryPDK,
    block_footprint_bounds,
    butterfly_footprint,
    get_pdk,
    mzi_onn_footprint,
    ptc_footprint,
    register_pdk,
    supermesh_block_bounds,
)


class TestPDK:
    def test_amf_numbers(self):
        assert (AMF.ps_area, AMF.dc_area, AMF.cr_area) == (6800.0, 1500.0, 64.0)

    def test_aim_numbers(self):
        assert (AIM.ps_area, AIM.dc_area, AIM.cr_area) == (2500.0, 4000.0, 4900.0)

    def test_lookup(self):
        assert get_pdk("amf") is AMF
        assert get_pdk("AIM") is AIM
        with pytest.raises(KeyError):
            get_pdk("tsmc")

    def test_register_custom(self):
        custom = FoundryPDK("TestFab", 1.0, 2.0, 3.0)
        register_pdk(custom)
        assert get_pdk("testfab") is custom

    def test_footprint_math(self):
        assert AMF.footprint(1, 1, 1) == 6800 + 1500 + 64
        with pytest.raises(ValueError):
            AMF.footprint(-1, 0, 0)


class TestPaperTable1:
    """MZI-ONN and FFT-ONN columns of Table 1 must reproduce exactly."""

    @pytest.mark.parametrize(
        "k,footprint,n_dc,n_blk",
        [(8, 1909, 112, 32), (16, 7683, 480, 64), (32, 30829, 1984, 128)],
    )
    def test_mzi_onn(self, k, footprint, n_dc, n_blk):
        fb = mzi_onn_footprint(AMF, k)
        assert round(fb.in_paper_units()) == footprint
        assert fb.n_dc == n_dc
        assert fb.n_blocks == n_blk
        assert fb.n_cr == 0

    @pytest.mark.parametrize(
        "k,footprint,n_cr,n_dc,n_blk",
        [(8, 363, 16, 24, 6), (16, 972, 88, 64, 8), (32, 2443, 416, 160, 10)],
    )
    def test_fft_onn(self, k, footprint, n_cr, n_dc, n_blk):
        fb = butterfly_footprint(AMF, k)
        assert round(fb.in_paper_units()) == footprint
        assert (fb.n_cr, fb.n_dc, fb.n_blocks) == (n_cr, n_dc, n_blk)

    def test_butterfly_non_power_of_two_raises(self):
        with pytest.raises(ValueError):
            butterfly_footprint(AMF, 12)


class TestPaperTable2:
    """AIM PDK baselines of Table 2."""

    def test_mzi_16_aim(self):
        assert round(mzi_onn_footprint(AIM, 16).in_paper_units()) == 4480

    def test_fft_16_aim(self):
        assert round(butterfly_footprint(AIM, 16).in_paper_units()) == 1007


class TestBlockBounds:
    def test_eq16_formulas(self):
        fb_min, fb_max = block_footprint_bounds(AMF, 8)
        assert fb_min == 8 * 6800 + 1500
        assert fb_max == fb_min + 8 * 1500 / 2 + 8 * 7 * 64 / 2

    def test_analytic_bounds_table1_a1(self):
        # ADEPT-a1 at 8x8: window [240k, 300k] um^2.
        b_min, b_max = supermesh_block_bounds(AMF, 8, 240_000, 300_000)
        assert b_max == int(np.ceil(300_000 / 55_900))
        assert b_min >= 2

    def test_bounds_ordering(self):
        b_min, b_max = supermesh_block_bounds(AMF, 16, 480_000, 600_000)
        assert 2 <= b_min <= b_max

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            supermesh_block_bounds(AMF, 8, 100.0, 50.0)

    def test_aim_worst_block_crossing_dominated(self):
        """On AIM (CR = 4900 um^2) the worst-case block cost is dominated
        by crossings; on AMF (CR = 64 um^2) it is PS-dominated — the
        asymmetry that drives the Table 2 adaptation."""
        k = 16
        _, fb_max_aim = block_footprint_bounds(AIM, k)
        _, fb_max_amf = block_footprint_bounds(AMF, k)
        cr_worst = k * (k - 1) / 2
        assert cr_worst * AIM.cr_area > fb_max_aim / 2
        assert cr_worst * AMF.cr_area < fb_max_amf / 10


class TestBreakdown:
    def test_ptc_footprint(self):
        fb = ptc_footprint(AMF, 10, 5, 3)
        assert fb.total == 10 * 6800 + 5 * 1500 + 3 * 64
        assert fb.in_paper_units() == fb.total / 1000
