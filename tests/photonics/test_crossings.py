"""Crossing counting and routing."""

import itertools

import numpy as np
import pytest

from repro.photonics import (
    count_inversions,
    crossings_of_matrix,
    is_permutation_matrix,
    matrix_to_perm,
    perm_to_matrix,
    routing_schedule,
)


def brute_inversions(perm):
    return sum(
        1 for i in range(len(perm)) for j in range(i + 1, len(perm)) if perm[i] > perm[j]
    )


class TestInversions:
    def test_identity_zero(self):
        assert count_inversions(range(8)) == 0

    def test_reversal_maximal(self):
        assert count_inversions([4, 3, 2, 1, 0]) == 10  # K(K-1)/2

    def test_matches_bruteforce_all_perms_of_5(self):
        for perm in itertools.permutations(range(5)):
            assert count_inversions(perm) == brute_inversions(perm)

    def test_matches_bruteforce_random_large(self, rng):
        for _ in range(5):
            perm = rng.permutation(40)
            assert count_inversions(perm) == brute_inversions(perm)

    def test_single_swap(self):
        assert count_inversions([1, 0, 2, 3]) == 1


class TestRouting:
    def test_schedule_length_equals_inversions(self, rng):
        perm = list(rng.permutation(10))
        assert len(routing_schedule(perm)) == count_inversions(perm)

    def test_schedule_realizes_sort(self, rng):
        """Replaying the swap schedule on the permutation sorts it."""
        for perm in ([3, 1, 0, 2], list(rng.permutation(8))):
            arr = list(perm)
            for i, j in routing_schedule(perm):
                arr[i], arr[j] = arr[j], arr[i]
            assert arr == sorted(perm)

    def test_identity_needs_no_swaps(self):
        assert len(routing_schedule([0, 1, 2])) == 0


class TestMatrices:
    def test_roundtrip(self, rng):
        perm = rng.permutation(7)
        m = perm_to_matrix(perm)
        assert is_permutation_matrix(m)
        assert np.array_equal(matrix_to_perm(m), perm)

    def test_crossings_of_matrix(self):
        m = perm_to_matrix([2, 1, 0])
        assert crossings_of_matrix(m) == 3

    def test_illegal_matrix_rejected(self):
        bad = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert not is_permutation_matrix(bad)
        with pytest.raises(ValueError):
            matrix_to_perm(bad)

    def test_non_binary_rejected(self):
        soft = np.array([[0.9, 0.1], [0.1, 0.9]])
        assert not is_permutation_matrix(soft)

    def test_non_square_rejected(self):
        assert not is_permutation_matrix(np.ones((2, 3)))
