"""Tests for device-level nonideality models."""

import math

import numpy as np
import pytest

from repro.core.topology import BlockSpec, PTCTopology, random_topology
from repro.photonics.crossings import count_inversions
from repro.photonics.devices import is_unitary
from repro.photonics.nonideality import (
    FabricationSample,
    NonidealitySpec,
    NonidealTopologyFactory,
    crossings_per_wire,
    db_to_amplitude,
    fidelity,
    noisy_block_matrix,
    noisy_unitary,
    sample_fabrication,
    thermal_crosstalk_matrix,
    unitary_fidelity_under_noise,
)


def make_topology(k=8, nb=3, seed=0) -> PTCTopology:
    return random_topology(k, nb, nb, np.random.default_rng(seed))


class TestDbToAmplitude:
    def test_zero_loss_is_unity(self):
        assert db_to_amplitude(0.0) == 1.0

    def test_three_db_half_power(self):
        assert db_to_amplitude(3.0) == pytest.approx(10 ** (-0.15))
        assert db_to_amplitude(3.0) ** 2 == pytest.approx(0.5, rel=0.01)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            db_to_amplitude(-1.0)

    def test_monotone(self):
        losses = [0.0, 0.1, 0.5, 1.0, 3.0]
        amps = [db_to_amplitude(x) for x in losses]
        assert amps == sorted(amps, reverse=True)


class TestSpec:
    def test_ideal_flag(self):
        assert NonidealitySpec().is_ideal
        assert not NonidealitySpec(phase_noise_std=0.01).is_ideal
        assert not NonidealitySpec(loss_dc_db=0.1).is_ideal

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            NonidealitySpec(phase_noise_std=-0.1)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            NonidealitySpec(crosstalk_gamma=1.5)

    def test_frozen(self):
        spec = NonidealitySpec()
        with pytest.raises(Exception):
            spec.phase_noise_std = 1.0


class TestCrosstalkMatrix:
    def test_zero_gamma_identity(self):
        np.testing.assert_array_equal(thermal_crosstalk_matrix(5, 0.0), np.eye(5))

    def test_unit_diagonal(self):
        c = thermal_crosstalk_matrix(6, 0.2, radius=2)
        np.testing.assert_allclose(np.diag(c), 1.0)

    def test_symmetric(self):
        c = thermal_crosstalk_matrix(7, 0.15, radius=3)
        np.testing.assert_allclose(c, c.T)

    def test_decays_with_distance(self):
        c = thermal_crosstalk_matrix(8, 0.3, radius=3)
        assert c[0, 1] == pytest.approx(0.3)
        assert c[0, 2] == pytest.approx(0.15)
        assert c[0, 3] == pytest.approx(0.1)
        assert c[0, 4] == 0.0

    def test_radius_larger_than_k(self):
        c = thermal_crosstalk_matrix(3, 0.2, radius=10)
        assert c.shape == (3, 3)


class TestCrossingsPerWire:
    def test_identity_no_crossings(self):
        np.testing.assert_array_equal(crossings_per_wire([0, 1, 2, 3]), 0)

    def test_swap_two(self):
        counts = crossings_per_wire([1, 0, 2])
        assert counts[0] == 1 and counts[1] == 1 and counts[2] == 0

    def test_reversal_all_cross(self):
        k = 5
        counts = crossings_per_wire(list(range(k))[::-1])
        np.testing.assert_array_equal(counts, k - 1)

    @pytest.mark.parametrize("seed", range(5))
    def test_sum_is_twice_inversions(self, seed):
        rng = np.random.default_rng(seed)
        perm = list(rng.permutation(9))
        assert crossings_per_wire(perm).sum() == 2 * count_inversions(perm)


class TestNoisyBlockMatrix:
    def test_ideal_block_is_unitary(self):
        block = BlockSpec(coupler_mask=np.array([True, False, True, True]),
                          offset=0, perm=np.array([2, 0, 1, 3, 5, 4, 7, 6]))
        m = noisy_block_matrix(block, np.zeros(8), 8, NonidealitySpec())
        assert is_unitary(m)

    def test_loss_shrinks_norm(self):
        block = BlockSpec(coupler_mask=np.array([True] * 4), offset=0, perm=None)
        spec = NonidealitySpec(loss_ps_db=0.3, loss_dc_db=0.3)
        m = noisy_block_matrix(block, np.zeros(8), 8, spec)
        s = np.linalg.svd(m, compute_uv=False)
        assert s.max() < 1.0

    def test_crossing_loss_hits_only_routed_wires(self):
        k = 4
        block = BlockSpec(coupler_mask=np.array([False, False]), offset=0,
                          perm=np.array([1, 0, 2, 3]))
        spec = NonidealitySpec(loss_cr_db=1.0)
        m = noisy_block_matrix(block, np.zeros(k), k, spec)
        a = db_to_amplitude(1.0)
        # Wires 0 and 1 cross once; wires 2, 3 are untouched.
        assert abs(m[0, 1]) == pytest.approx(a)
        assert abs(m[1, 0]) == pytest.approx(a)
        assert abs(m[2, 2]) == pytest.approx(1.0)
        assert abs(m[3, 3]) == pytest.approx(1.0)

    def test_phase_noise_changes_matrix(self):
        block = BlockSpec(coupler_mask=np.array([True, True]), offset=0, perm=None)
        ideal = noisy_block_matrix(block, np.ones(4), 4, NonidealitySpec())
        noisy = noisy_block_matrix(
            block, np.ones(4), 4, NonidealitySpec(phase_noise_std=0.2),
            rng=np.random.default_rng(0))
        assert not np.allclose(ideal, noisy)

    def test_crosstalk_applied(self):
        block = BlockSpec(coupler_mask=np.array([False, False]), offset=0, perm=None)
        phases = np.array([1.0, 0.0, 0.0, 0.0])
        c = thermal_crosstalk_matrix(4, 0.5)
        m = noisy_block_matrix(block, phases, 4, NonidealitySpec(), crosstalk=c)
        # Neighbour wire 1 picks up 0.5 rad from wire 0's heater.
        assert np.angle(m[1, 1]) == pytest.approx(-0.5)


class TestSampleFabrication:
    def test_nominal_when_ideal(self):
        topo = make_topology()
        su, sv = sample_fabrication(topo, NonidealitySpec(), rng=np.random.default_rng(0))
        for sample, blocks in ((su, topo.blocks_u), (sv, topo.blocks_v)):
            assert sample.n_blocks == len(blocks)
            for t, block in zip(sample.dc_t, blocks):
                mask = np.asarray(block.coupler_mask, dtype=bool)
                np.testing.assert_allclose(t[mask], math.sqrt(2) / 2)
                np.testing.assert_allclose(t[~mask], 1.0)
            for diag in sample.loss_diag:
                np.testing.assert_allclose(diag, 1.0)

    def test_imbalance_perturbs_only_placed(self):
        topo = make_topology(seed=3)
        spec = NonidealitySpec(dc_t_std=0.05)
        su, _ = sample_fabrication(topo, spec, rng=np.random.default_rng(1))
        for t, block in zip(su.dc_t, topo.blocks_u):
            mask = np.asarray(block.coupler_mask, dtype=bool)
            assert not np.allclose(t[mask], math.sqrt(2) / 2)
            np.testing.assert_allclose(t[~mask], 1.0)

    def test_t_clipped_to_physical_range(self):
        topo = make_topology(seed=5)
        spec = NonidealitySpec(dc_t_std=5.0)  # absurd, forces clipping
        su, sv = sample_fabrication(topo, spec, rng=np.random.default_rng(2))
        for sample in (su, sv):
            for t in sample.dc_t:
                assert (t >= 0.0).all() and (t <= 1.0).all()

    def test_crosstalk_attached(self):
        topo = make_topology()
        spec = NonidealitySpec(crosstalk_gamma=0.1)
        su, _ = sample_fabrication(topo, spec, rng=np.random.default_rng(0))
        assert su.crosstalk is not None
        assert su.crosstalk.shape == (topo.k, topo.k)


class TestNoisyUnitary:
    def test_ideal_is_unitary(self):
        topo = make_topology()
        phases = np.zeros((len(topo.blocks_u), topo.k))
        u = noisy_unitary(topo.blocks_u, phases, topo.k, NonidealitySpec())
        assert is_unitary(u)

    def test_shape_validation(self):
        topo = make_topology()
        with pytest.raises(ValueError, match="shape"):
            noisy_unitary(topo.blocks_u, np.zeros((1, topo.k)), topo.k, NonidealitySpec())

    def test_loss_compounds_with_depth(self):
        k = 8
        rng = np.random.default_rng(0)
        shallow = random_topology(k, 2, 2, rng)
        deep = random_topology(k, 12, 12, rng)
        spec = NonidealitySpec(loss_ps_db=0.2)
        norm = {}
        for name, topo in (("shallow", shallow), ("deep", deep)):
            phases = np.zeros((len(topo.blocks_u), k))
            u = noisy_unitary(topo.blocks_u, phases, k, spec)
            norm[name] = np.linalg.svd(u, compute_uv=False).max()
        assert norm["deep"] < norm["shallow"] < 1.0


class TestFidelity:
    def test_self_fidelity_is_one(self):
        u = np.linalg.qr(np.random.default_rng(0).normal(size=(6, 6))
                         + 1j * np.random.default_rng(1).normal(size=(6, 6)))[0]
        assert fidelity(u, u) == pytest.approx(1.0)

    def test_orthogonal_directions_score_low(self):
        u = np.eye(4, dtype=complex)
        v = np.diag([1, 1, 1, -1]).astype(complex)
        assert fidelity(u, v) == pytest.approx(0.5)

    def test_noise_degrades_fidelity(self):
        topo = make_topology(k=8, nb=4, seed=7)
        mild, _ = unitary_fidelity_under_noise(
            topo, NonidealitySpec(phase_noise_std=0.02), n_trials=6,
            rng=np.random.default_rng(0))
        harsh, _ = unitary_fidelity_under_noise(
            topo, NonidealitySpec(phase_noise_std=0.3), n_trials=6,
            rng=np.random.default_rng(0))
        assert harsh < mild <= 1.0 + 1e-9

    def test_ideal_spec_perfect_fidelity(self):
        topo = make_topology(seed=9)
        mean, std = unitary_fidelity_under_noise(
            topo, NonidealitySpec(), n_trials=3, rng=np.random.default_rng(0))
        assert mean == pytest.approx(1.0)
        assert std == pytest.approx(0.0, abs=1e-12)


class TestNonidealTopologyFactory:
    def test_is_fixed_topology_factory(self):
        from repro.ptc.unitary import FixedTopologyFactory

        topo = make_topology(k=8, nb=3, seed=1)
        f = NonidealTopologyFactory(8, 2, topo.blocks_u, NonidealitySpec(),
                                    rng=np.random.default_rng(0))
        assert isinstance(f, FixedTopologyFactory)
        assert f.build().shape == (2, 8, 8)

    def test_ideal_spec_matches_nominal(self):
        from repro.ptc.unitary import FixedTopologyFactory

        topo = make_topology(k=8, nb=3, seed=2)
        blocks = [(b.perm, b.coupler_mask, b.offset) for b in topo.blocks_u]
        nominal = FixedTopologyFactory(8, 1, blocks, rng=np.random.default_rng(3))
        nonideal = NonidealTopologyFactory(8, 1, topo.blocks_u, NonidealitySpec(),
                                           rng=np.random.default_rng(3))
        np.testing.assert_allclose(nominal.build().data, nonideal.build().data,
                                   atol=1e-12)

    def test_loss_makes_submatrix_contractive(self):
        topo = make_topology(k=8, nb=4, seed=4)
        spec = NonidealitySpec(loss_ps_db=0.3, loss_dc_db=0.3)
        f = NonidealTopologyFactory(8, 1, topo.blocks_u, spec,
                                    rng=np.random.default_rng(0))
        u = f.build().data[0]
        assert np.linalg.svd(u, compute_uv=False).max() < 1.0

    def test_noise_std_propagated(self):
        topo = make_topology(seed=6)
        spec = NonidealitySpec(phase_noise_std=0.05)
        f = NonidealTopologyFactory(topo.k, 1, topo.blocks_u, spec,
                                    rng=np.random.default_rng(0))
        assert f.noise_std == pytest.approx(0.05)

    def test_fabrication_sample_attached(self):
        topo = make_topology(seed=8)
        spec = NonidealitySpec(dc_t_std=0.02)
        f = NonidealTopologyFactory(topo.k, 1, topo.blocks_u, spec,
                                    rng=np.random.default_rng(0))
        assert isinstance(f.fabrication_sample, FabricationSample)
        assert f.fabrication_sample.n_blocks == len(topo.blocks_u)
