"""Vectorized noisy_unitary_trials vs the sequential noisy_unitary loop."""

import numpy as np
import pytest

from repro.core.topology import random_topology
from repro.photonics.nonideality import (
    NonidealitySpec,
    fabrication_const_stack,
    noisy_unitary,
    noisy_unitary_trials,
    sample_fabrication_batch,
)

K = 8
TOL = 1e-12

# The loop/batch parity below is double-precision exact, so the batched
# cascade is pinned to the complex128 "numpy" execution backend; the
# complex64 lane has its own tolerance contract in
# tests/autograd/test_backend_parity.py.
EXEC = {"exec_backend": "numpy"}


@pytest.fixture
def topo():
    return random_topology(K, 6, 6, np.random.default_rng(3))


@pytest.fixture
def phases(topo):
    return np.random.default_rng(1).uniform(0, 2 * np.pi, size=(len(topo.blocks_u), K))


FULL_SPEC = NonidealitySpec(
    phase_noise_std=0.05, dc_t_std=0.02, loss_ps_db=0.1, loss_dc_db=0.2,
    loss_cr_db=0.1, crosstalk_gamma=0.1,
)


class TestNoisyUnitaryTrials:
    def test_per_trial_samples_match_loop(self, topo, phases):
        samples = [
            u for u, _ in sample_fabrication_batch(
                topo, FULL_SPEC, 4, rng=np.random.default_rng(9)
            )
        ]
        rng1 = np.random.default_rng(42)
        loop = np.stack([
            noisy_unitary(topo.blocks_u, phases, K, FULL_SPEC, sample=s, rng=rng1)
            for s in samples
        ])
        rng2 = np.random.default_rng(42)
        batch = noisy_unitary_trials(
            topo.blocks_u, phases, K, FULL_SPEC, samples=samples, rng=rng2, **EXEC
        )
        assert batch.shape == (4, K, K)
        assert np.abs(loop - batch).max() <= TOL

    def test_shared_sample_matches_loop(self, topo, phases):
        (sample, _), = sample_fabrication_batch(
            topo, FULL_SPEC, 1, rng=np.random.default_rng(2)
        )
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        loop = np.stack([
            noisy_unitary(topo.blocks_u, phases, K, FULL_SPEC, sample=sample, rng=rng1)
            for _ in range(5)
        ])
        batch = noisy_unitary_trials(
            topo.blocks_u, phases, K, FULL_SPEC, samples=sample, n_trials=5,
            rng=rng2, **EXEC,
        )
        assert np.abs(loop - batch).max() <= TOL

    def test_nominal_chip_matches_loop(self, topo, phases):
        spec = NonidealitySpec(phase_noise_std=0.08)
        rng1, rng2 = np.random.default_rng(6), np.random.default_rng(6)
        loop = np.stack([
            noisy_unitary(topo.blocks_u, phases, K, spec, rng=rng1) for _ in range(3)
        ])
        batch = noisy_unitary_trials(
            topo.blocks_u, phases, K, spec, n_trials=3, rng=rng2, **EXEC
        )
        assert np.abs(loop - batch).max() <= TOL

    def test_ideal_spec_is_exact_mesh(self, topo, phases):
        ideal = noisy_unitary(topo.blocks_u, phases, K, NonidealitySpec())
        batch = noisy_unitary_trials(
            topo.blocks_u, phases, K, NonidealitySpec(), n_trials=2, **EXEC
        )
        assert np.abs(batch - ideal).max() <= TOL
        # Ideal meshes are unitary.
        for u in batch:
            assert np.abs(u @ u.conj().T - np.eye(K)).max() < 1e-9

    def test_requires_trial_count(self, topo, phases):
        with pytest.raises(ValueError, match="n_trials"):
            noisy_unitary_trials(topo.blocks_u, phases, K, NonidealitySpec())

    def test_rejects_bad_phase_shape(self, topo):
        with pytest.raises(ValueError):
            noisy_unitary_trials(
                topo.blocks_u, np.zeros((2, K)), K, NonidealitySpec(), n_trials=1
            )


def test_fabrication_const_stack_matches_factory_substitution(topo):
    """The stack helper must produce exactly the constants that
    NonidealTopologyFactory bakes into a FixedTopologyFactory."""
    from repro.photonics.nonideality import NonidealTopologyFactory, sample_fabrication

    spec = NonidealitySpec(dc_t_std=0.03, loss_dc_db=0.2)
    sample, _ = sample_fabrication(topo, spec, rng=np.random.default_rng(4))
    stack = fabrication_const_stack(topo.blocks_u, K, spec, sample)
    factory = NonidealTopologyFactory(
        K, 2, topo.blocks_u, spec, sample=sample, rng=np.random.default_rng(0)
    )
    assert np.abs(stack - np.stack(factory._const)).max() == 0.0
