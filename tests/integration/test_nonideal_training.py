"""End-to-end: variation-aware training on a nonideal chip model.

The paper's variation-aware retraining injects phase noise only; with
the nonideality substrate we can train against a *fabricated* chip
model — frozen coupler imbalance + loss — and check the programmable
phases absorb part of the fabrication error.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.topology import random_topology
from repro.nn import CrossEntropyLoss
from repro.optim import Adam
from repro.photonics.nonideality import (
    NonidealitySpec,
    NonidealTopologyFactory,
)
from repro.ptc.unitary import FixedTopologyFactory


def _fit_factory_to_target(factory, target, steps=120, lr=0.05):
    opt = Adam(factory.parameters(), lr=lr)
    t = Tensor(target.reshape((1,) + target.shape))
    for _ in range(steps):
        opt.zero_grad()
        u = factory.build()
        loss = ((u - t) * (u - t).conj()).real().sum()
        loss.backward()
        opt.step()
    return float(np.linalg.norm(factory.build().data[0] - target))


class TestTrainOnNonidealChip:
    def test_phases_compensate_fabrication_error(self):
        """Training ON the nonideal model must fit a target better
        than programming the nominal phases onto the nonideal chip."""
        k = 8
        rng = np.random.default_rng(0)
        topo = random_topology(k, 4, 4, rng, coupler_density=1.0)
        spec = NonidealitySpec(dc_t_std=0.05)

        # Target: what a NOMINAL chip would realize with random phases.
        blocks = [(b.perm, b.coupler_mask, b.offset) for b in topo.blocks_u]
        nominal = FixedTopologyFactory(k, 1, blocks, rng=np.random.default_rng(1))
        target = nominal.build().data[0]

        # A fabricated (imbalanced) chip with the nominal phases:
        fabbed = NonidealTopologyFactory(k, 1, topo.blocks_u, spec,
                                         rng=np.random.default_rng(2))
        for p_fab, p_nom in zip(fabbed.parameters(), nominal.parameters()):
            p_fab.data = p_nom.data.copy()
        uncompensated = float(np.linalg.norm(fabbed.build().data[0] - target))

        # Now train the fabricated chip's phases toward the target.
        # Phases cannot undo amplitude (splitting-ratio) errors, so
        # full recovery is impossible — but a solid fraction of the
        # error is phase-compensable.
        compensated = _fit_factory_to_target(fabbed, target, steps=300)
        assert compensated < 0.9 * uncompensated

    def test_gradients_flow_through_nonideal_model(self):
        k = 8
        topo = random_topology(k, 3, 3, np.random.default_rng(3))
        spec = NonidealitySpec(dc_t_std=0.02, loss_ps_db=0.1)
        f = NonidealTopologyFactory(k, 2, topo.blocks_u, spec,
                                    rng=np.random.default_rng(4))
        u = f.build()
        loss = (u * u.conj()).real().sum()
        loss.backward()
        for p in f.parameters():
            assert p.grad is not None
            assert np.isfinite(p.grad).all()

    def test_variation_aware_noise_still_active(self):
        k = 8
        topo = random_topology(k, 3, 3, np.random.default_rng(5))
        spec = NonidealitySpec(phase_noise_std=0.05, dc_t_std=0.02)
        f = NonidealTopologyFactory(k, 1, topo.blocks_u, spec,
                                    rng=np.random.default_rng(6))
        a = f.build().data
        b = f.build().data
        # Runtime phase noise redraws per build.
        assert not np.allclose(a, b)
