"""Integration tests for the extension studies (small budgets).

The benches run these at full scale; here we check structure and the
directional claims at budgets small enough for the unit suite.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_expressivity_comparison,
    run_nonideality_study,
    run_power_comparison,
    run_quantization_study,
)


class TestQuantizationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_quantization_study(k=4, bit_widths=(6, 3), steps=200)

    def test_structure(self, study):
        assert study.bit_widths == [6, 3]
        assert len(study.ptq_errors) == 2
        assert len(study.qat_errors) == 2

    def test_fewer_bits_more_ptq_error(self, study):
        assert study.ptq_errors[0] < study.ptq_errors[1]

    def test_qat_never_loses_to_ptq(self, study):
        for ptq, qat in zip(study.ptq_errors, study.qat_errors):
            assert qat <= ptq + 1e-9

    def test_full_precision_is_floor(self, study):
        assert study.full_precision_error <= min(study.ptq_errors) + 1e-9


class TestNonidealityStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_nonideality_study(k=6, shallow_blocks=2, deep_blocks=10,
                                     n_trials=4)

    def test_all_specs_present(self, study):
        assert set(study.specs) == {"phase-noise", "insertion-loss",
                                    "dc-imbalance", "crosstalk", "combined"}

    def test_depth_hurts_everywhere(self, study):
        for s, d in zip(study.shallow_fidelity, study.deep_fidelity):
            assert d < s

    def test_fidelities_in_unit_interval(self, study):
        for f in study.shallow_fidelity + study.deep_fidelity:
            assert 0.0 <= f <= 1.0 + 1e-9


class TestPowerComparison:
    @pytest.fixture(scope="class")
    def study(self):
        return run_power_comparison(k=8)

    def test_three_designs(self, study):
        assert study.names == ["mzi", "fft", "adept"]

    def test_mzi_most_expensive(self, study):
        mzi_p, mzi_l, mzi_e = study.of("mzi")
        for other in ("fft", "adept"):
            p, l, e = study.of(other)
            assert mzi_p > p and mzi_l > l and mzi_e > e

    def test_sub_nanosecond(self, study):
        assert all(l < 1000.0 for l in study.latency_ps)


class TestExpressivityComparison:
    @pytest.fixture(scope="class")
    def study(self):
        return run_expressivity_comparison(k=8, steps=150, n_targets=1)

    def test_all_families_present(self, study):
        assert study.names == ["mzi", "fft", "adept-a1", "adept-a5"]

    def test_mzi_most_expressive(self, study):
        assert study.error_of("mzi") == min(study.errors)

    def test_footprints_recorded(self, study):
        mzi_fp = study.footprints_kum2[study.names.index("mzi")]
        assert mzi_fp == pytest.approx(1908.8, abs=1.0)

    def test_front_nonempty(self, study):
        assert len(study.front()) >= 1
