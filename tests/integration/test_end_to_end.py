"""Full-pipeline integration: search -> serialize -> retrain -> evaluate."""

import numpy as np
import pytest

from repro.core import (
    ADEPTConfig,
    ADEPTSearch,
    PTCTopology,
    noise_robustness_curve,
    variation_aware_train,
)
from repro.data import train_test_split
from repro.nn import Flatten, Sequential
from repro.onn import PTCLinear, TrainConfig, evaluate
from repro.photonics import AMF, mzi_onn_footprint


@pytest.fixture(scope="module")
def pipeline():
    """Run the whole paper flow once at miniature scale."""
    tr, te = train_test_split("mnist", 128, 64, seed=21)
    cfg = ADEPTConfig(
        k=8, pdk=AMF, f_min=240_000, f_max=300_000,
        epochs=4, warmup_epochs=1, spl_epoch=3, lr=5e-3,
        n_train=128, n_test=64, proxy_channels=4, batch_size=32, seed=21,
    )
    result = ADEPTSearch(cfg, tr, te).run()
    return tr, te, cfg, result


class TestSearchToDeployment:
    def test_serialize_roundtrip_and_retrain(self, pipeline, tmp_path):
        tr, te, cfg, result = pipeline
        path = tmp_path / "searched.json"
        result.topology.save(path)
        topo = PTCTopology.load(path)

        model = Sequential(Flatten(), PTCLinear(784, 10, k=8, mesh=topo))
        res = variation_aware_train(
            model, tr, te, noise_std=0.02,
            config=TrainConfig(epochs=5, batch_size=32, lr=5e-3),
        )
        assert res.best_test_acc > 0.25  # well above 10% chance

    def test_footprint_beats_mzi_baseline(self, pipeline):
        """The headline claim: searched PTC is far smaller than MZI-ONN."""
        _, _, _, result = pipeline
        adept_f = result.topology.footprint(AMF).total
        mzi_f = mzi_onn_footprint(AMF, 8).total
        assert adept_f < mzi_f / 2  # paper reports 2x-30x

    def test_noise_robustness_evaluable(self, pipeline):
        tr, te, _, result = pipeline
        model = Sequential(Flatten(), PTCLinear(784, 10, k=8, mesh=result.topology))
        variation_aware_train(
            model, tr, None, noise_std=0.02,
            config=TrainConfig(epochs=2, batch_size=32, lr=5e-3),
        )
        pts = noise_robustness_curve(model, te, noise_stds=(0.02, 0.1), n_runs=2)
        assert len(pts) == 2


class TestCrossPDKAdaptation:
    def test_tight_aim_budget_strips_crossings(self):
        """On AIM (CR = 4900 um^2 > DC) a *tight* footprint window forces
        the search to strip routing: the paper's adaptation mechanism is
        the footprint penalty, so crossing avoidance appears exactly
        when the budget is strict (Table 2, ADEPT-a0)."""
        from repro.photonics import AIM

        cfg = ADEPTConfig(
            k=8, pdk=AIM, f_min=100_000, f_max=135_000,
            epochs=10, warmup_epochs=2, spl_epoch=7, lr=5e-3,
            n_train=192, n_test=48, proxy_channels=4, batch_size=32, seed=5,
        )
        result = ADEPTSearch(cfg).run()
        f = result.topology.footprint(AIM)
        assert cfg.f_min <= f.total <= cfg.f_max
        # At 4900 um^2 apiece, the window leaves room for only a few
        # crossings; the search must respect that.
        assert f.n_cr * AIM.cr_area <= 0.35 * f.total
