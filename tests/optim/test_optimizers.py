"""Optimizers: convergence on quadratics, complex params, groups."""

import numpy as np

from repro.autograd import Tensor
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, clip_grad_norm_


def quadratic_steps(opt_factory, steps=200, complex_param=False):
    if complex_param:
        target = np.array([1 + 2j, -3 + 0.5j])
        p = Parameter(np.zeros(2, dtype=complex))
    else:
        target = np.array([1.0, -3.0])
        p = Parameter(np.zeros(2))
    opt = opt_factory([p])
    for _ in range(steps):
        diff = p - Tensor(target)
        loss = (diff * diff.conj()).real().sum() if complex_param else (diff * diff).sum()
        p.grad = None
        loss.backward()
        opt.step()
    return p.data, target


class TestAdam:
    def test_converges_real(self):
        got, want = quadratic_steps(lambda ps: Adam(ps, lr=0.1))
        assert np.allclose(got, want, atol=1e-3)

    def test_converges_complex(self):
        got, want = quadratic_steps(lambda ps: Adam(ps, lr=0.1), complex_param=True)
        assert np.allclose(got, want, atol=1e-3)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            loss = (p * 0.0).sum()  # zero task gradient
            p.grad = None
            loss.backward()
            opt.step()
        assert abs(p.data[0]) < 10.0

    def test_param_groups_distinct_lr(self):
        p1, p2 = Parameter(np.array([1.0])), Parameter(np.array([1.0]))
        opt = Adam([{"params": [p1], "lr": 0.0}, {"params": [p2], "lr": 0.1}])
        for p in (p1, p2):
            p.grad = np.array([1.0])
        opt.step()
        assert p1.data[0] == 1.0
        assert p2.data[0] < 1.0

    def test_zero_grad(self):
        p = Parameter(np.ones(2))
        p.grad = np.ones(2)
        opt = Adam([p])
        opt.zero_grad()
        assert p.grad is None

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2))
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad -> no state, no crash
        assert np.allclose(p.data, 1.0)


class TestSGD:
    def test_converges(self):
        got, want = quadratic_steps(lambda ps: SGD(ps, lr=0.05), steps=300)
        assert np.allclose(got, want, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = (p * p).sum()
                p.grad = None
                loss.backward()
                opt.step()
            return abs(p.data[0])

        assert run(0.9) < run(0.0)


class TestClipGradNorm:
    def test_clips_large(self):
        p = Parameter(np.ones(4))
        p.grad = np.full(4, 10.0)
        total = clip_grad_norm_([p], max_norm=1.0)
        assert total > 1.0
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_leaves_small(self):
        p = Parameter(np.ones(4))
        p.grad = np.full(4, 0.01)
        clip_grad_norm_([p], max_norm=1.0)
        assert np.allclose(p.grad, 0.01)

    def test_complex_grad_norm(self):
        p = Parameter(np.ones(2, dtype=complex))
        p.grad = np.array([3 + 4j, 0.0])
        total = clip_grad_norm_([p], max_norm=1.0)
        assert np.isclose(total, 5.0)
