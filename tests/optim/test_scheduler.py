"""LR schedulers."""

import numpy as np

from repro.nn.module import Parameter
from repro.optim import Adam, CosineAnnealingLR, ExponentialLR, StepLR


def make_opt(lr=1.0):
    return Adam([Parameter(np.ones(1))], lr=lr)


class TestCosine:
    def test_endpoints(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        sched.step()  # epoch 0
        assert np.isclose(opt.lr, 1.0)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.1)

    def test_monotone_decreasing(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=20)
        lrs = []
        for _ in range(21):
            sched.step()
            lrs.append(opt.lr)
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_midpoint_half(self):
        opt = make_opt(2.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(6):
            sched.step()
        assert np.isclose(opt.lr, 1.0)


class TestStepExp:
    def test_step_lr(self):
        opt = make_opt(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert np.allclose(lrs, [1.0, 1.0, 0.1, 0.1, 0.01])

    def test_exponential(self):
        opt = make_opt(1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        for _ in range(4):
            sched.step()
        assert np.isclose(opt.lr, 0.5 ** 3)

    def test_multiple_groups_scaled_together(self):
        p1, p2 = Parameter(np.ones(1)), Parameter(np.ones(1))
        opt = Adam([{"params": [p1], "lr": 1.0}, {"params": [p2], "lr": 0.1}])
        sched = ExponentialLR(opt, gamma=0.1)
        sched.step()
        sched.step()
        assert np.isclose(opt.param_groups[0]["lr"], 0.1)
        assert np.isclose(opt.param_groups[1]["lr"], 0.01)
