"""LR schedulers."""

import numpy as np

from repro.nn.module import Parameter
from repro.optim import Adam, CosineAnnealingLR, ExponentialLR, StepLR


def make_opt(lr=1.0):
    return Adam([Parameter(np.ones(1))], lr=lr)


class TestCosine:
    def test_endpoints(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        sched.step()  # epoch 0
        assert np.isclose(opt.lr, 1.0)
        for _ in range(9):
            sched.step()
        # The t_max-th step — i.e. the *last training epoch* of a
        # t_max-epoch run with start-of-epoch stepping — sits exactly
        # at the annealed floor (this used to land one step past the
        # final epoch and was never used).
        assert np.isclose(opt.lr, 0.1)
        sched.step()  # extra steps stay at the floor
        assert np.isclose(opt.lr, 0.1)

    def test_monotone_decreasing(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=20)
        lrs = []
        for _ in range(21):
            sched.step()
            lrs.append(opt.lr)
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_midpoint_half(self):
        opt = make_opt(2.0)
        sched = CosineAnnealingLR(opt, t_max=11)  # odd span: exact midpoint
        for _ in range(6):
            sched.step()
        assert np.isclose(opt.lr, 1.0)

    def test_pinned_schedule_values(self):
        """The full closed-interval schedule for t_max=5, base 1.0."""
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=5, eta_min=0.2)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        expected = [
            0.2 + 0.4 * (1 + np.cos(np.pi * t / 4)) for t in range(5)
        ]
        assert np.allclose(lrs, expected)
        assert np.isclose(lrs[0], 1.0)
        assert np.isclose(lrs[-1], 0.2)

    def test_t_max_one_stays_at_base(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=1, eta_min=0.0)
        sched.step()
        assert np.isclose(opt.lr, 1.0)

    def test_final_training_epoch_uses_floor(self):
        """End-to-end: train() with cosine LR anneals the optimizer to
        eta_min (0 by default) during its final epoch."""
        from repro.data.synthetic import train_test_split
        from repro.nn import Flatten, Linear, Sequential
        from repro.onn import TrainConfig, train

        tr, _ = train_test_split("mnist", 32, 8, seed=0)
        model = Sequential(Flatten(), Linear(784, 10))
        cfg = TrainConfig(epochs=3, batch_size=16, lr=0.5, cosine_lr=True)
        # Capture the LR the optimizer actually used each epoch.
        import repro.onn.trainer as trainer_mod

        captured = []
        orig_adam = trainer_mod.Adam

        class SpyAdam(orig_adam):
            def step(self):
                captured.append(self.param_groups[0]["lr"])
                super().step()

        trainer_mod.Adam = SpyAdam
        try:
            train(model, tr, config=cfg)
        finally:
            trainer_mod.Adam = orig_adam
        n_batches = len(captured) // 3
        first_epoch = captured[:n_batches]
        last_epoch = captured[-n_batches:]
        assert all(np.isclose(lr, 0.5) for lr in first_epoch)
        assert all(np.isclose(lr, 0.0) for lr in last_epoch)


class TestStepExp:
    def test_step_lr(self):
        opt = make_opt(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert np.allclose(lrs, [1.0, 1.0, 0.1, 0.1, 0.01])

    def test_exponential(self):
        opt = make_opt(1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        for _ in range(4):
            sched.step()
        assert np.isclose(opt.lr, 0.5 ** 3)

    def test_multiple_groups_scaled_together(self):
        p1, p2 = Parameter(np.ones(1)), Parameter(np.ones(1))
        opt = Adam([{"params": [p1], "lr": 1.0}, {"params": [p2], "lr": 0.1}])
        sched = ExponentialLR(opt, gamma=0.1)
        sched.step()
        sched.step()
        assert np.isclose(opt.param_groups[0]["lr"], 0.1)
        assert np.isclose(opt.param_groups[1]["lr"], 0.01)
