"""CampaignSpec declaration: round-trips, identity, validation."""

import json

import pytest

from repro.campaign import CampaignSpec
from repro.utils.serialization import json_digest


class TestRoundTrip:
    def test_dict_round_trip(self, grid_spec):
        assert CampaignSpec.from_dict(grid_spec.to_dict()) == grid_spec

    def test_json_round_trip(self, grid_spec):
        assert CampaignSpec.from_json(grid_spec.to_json()) == grid_spec

    def test_save_load_round_trip(self, grid_spec, tmp_path):
        path = tmp_path / "campaign.json"
        grid_spec.save(path)
        loaded = CampaignSpec.load(path)
        assert loaded == grid_spec
        assert loaded.campaign_id == grid_spec.campaign_id
        # The file is pretty-printed but decodes to the same payload.
        assert json.loads(path.read_text()) == grid_spec.to_dict()

    def test_from_dict_rejects_unknown_fields(self, grid_spec):
        with pytest.raises(ValueError, match="unknown campaign spec fields"):
            CampaignSpec.from_dict({"name": "x", "kind": grid_spec.kind,
                                    "n_workers": 2})

    def test_from_dict_requires_name_and_kind(self, grid_spec):
        with pytest.raises(ValueError, match="missing 'kind'"):
            CampaignSpec.from_dict({"name": "x"})
        with pytest.raises(ValueError, match="missing 'name'"):
            CampaignSpec.from_dict({"kind": grid_spec.kind})


class TestIdentity:
    def test_campaign_id_is_content_address(self, grid_spec, make_spec):
        assert grid_spec.campaign_id == json_digest(grid_spec.to_dict())
        assert grid_spec.campaign_id == make_spec().campaign_id

    def test_axis_insertion_order_does_not_change_id(self, grid_spec, make_spec):
        reordered = make_spec(axes={"alpha": [1, 2, 3], "beta": ["x", "y"]})
        assert reordered.campaign_id == grid_spec.campaign_id

    def test_content_changes_change_id(self, grid_spec, make_spec):
        assert make_spec(name="other").campaign_id != grid_spec.campaign_id
        assert (make_spec(axes={"beta": ["x"], "alpha": [1, 2, 3]})
                .campaign_id != grid_spec.campaign_id)


class TestValidate:
    def test_valid_spec_returns_self(self, grid_spec):
        assert grid_spec.validate() is grid_spec

    def test_needs_axes(self, make_spec):
        with pytest.raises(ValueError, match="at least one axis"):
            make_spec(axes={}).validate()

    def test_axis_values_must_be_scalars(self, make_spec):
        with pytest.raises(ValueError, match="not a JSON scalar"):
            make_spec(axes={"alpha": [[1, 2]], "beta": ["x"]}).validate()

    def test_axis_values_must_be_unique(self, make_spec):
        with pytest.raises(ValueError, match="repeats a value"):
            make_spec(axes={"alpha": [1, 1], "beta": ["x"]}).validate()

    def test_axes_and_base_must_be_disjoint(self, make_spec):
        with pytest.raises(ValueError, match="both axes and base"):
            make_spec(base={"alpha": 0, "offset": 5}).validate()

    def test_exclude_keys_must_be_axes(self, make_spec):
        with pytest.raises(ValueError, match="not axes"):
            make_spec(exclude=[{"gamma": 1}]).validate()

    def test_empty_exclude_pattern_rejected(self, make_spec):
        with pytest.raises(ValueError, match="drop every cell"):
            make_spec(exclude=[{}]).validate()

    def test_exclude_dropping_all_cells_rejected(self, make_spec):
        with pytest.raises(ValueError, match="drop every cell"):
            make_spec(exclude=[{"beta": "x"}, {"beta": "y"}]).validate()

    def test_unknown_artifacts_rejected(self, make_spec):
        with pytest.raises(ValueError, match="unknown artifacts"):
            make_spec(artifacts=["csv", "pdf"]).validate()

    def test_unknown_kind_rejected(self, make_spec):
        with pytest.raises(KeyError, match="unknown campaign kind"):
            make_spec(kind="no-such-kind").validate()
