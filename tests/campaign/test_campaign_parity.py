"""Byte-identical parity: the campaign-backed shims must reproduce the
pre-redesign loops exactly, and the checked-in example configs must be
the specs the builders produce.

The ``engine="reference"`` paths in ``experiments/extensions.py`` are
the frozen legacy bodies (parity oracles); every study here runs both
engines at a fixed seed and compares the full result payload — floats
by equality, not tolerance.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec
from repro.campaign.studies import (
    fig4_spec,
    nonideality_spec,
    power_spec,
    quantization_spec,
)
from repro.experiments.common import ExperimentScale
from repro.experiments.extensions import (
    run_nonideality_study,
    run_power_comparison,
    run_quantization_study,
)
from repro.experiments.fig5 import alm_scan_point, run_fig5a

REPO_ROOT = Path(__file__).resolve().parents[2]
CAMPAIGNS = REPO_ROOT / "examples" / "campaigns"

FIG4_SCALE = ExperimentScale(
    n_train=32, n_test=24, retrain_epochs=1, batch_size=16,
    model_width=0.25, noise_runs=2, seed=0,
)


class TestStudyParity:
    def test_quantization_parity(self):
        kwargs = dict(k=4, bit_widths=(6, 3), steps=60, seed=0)
        ref = run_quantization_study(engine="reference", **kwargs)
        with pytest.warns(DeprecationWarning, match="quantization_spec"):
            new = run_quantization_study(**kwargs)
        assert dataclasses.asdict(new) == dataclasses.asdict(ref)

    def test_nonideality_parity(self):
        kwargs = dict(k=6, shallow_blocks=2, deep_blocks=5, n_trials=2,
                      seed=0)
        ref = run_nonideality_study(engine="reference", **kwargs)
        with pytest.warns(DeprecationWarning, match="nonideality_spec"):
            new = run_nonideality_study(**kwargs)
        assert dataclasses.asdict(new) == dataclasses.asdict(ref)

    def test_power_parity(self):
        kwargs = dict(k=8, seed=0)
        ref = run_power_comparison(engine="reference", **kwargs)
        with pytest.warns(DeprecationWarning, match="power_spec"):
            new = run_power_comparison(**kwargs)
        assert dataclasses.asdict(new) == dataclasses.asdict(ref)


class TestFig5Parity:
    def test_fig5a_shim_matches_scan_points(self, capsys):
        """The fig5a shim must reproduce direct alm_scan_point calls —
        the exact body of the pre-redesign loop."""
        rho0_values = (1e-7, 1e-6)
        traces = run_fig5a(k=6, n_blocks=3, steps=40,
                           rho0_values=rho0_values, seed=0)
        capsys.readouterr()
        assert list(traces) == list(rho0_values)
        for rho0 in rho0_values:
            ref = alm_scan_point(rho0, k=6, n_blocks=3, steps=40, seed=0)
            assert traces[rho0].perm_error == ref.perm_error
            assert traces[rho0].mean_lambda == ref.mean_lambda


class TestFig4Parity:
    def test_fig4_shim_matches_mesh_noise_curve(self, capsys):
        """run_fig4_part (campaign shim) vs the pre-redesign per-mesh
        loop, at the reproducibility-test scale."""
        from repro.experiments.fig4 import mesh_noise_curve, run_fig4_part

        noise_stds = (0.02, 0.06)
        result = run_fig4_part("a", {}, k=8, scale=FIG4_SCALE,
                               noise_stds=noise_stds)
        capsys.readouterr()
        for mesh_name, mesh in (("MZI", "mzi"), ("FFT", "butterfly")):
            ref = mesh_noise_curve("a", mesh_name, mesh, 8, FIG4_SCALE,
                                   noise_stds)
            assert result.curves[mesh_name] == ref


class TestExampleConfigs:
    """The checked-in configs ARE the builder outputs — same content
    address, so `repro campaign run examples/campaigns/X.json` computes
    the same cells as the legacy entry points."""

    def test_fig4a_noise_small(self):
        spec = fig4_spec("a", k=8, scale=FIG4_SCALE, noise_stds=(0.02, 0.06),
                         name="fig4a-noise-small")
        on_disk = CampaignSpec.load(CAMPAIGNS / "fig4a-noise-small.json")
        assert on_disk.to_dict() == spec.to_dict()
        assert on_disk.campaign_id == spec.campaign_id

    def test_quantization_small(self):
        spec = quantization_spec(k=4, bit_widths=(6, 3), steps=120,
                                 name="quantization-small")
        on_disk = CampaignSpec.load(CAMPAIGNS / "quantization-small.json")
        assert on_disk.to_dict() == spec.to_dict()

    def test_power_comparison(self):
        on_disk = CampaignSpec.load(CAMPAIGNS / "power-comparison.json")
        assert on_disk.to_dict() == power_spec(k=8).to_dict()

    def test_nonideality_study(self):
        spec = nonideality_spec(k=6, n_trials=3)
        on_disk = CampaignSpec.load(CAMPAIGNS / "nonideality-study.json")
        assert on_disk.to_dict() == spec.to_dict()

    def test_all_checked_in_configs_validate(self):
        configs = sorted(CAMPAIGNS.glob("*.json"))
        assert len(configs) >= 4
        for path in configs:
            CampaignSpec.load(path).validate()
