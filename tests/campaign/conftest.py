"""Shared fixtures for the campaign test suites.

A cheap deterministic cell runner is registered at import time (in
the parent process, so fork-started service workers inherit it —
same pattern as ``tests/service/conftest.py``), keeping the matrix /
executor / resume machinery, not the science, on the clock.
"""

import time

import pytest

from repro.campaign import CampaignSpec, CellRunner, register_runner
from repro.utils.rng import stable_seed

GRID_KIND = "test-grid"


def _grid_run(params):
    if params.get("sleep"):
        time.sleep(float(params["sleep"]))
    value = stable_seed(GRID_KIND, params["alpha"], params["beta"]) % 997
    return {"value": int(value) + int(params.get("offset", 0))}


def _grid_rows(coords, result):
    return [{"alpha": coords["alpha"], "beta": coords["beta"],
             "value": result["value"]}]


def _grid_plot(rows):
    return "\n".join(f"{r['alpha']}/{r['beta']}: {r['value']}" for r in rows)


register_runner(CellRunner(
    kind=GRID_KIND,
    run=_grid_run,
    columns=("alpha", "beta", "value"),
    rows=_grid_rows,
    plot=_grid_plot,
    description="deterministic seeded grid (tests)",
))


def _make_grid_spec(name="unit-grid", sleep=0.0, exclude=(), **overrides):
    fields = dict(
        name=name,
        kind=GRID_KIND,
        axes={"beta": ["x", "y"], "alpha": [1, 2, 3]},
        base={"offset": 5, "sleep": sleep},
        exclude=list(exclude),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


@pytest.fixture()
def make_spec():
    """Factory for the test-grid campaign (override any spec field)."""
    return _make_grid_spec


@pytest.fixture()
def grid_spec():
    return _make_grid_spec()
