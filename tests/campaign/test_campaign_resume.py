"""Crash injection for service-sharded campaigns: SIGKILL the whole
pool mid-matrix, restart, and every aggregate artifact must be
byte-identical to an uninterrupted inline run."""

import os
import signal
import time

from repro.campaign import (
    campaign_job_params,
    run_campaign,
    run_from_job_result,
    write_artifacts,
)
from repro.service import DesignService, JobSpec


def _wait_for_progress(svc, job_id, min_done, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if svc.status(job_id)["shards"].get("done", 0) >= min_done:
            return
        time.sleep(0.02)
    raise AssertionError(f"no progress: {svc.status(job_id)}")


def _wait_done(svc, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if svc.status(job_id)["status"] in ("done", "failed"):
            return
        time.sleep(0.05)
    raise AssertionError(f"job stuck: {svc.status(job_id)}")


def _artifact_bytes(run, out_dir):
    return {p.name: p.read_bytes() for p in write_artifacts(run, out_dir)}


class TestSigkillResume:
    def test_killed_pool_resumes_byte_identical(self, make_spec, tmp_path):
        spec = make_spec(sleep=0.15)
        expected = _artifact_bytes(run_campaign(spec), tmp_path / "ref")

        svc = DesignService(tmp_path / "crashy")
        job_id = svc.submit("campaign", campaign_job_params(spec))
        pool = svc.pool(2, lease_seconds=1.0, poll_seconds=0.02).start()
        try:
            _wait_for_progress(svc, job_id, min_done=1)
            for pid in pool.pids():
                os.kill(pid, signal.SIGKILL)
        finally:
            pool.terminate()
        status = svc.status(job_id)
        assert status["status"] == "running"
        assert status["shards"].get("done", 0) < 6

        # A brand-new pool on the same root resumes from the queue.
        pool2 = svc.pool(2, lease_seconds=1.0, poll_seconds=0.02).start()
        try:
            _wait_done(svc, job_id)
        finally:
            pool2.terminate()
        assert svc.status(job_id)["status"] == "done"
        resumed = run_from_job_result(spec, svc.result(job_id))
        svc.close()
        assert _artifact_bytes(resumed, tmp_path / "resumed") == expected

    def test_job_id_matches_run_campaign_route(self, make_spec, tmp_path):
        # The executor and a hand-submitted job agree on the content
        # address, so `repro campaign status` can find either.
        spec = make_spec()
        run_campaign(spec, root=tmp_path / "svc")
        svc = DesignService(tmp_path / "svc")
        job_id = JobSpec(kind="campaign",
                         params=campaign_job_params(spec)).job_id
        assert svc.status(job_id)["status"] == "done"
        svc.close()
