"""Execution and aggregation: inline loop, service sharding, artifact
byte-determinism across worker counts."""

import pytest

from repro.campaign import (
    aggregate,
    campaign_job_params,
    expand,
    get_runner,
    report_csv,
    report_markdown,
    report_plot,
    run_campaign,
    run_from_job_result,
    write_artifacts,
)
from repro.service import DesignService, JobSpec


def _artifact_bytes(run, out_dir):
    return {p.name: p.read_bytes() for p in write_artifacts(run, out_dir)}


class TestInline:
    def test_results_in_cell_order(self, grid_spec):
        run = run_campaign(grid_spec)
        runner = get_runner(grid_spec.kind)
        assert run.cells == expand(grid_spec)
        assert run.results == [runner.run(c.params) for c in run.cells]
        # result_for resolves by exact coordinates.
        assert run.result_for(alpha=2, beta="y") == run.results[3]
        with pytest.raises(KeyError, match="no cell with coords"):
            run.result_for(alpha=9, beta="x")

    def test_run_validates_spec(self, make_spec):
        with pytest.raises(ValueError, match="at least one axis"):
            run_campaign(make_spec(axes={}))

    def test_base_params_feed_the_runner(self, make_spec):
        plain = run_campaign(make_spec())
        shifted = run_campaign(make_spec(base={"offset": 6, "sleep": 0.0}))
        assert [r["value"] for r in shifted.results] == [
            r["value"] + 1 for r in plain.results
        ]


class TestAggregate:
    def test_report_table_in_cell_order(self, grid_spec):
        run = run_campaign(grid_spec)
        report = aggregate(run)
        assert report.columns == ["alpha", "beta", "value"]
        assert [r["alpha"] for r in report.rows] == [1, 1, 2, 2, 3, 3]
        csv = report_csv(report)
        assert csv.splitlines()[0] == "alpha,beta,value"
        assert len(csv.splitlines()) == 7
        md = report_markdown(report)
        assert md.splitlines()[0] == "### campaign unit-grid (test-grid)"
        assert "| alpha | beta | value |" in md
        assert report_plot(report).count("\n") == 5

    def test_artifact_selection(self, make_spec, tmp_path):
        run = run_campaign(make_spec(artifacts=["csv"]))
        names = {p.name for p in write_artifacts(run, tmp_path / "csv-only")}
        assert names == {"campaign.json", "result.json", "cells.csv"}
        run = run_campaign(make_spec())
        names = {p.name for p in write_artifacts(run, tmp_path / "all")}
        assert names == {"campaign.json", "result.json", "cells.csv",
                         "report.md", "plot.txt"}


class TestServiceSharded:
    def test_sharded_matches_inline_byte_for_byte(self, grid_spec, tmp_path):
        inline = run_campaign(grid_spec)
        sharded = run_campaign(grid_spec, n_workers=2,
                               root=tmp_path / "svc")
        assert sharded.to_dict() == inline.to_dict()
        assert (_artifact_bytes(sharded, tmp_path / "a")
                == _artifact_bytes(inline, tmp_path / "b"))

    def test_resubmission_is_idempotent(self, grid_spec, tmp_path):
        root = tmp_path / "svc"
        first = run_campaign(grid_spec, root=root)
        # The same spec maps to the same content-addressed job: the
        # second run reuses the finished result instead of recomputing.
        svc = DesignService(root)
        job_id = JobSpec(kind="campaign",
                         params=campaign_job_params(grid_spec)).job_id
        assert svc.status(job_id)["status"] == "done"
        again = run_from_job_result(grid_spec, svc.result(job_id))
        svc.close()
        assert again.to_dict() == first.to_dict()

    def test_result_from_wrong_spec_is_rejected(self, grid_spec, make_spec,
                                                tmp_path):
        root = tmp_path / "svc"
        run_campaign(grid_spec, root=root)
        svc = DesignService(root)
        job_id = JobSpec(kind="campaign",
                         params=campaign_job_params(grid_spec)).job_id
        result = svc.result(job_id)
        svc.close()
        with pytest.raises(ValueError, match="does not belong"):
            run_from_job_result(make_spec(name="other"), result)
