"""Deterministic matrix expansion: ordering, excludes, id stability."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.campaign import expand

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestOrdering:
    def test_sorted_axes_last_axis_fastest(self, grid_spec):
        cells = expand(grid_spec)
        # Axis names sort to (alpha, beta) regardless of declaration
        # order; beta (last-sorted) iterates fastest, values keep
        # their declared order.
        assert [c.coords for c in cells] == [
            {"alpha": 1, "beta": "x"}, {"alpha": 1, "beta": "y"},
            {"alpha": 2, "beta": "x"}, {"alpha": 2, "beta": "y"},
            {"alpha": 3, "beta": "x"}, {"alpha": 3, "beta": "y"},
        ]
        assert [c.index for c in cells] == list(range(6))

    def test_declared_value_order_is_preserved(self, make_spec):
        spec = make_spec(axes={"beta": ["y", "x"], "alpha": [3, 1, 2]})
        cells = expand(spec)
        assert [c.coords["alpha"] for c in cells] == [3, 3, 1, 1, 2, 2]
        assert [c.coords["beta"] for c in cells][:2] == ["y", "x"]

    def test_params_merge_base_and_coords(self, grid_spec):
        cell = expand(grid_spec)[0]
        assert cell.params == {"offset": 5, "sleep": 0.0,
                               "alpha": 1, "beta": "x"}


class TestExcludes:
    def test_exclude_drops_matching_cells_and_renumbers(self, make_spec):
        spec = make_spec(exclude=[{"alpha": 2, "beta": "y"}, {"alpha": 3}])
        cells = expand(spec)
        assert [c.coords for c in cells] == [
            {"alpha": 1, "beta": "x"}, {"alpha": 1, "beta": "y"},
            {"alpha": 2, "beta": "x"},
        ]
        assert [c.index for c in cells] == [0, 1, 2]

    def test_excluded_spec_has_distinct_cell_ids(self, grid_spec, make_spec):
        # cell_id hashes (campaign_id, params): excluding cells
        # changes the campaign id, so the surviving cells get fresh
        # ids — two different campaigns never collide.
        base_ids = {c.cell_id for c in expand(grid_spec)}
        excl_ids = {c.cell_id
                    for c in expand(make_spec(exclude=[{"alpha": 3}]))}
        assert base_ids.isdisjoint(excl_ids)


class TestIdStability:
    def test_expansion_is_pure(self, grid_spec, make_spec):
        a = expand(grid_spec)
        b = expand(make_spec())
        assert a == b
        assert len({c.cell_id for c in a}) == len(a)

    def test_cell_ids_stable_across_processes_and_hashseed(self, grid_spec):
        """Cell ids and order must not depend on PYTHONHASHSEED."""
        payload = json.dumps(grid_spec.to_dict())
        script = (
            "import json, sys\n"
            "from repro.campaign import CampaignSpec, expand\n"
            "spec = CampaignSpec.from_json(sys.argv[1])\n"
            "print(json.dumps([c.cell_id for c in expand(spec)]))\n"
        )
        ids = []
        for hashseed in ("0", "4242"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            env["PYTHONHASHSEED"] = hashseed
            proc = subprocess.run(
                [sys.executable, "-c", script, payload],
                capture_output=True, text=True, env=env,
                cwd=REPO_ROOT, timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            ids.append(json.loads(proc.stdout))
        assert ids[0] == ids[1] == [c.cell_id for c in expand(grid_spec)]
