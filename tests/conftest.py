"""Shared fixtures for the ADEPT reproduction test suite."""

import numpy as np
import pytest

from repro.data import train_test_split
from repro.photonics import AMF
from repro.utils.rng import set_seed


@pytest.fixture(autouse=True)
def _reset_seed():
    """Make every test deterministic regardless of execution order."""
    set_seed(1234)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def tiny_mnist():
    """A small MNIST-like train/test split shared across tests."""
    return train_test_split("mnist", 96, 48, seed=7)


@pytest.fixture
def amf():
    return AMF
