"""Graph construction control (no_grad, straight-through, custom_grad)."""

import numpy as np

from repro.autograd import (
    Tensor,
    custom_grad,
    is_grad_enabled,
    no_grad,
    straight_through,
)


class TestNoGrad:
    def test_no_graph_inside_context(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            b = a * 2
        assert b.is_leaf
        assert b._backward is None

    def test_flag_restored_after_exception(self):
        try:
            with no_grad():
                assert not is_grad_enabled()
                raise ValueError
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_constants_never_build_graph(self):
        a = Tensor(np.ones(3))
        b = a * 2 + 1
        assert b.is_leaf


class TestStraightThrough:
    def test_forward_replaced_backward_passthrough(self):
        a = Tensor(np.array([0.3, -0.2]), requires_grad=True)
        hard = np.sign(a.data)
        out = straight_through(hard, a)
        assert np.allclose(out.data, [1.0, -1.0])
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])

    def test_grad_scale(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = straight_through(np.array([5.0]), a, grad_scale=0.25)
        out.sum().backward()
        assert np.allclose(a.grad, [0.25])


class TestCustomGrad:
    def test_custom_backward_rule(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = custom_grad(a.data * 10, (a,), lambda g: (g * 7.0,))
        (out * 2).sum().backward()
        assert np.allclose(a.grad, [14.0])
