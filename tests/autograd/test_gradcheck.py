"""Finite-difference verification of every backward rule."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    backend_scope,
    concat,
    gradcheck,
    log_softmax,
    matmul_chain,
    pad,
    phase_column_cascade,
    softmax,
    stack,
    where,
)


def t(arr, rg=True):
    return Tensor(np.asarray(arr, dtype=float), requires_grad=rg)


class TestRealGrads:
    def test_add_broadcast(self, rng):
        a = t(rng.normal(size=(2, 3)))
        b = t(rng.normal(size=(3,)))
        assert gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_mul(self, rng):
        a = t(rng.normal(size=(2, 3)))
        b = t(rng.normal(size=(2, 3)))
        assert gradcheck(lambda a, b: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = t(rng.normal(size=(4,)))
        b = t(rng.normal(size=(4,)) + 3.0)
        assert gradcheck(lambda a, b: (a / b).sum(), [a, b])

    def test_matmul(self, rng):
        a = t(rng.normal(size=(3, 4)))
        b = t(rng.normal(size=(4, 2)))
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_batched(self, rng):
        a = t(rng.normal(size=(2, 3, 4)))
        b = t(rng.normal(size=(2, 4, 2)))
        assert gradcheck(lambda a, b: ((a @ b) ** 2).sum(), [a, b])

    def test_matmul_vector_cases(self, rng):
        a = t(rng.normal(size=(4,)))
        b = t(rng.normal(size=(4, 3)))
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])
        c = t(rng.normal(size=(3, 4)))
        d = t(rng.normal(size=(4,)))
        assert gradcheck(lambda c, d: (c @ d).sum(), [c, d])

    def test_exp_log_sqrt(self, rng):
        x = t(np.abs(rng.normal(size=5)) + 0.5)
        assert gradcheck(lambda x: x.exp().sum(), [x])
        assert gradcheck(lambda x: x.log().sum(), [x])
        assert gradcheck(lambda x: x.sqrt().sum(), [x])

    def test_pow(self, rng):
        x = t(np.abs(rng.normal(size=5)) + 0.5)
        assert gradcheck(lambda x: (x ** 3).sum(), [x])

    def test_relu_away_from_kink(self, rng):
        x = t(rng.normal(size=10) + 5.0)
        assert gradcheck(lambda x: x.relu().sum(), [x])

    def test_sigmoid_tanh(self, rng):
        x = t(rng.normal(size=6))
        assert gradcheck(lambda x: x.sigmoid().sum(), [x])
        assert gradcheck(lambda x: x.tanh().sum(), [x])

    def test_reductions(self, rng):
        x = t(rng.normal(size=(3, 4)))
        assert gradcheck(lambda x: x.sum(axis=0).sum(), [x])
        assert gradcheck(lambda x: x.mean(axis=1).sum(), [x])
        assert gradcheck(lambda x: (x.sum(axis=(0, 1), keepdims=True) ** 2).sum(), [x])

    def test_max_unique(self, rng):
        x = t(np.arange(12.0).reshape(3, 4) + rng.normal(size=(3, 4)) * 0.01)
        assert gradcheck(lambda x: x.max(axis=1).sum(), [x])

    def test_shape_ops(self, rng):
        x = t(rng.normal(size=(2, 6)))
        assert gradcheck(lambda x: (x.reshape((3, 4)) ** 2).sum(), [x])
        assert gradcheck(lambda x: (x.T ** 2).sum(), [x])

    def test_getitem(self, rng):
        x = t(rng.normal(size=(4, 5)))
        assert gradcheck(lambda x: (x[1:3, ::2] ** 2).sum(), [x])
        idx = (np.array([0, 2]), np.array([1, 3]))
        assert gradcheck(lambda x: (x[idx] ** 2).sum(), [x])

    def test_concat_stack_pad(self, rng):
        a = t(rng.normal(size=(2, 3)))
        b = t(rng.normal(size=(1, 3)))
        assert gradcheck(lambda a, b: (concat([a, b], axis=0) ** 2).sum(), [a, b])
        assert gradcheck(lambda a: (stack([a, a]) ** 2).sum(), [a])
        assert gradcheck(lambda a: (pad(a, ((1, 0), (0, 1))) ** 2).sum(), [a])

    def test_where_clip(self, rng):
        a = t(rng.normal(size=6))
        b = t(rng.normal(size=6))
        cond = np.array([1, 0, 1, 1, 0, 0], dtype=bool)
        assert gradcheck(lambda a, b: (where(cond, a, b) ** 2).sum(), [a, b])
        x = t(rng.normal(size=6) * 0.3)
        assert gradcheck(lambda x: x.clip(-0.5, 0.5).sum(), [x])

    def test_softmax_logsoftmax(self, rng):
        x = t(rng.normal(size=(3, 5)))
        assert gradcheck(lambda x: (softmax(x, axis=-1) ** 2).sum(), [x])
        assert gradcheck(lambda x: (log_softmax(x, axis=-1) * 0.1).sum(), [x])


class TestComplexGrads:
    """Complex leaves: gradcheck perturbs real/imag independently."""

    def zt(self, rng, shape):
        return Tensor(
            rng.normal(size=shape) + 1j * rng.normal(size=shape), requires_grad=True
        )

    def test_complex_mul_abs2(self, rng):
        z = self.zt(rng, (3,))
        w = self.zt(rng, (3,))
        assert gradcheck(lambda z, w: ((z * w) * (z * w).conj()).real().sum(), [z, w])

    def test_complex_matmul(self, rng):
        a = self.zt(rng, (2, 3))
        b = self.zt(rng, (3, 2))
        assert gradcheck(lambda a, b: ((a @ b).abs() ** 2).sum(), [a, b])

    def test_complex_exp(self, rng):
        z = self.zt(rng, (4,)) * 0.5
        assert gradcheck(lambda z: (z.exp().abs() ** 2).sum(), [z])

    def test_real_imag_conj(self, rng):
        z = self.zt(rng, (5,))
        assert gradcheck(lambda z: z.real().sum(), [z])
        assert gradcheck(lambda z: z.imag().sum(), [z])
        assert gradcheck(lambda z: (z.conj() * z).real().sum(), [z])

    def test_abs_complex(self, rng):
        z = self.zt(rng, (5,)) + 2.0  # keep away from 0
        assert gradcheck(lambda z: z.abs().sum(), [z])

    def test_phase_shifter_chain(self, rng):
        """Real phases -> complex field -> real loss: the exact pattern
        every photonic layer uses."""
        phi = Tensor(rng.uniform(0, 2 * np.pi, 4), requires_grad=True)
        x = Tensor(rng.normal(size=(4,)) + 1j * rng.normal(size=(4,)), requires_grad=True)

        def f(phi, x):
            field = (phi * Tensor(np.array(-1j))).exp() * x
            return (field.real() ** 2).sum() + field.imag().sum()

        assert gradcheck(f, [phi, x])

    def test_mixed_real_complex_matmul(self, rng):
        a = Tensor(rng.normal(size=(3, 3)), requires_grad=True)  # real leaf
        b = self.zt(rng, (3, 3))
        assert gradcheck(lambda a, b: ((a.astype(complex) @ b).abs() ** 2).sum(), [a, b])


class TestFusedKernelGradcheck:
    """Finite-difference checks of the fused kernels' custom backwards,
    under every registered execution backend (forward-only backends
    must demote to an identical grad-capable path)."""

    def cascade_inputs(self, rng, n=2, n_blocks=3, k=4, per_mesh=False):
        cshape = (n, n_blocks, k, k) if per_mesh else (n_blocks, k, k)
        consts = Tensor(
            rng.normal(size=cshape) + 1j * rng.normal(size=cshape),
            requires_grad=True,
        )
        phases = Tensor(
            rng.uniform(0, 2 * np.pi, size=(n, n_blocks, k)), requires_grad=True
        )
        return consts, phases

    @staticmethod
    def cascade_loss(backend=None, gates=None):
        def f(consts, phases):
            ps = (phases * Tensor(np.array(-1j))).exp()
            u = phase_column_cascade(consts, ps, gates, backend=backend)
            return (u * u.conj()).real().sum()

        return f

    def test_cascade_shared_consts(self, rng):
        assert gradcheck(self.cascade_loss(), list(self.cascade_inputs(rng)))

    def test_cascade_per_mesh_consts(self, rng):
        inputs = self.cascade_inputs(rng, per_mesh=True)
        assert gradcheck(self.cascade_loss(), list(inputs))

    def test_cascade_with_exec_prob(self, rng):
        consts, phases = self.cascade_inputs(rng)
        gates = Tensor(rng.uniform(0.2, 0.8, size=(3,)), requires_grad=True)

        def f(consts, phases, gates):
            ps = (phases * Tensor(np.array(-1j))).exp()
            u = phase_column_cascade(consts, ps, gates)
            return (u * u.conj()).real().sum()

        assert gradcheck(f, [consts, phases, gates])

    def test_matmul_chain(self, rng):
        mats = Tensor(
            rng.normal(size=(2, 3, 4, 4)) + 1j * rng.normal(size=(2, 3, 4, 4)),
            requires_grad=True,
        )

        def f(mats):
            u = matmul_chain(mats)
            return (u * u.conj()).real().sum()

        assert gradcheck(f, [mats])

    def test_cascade_under_c64_backend_demotes(self, rng):
        """Explicit c64 request while recording: the grad fallback must
        pass the same finite-difference check as the native path."""
        inputs = self.cascade_inputs(rng)
        assert gradcheck(self.cascade_loss(backend="numpy-c64"), list(inputs))

    def test_cascade_under_c64_default_scope(self, rng):
        inputs = self.cascade_inputs(rng)
        with backend_scope("numpy-c64"):
            assert gradcheck(self.cascade_loss(), list(inputs))

    def test_factory_build_gradcheck(self, rng):
        """End-to-end: a tiny mesh factory's build() is differentiable
        in its phase parameters."""
        from repro.ptc import ButterflyFactory

        f = ButterflyFactory(4, 1, rng=np.random.default_rng(11))

        def loss(phases):
            u = f.build()
            return (u * u.conj()).real().sum()

        assert gradcheck(loss, [f.phases])


class TestGradAccumulation:
    def test_reused_tensor_accumulates(self, rng):
        x = t(rng.normal(size=3))
        y = (x * x).sum() + (x * 2).sum()
        y.backward()
        assert np.allclose(x.grad, 2 * x.data + 2)

    def test_grad_scalar_zero_dim_shape(self):
        """Regression: 0-d complex grads must stay 0-d through real()."""
        m = Tensor(np.array(0.5), requires_grad=True)
        blk = Tensor(np.ones((2, 3, 3), dtype=complex))
        out = (m * blk).real().sum()
        out.backward()
        assert np.shape(m.grad) == ()

    def test_descent_reduces_loss(self, rng):
        x = Tensor(rng.normal(size=8), requires_grad=True)
        losses = []
        for _ in range(50):
            loss = ((x - 3.0) ** 2).sum()
            x.grad = None
            loss.backward()
            x.data -= 0.1 * x.grad
            losses.append(loss.item())
        assert losses[-1] < 1e-3 < losses[0]
