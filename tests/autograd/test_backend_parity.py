"""Cross-backend parity: the precision contract of the execution lanes.

Property-based (hypothesis) over randomized topologies, K in {4, 8, 16},
seeds, and train/eval modes:

* reference (per-column) builds vs fused complex128 builds agree to
  1e-9 on forwards and leaf gradients;
* the complex64 fast lane agrees with complex128 to 1e-4 *relative* on
  forwards, demotes to bit-exact complex128 whenever gradients are
  recorded, and reproduces final ONN accuracies.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Tensor,
    backend_scope,
    forward_backward_parity,
    matmul_chain,
    no_grad,
    phase_column_cascade,
)
from repro.core.topology import random_topology
from repro.ptc import FixedTopologyFactory
from repro.utils.rng import set_seed

REF_TOL = 1e-9  # reference vs fused, both complex128
C64_TOL = 1e-4  # complex64 lane vs complex128, relative

MESH_K = st.sampled_from([4, 8, 16])
N_BLOCKS = st.integers(1, 6)
SEEDS = st.integers(0, 2**31 - 1)


def make_factory(k, n_blocks, seed, exec_backend=None):
    """A FixedTopologyFactory over a random ADEPT topology."""
    topo = random_topology(k, n_blocks, n_blocks, np.random.default_rng(seed))
    blocks = [(b.perm, b.coupler_mask, b.offset) for b in topo.blocks_u]
    return FixedTopologyFactory(
        k, 2, blocks, rng=np.random.default_rng(seed + 1), exec_backend=exec_backend
    )


def rel_err(a, b):
    denom = max(np.abs(np.asarray(b, dtype=np.complex128)).max(), 1e-30)
    return np.abs(np.asarray(a, dtype=np.complex128) - np.asarray(b)).max() / denom


class TestReferenceVsFused:
    """Fused complex128 path == per-column reference path, to 1e-9."""

    @settings(max_examples=15, deadline=None)
    @given(MESH_K, N_BLOCKS, SEEDS)
    def test_train_mode_forward_and_grads(self, k, n_blocks, seed):
        f = make_factory(k, n_blocks, seed, exec_backend="numpy")

        def fused(_):
            f.backend = "fast"
            return f.build()

        def reference(_):
            f.backend = "reference"
            return f.build()

        assert forward_backward_parity(
            fused, reference, [f.phases], ftol=REF_TOL, gtol=REF_TOL
        )

    @settings(max_examples=15, deadline=None)
    @given(MESH_K, N_BLOCKS, SEEDS)
    def test_eval_mode_forward(self, k, n_blocks, seed):
        f = make_factory(k, n_blocks, seed, exec_backend="numpy")
        with no_grad():
            f.backend = "fast"
            fused = f.build().data
            f.backend = "reference"
            ref = f.build().data
        assert np.abs(fused - ref).max() <= REF_TOL


class TestC64Lane:
    """complex64 forwards within 1e-4 relative; exact demotion under grad."""

    @settings(max_examples=15, deadline=None)
    @given(MESH_K, N_BLOCKS, SEEDS)
    def test_eval_mode_forward(self, k, n_blocks, seed):
        f = make_factory(k, n_blocks, seed)
        with no_grad():
            u128 = f.build(exec_backend="numpy").data
            u64 = f.build(exec_backend="numpy-c64").data
        assert u64.dtype == np.complex64
        assert rel_err(u64, u128) <= C64_TOL

    @settings(max_examples=10, deadline=None)
    @given(MESH_K, N_BLOCKS, SEEDS)
    def test_train_mode_demotes_bit_exact(self, k, n_blocks, seed):
        """Under grad recording the c64 lane must not change training
        numerics at all — it demotes to the complex128 graph path."""
        f = make_factory(k, n_blocks, seed)
        u128 = f.build(exec_backend="numpy")
        (u128 * u128.conj()).real().sum().backward()
        g128 = f.phases.grad.copy()
        f.phases.grad = None
        u64 = f.build(exec_backend="numpy-c64")
        (u64 * u64.conj()).real().sum().backward()
        assert u64.data.dtype == np.complex128
        assert np.array_equal(u64.data, u128.data)
        assert np.array_equal(f.phases.grad, g128)

    @settings(max_examples=15, deadline=None)
    @given(MESH_K, st.integers(1, 8), SEEDS, st.booleans())
    def test_cascade_kernel_parity(self, k, n_blocks, seed, gated):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4))
        consts = Tensor(
            rng.standard_normal((n_blocks, k, k))
            + 1j * rng.standard_normal((n_blocks, k, k))
        )
        ps = Tensor(np.exp(-1j * rng.uniform(0, 2 * np.pi, size=(n, n_blocks, k))))
        gates = Tensor(rng.uniform(0, 1, size=(n_blocks,))) if gated else None
        with no_grad():
            out128 = phase_column_cascade(consts, ps, gates, backend="numpy").data
            out64 = phase_column_cascade(consts, ps, gates, backend="numpy-c64").data
        assert out64.dtype == np.complex64
        assert rel_err(out64, out128) <= C64_TOL

    @settings(max_examples=15, deadline=None)
    @given(MESH_K, st.integers(1, 8), SEEDS)
    def test_matmul_chain_kernel_parity(self, k, n_blocks, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4))
        mats = Tensor(
            rng.standard_normal((n, n_blocks, k, k))
            + 1j * rng.standard_normal((n, n_blocks, k, k))
        )
        with no_grad():
            out128 = matmul_chain(mats, backend="numpy").data
            out64 = matmul_chain(mats, backend="numpy-c64").data
        assert out64.dtype == np.complex64
        assert rel_err(out64, out128) <= C64_TOL


class TestPopulationParity:
    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from([4, 8]), st.integers(2, 4), SEEDS)
    def test_population_transfer_across_backends(self, k, n_cand, seed):
        from repro.ptc.population import TopologyPopulation

        rng = np.random.default_rng(seed)
        topos = [
            random_topology(k, int(rng.integers(1, 5)), 1, rng) for _ in range(n_cand)
        ]
        pop = TopologyPopulation(topos, side="u")
        phases = pop.make_phases(rng=np.random.default_rng(seed + 1))
        with no_grad():
            u128 = pop.transfer(phases, exec_backend="numpy").data
            u64 = pop.transfer(phases, exec_backend="numpy-c64").data
        assert u64.dtype == np.complex64
        assert rel_err(u64, u128) <= C64_TOL


@pytest.fixture(scope="module")
def trained_model(tiny_mnist):
    """One small PTC-ONN trained deterministically for accuracy parity."""
    from repro import nn
    from repro.onn import TrainConfig, train
    from repro.onn.layers import PTCLinear

    set_seed(2022)
    tr, te = tiny_mnist
    model = nn.Sequential(nn.Flatten(), PTCLinear(784, 10, k=8, mesh="butterfly"))
    train(model, tr, config=TrainConfig(epochs=2, batch_size=32, lr=5e-3))
    return model, te


class TestFinalAccuracyParity:
    def test_eval_accuracy_across_backends(self, trained_model):
        from repro.onn import evaluate

        model, te = trained_model
        acc128 = evaluate(model, te, exec_backend="numpy")
        acc_default = evaluate(model, te)
        acc64 = evaluate(model, te, exec_backend="numpy-c64")
        assert acc_default == acc128  # default lane is full precision
        assert abs(acc64 - acc128) <= C64_TOL

    def test_default_backend_scope_accuracy(self, trained_model):
        from repro import set_default_backend
        from repro.onn import evaluate

        model, te = trained_model
        acc128 = evaluate(model, te)
        with set_default_backend("numpy-c64"):
            acc64 = evaluate(model, te)
        assert abs(acc64 - acc128) <= C64_TOL

    def test_training_unaffected_by_c64_default(self, tiny_mnist):
        """Two identical trainings, one under a c64 default: losses and
        final accuracy must match exactly (the grad path demotes)."""
        from repro import nn, set_default_backend
        from repro.onn import TrainConfig, train
        from repro.onn.layers import PTCLinear

        tr, _ = tiny_mnist
        cfg = TrainConfig(epochs=1, batch_size=48, lr=5e-3)

        def run():
            set_seed(777)
            model = nn.Sequential(
                nn.Flatten(), PTCLinear(784, 10, k=8, mesh="butterfly")
            )
            return train(model, tr, config=cfg).train_losses

        base = run()
        with set_default_backend("numpy-c64"):
            lane = run()
        assert base == lane
