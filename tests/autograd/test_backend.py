"""Execution-backend registry, selection, and dispatch semantics."""

import subprocess
import sys

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    available_backends,
    backend_scope,
    default_backend,
    get_backend,
    grad_backend,
    matmul_chain,
    no_grad,
    phase_column_cascade,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.autograd.backend import ExecutionBackend, NumpyBackend


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "numpy-c64" in names

    def test_get_backend_properties(self):
        nb = get_backend("numpy")
        assert nb.complex_dtype == np.complex128
        assert not nb.forward_only
        c64 = get_backend("numpy-c64")
        assert c64.complex_dtype == np.complex64
        assert c64.forward_only
        assert c64.grad_fallback == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="numpy"):
            get_backend("no-such-backend")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_backend(NumpyBackend())

    def test_register_and_overwrite(self):
        class Custom(NumpyBackend):
            name = "test-custom"

        register_backend(Custom(), overwrite=True)
        try:
            assert get_backend("test-custom").name == "test-custom"
            # overwrite=True allows re-registration
            register_backend(Custom(), overwrite=True)
        finally:
            from repro.autograd.backend import _REGISTRY

            _REGISTRY.pop("test-custom", None)

    def test_resolve_accepts_instances_and_names(self):
        nb = get_backend("numpy")
        assert resolve_backend(nb) is nb
        assert resolve_backend("numpy") is nb
        assert resolve_backend(None) is default_backend()

    def test_cache_tokens_distinct(self):
        tokens = {get_backend(n).cache_token() for n in available_backends()}
        assert len(tokens) == len(available_backends())
        for name in available_backends():
            tok = get_backend(name).cache_token()
            assert isinstance(tok, bytes)
            assert name.encode() in tok


class TestDefaultSelection:
    def test_set_default_switches_and_guard_restores(self):
        prev = default_backend()
        guard = set_default_backend("numpy-c64")
        try:
            assert default_backend().name == "numpy-c64"
        finally:
            guard.restore()
        assert default_backend() is prev
        # restore() is idempotent
        guard.restore()
        assert default_backend() is prev

    def test_set_default_as_context_manager(self):
        prev = default_backend()
        with set_default_backend("numpy-c64"):
            assert default_backend().name == "numpy-c64"
        assert default_backend() is prev

    def test_context_manager_restores_on_exception(self):
        prev = default_backend()
        with pytest.raises(RuntimeError):
            with set_default_backend("numpy-c64"):
                raise RuntimeError("boom")
        assert default_backend() is prev

    def test_nested_guards_restore_in_order(self):
        prev = default_backend()
        with set_default_backend("numpy-c64"):
            with set_default_backend("numpy"):
                assert default_backend().name == "numpy"
            assert default_backend().name == "numpy-c64"
        assert default_backend() is prev

    def test_backend_scope_none_is_noop(self):
        prev = default_backend()
        with backend_scope(None):
            assert default_backend() is prev
        assert default_backend() is prev

    def test_backend_scope_selects_and_restores(self):
        prev = default_backend()
        with backend_scope("numpy-c64"):
            assert default_backend().name == "numpy-c64"
        assert default_backend() is prev

    def test_env_var_selects_default(self):
        import os
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        env["REPRO_EXEC_BACKEND"] = "numpy-c64"
        code = (
            "from repro.autograd import default_backend; "
            "print(default_backend().name)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == "numpy-c64"

    def test_grad_backend_demotes_forward_only(self):
        assert grad_backend("numpy-c64").name == "numpy"
        assert grad_backend("numpy").name == "numpy"


class TestDispatch:
    def _inputs(self, rng, requires_grad=False):
        consts = Tensor(
            rng.standard_normal((3, 4, 4)) + 1j * rng.standard_normal((3, 4, 4)),
            requires_grad=requires_grad,
        )
        ps = Tensor(
            np.exp(-1j * rng.uniform(0, 2 * np.pi, size=(2, 3, 4))),
            requires_grad=False,
        )
        return consts, ps

    def test_forward_only_dispatch_returns_c64_leaf(self, rng):
        consts, ps = self._inputs(rng)
        with no_grad():
            out = phase_column_cascade(consts, ps, backend="numpy-c64")
        assert out.data.dtype == np.complex64
        assert not out._parents  # no graph was recorded

    def test_forward_only_honored_for_non_grad_tensors(self, rng):
        # Grad mode is ON, but no input records gradients — the fast
        # lane still applies.
        consts, ps = self._inputs(rng, requires_grad=False)
        out = phase_column_cascade(consts, ps, backend="numpy-c64")
        assert out.data.dtype == np.complex64

    def test_forward_only_demotes_under_recording(self, rng):
        consts, ps = self._inputs(rng, requires_grad=True)
        out = phase_column_cascade(consts, ps, backend="numpy-c64")
        # Recording: the graph path (complex128) must run instead.
        assert out.data.dtype == np.complex128
        (out * out.conj()).real().sum().backward()
        assert consts.grad is not None

    def test_matmul_chain_dispatch(self, rng):
        mats = Tensor(
            rng.standard_normal((2, 5, 4, 4)) + 1j * rng.standard_normal((2, 5, 4, 4))
        )
        with no_grad():
            fast = matmul_chain(mats, backend="numpy-c64")
        ref = matmul_chain(mats, backend="numpy")
        assert fast.data.dtype == np.complex64
        rel = np.abs(fast.data.astype(np.complex128) - ref.data).max()
        rel /= np.abs(ref.data).max()
        assert rel < 1e-4

    def test_numpy_backend_kernels_bit_exact_with_free_functions(self, rng):
        from repro.autograd import matmul_chain_forward, phase_column_cascade_forward

        consts, ps = self._inputs(rng)
        nb = get_backend("numpy")
        a = nb.phase_column_cascade_forward(consts.data, ps.data)
        b = phase_column_cascade_forward(consts.data, ps.data, backend="numpy")
        assert np.array_equal(a, b)
        mats = rng.standard_normal((2, 3, 4, 4)) + 1j * rng.standard_normal((2, 3, 4, 4))
        assert np.array_equal(
            nb.matmul_chain_forward(mats),
            matmul_chain_forward(mats, backend="numpy"),
        )

    def test_c64_gating_matches_c128_within_tolerance(self, rng):
        consts, ps = self._inputs(rng)
        gates = Tensor(rng.uniform(0.0, 1.0, size=(3,)))
        with no_grad():
            fast = phase_column_cascade(consts, ps, gates, backend="numpy-c64")
        ref = phase_column_cascade(consts, ps, gates, backend="numpy")
        rel = np.abs(fast.data.astype(np.complex128) - ref.data).max()
        rel /= np.abs(ref.data).max()
        assert fast.data.dtype == np.complex64
        assert rel < 1e-4

    def test_custom_backend_instance_per_call(self, rng):
        class Tagged(NumpyBackend):
            name = "tagged"
            calls = 0

            def matmul_chain_forward(self, mats):
                type(self).calls += 1
                return super().matmul_chain_forward(mats)

        tagged = Tagged()
        mats = Tensor(rng.standard_normal((1, 2, 3, 3)).astype(complex))
        with no_grad():
            matmul_chain(mats, backend=tagged)
        # Non-forward-only backends run through the graph kernel, which
        # uses numpy directly; the instance is still accepted per-call.
        assert isinstance(resolve_backend(tagged), ExecutionBackend)


class TestGradcheckUnderBackends:
    def test_c64_backend_gradcheck_falls_back_to_full_precision(self, rng):
        """With a forward-only default, recording ops still gradcheck:
        the demotion path must leave training numerics untouched."""
        from repro.autograd import gradcheck

        consts = Tensor(
            rng.standard_normal((2, 2, 2)) + 1j * rng.standard_normal((2, 2, 2)),
            requires_grad=True,
        )
        phases = Tensor(
            rng.uniform(0, 2 * np.pi, size=(2, 2, 2)), requires_grad=True
        )

        def fn(c, p):
            from repro.autograd import tensor as T

            ps = T.exp(Tensor(np.array(-1j)) * p)
            out = phase_column_cascade(c, ps, backend="numpy-c64")
            return (out * out.conj()).real().sum()

        with backend_scope("numpy-c64"):
            assert gradcheck(fn, [consts, phases])
