"""``REPRO_CHECK_FINITE=1`` debug mode: fused kernels raise on
NaN/Inf outputs instead of laundering them through accuracy scores."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.fused import (
    finite_checks_enabled,
    matmul_chain,
    matmul_chain_forward,
    phase_column_cascade,
    phase_column_cascade_forward,
)


def _mesh(n=2, b=3, k=4, seed=0):
    rng = np.random.default_rng(seed)
    consts = rng.normal(size=(b, k, k)) + 1j * rng.normal(size=(b, k, k))
    ps = np.exp(-1j * rng.normal(size=(n, b, k)))
    return consts.astype(complex), ps.astype(complex)


class TestFiniteGuard:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_FINITE", raising=False)
        assert not finite_checks_enabled()

    def test_zero_and_empty_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_FINITE", "0")
        assert not finite_checks_enabled()
        monkeypatch.setenv("REPRO_CHECK_FINITE", "")
        assert not finite_checks_enabled()
        monkeypatch.setenv("REPRO_CHECK_FINITE", "1")
        assert finite_checks_enabled()

    def test_forward_kernel_raises_on_injected_nan_phase(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_FINITE", "1")
        consts, ps = _mesh()
        ps[0, 1, 2] = np.nan  # one corrupted phase factor
        with pytest.raises(FloatingPointError, match="phase_column_cascade"):
            phase_column_cascade_forward(consts, ps)

    def test_forward_kernel_raises_on_inf(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_FINITE", "1")
        consts, ps = _mesh()
        consts[2, 0, 0] = np.inf
        with pytest.raises(FloatingPointError, match="non-finite"):
            phase_column_cascade_forward(consts, ps)

    def test_matmul_chain_forward_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_FINITE", "1")
        rng = np.random.default_rng(1)
        mats = (rng.normal(size=(2, 3, 4, 4))
                + 1j * rng.normal(size=(2, 3, 4, 4)))
        mats[1, 2, 0, 0] = np.nan
        with pytest.raises(FloatingPointError, match="matmul_chain"):
            matmul_chain_forward(mats)

    def test_graph_kernels_raise_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_FINITE", "1")
        consts, ps = _mesh()
        ps[1, 0, 3] = np.inf
        with pytest.raises(FloatingPointError, match="phase_column_cascade"):
            phase_column_cascade(Tensor(consts), Tensor(ps))
        rng = np.random.default_rng(2)
        mats = (rng.normal(size=(1, 2, 3, 3))
                + 1j * rng.normal(size=(1, 2, 3, 3)))
        mats[0, 0, 1, 1] = np.nan
        with pytest.raises(FloatingPointError, match="matmul_chain"):
            matmul_chain(Tensor(mats))

    def test_silent_propagation_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_FINITE", raising=False)
        consts, ps = _mesh()
        ps[0, 1, 2] = np.nan
        out = phase_column_cascade_forward(consts, ps)
        assert np.isnan(out[0]).any()  # propagates, does not raise

    def test_clean_inputs_pass_with_checks_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_FINITE", "1")
        consts, ps = _mesh()
        checked = phase_column_cascade_forward(consts, ps)
        monkeypatch.delenv("REPRO_CHECK_FINITE")
        unchecked = phase_column_cascade_forward(consts, ps)
        np.testing.assert_array_equal(checked, unchecked)
