"""Fused cascade kernels vs. their unfused op-by-op composition."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    forward_backward_parity,
    gradcheck,
    l2_normalize,
    matmul_chain,
    phase_column_cascade,
)
from repro.autograd import tensor as T


def _random_inputs(rng, n=3, b=4, k=4, per_mesh_consts=False):
    shape_c = (n, b, k, k) if per_mesh_consts else (b, k, k)
    consts = Tensor(
        rng.normal(size=shape_c) + 1j * rng.normal(size=shape_c),
        requires_grad=True,
    )
    phases = Tensor(rng.uniform(0, 2 * np.pi, size=(n, b, k)), requires_grad=True)
    exec_prob = Tensor(rng.uniform(0.1, 0.9, size=(b,)), requires_grad=True)
    return consts, phases, exec_prob


def _reference_cascade(consts, ps, exec_prob=None):
    """Unfused composition using only elementary tensor ops."""
    n, b, k = ps.shape
    eye = Tensor(np.eye(k, dtype=complex))
    u = None
    for i in range(b):
        cb = consts[i] if consts.ndim == 3 else consts[:, i]
        psb = ps[:, i, :]
        if u is None:
            block = cb * psb.reshape((n, 1, k))
        else:
            block = cb @ (psb.reshape((n, k, 1)) * u)
        if exec_prob is None:
            u = block
        else:
            m = exec_prob[i]
            skip = eye if u is None else u
            u = m * block + (1.0 - m) * skip
    return u


class TestPhaseColumnCascade:
    def test_forward_matches_reference(self, rng):
        consts, phases, exec_prob = _random_inputs(rng)
        ps = T.exp(Tensor(np.array(-1j)) * phases)
        fast = phase_column_cascade(consts, ps, exec_prob)
        ref = _reference_cascade(consts, ps, exec_prob)
        assert np.abs(fast.data - ref.data).max() < 1e-12

    def test_forward_no_exec(self, rng):
        consts, phases, _ = _random_inputs(rng)
        ps = T.exp(Tensor(np.array(-1j)) * phases)
        fast = phase_column_cascade(consts, ps)
        ref = _reference_cascade(consts, ps)
        assert np.abs(fast.data - ref.data).max() < 1e-12

    def test_forward_per_mesh_consts(self, rng):
        consts, phases, exec_prob = _random_inputs(rng, per_mesh_consts=True)
        ps = T.exp(Tensor(np.array(-1j)) * phases)
        fast = phase_column_cascade(consts, ps, exec_prob)
        ref = _reference_cascade(consts, ps, exec_prob)
        assert np.abs(fast.data - ref.data).max() < 1e-12

    def test_grads_match_reference(self, rng):
        consts, phases, exec_prob = _random_inputs(rng, n=2, b=3, k=3)

        def with_cascade(cascade_fn):
            def fn(c, p, e):
                ps = T.exp(Tensor(np.array(-1j)) * p)
                return cascade_fn(c, ps, e)

            return fn

        assert forward_backward_parity(
            with_cascade(phase_column_cascade),
            with_cascade(_reference_cascade),
            [consts, phases, exec_prob],
        )

    @pytest.mark.parametrize("with_exec", [True, False])
    def test_gradcheck(self, rng, with_exec):
        consts, phases, exec_prob = _random_inputs(rng, n=2, b=3, k=2)

        def fn(c, p, e):
            ps = T.exp(Tensor(np.array(-1j)) * p)
            out = phase_column_cascade(c, ps, e if with_exec else None)
            return (out * out.conj()).real().sum()

        assert gradcheck(fn, [consts, phases, exec_prob])

    def test_exec_grad_reaches_gated_consts(self, rng):
        consts, phases, exec_prob = _random_inputs(rng, n=1, b=2, k=2)
        ps = T.exp(Tensor(np.array(-1j)) * phases)
        out = phase_column_cascade(consts, ps, exec_prob)
        (out * out.conj()).real().sum().backward()
        assert exec_prob.grad is not None
        assert not np.iscomplexobj(exec_prob.grad)  # projected onto real axis

    def test_empty_cascade_is_identity(self):
        ps = Tensor(np.zeros((2, 0, 4), dtype=complex))
        out = phase_column_cascade(Tensor(np.zeros((0, 4, 4), dtype=complex)), ps)
        assert np.allclose(out.data, np.eye(4))

    def test_shape_validation(self, rng):
        consts, phases, _ = _random_inputs(rng)
        with pytest.raises(ValueError):
            phase_column_cascade(consts, Tensor(np.zeros((2, 2))))
        with pytest.raises(ValueError):
            phase_column_cascade(
                Tensor(np.zeros((1, 2, 2), dtype=complex)),
                T.exp(Tensor(np.array(-1j)) * phases),
            )


class TestL2Normalize:
    @pytest.mark.parametrize("axis", [-1, -2])
    def test_matches_elementary_composition(self, rng, axis):
        x = Tensor(
            rng.normal(size=(2, 4, 4)) + 1j * rng.normal(size=(2, 4, 4)),
            requires_grad=True,
        )

        def unfused(t):
            return t / (
                T.sum_(t * t.conj(), axis=axis, keepdims=True).real() + 1e-12
            ).sqrt().astype(np.complex128)

        assert forward_backward_parity(
            lambda t: l2_normalize(t, axis=axis), unfused, [x]
        )

    def test_gradcheck(self, rng):
        x = Tensor(
            rng.normal(size=(1, 3, 3)) + 1j * rng.normal(size=(1, 3, 3)),
            requires_grad=True,
        )

        def fn(t):
            out = l2_normalize(t, axis=-1)
            target = Tensor(np.full((1, 3, 3), 0.5 + 0.1j))
            diff = out - target
            return (diff * diff.conj()).real().sum()

        assert gradcheck(fn, [x])

    def test_rows_become_unit_norm(self, rng):
        x = Tensor(rng.normal(size=(3, 4, 4)) + 1j * rng.normal(size=(3, 4, 4)))
        out = l2_normalize(x, axis=-1).data
        norms = np.sqrt((np.abs(out) ** 2).sum(axis=-1))
        assert np.allclose(norms, 1.0, atol=1e-6)


class TestMatmulChain:
    def test_forward_matches_fold(self, rng):
        # Pinned to the full-precision backend: the 1e-12 tolerance
        # asserts the double-precision fold, not the ambient default.
        mats = Tensor(rng.normal(size=(2, 4, 3, 3)) + 1j * rng.normal(size=(2, 4, 3, 3)))
        out = matmul_chain(mats, backend="numpy")
        ref = mats.data[:, 0]
        for b in range(1, 4):
            ref = mats.data[:, b] @ ref
        assert np.abs(out.data - ref).max() < 1e-12

    def test_grads_match_unfused(self, rng):
        mats = Tensor(
            rng.normal(size=(2, 3, 3, 3)) + 1j * rng.normal(size=(2, 3, 3, 3)),
            requires_grad=True,
        )

        def unfused(m):
            out = m[:, 0]
            for b in range(1, 3):
                out = m[:, b] @ out
            return out

        assert forward_backward_parity(matmul_chain, unfused, [mats])

    def test_gradcheck(self, rng):
        mats = Tensor(
            rng.normal(size=(1, 2, 2, 2)) + 1j * rng.normal(size=(1, 2, 2, 2)),
            requires_grad=True,
        )

        def fn(m):
            out = matmul_chain(m)
            return (out * out.conj()).real().sum()

        assert gradcheck(fn, [mats])

    def test_empty_chain_is_identity(self):
        out = matmul_chain(Tensor(np.zeros((2, 0, 3, 3), dtype=complex)))
        assert np.allclose(out.data, np.eye(3))


class TestForwardOnlyKernels:
    """The graph-free twins used by the Monte-Carlo robustness engine
    must agree bit-for-bit with the autograd kernels' forwards."""

    def test_phase_column_cascade_forward_matches_graph(self, rng):
        from repro.autograd import phase_column_cascade_forward

        for per_mesh in (False, True):
            consts, phases, _ = _random_inputs(rng, per_mesh_consts=per_mesh)
            ps = np.exp(-1j * phases.data)
            graph = phase_column_cascade(Tensor(consts.data), Tensor(ps))
            plain = phase_column_cascade_forward(consts.data, ps)
            assert np.array_equal(graph.data, plain)

    def test_matmul_chain_forward_matches_graph(self, rng):
        from repro.autograd import matmul_chain_forward

        mats = rng.normal(size=(3, 5, 4, 4)) + 1j * rng.normal(size=(3, 5, 4, 4))
        graph = matmul_chain(Tensor(mats))
        plain = matmul_chain_forward(mats)
        assert np.array_equal(graph.data, plain)

    def test_forward_kernels_empty_and_bad_shapes(self):
        from repro.autograd import matmul_chain_forward, phase_column_cascade_forward

        out = phase_column_cascade_forward(
            np.zeros((0, 3, 3), complex), np.zeros((2, 0, 3), complex)
        )
        assert np.allclose(out, np.eye(3))
        assert np.allclose(matmul_chain_forward(np.zeros((2, 0, 3, 3))), np.eye(3))
        with pytest.raises(ValueError):
            phase_column_cascade_forward(np.zeros((2, 3, 3)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            matmul_chain_forward(np.zeros((2, 3, 3)))
