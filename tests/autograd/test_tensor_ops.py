"""Forward-value correctness of every autograd op against numpy."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    concat,
    log_softmax,
    pad,
    softmax,
    stack,
    where,
)


class TestArithmetic:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        assert np.allclose((a + b).data, 1.0 + np.arange(3.0))

    def test_scalar_radd(self):
        a = Tensor(np.array([1.0, 2.0]))
        assert np.allclose((3.0 + a).data, [4.0, 5.0])

    def test_sub_rsub(self):
        a = Tensor(np.array([1.0, 2.0]))
        assert np.allclose((a - 1.0).data, [0.0, 1.0])
        assert np.allclose((1.0 - a).data, [0.0, -1.0])

    def test_mul_div(self):
        a = Tensor(np.array([2.0, 4.0]))
        assert np.allclose((a * 3).data, [6.0, 12.0])
        assert np.allclose((a / 2).data, [1.0, 2.0])
        assert np.allclose((8.0 / a).data, [4.0, 2.0])

    def test_neg_pow(self):
        a = Tensor(np.array([1.0, 2.0]))
        assert np.allclose((-a).data, [-1.0, -2.0])
        assert np.allclose((a ** 2).data, [1.0, 4.0])

    def test_matmul_2d(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_batched(self, rng):
        a = rng.normal(size=(7, 3, 4))
        b = rng.normal(size=(7, 4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_broadcast(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(7, 4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_complex_mul(self):
        a = Tensor(np.array([1 + 2j]))
        b = Tensor(np.array([3 - 1j]))
        assert np.allclose((a * b).data, (1 + 2j) * (3 - 1j))


class TestElementwise:
    def test_exp_log_sqrt(self, rng):
        x = np.abs(rng.normal(size=5)) + 0.1
        t = Tensor(x)
        assert np.allclose(t.exp().data, np.exp(x))
        assert np.allclose(t.log().data, np.log(x))
        assert np.allclose(t.sqrt().data, np.sqrt(x))

    def test_abs_real_and_complex(self):
        assert np.allclose(Tensor(np.array([-2.0, 3.0])).abs().data, [2.0, 3.0])
        assert np.allclose(Tensor(np.array([3 + 4j])).abs().data, [5.0])

    def test_conj_real_imag(self):
        z = Tensor(np.array([1 + 2j]))
        assert np.allclose(z.conj().data, [1 - 2j])
        assert np.allclose(z.real().data, [1.0])
        assert np.allclose(z.imag().data, [2.0])
        assert not np.iscomplexobj(z.real().data)

    def test_relu_sigmoid_tanh(self):
        x = np.array([-1.0, 0.0, 2.0])
        t = Tensor(x)
        assert np.allclose(t.relu().data, [0.0, 0.0, 2.0])
        assert np.allclose(t.sigmoid().data, 1 / (1 + np.exp(-x)))
        assert np.allclose(t.tanh().data, np.tanh(x))

    def test_clip(self):
        t = Tensor(np.array([-2.0, 0.5, 3.0]))
        assert np.allclose(t.clip(-1.0, 1.0).data, [-1.0, 0.5, 1.0])


class TestReductions:
    def test_sum_axes(self, rng):
        x = rng.normal(size=(2, 3, 4))
        t = Tensor(x)
        assert np.allclose(t.sum().data, x.sum())
        assert np.allclose(t.sum(axis=1).data, x.sum(axis=1))
        assert np.allclose(t.sum(axis=(0, 2), keepdims=True).data, x.sum(axis=(0, 2), keepdims=True))

    def test_mean(self, rng):
        x = rng.normal(size=(4, 5))
        assert np.allclose(Tensor(x).mean().data, x.mean())
        assert np.allclose(Tensor(x).mean(axis=0).data, x.mean(axis=0))

    def test_max_min(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(Tensor(x).max().data, x.max())
        assert np.allclose(Tensor(x).max(axis=1).data, x.max(axis=1))
        assert np.allclose(Tensor(x).min(axis=0).data, x.min(axis=0))


class TestShapes:
    def test_reshape_transpose(self, rng):
        x = rng.normal(size=(2, 6))
        t = Tensor(x)
        assert t.reshape((3, 4)).shape == (3, 4)
        assert t.reshape(3, 4).shape == (3, 4)
        assert np.allclose(t.T.data, x.T)
        y = rng.normal(size=(2, 3, 4))
        assert np.allclose(Tensor(y).transpose((2, 0, 1)).data, y.transpose(2, 0, 1))

    def test_getitem(self, rng):
        x = rng.normal(size=(4, 5))
        t = Tensor(x)
        assert np.allclose(t[1].data, x[1])
        assert np.allclose(t[:, 2].data, x[:, 2])
        assert np.allclose(t[np.array([0, 2]), np.array([1, 3])].data, x[[0, 2], [1, 3]])

    def test_concat_stack(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        assert concat([Tensor(a), Tensor(b)], axis=0).shape == (6, 3)
        c = stack([Tensor(a[0]), Tensor(a[1])], axis=0)
        assert np.allclose(c.data, a)

    def test_pad(self):
        t = Tensor(np.ones((2, 2)))
        p = pad(t, ((1, 1), (0, 2)))
        assert p.shape == (4, 4)
        assert p.data[0, 0] == 0 and p.data[1, 0] == 1

    def test_flatten(self, rng):
        x = rng.normal(size=(2, 3, 4))
        assert Tensor(x).flatten(1).shape == (2, 12)


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(5, 7)) * 10
        s = softmax(Tensor(x), axis=-1)
        assert np.allclose(s.data.sum(-1), 1.0)

    def test_softmax_stability_large_logits(self):
        s = softmax(Tensor(np.array([1000.0, 1000.0, -1000.0])))
        assert np.isfinite(s.data).all()
        assert np.allclose(s.data[:2], 0.5)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(
            log_softmax(Tensor(x)).data, np.log(softmax(Tensor(x)).data)
        )


class TestWhere:
    def test_where_select(self):
        cond = np.array([True, False, True])
        out = where(cond, Tensor(np.ones(3)), Tensor(np.zeros(3)))
        assert np.allclose(out.data, [1.0, 0.0, 1.0])


class TestMisc:
    def test_repr_and_item(self):
        t = Tensor(np.array(2.5), requires_grad=True)
        assert "requires_grad" in repr(t)
        assert t.item() == 2.5

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = (a * 2).detach()
        assert b.is_leaf and not b.requires_grad

    def test_backward_nonscalar_raises(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_comparisons_return_numpy(self):
        a = Tensor(np.array([1.0, 3.0]))
        assert isinstance(a > 2.0, np.ndarray)
        assert (a > 2.0).tolist() == [False, True]
