"""Shared-pass population evaluation vs per-model evaluation."""

import numpy as np

from repro.onn import PTCLinear, evaluate, evaluate_population
from repro.nn import Flatten, ReLU, Sequential


def _model(seed):
    rng = np.random.default_rng(seed)
    return Sequential(
        Flatten(),
        PTCLinear(64, 10, k=8, mesh="butterfly", rng=rng),
        ReLU(),
    )


def test_population_matches_individual_evaluate(tiny_mnist):
    train_set, _ = tiny_mnist
    # Crop images to 8x8 to keep the layer small.
    import copy

    ds = copy.copy(train_set)
    ds.images = train_set.images[:, :, :8, :8].copy()
    models = [_model(s) for s in (0, 1, 2)]
    pop = evaluate_population(models, ds, batch_size=32)
    solo = [evaluate(m, ds, batch_size=32) for m in models]
    assert pop == solo
    for m in models:
        assert m.training  # restored to train mode afterwards


def test_eval_mode_is_preserved(tiny_mnist):
    """Models already in eval mode must stay in eval mode — evaluation
    used to flip everything back to train mode unconditionally."""
    train_set, _ = tiny_mnist
    import copy

    ds = copy.copy(train_set)
    ds.images = train_set.images[:, :, :8, :8].copy()
    m_eval, m_train = _model(0), _model(1)
    m_eval.eval()
    evaluate_population([m_eval, m_train], ds, batch_size=32)
    assert not m_eval.training
    assert m_train.training
    # Submodules follow the restored mode too.
    assert all(not sub.training for sub in m_eval.modules())
    evaluate(m_eval, ds, batch_size=32)
    assert not m_eval.training


def test_empty_dataset_scores_zero(tiny_mnist):
    train_set, _ = tiny_mnist
    import copy

    ds = copy.copy(train_set)
    ds.images = train_set.images[:0, :, :8, :8].copy()
    ds.labels = train_set.labels[:0].copy()
    model = _model(0)
    assert evaluate(model, ds) == 0.0
    assert evaluate_population([model, _model(1)], ds) == [0.0, 0.0]
    assert model.training  # mode still restored on the empty path
