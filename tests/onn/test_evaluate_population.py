"""Shared-pass population evaluation vs per-model evaluation."""

import numpy as np

from repro.onn import PTCLinear, evaluate, evaluate_population
from repro.nn import Flatten, ReLU, Sequential


def _model(seed):
    rng = np.random.default_rng(seed)
    return Sequential(
        Flatten(),
        PTCLinear(64, 10, k=8, mesh="butterfly", rng=rng),
        ReLU(),
    )


def test_population_matches_individual_evaluate(tiny_mnist):
    train_set, _ = tiny_mnist
    # Crop images to 8x8 to keep the layer small.
    import copy

    ds = copy.copy(train_set)
    ds.images = train_set.images[:, :, :8, :8].copy()
    models = [_model(s) for s in (0, 1, 2)]
    pop = evaluate_population(models, ds, batch_size=32)
    solo = [evaluate(m, ds, batch_size=32) for m in models]
    assert pop == solo
    for m in models:
        assert m.training  # restored to train mode afterwards
