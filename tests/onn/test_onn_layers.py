"""Blocked USV photonic layers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import random_topology
from repro.onn import (
    BlockUSV,
    PTCConv2d,
    PTCLinear,
    model_ptc_footprint,
    set_model_phase_noise,
)
from repro.photonics import AMF, is_unitary


class TestBlockUSV:
    def test_weight_shape_exact_multiple(self):
        core = BlockUSV(16, 24, k=8, mesh="butterfly")
        assert core().shape == (16, 24)
        assert (core.p, core.q) == (2, 3)

    def test_weight_shape_ragged(self):
        core = BlockUSV(10, 25, k=8, mesh="butterfly")
        assert core().shape == (10, 25)

    def test_blocks_are_usv(self):
        core = BlockUSV(8, 8, k=8, mesh="mzi")
        blocks = core.build_complex().data
        # Each block is U diag(s) V with unitary U, V: singular values
        # of the block must equal |sigma| sorted.
        s = np.linalg.svd(blocks[0], compute_uv=False)
        expect = np.sort(np.abs(core.sigma.data[0]))[::-1]
        assert np.allclose(s, expect, atol=1e-8)

    def test_weight_scale_reasonable(self):
        core = BlockUSV(32, 64, k=8, mesh="butterfly")
        w = core().data
        ratio = w.std() / np.sqrt(2.0 / 64)
        assert 0.25 < ratio < 4.0

    def test_gradients_reach_all_params(self):
        core = BlockUSV(8, 8, k=4, mesh="mzi")
        (core() ** 2).sum().backward()
        for p in core.parameters():
            assert p.grad is not None
            assert np.abs(p.grad).max() > 0

    def test_topology_mesh(self, rng):
        topo = random_topology(8, 3, 3, rng)
        core = BlockUSV(8, 16, k=8, mesh=topo)
        assert core().shape == (8, 16)
        n_ps, n_dc, n_cr = core.topology_device_counts()
        t_ps, t_dc, t_cr = topo.device_counts()
        assert (n_ps, n_dc, n_cr) == (t_ps, t_dc, t_cr)

    def test_invalid_mesh(self):
        with pytest.raises((ValueError, TypeError)):
            BlockUSV(8, 8, k=8, mesh="quantum")
        with pytest.raises((ValueError, TypeError)):
            BlockUSV(8, 8, k=8, mesh=object())

    def test_footprint_positive(self):
        core = BlockUSV(8, 8, k=8, mesh="butterfly")
        assert core.footprint(AMF) > 0


class TestPTCLinear:
    def test_forward_shape(self, rng):
        lin = PTCLinear(12, 7, k=4, mesh="mzi")
        out = lin(Tensor(rng.normal(size=(5, 12))))
        assert out.shape == (5, 7)

    def test_trains_on_toy_regression(self, rng):
        from repro.nn import MSELoss
        from repro.optim import Adam

        lin = PTCLinear(6, 3, k=2, mesh="mzi")
        x = Tensor(rng.normal(size=(32, 6)))
        target = Tensor(rng.normal(size=(32, 3)))
        opt = Adam(lin.parameters(), lr=5e-3)
        losses = []
        for _ in range(60):
            loss = MSELoss()(lin(x), target)
            lin.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.7

    def test_no_bias(self):
        lin = PTCLinear(4, 4, k=4, mesh="butterfly", bias=False)
        assert lin.bias is None

    def test_phase_noise_changes_weights(self):
        lin = PTCLinear(8, 8, k=8, mesh="butterfly")
        w0 = lin.core().data.copy()
        lin.set_phase_noise(0.05)
        w1 = lin.core().data
        assert not np.allclose(w0, w1)


class TestPTCConv2d:
    def test_forward_shape(self, rng):
        conv = PTCConv2d(3, 6, 3, k=4, mesh="butterfly", padding=1)
        out = conv(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 6, 8, 8)

    def test_equals_dense_conv_with_same_weight(self, rng):
        """A PTC conv must equal a dense conv using its built weight."""
        from repro.nn import functional as F

        conv = PTCConv2d(2, 4, 3, k=4, mesh="mzi")
        x = Tensor(rng.normal(size=(1, 2, 6, 6)))
        w = conv.core().data.reshape(4, 2, 3, 3)
        expect = F.conv2d(Tensor(x.data), Tensor(w), Tensor(conv.bias.data))
        assert np.allclose(conv(x).data, expect.data, atol=1e-10)


class TestModelHelpers:
    def test_set_model_phase_noise_counts_cores(self):
        from repro import nn

        model = nn.Sequential(PTCLinear(8, 8, k=4, mesh="butterfly"), nn.ReLU(),
                              PTCLinear(8, 4, k=4, mesh="butterfly"))
        assert set_model_phase_noise(model, 0.02) == 2
        assert set_model_phase_noise(model, 0.0) == 2

    def test_model_ptc_footprint(self):
        from repro import nn

        model = nn.Sequential(PTCLinear(8, 8, k=8, mesh="butterfly"))
        assert model_ptc_footprint(model, AMF) > 0
        assert model_ptc_footprint(nn.Sequential(nn.Linear(4, 2)), AMF) == 0.0
