"""Training engine: learning progress, evaluation, hooks."""

import numpy as np

from repro import nn
from repro.onn import TrainConfig, evaluate, train
from repro.onn.layers import PTCLinear


def small_model():
    return nn.Sequential(nn.Flatten(), PTCLinear(784, 10, k=8, mesh="butterfly"))


class TestTrain:
    def test_loss_decreases(self, tiny_mnist):
        tr, te = tiny_mnist
        model = small_model()
        res = train(model, tr, te, TrainConfig(epochs=3, batch_size=32, lr=5e-3))
        assert res.train_losses[-1] < res.train_losses[0]
        assert len(res.test_accs) == 3

    def test_beats_chance(self, tiny_mnist):
        tr, te = tiny_mnist
        model = small_model()
        res = train(model, tr, te, TrainConfig(epochs=6, batch_size=32, lr=5e-3))
        assert res.best_test_acc > 0.2  # chance is 0.1

    def test_epoch_hook_called(self, tiny_mnist):
        tr, _ = tiny_mnist
        calls = []
        train(
            small_model(),
            tr,
            config=TrainConfig(epochs=2, batch_size=48),
            epoch_hook=lambda e, m: calls.append(e),
        )
        assert calls == [0, 1]

    def test_no_test_set(self, tiny_mnist):
        tr, _ = tiny_mnist
        res = train(small_model(), tr, config=TrainConfig(epochs=1, batch_size=48))
        assert res.test_accs == []
        assert np.isnan(res.final_test_acc)


class TestEvaluate:
    def test_eval_restores_train_mode(self, tiny_mnist):
        _, te = tiny_mnist
        model = small_model()
        model.train()
        evaluate(model, te)
        assert model.training

    def test_accuracy_bounds(self, tiny_mnist):
        _, te = tiny_mnist
        acc = evaluate(small_model(), te)
        assert 0.0 <= acc <= 1.0
