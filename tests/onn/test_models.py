"""ONN model zoo: shapes and structure."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.onn import build_cnn2, build_lenet5, build_model, build_vgg8


class TestCNN2:
    def test_forward_shape_mnist(self, rng):
        model = build_cnn2("butterfly", k=8, width_mult=0.125)
        out = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert out.shape == (2, 10)

    def test_width_mult_scales_channels(self):
        small = build_cnn2("butterfly", k=8, width_mult=0.125)
        big = build_cnn2("butterfly", k=8, width_mult=0.25)
        assert big.num_parameters() > small.num_parameters()


class TestLeNet5:
    def test_forward_shape(self, rng):
        model = build_lenet5("butterfly", k=4, width_mult=0.5)
        out = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert out.shape == (2, 10)

    def test_rgb_input(self, rng):
        model = build_lenet5("butterfly", k=4, in_channels=3, image_size=32,
                             width_mult=0.5)
        out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)


class TestVGG8:
    def test_forward_shape(self, rng):
        model = build_vgg8("butterfly", k=4, width_mult=0.0625)
        out = model(Tensor(rng.normal(size=(1, 3, 32, 32))))
        assert out.shape == (1, 10)


class TestRegistry:
    def test_build_by_name(self, rng):
        model = build_model("cnn2", "butterfly", k=8, width_mult=0.125)
        assert model(Tensor(rng.normal(size=(1, 1, 28, 28)))).shape == (1, 10)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("resnet50", "mzi")

    def test_topology_mesh_accepted(self, rng):
        from repro.core import random_topology

        topo = random_topology(8, 2, 2, rng)
        model = build_cnn2(topo, k=8, width_mult=0.125)
        assert model(Tensor(rng.normal(size=(1, 1, 28, 28)))).shape == (1, 10)
