"""Tests for on-chip calibration (adjoint and SPSA)."""

import numpy as np
import pytest

from repro.core.topology import random_topology
from repro.onn.calibration import (
    CalibrationResult,
    _perturbed_error,
    _relative_error,
    adjoint_measurement_count,
    calibrate_adjoint,
    calibrate_spsa,
    spsa_measurement_count,
)
from repro.photonics.nonideality import NonidealitySpec, NonidealTopologyFactory
from repro.ptc.unitary import FixedTopologyFactory, MZIMeshFactory


def chip_and_target(k=8, nb=3, seed=0):
    """A factory plus a target that the same topology can realize."""
    topo = random_topology(k, nb, nb, np.random.default_rng(seed),
                           coupler_density=1.0)
    blocks = [(b.perm, b.coupler_mask, b.offset) for b in topo.blocks_u]
    ref = FixedTopologyFactory(k, 1, blocks, rng=np.random.default_rng(seed + 1))
    target = ref.build().data[0]
    chip = FixedTopologyFactory(k, 1, blocks, rng=np.random.default_rng(seed + 2))
    return chip, target, blocks


class TestAdjoint:
    def test_converges_on_realizable_target(self):
        chip, target, _ = chip_and_target()
        res = calibrate_adjoint(chip, target, steps=250)
        assert isinstance(res, CalibrationResult)
        assert res.final_error < 0.01
        assert res.improvement > 0.99

    def test_history_starts_at_initial(self):
        chip, target, _ = chip_and_target(seed=1)
        res = calibrate_adjoint(chip, target, steps=50)
        assert res.history[0] == pytest.approx(res.initial_error)

    def test_measurement_count(self):
        # Every chip forward counts: initial read + 40 training
        # forwards + 4 history reads (steps divides record_every, so
        # the last record point IS the final read).
        chip, target, _ = chip_and_target(seed=2)
        res = calibrate_adjoint(chip, target, steps=40)
        assert res.n_measurements == adjoint_measurement_count(40) == 45

    def test_measurement_count_off_boundary(self):
        # steps % record_every != 0: one extra final read.
        chip, target, _ = chip_and_target(seed=2)
        res = calibrate_adjoint(chip, target, steps=37)
        assert res.n_measurements == adjoint_measurement_count(37) == 42

    def test_history_ends_at_final_error(self):
        chip, target, _ = chip_and_target(seed=2)
        res = calibrate_adjoint(chip, target, steps=37, record_every=10)
        assert res.history[-1] == res.final_error
        # initial + records at 10/20/30 + final at 37.
        assert len(res.history) == 5

    def test_rejects_multi_unit(self):
        f = MZIMeshFactory(4, n_units=2)
        with pytest.raises(ValueError, match="n_units"):
            calibrate_adjoint(f, np.eye(4))

    def test_rejects_wrong_shape(self):
        f = MZIMeshFactory(4, n_units=1)
        with pytest.raises(ValueError, match="target"):
            calibrate_adjoint(f, np.eye(5))


class TestSPSA:
    def test_improves_without_gradients(self):
        chip, target, _ = chip_and_target(seed=3)
        res = calibrate_spsa(chip, target, steps=600,
                             rng=np.random.default_rng(0))
        assert res.method == "spsa"
        assert res.improvement > 0.3

    def test_three_measurements_per_step_plus_initial(self):
        # 2 perturbed reads + 1 post-update read per step, plus the
        # initial read — every factory.build() counted exactly once.
        chip, target, _ = chip_and_target(seed=4)
        res = calibrate_spsa(chip, target, steps=30,
                             rng=np.random.default_rng(0))
        assert res.n_measurements == spsa_measurement_count(30) == 91

    def test_history_ends_at_final_error(self):
        chip, target, _ = chip_and_target(seed=4)
        res = calibrate_spsa(chip, target, steps=50, record_every=20,
                             rng=np.random.default_rng(0))
        # steps % record_every != 0 -> best-so-far appended at the end.
        assert res.history[-1] == res.final_error

    def test_best_seen_never_worse_than_initial(self):
        chip, target, _ = chip_and_target(seed=5)
        res = calibrate_spsa(chip, target, steps=40,
                             rng=np.random.default_rng(1))
        assert res.final_error <= res.initial_error + 1e-12

    def test_history_monotone_nonincreasing(self):
        chip, target, _ = chip_and_target(seed=6)
        res = calibrate_spsa(chip, target, steps=200,
                             rng=np.random.default_rng(2))
        # History records best-so-far, which can only decrease.
        assert all(b <= a + 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_adjoint_more_measurement_efficient(self):
        # At a matched *measurement* budget (the scarce resource on
        # hardware) the digital twin wins: one gradient step per
        # evaluation vs three evaluations per SPSA step.
        chip_a, target, blocks = chip_and_target(seed=7)
        adj = calibrate_adjoint(chip_a, target, steps=136)
        chip_s = FixedTopologyFactory(8, 1, blocks,
                                      rng=np.random.default_rng(9))
        spsa = calibrate_spsa(chip_s, target, steps=50,
                              rng=np.random.default_rng(3))
        assert adj.n_measurements == spsa.n_measurements == 151
        assert adj.final_error < spsa.final_error


class TestBitwiseRestoration:
    """PR 8 regression: SPSA perturbation evaluations must restore the
    exact pre-call parameter bits.  The old ``(p + d) - d`` idiom does
    not round-trip in floating point, so rounding error accumulated in
    every phase across all steps."""

    def test_perturbed_error_restores_bitwise(self):
        chip, target, _ = chip_and_target(seed=8)
        params = list(chip.parameters())
        before = [p.data.copy() for p in params]
        rng = np.random.default_rng(0)
        # Irrational-ish deltas maximize the chance of rounding drift.
        deltas = [0.2 * rng.choice([-1.0, 1.0], size=p.data.shape) * np.pi / 3
                  for p in params]
        for sign in (+1.0, -1.0):
            err = _perturbed_error(chip, target, params, deltas, sign)
            assert np.isfinite(err)
            for p, b in zip(params, before):
                assert np.array_equal(p.data, b), (
                    "perturbation evaluation drifted the parameter state")

    def test_old_idiom_would_have_drifted(self):
        # Sanity check that the test above is load-bearing: the
        # add-then-subtract round trip really is lossy on these values.
        rng = np.random.default_rng(1)
        p = rng.uniform(0, 2 * np.pi, size=1024)
        d = 0.2 * rng.choice([-1.0, 1.0], size=1024) * np.pi / 3
        assert not np.array_equal((p + d) - d, p)

    def test_many_evaluations_leave_state_unchanged(self):
        chip, target, _ = chip_and_target(seed=9)
        params = list(chip.parameters())
        before = [p.data.copy() for p in params]
        err0 = _relative_error(chip, target)
        rng = np.random.default_rng(2)
        for _ in range(50):
            deltas = [0.1 * rng.choice([-1.0, 1.0], size=p.data.shape)
                      for p in params]
            _perturbed_error(chip, target, params, deltas, +1.0)
            _perturbed_error(chip, target, params, deltas, -1.0)
        for p, b in zip(params, before):
            assert np.array_equal(p.data, b)
        assert _relative_error(chip, target) == err0


class TestNonidealCalibration:
    def test_spsa_calibrates_fabricated_chip(self):
        """SPSA needs no chip model at all — it works directly on a
        fabricated (imbalanced) chip whose true transfer is unknown."""
        k = 8
        topo = random_topology(k, 3, 3, np.random.default_rng(10),
                               coupler_density=1.0)
        blocks = [(b.perm, b.coupler_mask, b.offset) for b in topo.blocks_u]
        ref = FixedTopologyFactory(k, 1, blocks, rng=np.random.default_rng(11))
        target = ref.build().data[0]
        chip = NonidealTopologyFactory(
            k, 1, topo.blocks_u, NonidealitySpec(dc_t_std=0.03),
            rng=np.random.default_rng(12))
        res = calibrate_spsa(chip, target, steps=600,
                             rng=np.random.default_rng(4))
        assert res.improvement > 0.3
