"""Tests for on-chip calibration (adjoint and SPSA)."""

import numpy as np
import pytest

from repro.core.topology import random_topology
from repro.onn.calibration import (
    CalibrationResult,
    calibrate_adjoint,
    calibrate_spsa,
)
from repro.photonics.nonideality import NonidealitySpec, NonidealTopologyFactory
from repro.ptc.unitary import FixedTopologyFactory, MZIMeshFactory


def chip_and_target(k=8, nb=3, seed=0):
    """A factory plus a target that the same topology can realize."""
    topo = random_topology(k, nb, nb, np.random.default_rng(seed),
                           coupler_density=1.0)
    blocks = [(b.perm, b.coupler_mask, b.offset) for b in topo.blocks_u]
    ref = FixedTopologyFactory(k, 1, blocks, rng=np.random.default_rng(seed + 1))
    target = ref.build().data[0]
    chip = FixedTopologyFactory(k, 1, blocks, rng=np.random.default_rng(seed + 2))
    return chip, target, blocks


class TestAdjoint:
    def test_converges_on_realizable_target(self):
        chip, target, _ = chip_and_target()
        res = calibrate_adjoint(chip, target, steps=250)
        assert isinstance(res, CalibrationResult)
        assert res.final_error < 0.01
        assert res.improvement > 0.99

    def test_history_starts_at_initial(self):
        chip, target, _ = chip_and_target(seed=1)
        res = calibrate_adjoint(chip, target, steps=50)
        assert res.history[0] == pytest.approx(res.initial_error)

    def test_measurement_count(self):
        chip, target, _ = chip_and_target(seed=2)
        res = calibrate_adjoint(chip, target, steps=40)
        assert res.n_measurements == 40

    def test_rejects_multi_unit(self):
        f = MZIMeshFactory(4, n_units=2)
        with pytest.raises(ValueError, match="n_units"):
            calibrate_adjoint(f, np.eye(4))

    def test_rejects_wrong_shape(self):
        f = MZIMeshFactory(4, n_units=1)
        with pytest.raises(ValueError, match="target"):
            calibrate_adjoint(f, np.eye(5))


class TestSPSA:
    def test_improves_without_gradients(self):
        chip, target, _ = chip_and_target(seed=3)
        res = calibrate_spsa(chip, target, steps=600,
                             rng=np.random.default_rng(0))
        assert res.method == "spsa"
        assert res.improvement > 0.3

    def test_three_measurements_per_step(self):
        chip, target, _ = chip_and_target(seed=4)
        res = calibrate_spsa(chip, target, steps=30,
                             rng=np.random.default_rng(0))
        assert res.n_measurements == 90

    def test_best_seen_never_worse_than_initial(self):
        chip, target, _ = chip_and_target(seed=5)
        res = calibrate_spsa(chip, target, steps=40,
                             rng=np.random.default_rng(1))
        assert res.final_error <= res.initial_error + 1e-12

    def test_history_monotone_nonincreasing(self):
        chip, target, _ = chip_and_target(seed=6)
        res = calibrate_spsa(chip, target, steps=200,
                             rng=np.random.default_rng(2))
        # History records best-so-far, which can only decrease.
        assert all(b <= a + 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_adjoint_more_measurement_efficient(self):
        # At a matched *measurement* budget (the scarce resource on
        # hardware) the digital twin wins: one gradient step per
        # evaluation vs three evaluations per SPSA step.
        chip_a, target, blocks = chip_and_target(seed=7)
        adj = calibrate_adjoint(chip_a, target, steps=150)
        chip_s = FixedTopologyFactory(8, 1, blocks,
                                      rng=np.random.default_rng(9))
        spsa = calibrate_spsa(chip_s, target, steps=50,
                              rng=np.random.default_rng(3))
        assert adj.n_measurements == spsa.n_measurements == 150
        assert adj.final_error < spsa.final_error


class TestNonidealCalibration:
    def test_spsa_calibrates_fabricated_chip(self):
        """SPSA needs no chip model at all — it works directly on a
        fabricated (imbalanced) chip whose true transfer is unknown."""
        k = 8
        topo = random_topology(k, 3, 3, np.random.default_rng(10),
                               coupler_density=1.0)
        blocks = [(b.perm, b.coupler_mask, b.offset) for b in topo.blocks_u]
        ref = FixedTopologyFactory(k, 1, blocks, rng=np.random.default_rng(11))
        target = ref.build().data[0]
        chip = NonidealTopologyFactory(
            k, 1, topo.blocks_u, NonidealitySpec(dc_t_std=0.03),
            rng=np.random.default_rng(12))
        res = calibrate_spsa(chip, target, steps=600,
                             rng=np.random.default_rng(4))
        assert res.improvement > 0.3
