"""Eval-mode unitary build cache: hits, invalidation, correctness."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.ptc import (
    ButterflyFactory,
    FixedTopologyFactory,
    MZIMeshFactory,
    set_unitary_cache_enabled,
)
from repro.ptc.cache import UnitaryBuildCache, content_digest


@pytest.fixture(autouse=True)
def _cache_on():
    prev = set_unitary_cache_enabled(True)
    yield
    set_unitary_cache_enabled(prev)


def _fixed(k=8, n_units=2, seed=0):
    rng = np.random.default_rng(seed)
    blocks = [(rng.permutation(k), rng.random((k // 2,)) < 0.5, b % 2) for b in range(4)]
    return FixedTopologyFactory(k, n_units, blocks, rng=rng)


class TestCacheBehavior:
    def test_eval_rebuild_hits_cache(self):
        f = _fixed()
        with no_grad():
            u1 = f.build()
            u2 = f.build()
        assert f.build_cache.hits == 1
        assert f.build_cache.misses == 1
        assert np.array_equal(u1.data, u2.data)

    def test_phase_update_invalidates(self):
        f = _fixed()
        with no_grad():
            u1 = f.build().data.copy()
            f.phases.data += 0.1  # optimizer-style in-place update
            u2 = f.build().data
        assert f.build_cache.hits == 0
        assert f.build_cache.misses == 2
        assert not np.allclose(u1, u2)

    def test_cached_result_matches_fresh_build(self):
        f = _fixed()
        with no_grad():
            first = f.build().data.copy()
            cached = f.build().data
        f.build_cache.clear()
        with no_grad():
            fresh = f.build().data
        assert np.array_equal(cached, first)
        assert np.array_equal(cached, fresh)

    def test_no_cache_under_grad_mode(self):
        f = _fixed()
        f.build()
        f.build()
        assert f.build_cache.hits == 0
        assert f.build_cache.misses == 0

    def test_no_cache_with_phase_noise(self):
        f = _fixed()
        f.noise_std = 0.05
        with no_grad():
            u1 = f.build().data
            u2 = f.build().data
        assert f.build_cache.misses == 0
        assert not np.allclose(u1, u2)  # noise must stay fresh per build

    def test_global_disable(self):
        f = _fixed()
        set_unitary_cache_enabled(False)
        with no_grad():
            f.build()
            f.build()
        assert f.build_cache.hits == 0

    def test_const_substitution_clears_cache(self):
        """The nonideality model swaps _const; stale entries must die."""
        f = _fixed()
        with no_grad():
            u1 = f.build().data.copy()
        rng = np.random.default_rng(3)
        f._const = [
            c * np.exp(1j * rng.normal(0, 0.01, size=c.shape)) for c in f._const
        ]
        with no_grad():
            u2 = f.build().data
        assert not np.allclose(u1, u2)

    @pytest.mark.parametrize("factory_cls", [MZIMeshFactory, ButterflyFactory])
    def test_all_factory_families_cache(self, factory_cls):
        f = factory_cls(8, 2, rng=np.random.default_rng(1))
        with no_grad():
            f.build()
            f.build()
        assert f.build_cache.hits == 1


class TestCrossBackendIsolation:
    """The cache must never serve a hit across dtype/backend switches."""

    def test_backend_switch_never_hits(self):
        f = _fixed()
        with no_grad():
            u128 = f.build(exec_backend="numpy")
            u64 = f.build(exec_backend="numpy-c64")
        assert f.build_cache.hits == 0
        assert f.build_cache.misses == 2
        assert u128.data.dtype == np.complex128
        assert u64.data.dtype == np.complex64

    def test_each_backend_hits_its_own_entry(self):
        f = _fixed()
        with no_grad():
            f.build(exec_backend="numpy")
            f.build(exec_backend="numpy-c64")
            r128 = f.build(exec_backend="numpy")
            r64 = f.build(exec_backend="numpy-c64")
        assert f.build_cache.hits == 2
        assert f.build_cache.misses == 2
        # Served dtypes must match the requesting backend's lane.
        assert r128.data.dtype == np.complex128
        assert r64.data.dtype == np.complex64

    def test_default_backend_switch_never_hits(self):
        from repro import set_default_backend

        f = _fixed()
        with no_grad():
            with set_default_backend("numpy"):
                f.build()
            with set_default_backend("numpy-c64"):
                u = f.build()
        assert f.build_cache.hits == 0
        assert f.build_cache.misses == 2
        assert u.data.dtype == np.complex64

    def test_cache_keys_differ_per_backend(self):
        from repro.autograd import get_backend

        f = _fixed()
        k128 = f._cache_key(get_backend("numpy"))
        k64 = f._cache_key(get_backend("numpy-c64"))
        assert k128 != k64

    @pytest.mark.parametrize("factory_cls", [MZIMeshFactory, ButterflyFactory])
    def test_all_families_isolate_backends(self, factory_cls):
        f = factory_cls(8, 2, rng=np.random.default_rng(1))
        with no_grad():
            a = f.build(exec_backend="numpy")
            b = f.build(exec_backend="numpy-c64")
        assert f.build_cache.hits == 0
        rel = np.abs(b.data.astype(np.complex128) - a.data).max()
        rel /= max(np.abs(a.data).max(), 1e-30)
        assert rel < 1e-4  # same unitary, different lane


class TestCachePrimitives:
    def test_lru_eviction(self):
        cache = UnitaryBuildCache(maxsize=2)
        a, b, c = (np.full((1,), i) for i in range(3))
        cache.put(b"a", a)
        cache.put(b"b", b)
        cache.put(b"c", c)  # evicts "a"
        assert cache.get(b"a") is None
        assert cache.get(b"b") is b
        assert len(cache) == 2

    def test_content_digest_sensitivity(self):
        x = np.arange(6.0)
        assert content_digest(x) == content_digest(x.copy())
        assert content_digest(x) != content_digest(x + 1e-12)
        assert content_digest(x) != content_digest(x.reshape(2, 3))
