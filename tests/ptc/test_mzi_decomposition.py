"""Reck-style nulling decomposition: constructive universality proof."""

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.ptc import max_mzi_count, mzi_2x2, reck_decompose, reconstruct_from_ops


class TestMZI2x2:
    def test_matches_devices_module(self, rng):
        from repro.photonics import mzi_matrix

        theta, phi = rng.uniform(0, 2 * np.pi, 2)
        assert np.allclose(mzi_2x2(theta, phi), mzi_matrix(theta, phi))


class TestReck:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_nulls_to_diagonal(self, k):
        u = unitary_group.rvs(k, random_state=k)
        ops, d = reck_decompose(u)
        off = d - np.diag(np.diag(d))
        assert np.abs(off).max() < 1e-8
        assert np.allclose(np.abs(np.diag(d)), 1.0, atol=1e-8)

    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_roundtrip(self, k):
        u = unitary_group.rvs(k, random_state=10 + k)
        ops, d = reck_decompose(u)
        rebuilt = reconstruct_from_ops(ops, np.diag(np.diag(d)))
        assert np.allclose(rebuilt, u, atol=1e-8)

    def test_op_count_at_most_universal(self):
        u = unitary_group.rvs(6, random_state=1)
        ops, _ = reck_decompose(u)
        assert len(ops) <= max_mzi_count(6)

    def test_identity_needs_no_ops(self):
        ops, d = reck_decompose(np.eye(4, dtype=complex))
        assert len(ops) == 0
        assert np.allclose(d, np.eye(4))

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            reck_decompose(np.ones((3, 3)))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            reck_decompose(np.ones((2, 3)))

    def test_permutation_input(self):
        """Permutation matrices are unitary; decomposition must handle
        the zero-entry edge cases."""
        p = np.zeros((4, 4), dtype=complex)
        p[[0, 1, 2, 3], [2, 0, 3, 1]] = 1.0
        ops, d = reck_decompose(p)
        rebuilt = reconstruct_from_ops(ops, np.diag(np.diag(d)))
        assert np.allclose(rebuilt, p, atol=1e-8)


class TestButterflyAnalysis:
    def test_np_mirror_matches_factory(self, rng):
        from repro.ptc import ButterflyFactory, butterfly_transfer_np

        f = ButterflyFactory(8, 1)
        np.copyto(f.phases.data, rng.uniform(0, 2 * np.pi, f.phases.shape))
        assert np.allclose(f.build().data[0], butterfly_transfer_np(f.phases.data[0]))

    def test_dft_matrix_unitary(self):
        from repro.photonics import is_unitary
        from repro.ptc import dft_matrix

        assert is_unitary(dft_matrix(8))

    def test_param_counts(self):
        from repro.ptc import n_free_parameters

        assert n_free_parameters(16) == 16 * 4

    def test_stage_matrix_shape_validation(self):
        from repro.ptc.butterfly import butterfly_stage_matrix

        with pytest.raises(ValueError):
            butterfly_stage_matrix(8, 3)  # stride 8 > K/2
