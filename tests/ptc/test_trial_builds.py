"""Trial-batched Monte-Carlo builds: parity across backends and with
the normal (graph) build path."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.ptc import ButterflyFactory, FixedTopologyFactory, MZIMeshFactory

K = 8
N_UNITS = 5
TOL = 1e-12


def make_factory(kind):
    # Pinned to the full-precision "numpy" execution backend: the
    # tolerances below assert double-precision algorithmic parity and
    # must not float with the ambient default (the complex64 lane has
    # its own suite in tests/autograd/test_backend_parity.py).
    rng = np.random.default_rng(3)
    if kind == "mzi":
        return MZIMeshFactory(K, N_UNITS, rng=rng, exec_backend="numpy")
    if kind == "butterfly":
        return ButterflyFactory(K, N_UNITS, rng=rng, exec_backend="numpy")
    blocks = [(None, np.ones(K // 2, bool), i % 2) for i in range(6)]
    return FixedTopologyFactory(K, N_UNITS, blocks, rng=rng, exec_backend="numpy")


FACTORIES = ["mzi", "butterfly", "fixed"]


@pytest.mark.parametrize("kind", FACTORIES)
class TestTrialBuilds:
    def test_fast_matches_reference(self, kind):
        f = make_factory(kind)
        stds = np.array([0.0, 0.02, 0.05, 0.1])
        offsets = f.draw_trial_noise(stds, np.random.default_rng(9))
        fast = f.build_trials(offsets, backend="fast")
        ref = f.build_trials(offsets, backend="reference")
        assert fast.shape == (4, N_UNITS, K, K)
        assert np.abs(fast - ref).max() <= TOL

    def test_zero_offset_trial_equals_clean_build(self, kind):
        f = make_factory(kind)
        offsets = f.draw_trial_noise(np.array([0.0]), np.random.default_rng(1))
        for off in offsets:
            assert np.all(off == 0.0)
        trial = f.build_trials(offsets)[0]
        clean = f.build().data
        assert np.abs(trial - clean).max() <= TOL

    def test_installed_offsets_replay_through_graph_build(self, kind):
        """The reference engine installs per-trial offsets and rebuilds
        through the normal graph path — that must reproduce the
        corresponding build_trials slice on both graph backends."""
        f = make_factory(kind)
        stds = np.array([0.04, 0.08])
        offsets = f.draw_trial_noise(stds, np.random.default_rng(5))
        stack = f.build_trials(offsets)
        for t in range(2):
            f.trial_phase_offsets = tuple(o[t] for o in offsets)
            try:
                for backend in ("fast", "reference"):
                    f.backend = backend
                    with no_grad():
                        built = f.build().data
                    assert np.abs(built - stack[t]).max() <= 1e-9
            finally:
                f.trial_phase_offsets = None
                f.backend = "fast"

    def test_offsets_bypass_eval_cache(self, kind):
        f = make_factory(kind)
        with no_grad():
            assert f._cacheable()
            f.trial_phase_offsets = f.draw_trial_noise(
                np.array([0.1]), np.random.default_rng(0)
            )
            try:
                assert not f._cacheable()
            finally:
                f.trial_phase_offsets = None

    def test_draw_trial_noise_scales_per_trial(self, kind):
        f = make_factory(kind)
        stds = np.array([0.0, 1e-4, 10.0])
        offsets = f.draw_trial_noise(stds, np.random.default_rng(2))
        for off in offsets:
            assert np.all(off[0] == 0.0)
            assert np.abs(off[1]).max() < np.abs(off[2]).max()

    def test_rejects_bad_offset_shape(self, kind):
        f = make_factory(kind)
        offsets = f.draw_trial_noise(np.array([0.1]), np.random.default_rng(2))
        bad = tuple(o[:, :1] for o in offsets)
        with pytest.raises(ValueError):
            f.build_trials(bad)


def test_fixed_topology_per_trial_const_stacks():
    """Per-trial constant block stacks (fabrication samples) flow
    through both backends identically."""
    f = make_factory("fixed")
    rng = np.random.default_rng(8)
    stds = np.array([0.02, 0.02, 0.06])
    offsets = f.draw_trial_noise(stds, rng)
    # Perturbed copies of the nominal consts, one stack per trial.
    base = np.stack(f._const)
    consts = np.stack([base * (1.0 - 0.01 * t) for t in range(3)])
    fast = f.build_trials(offsets, backend="fast", const_stacks=consts)
    ref = f.build_trials(offsets, backend="reference", const_stacks=consts)
    assert np.abs(fast - ref).max() <= TOL
    # Trial 0 uses the unscaled consts: must match the plain trial build.
    plain = f.build_trials(tuple(o[:1] for o in offsets))
    assert np.abs(fast[0] - plain[0]).max() <= TOL


def test_mzi_trial_build_unitary_without_noise():
    f = make_factory("mzi")
    offsets = f.draw_trial_noise(np.array([0.0]), np.random.default_rng(0))
    u = f.build_trials(offsets)[0]
    eye = np.eye(K)
    for unit in u:
        assert np.abs(unit @ unit.conj().T - eye).max() < 1e-9
