"""Tests: baseline meshes in block form match the paper's accounting."""

import numpy as np
import pytest

from repro.layout import build_netlist, place
from repro.photonics import (
    AIM,
    AMF,
    butterfly_footprint,
    estimate_power,
    mzi_onn_footprint,
)
from repro.photonics.crossings import count_inversions
from repro.ptc.reference_topologies import (
    butterfly_topology,
    mzi_topology,
    stride_interleave_perm,
)


class TestMZITopology:
    @pytest.mark.parametrize("k", [4, 8, 16, 32])
    def test_counts_match_analytic_model(self, k):
        topo = mzi_topology(k)
        analytic = mzi_onn_footprint(AMF, k)
        n_ps, n_dc, n_cr = topo.device_counts()
        assert (n_ps, n_dc, n_cr) == (analytic.n_ps, analytic.n_dc,
                                      analytic.n_cr)
        assert topo.n_blocks == analytic.n_blocks

    @pytest.mark.parametrize("k,paper_kum2", [(8, 1909), (16, 7683),
                                              (32, 30829)])
    def test_table1_footprint_exact(self, k, paper_kum2):
        topo = mzi_topology(k)
        assert topo.footprint(AMF).in_paper_units() == pytest.approx(
            paper_kum2, abs=1.0)

    def test_table2_aim_footprint(self):
        # Paper Table 2: MZI-ONN at 16x16 on AIM = 4480k um^2.
        assert mzi_topology(16).footprint(AIM).in_paper_units() == pytest.approx(
            4480, abs=1.0)

    def test_no_crossings(self):
        assert mzi_topology(8).device_counts()[2] == 0

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            mzi_topology(1)


class TestButterflyTopology:
    @pytest.mark.parametrize("k", [4, 8, 16, 32])
    def test_counts_match_analytic_model(self, k):
        topo = butterfly_topology(k)
        analytic = butterfly_footprint(AMF, k)
        n_ps, n_dc, n_cr = topo.device_counts()
        assert (n_ps, n_dc, n_cr) == (analytic.n_ps, analytic.n_dc,
                                      analytic.n_cr)
        assert topo.n_blocks == analytic.n_blocks

    @pytest.mark.parametrize("k,paper_kum2", [(8, 363), (16, 972), (32, 2443)])
    def test_table1_footprint_exact(self, k, paper_kum2):
        topo = butterfly_topology(k)
        assert topo.footprint(AMF).in_paper_units() == pytest.approx(
            paper_kum2, abs=1.0)

    def test_table1_device_rows(self):
        # Paper Table 1, FFT-ONN rows: CR/DC/Blk.
        expected = {8: (16, 24, 6), 16: (88, 64, 8), 32: (416, 160, 10)}
        for k, (cr, dc, blk) in expected.items():
            topo = butterfly_topology(k)
            n_ps, n_dc, n_cr = topo.device_counts()
            assert (n_cr, n_dc, topo.n_blocks) == (cr, dc, blk)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            butterfly_topology(12)


class TestStrideInterleave:
    @pytest.mark.parametrize("stride", [1, 2, 4])
    def test_is_permutation(self, stride):
        perm = stride_interleave_perm(8, stride)
        assert sorted(perm) == list(range(8))

    def test_inversion_formula(self):
        for k, stride in ((8, 2), (8, 4), (16, 8)):
            perm = stride_interleave_perm(k, stride)
            per_group = stride * (stride - 1) // 2
            groups = k // (2 * stride)
            assert count_inversions(list(perm)) == per_group * groups

    def test_stride_one_is_identity(self):
        np.testing.assert_array_equal(stride_interleave_perm(8, 1),
                                      np.arange(8))

    def test_incompatible_stride(self):
        with pytest.raises(ValueError, match="stride"):
            stride_interleave_perm(8, 3)


class TestPhysicalAnalyses:
    def test_netlist_counts(self):
        for topo in (mzi_topology(8), butterfly_topology(8)):
            assert build_netlist(topo).device_counts() == topo.device_counts()

    def test_mzi_chip_longer_than_butterfly(self):
        mzi = place(build_netlist(mzi_topology(8)), AMF)
        fft = place(build_netlist(butterfly_topology(8)), AMF)
        assert mzi.chip_length_um > fft.chip_length_um

    def test_mzi_burns_more_power(self):
        mzi = estimate_power(mzi_topology(8), AMF)
        fft = estimate_power(butterfly_topology(8), AMF)
        assert mzi.total_power_mw > fft.total_power_mw
        assert mzi.latency_ps > fft.latency_ps
        assert mzi.worst_path_loss_db > fft.worst_path_loss_db
