"""Multiprocess safety of the shared on-disk unitary build cache.

N processes hammer one cache directory with interleaved reads and
writes.  The contract under test: a concurrent reader observes either
a miss (None) or an exactly-correct complete array — never a torn mix
of two writes — because entries are published with atomic
same-directory renames and carry a payload checksum verified on read.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.ptc.cache import (
    UnitaryBuildCache,
    _decode_entry,
    _encode_entry,
    content_digest,
    set_unitary_cache_dir,
    unitary_cache_dir,
)

N_PROCS = 4
N_KEYS = 6
ITERS = 60
# Two distinct well-known values per key, ~64 KB each, so a torn write
# that mixes them is both likely under racing and trivially detectable.
ARR_SHAPE = (2, 64, 64)  # complex128 -> 128 KB


def _value(key_idx: int, variant: int) -> np.ndarray:
    base = np.full(ARR_SHAPE, float(variant + 1), dtype=np.complex128)
    return base * (key_idx + 1) + 1j * variant


def _keys():
    return [content_digest(np.array([i])) for i in range(N_KEYS)]


def _hammer(directory, worker_idx, iters, failures):
    """Interleave puts of two variants per key with reads of every key."""
    rng = np.random.default_rng(worker_idx)
    cache = UnitaryBuildCache(maxsize=2, directory=directory)
    keys = _keys()
    for it in range(iters):
        key_idx = int(rng.integers(N_KEYS))
        variant = int(rng.integers(2))
        cache.put(keys[key_idx], _value(key_idx, variant))
        for read_idx in range(N_KEYS):
            # Bypass the in-memory tier: disk reads are the racy path.
            got = cache._disk_get(keys[read_idx])
            if got is None:
                continue
            if not (
                np.array_equal(got, _value(read_idx, 0))
                or np.array_equal(got, _value(read_idx, 1))
            ):
                failures.put(
                    f"worker {worker_idx} iter {it}: torn read for key "
                    f"{read_idx}"
                )
                return


class TestEntryCodec:
    def test_round_trip(self):
        arr = np.arange(12, dtype=np.complex128).reshape(3, 4) * (1 + 2j)
        out = _decode_entry(_encode_entry(arr))
        assert np.array_equal(out, arr)
        assert out.dtype == arr.dtype

    def test_truncated_payload_rejected(self):
        data = _encode_entry(np.ones((4, 4)))
        for cut in (0, 10, len(data) // 2, len(data) - 1):
            assert _decode_entry(data[:cut]) is None

    def test_corrupt_byte_rejected(self):
        data = bytearray(_encode_entry(np.ones((4, 4))))
        data[len(data) // 2] ^= 0xFF
        assert _decode_entry(bytes(data)) is None


class TestDiskTier:
    def test_write_through_and_fallback(self, tmp_path):
        writer = UnitaryBuildCache(maxsize=4, directory=tmp_path)
        key = content_digest(np.array([1.0]))
        val = _value(0, 0)
        writer.put(key, val)
        # A fresh cache (fresh process stand-in) sees the entry on disk.
        reader = UnitaryBuildCache(maxsize=4, directory=tmp_path)
        got = reader.get(key)
        assert np.array_equal(got, val)
        assert reader.disk_hits == 1
        # Promotion: second get is served from memory.
        reader.get(key)
        assert reader.disk_hits == 1 and reader.hits == 2

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = UnitaryBuildCache(directory=tmp_path)
        key = content_digest(np.array([2.0]))
        cache.put(key, _value(0, 0))
        path = cache._entry_path(key)
        path.write_bytes(path.read_bytes()[:40])  # simulate a torn copy
        fresh = UnitaryBuildCache(directory=tmp_path)
        assert fresh.get(key) is None
        assert not path.exists()

    def test_global_dir_consulted_dynamically(self, tmp_path):
        prev = set_unitary_cache_dir(tmp_path)
        try:
            assert unitary_cache_dir() == tmp_path
            cache = UnitaryBuildCache(maxsize=1)
            k1 = content_digest(np.array([1]))
            k2 = content_digest(np.array([2]))
            cache.put(k1, _value(0, 0))
            cache.put(k2, _value(1, 0))  # evicts k1 from memory (maxsize=1)
            assert np.array_equal(cache.get(k1), _value(0, 0))  # disk saves it
            assert cache.disk_hits == 1
        finally:
            set_unitary_cache_dir(prev)

    def test_memory_only_without_dir(self, tmp_path):
        cache = UnitaryBuildCache(maxsize=1)
        k1 = content_digest(np.array([1]))
        k2 = content_digest(np.array([2]))
        cache.put(k1, _value(0, 0))
        cache.put(k2, _value(1, 0))
        assert cache.get(k1) is None  # evicted, no disk tier

    def test_clear_disk(self, tmp_path):
        cache = UnitaryBuildCache(directory=tmp_path)
        cache.put(content_digest(np.array([3])), _value(0, 1))
        assert list(tmp_path.glob("*.npc"))
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*.npc"))


class TestConcurrentStress:
    def test_n_process_hammer_no_torn_reads(self, tmp_path):
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        failures = ctx.Queue()
        procs = [
            ctx.Process(
                target=_hammer,
                args=(str(tmp_path), i, ITERS, failures),
                daemon=True,
            )
            for i in range(N_PROCS)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(120)
        problems = []
        while not failures.empty():
            problems.append(failures.get())
        assert not problems, problems
        assert all(p.exitcode == 0 for p in procs)
        # Every surviving entry decodes to one of the two known values.
        survivors = sorted(tmp_path.glob("*.npc"))
        assert survivors, "stress run left no cache entries"
        keys = {k.hex(): i for i, k in enumerate(_keys())}
        for path in survivors:
            arr = _decode_entry(path.read_bytes())
            assert arr is not None, f"{path.name} corrupt at rest"
            idx = keys[path.stem]
            assert np.array_equal(arr, _value(idx, 0)) or np.array_equal(
                arr, _value(idx, 1)
            )
        # No orphaned tmp files left behind by completed writers.
        assert not list(tmp_path.glob(".tmp-*"))
