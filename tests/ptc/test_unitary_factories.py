"""Unitary factories: unitarity, gradients, device counts, noise."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.photonics import AMF, is_unitary
from repro.ptc import (
    ButterflyFactory,
    FixedTopologyFactory,
    MZIMeshFactory,
    batched_scatter,
)


def all_unitary(u, atol=1e-8):
    return all(is_unitary(u[i], atol=atol) for i in range(u.shape[0]))


class TestBatchedScatter:
    def test_forward(self, rng):
        v = Tensor(rng.normal(size=(2, 3)))
        rows, cols = np.array([0, 1, 2]), np.array([1, 2, 0])
        m = batched_scatter(v, rows, cols, 3)
        assert m.shape == (2, 3, 3)
        assert np.allclose(m.data[0, 0, 1], v.data[0, 0])

    def test_gradient(self, rng):
        from repro.autograd import gradcheck

        v = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        rows, cols = np.array([0, 1]), np.array([1, 0])
        assert gradcheck(lambda v: (batched_scatter(v, rows, cols, 2) ** 2).sum(), [v])


class TestMZIMeshFactory:
    @pytest.mark.parametrize("k", [2, 4, 5, 8])
    def test_unitarity(self, k):
        f = MZIMeshFactory(k, 3)
        assert all_unitary(f.build().data)

    def test_device_counts_paper_convention(self):
        f = MZIMeshFactory(8, 1)
        n_ps, n_dc, n_cr = f.device_counts()
        assert n_ps == 2 * 8 * 8  # K * 2K per mesh
        assert n_dc == 2 * (8 * 7 // 2)  # 2 DCs per MZI
        assert n_cr == 0

    def test_phases_trainable(self, rng):
        f = MZIMeshFactory(4, 2)
        u = f.build()
        loss = (u.real() ** 2).sum()
        loss.backward()
        assert f.theta.grad is not None and np.abs(f.theta.grad).max() > 0
        assert f.phi.grad is not None

    def test_universality_reachability(self, rng):
        """Gradient descent on mesh phases can fit a random target
        unitary column — the practical consequence of universality."""
        from repro.optim import Adam

        k = 4
        f = MZIMeshFactory(k, 1)
        target = np.linalg.qr(rng.normal(size=(k, k)) + 1j * rng.normal(size=(k, k)))[0]
        opt = Adam([f.theta, f.phi], lr=0.05)
        first = None
        for step in range(150):
            u = f.build()[0]
            diff = u - Tensor(target)
            loss = (diff * diff.conj()).real().sum()
            f.zero_grad()
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
        assert loss.item() < first * 0.2


class TestButterflyFactory:
    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_unitarity(self, k):
        f = ButterflyFactory(k, 2)
        assert all_unitary(f.build().data)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ButterflyFactory(6, 1)

    def test_device_counts_match_table(self):
        f = ButterflyFactory(16, 1)
        n_ps, n_dc, n_cr = f.device_counts()
        assert n_ps == 16 * 4  # K * log2(K)
        assert n_dc == 4 * 8
        assert n_cr == 44  # per-mesh half of Table 1's 88

    def test_log_depth_parameter_count(self):
        f = ButterflyFactory(8, 1)
        assert f.phases.size == 8 * 3

    def test_restricted_vs_mzi_params(self):
        """Butterfly has far fewer free parameters than a full mesh —
        the expressivity restriction the paper discusses."""
        bf = ButterflyFactory(16, 1)
        mzi = MZIMeshFactory(16, 1)
        assert bf.phases.size < (mzi.theta.size + mzi.phi.size) / 2


class TestFixedTopologyFactory:
    def make(self, k=6, n_units=2, rng=None):
        rng = rng or np.random.default_rng(0)
        blocks = [
            (rng.permutation(k), np.array([True] * (k // 2)), 0),
            (None, np.array([True, False])[: (k - 1) // 2], 1),
        ]
        return FixedTopologyFactory(k, n_units, blocks)

    def test_unitarity(self, rng):
        f = self.make(rng=rng)
        assert all_unitary(f.build().data)

    def test_empty_blocks_identity(self):
        f = FixedTopologyFactory(4, 2, [])
        u = f.build().data
        assert np.allclose(u, np.eye(4))

    def test_device_counts(self, rng):
        k = 6
        perm = np.array([5, 4, 3, 2, 1, 0])  # 15 inversions
        blocks = [(perm, np.array([True, True, False]), 0)]
        f = FixedTopologyFactory(k, 1, blocks)
        n_ps, n_dc, n_cr = f.device_counts()
        assert (n_ps, n_dc, n_cr) == (6, 2, 15)

    def test_noise_injection_changes_output(self, rng):
        f = self.make(rng=rng)
        clean = f.build().data.copy()
        f.noise_std = 0.1
        noisy = f.build().data
        assert not np.allclose(clean, noisy)
        f.noise_std = 0.0
        assert np.allclose(f.build().data, clean)

    def test_phases_trainable(self, rng):
        f = self.make(rng=rng)
        (f.build().real() ** 2).sum().backward()
        assert np.abs(f.phases.grad).max() > 0
