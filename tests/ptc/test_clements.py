"""Tests for the Clements rectangular decomposition."""

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.photonics.devices import is_unitary
from repro.ptc.clements import (
    ClementsDecomposition,
    clements_decompose,
    factor_two_by_two,
    mesh_depth,
    reconstruct_output_phase_form,
    schedule_layers,
    to_output_phase_form,
)
from repro.ptc.mzi import max_mzi_count, mzi_2x2, reck_decompose


def random_unitary(k: int, seed: int) -> np.ndarray:
    return unitary_group.rvs(k, random_state=seed)


class TestClementsDecompose:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 8])
    def test_round_trip(self, k):
        u = random_unitary(k, seed=k)
        dec = clements_decompose(u)
        np.testing.assert_allclose(dec.reconstruct(), u, atol=1e-8)

    @pytest.mark.parametrize("k", [2, 4, 6, 8])
    def test_op_count_generic(self, k):
        u = random_unitary(k, seed=100 + k)
        dec = clements_decompose(u)
        assert dec.n_ops == max_mzi_count(k)

    def test_identity_needs_no_ops(self):
        dec = clements_decompose(np.eye(5))
        assert dec.n_ops == 0
        np.testing.assert_allclose(dec.diag, np.ones(5))

    def test_diag_is_unit_modulus(self):
        u = random_unitary(6, seed=3)
        dec = clements_decompose(u)
        np.testing.assert_allclose(np.abs(dec.diag), 1.0, atol=1e-8)

    def test_dft_matrix(self):
        k = 8
        f = np.fft.fft(np.eye(k)) / np.sqrt(k)
        dec = clements_decompose(f)
        np.testing.assert_allclose(dec.reconstruct(), f, atol=1e-8)

    def test_permutation_matrix(self):
        p = np.eye(5)[[3, 0, 4, 1, 2]]
        dec = clements_decompose(p.astype(complex))
        np.testing.assert_allclose(dec.reconstruct(), p, atol=1e-8)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            clements_decompose(np.ones((2, 3)))

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError, match="unitary"):
            clements_decompose(np.ones((3, 3)))

    def test_result_type(self):
        dec = clements_decompose(random_unitary(4, seed=0))
        assert isinstance(dec, ClementsDecomposition)
        assert dec.k == 4


class TestFactorTwoByTwo:
    @pytest.mark.parametrize("seed", range(8))
    def test_round_trip_random(self, seed):
        a = unitary_group.rvs(2, random_state=seed)
        d, theta, phi = factor_two_by_two(a)
        np.testing.assert_allclose(np.diag(d) @ mzi_2x2(theta, phi), a, atol=1e-8)
        np.testing.assert_allclose(np.abs(d), 1.0, atol=1e-10)

    def test_identity(self):
        d, theta, phi = factor_two_by_two(np.eye(2))
        np.testing.assert_allclose(np.diag(d) @ mzi_2x2(theta, phi), np.eye(2), atol=1e-8)

    def test_swap(self):
        swap = np.array([[0, 1], [1, 0]], dtype=complex)
        d, theta, phi = factor_two_by_two(swap)
        np.testing.assert_allclose(np.diag(d) @ mzi_2x2(theta, phi), swap, atol=1e-8)

    def test_pure_phase_screen(self):
        a = np.diag(np.exp(1j * np.array([0.3, -1.2])))
        d, theta, phi = factor_two_by_two(a)
        np.testing.assert_allclose(np.diag(d) @ mzi_2x2(theta, phi), a, atol=1e-8)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError, match="unitary"):
            factor_two_by_two(np.ones((2, 2)))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="2x2"):
            factor_two_by_two(np.eye(3))


class TestOutputPhaseForm:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 8])
    def test_round_trip(self, k):
        u = random_unitary(k, seed=20 + k)
        dec = clements_decompose(u)
        diag, ops = to_output_phase_form(dec)
        np.testing.assert_allclose(
            reconstruct_output_phase_form(k, diag, ops), u, atol=1e-7
        )

    def test_preserves_op_count(self):
        u = random_unitary(6, seed=42)
        dec = clements_decompose(u)
        diag, ops = to_output_phase_form(dec)
        assert len(ops) == dec.n_ops

    def test_diag_unit_modulus(self):
        u = random_unitary(5, seed=7)
        diag, _ = to_output_phase_form(clements_decompose(u))
        np.testing.assert_allclose(np.abs(diag), 1.0, atol=1e-8)


class TestScheduling:
    @pytest.mark.parametrize("k", [4, 6, 8, 12])
    def test_clements_depth_at_most_k(self, k):
        u = random_unitary(k, seed=k * 3)
        _, ops = to_output_phase_form(clements_decompose(u))
        assert mesh_depth(ops, k) <= k

    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_rectangle_shallower_than_triangle(self, k):
        u = random_unitary(k, seed=k * 5)
        _, rect_ops = to_output_phase_form(clements_decompose(u))
        tri_ops, _ = reck_decompose(u)
        assert mesh_depth(rect_ops, k) <= mesh_depth(tri_ops, k)

    def test_layers_partition_ops(self):
        k = 6
        u = random_unitary(k, seed=11)
        _, ops = to_output_phase_form(clements_decompose(u))
        layers = schedule_layers(ops, k)
        assert sum(len(layer) for layer in layers) == len(ops)

    def test_no_waveguide_conflicts_within_layer(self):
        k = 8
        u = random_unitary(k, seed=13)
        _, ops = to_output_phase_form(clements_decompose(u))
        for layer in schedule_layers(ops, k):
            used = set()
            for op in layer:
                assert op.p not in used and op.p + 1 not in used
                used.update((op.p, op.p + 1))

    def test_empty_ops(self):
        assert mesh_depth([], 4) == 0


class TestAgainstReck:
    @pytest.mark.parametrize("k", [3, 5, 8])
    def test_both_reconstruct_same_unitary(self, k):
        u = random_unitary(k, seed=77 + k)
        c = clements_decompose(u).reconstruct()
        ops, diag = reck_decompose(u)
        from repro.ptc.mzi import reconstruct_from_ops

        r = reconstruct_from_ops(ops, diag)
        np.testing.assert_allclose(c, r, atol=1e-7)
        np.testing.assert_allclose(c, u, atol=1e-7)

    def test_reconstruction_is_unitary(self):
        u = random_unitary(7, seed=99)
        assert is_unitary(clements_decompose(u).reconstruct())
