"""Fast-backend parity against the reference per-column loops.

Every mesh factory must produce identical transfer matrices AND
identical parameter gradients under ``backend="fast"`` and
``backend="reference"`` (max abs diff <= 1e-9; in practice the fast
path replays the exact same elementary operations fused into one
node, so differences are at rounding level).
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.ptc import (
    ButterflyFactory,
    FixedTopologyFactory,
    MZIMeshFactory,
    TopologyPopulation,
    fit_unitary_population,
)
from repro.ptc.reference_topologies import butterfly_topology, mzi_topology

TOL = 1e-9


def _truncated(topo, n_blocks):
    """Copy of ``topo`` keeping only the first ``n_blocks`` U blocks."""
    from repro.core.topology import PTCTopology

    return PTCTopology(
        k=topo.k,
        blocks_u=topo.blocks_u[:n_blocks],
        blocks_v=topo.blocks_v,
        name=f"{topo.name}-trunc{n_blocks}",
    )


def _mixed_blocks(k, n_blocks, rng):
    blocks = []
    for b in range(n_blocks):
        offset = b % 2
        n_slots = (k - offset) // 2
        mask = rng.random(n_slots) < 0.7
        perm = rng.permutation(k) if b % 3 else None
        blocks.append((perm, mask, offset))
    return blocks


def _factories(kind, k=8, n_units=3, seed=11):
    def make(backend):
        rng = np.random.default_rng(seed)
        if kind == "mzi":
            return MZIMeshFactory(k, n_units, rng=rng, backend=backend)
        if kind == "butterfly":
            return ButterflyFactory(k, n_units, rng=rng, backend=backend)
        blocks = _mixed_blocks(k, 6, np.random.default_rng(seed + 1))
        return FixedTopologyFactory(k, n_units, blocks, rng=rng, backend=backend)

    return make("fast"), make("reference")


@pytest.mark.parametrize("kind", ["mzi", "butterfly", "fixed"])
class TestFactoryParity:
    def test_forward(self, kind):
        fast, ref = _factories(kind)
        diff = np.abs(fast.build().data - ref.build().data).max()
        assert diff <= TOL

    def test_gradients(self, kind):
        fast, ref = _factories(kind)
        grads = {}
        for name, f in (("fast", fast), ("ref", ref)):
            u = f.build()
            (u * u.conj()).real().sum().backward()
            grads[name] = [np.array(p.grad) for p in f.parameters()]
        for gf, gr in zip(grads["fast"], grads["ref"]):
            assert np.abs(gf - gr).max() <= TOL

    def test_backward_through_downstream_ops(self, kind, rng):
        """Parity must survive composition with the USV layer math."""
        fast, ref = _factories(kind)
        x = rng.normal(size=(8, 8))
        out = {}
        for name, f in (("fast", fast), ("ref", ref)):
            w = f.build().real()[0]
            loss = ((Tensor(x) @ w) ** 2).sum()
            loss.backward()
            out[name] = (float(loss.item()), [np.array(p.grad) for p in f.parameters()])
        assert abs(out["fast"][0] - out["ref"][0]) <= TOL
        for gf, gr in zip(out["fast"][1], out["ref"][1]):
            assert np.abs(gf - gr).max() <= TOL


class TestUnitarity:
    """The fast path must preserve the physics: meshes are unitary."""

    @pytest.mark.parametrize("kind", ["mzi", "butterfly"])
    def test_fast_build_is_unitary(self, kind):
        fast, _ = _factories(kind)
        u = fast.build().data
        eye = np.eye(fast.k)
        for i in range(u.shape[0]):
            assert np.allclose(u[i].conj().T @ u[i], eye, atol=1e-10)

    def test_fixed_topology_unitary(self):
        fast, _ = _factories("fixed")
        u = fast.build().data
        for i in range(u.shape[0]):
            assert np.allclose(u[i].conj().T @ u[i], np.eye(fast.k), atol=1e-10)


class TestPopulation:
    def test_padded_transfer_matches_individual_builds(self, rng):
        k = 8
        topos = [_truncated(mzi_topology(k), 4), butterfly_topology(k), mzi_topology(k)]
        pop = TopologyPopulation(topos, side="u")
        assert pop.n_blocks == max(len(t.blocks_u) for t in topos)
        phases = pop.make_phases(rng=np.random.default_rng(3))
        stacked = pop.transfer(phases).data
        for p, topo in enumerate(topos):
            blocks = [(b.perm, b.coupler_mask, b.offset) for b in topo.blocks_u]
            f = FixedTopologyFactory(k, 1, blocks)
            np.copyto(f.phases.data, phases.data[p : p + 1, : len(blocks), :])
            solo = f.build().data[0]
            assert np.abs(stacked[p] - solo).max() <= TOL

    def test_population_fit_ranks_universal_mesh_first(self):
        from scipy.stats import unitary_group

        k = 8
        topos = [mzi_topology(k), _truncated(mzi_topology(k), 2)]
        target = unitary_group.rvs(k, random_state=0)
        res = fit_unitary_population(
            topos, target, steps=120, rng=np.random.default_rng(0)
        )
        assert res.errors.shape == (2,)
        # The full-depth rectangle is universal; the 2-block mesh is not.
        assert res.best == 0
        assert res.errors[0] < res.errors[1]

    def test_mismatched_k_rejected(self):
        with pytest.raises(ValueError):
            TopologyPopulation([mzi_topology(8), mzi_topology(4)])
