"""End-to-end service tests: submit/run/result, worker-count
invariance, artifact integrity, retries, and failure surfacing."""

import json

import pytest

from repro.service import ArtifactStore, DesignService, run_until_idle
from repro.utils.serialization import json_digest



class TestInlineExecution:
    def test_submit_run_result(self, service):
        job_id = service.submit("svc-sum", {"n_shards": 4, "seed": 1})
        service.run(n_workers=0)
        result = service.result(job_id)
        assert len(result["values"]) == 4
        assert result["total"] == pytest.approx(sum(result["values"]))
        assert service.status(job_id)["status"] == "done"

    def test_deterministic_across_roots(self, tmp_path):
        def run(root):
            svc = DesignService(root)
            job_id = svc.submit("svc-sum", {"n_shards": 5, "seed": 9})
            svc.run(n_workers=0)
            data = svc.result_bytes(job_id)
            svc.close()
            return data

        assert run(tmp_path / "a") == run(tmp_path / "b")

    def test_wait_returns_result(self, service):
        job_id = service.submit("svc-sum", {"n_shards": 2})
        service.run(n_workers=0)
        assert service.wait(job_id, timeout=5)["values"]

    def test_result_before_run_raises(self, service):
        job_id = service.submit("svc-sum", {"n_shards": 2})
        with pytest.raises(RuntimeError, match="not ready"):
            service.result(job_id)


class TestPoolExecution:
    def test_pool_matches_inline_bytes(self, tmp_path):
        params = {"n_shards": 6, "seed": 4}

        inline = DesignService(tmp_path / "inline")
        job_inline = inline.submit("svc-sum", params)
        inline.run(n_workers=0)

        pooled = DesignService(tmp_path / "pooled")
        job_pooled = pooled.submit("svc-sum", params)
        pooled.run(n_workers=2, timeout=120)

        assert job_inline == job_pooled  # content-addressed identity
        assert inline.result_bytes(job_inline) == pooled.result_bytes(job_pooled)
        inline.close()
        pooled.close()

    def test_pool_timeout_raises(self, service):
        service.submit("svc-sum", {"n_shards": 2, "sleep": 30})
        with pytest.raises(TimeoutError):
            service.run(n_workers=1, timeout=0.5)

    def test_multiple_jobs_one_drain(self, service):
        ids = [
            service.submit("svc-sum", {"n_shards": 2, "seed": s})
            for s in range(3)
        ]
        assert len(set(ids)) == 3
        service.run(n_workers=2, timeout=120)
        for job_id in ids:
            assert service.status(job_id)["status"] == "done"


class TestFailureHandling:
    def test_failing_job_is_failed_and_raises(self, service):
        job_id = service.submit("svc-boom", {"n_shards": 2})
        service.run(n_workers=0, max_attempts=1, backoff_seconds=0.01)
        status = service.status(job_id)
        assert status["status"] == "failed"
        assert "boom" in status["error"]
        with pytest.raises(RuntimeError, match="failed"):
            service.result(job_id)

    def test_transient_failure_retried_to_success(self, service, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        job_id = service.submit(
            "svc-flaky", {"n_shards": 3, "marker_dir": str(marker_dir)}
        )
        service.run(n_workers=0, max_attempts=3, backoff_seconds=0.01)
        assert service.result(job_id)["values"] == [0, 10, 20]
        # Each shard burned exactly two attempts: one fail, one success.
        history = service.queue.history(job_id)
        retries = [r for r in history if r["reason"] == "retry"]
        assert len(retries) == 3

    def test_failed_job_does_not_block_others(self, service):
        bad = service.submit("svc-boom", {"n_shards": 1})
        good = service.submit("svc-sum", {"n_shards": 2})
        service.run(n_workers=0, max_attempts=1, backoff_seconds=0.01)
        assert service.status(bad)["status"] == "failed"
        assert service.status(good)["status"] == "done"


class TestOrphanedFinalization:
    def test_client_finalizes_completed_but_unaggregated_job(self, service):
        """A worker dying between its last complete_shard and
        finalize_job leaves the job 'running' with all shards done;
        the client's result() call must finish the aggregation."""
        from repro.service import get_job_type

        job_id = service.submit("svc-sum", {"n_shards": 2, "seed": 2})
        job_type = get_job_type("svc-sum")
        q, store = service.queue, service.store
        while True:
            claim = q.claim_shard("doomed-worker", lease_seconds=60)
            if claim is None:
                break
            ref = store.put(job_type.run_shard(claim.params, claim.payload))
            q.complete_shard(claim.job_id, claim.idx, ref, "doomed-worker")
        assert service.status(job_id)["status"] == "running"

        result = service.result(job_id)  # client-side finalization
        assert service.status(job_id)["status"] == "done"
        assert len(result["values"]) == 2


class TestArtifactStore:
    def test_content_addressing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        obj = {"a": [1, 2, 3], "b": "x"}
        ref = store.put(obj)
        assert ref == json_digest(obj)
        assert store.put(obj) == ref  # idempotent
        assert store.get(ref) == obj

    def test_corruption_detected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ref = store.put({"v": 1})
        path = tmp_path / f"{ref}.json"
        blob = json.loads(path.read_text())
        blob["v"] = 2
        path.write_text(json.dumps(blob))
        with pytest.raises(ValueError, match="content verification"):
            store.get(ref)

    def test_missing_ref(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(FileNotFoundError):
            store.get("0" * 32)

    def test_malformed_ref_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="malformed"):
            store.get("../escape")


class TestEchoPayloads:
    def test_params_survive_the_full_trip(self, service):
        params = {
            "nested": {"list": [1, 2.5, "three", None, True]},
            "unicode": "φοτονικ",
            "empty": {},
        }
        job_id = service.submit("svc-echo", params)
        service.run(n_workers=0)
        assert service.result(job_id)["params"] == params


class TestRunUntilIdle:
    def test_idle_queue_returns_immediately(self, service):
        run_until_idle(service.queue_path, service.artifact_root, n_workers=0)
