"""Crash injection and resume determinism.

The headline guarantee of the design service: SIGKILL any worker (or
the whole pool) at any instant, restart, and the final aggregated
artifact is byte-identical to an uninterrupted single-worker run.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.service import DesignService


def _reference_bytes(tmp_path, kind, params):
    """Uninterrupted inline single-worker run: the determinism oracle."""
    svc = DesignService(tmp_path / "reference")
    job_id = svc.submit(kind, params)
    svc.run(n_workers=0)
    data = svc.result_bytes(job_id)
    svc.close()
    return data


def _wait_for_progress(svc, job_id, min_done, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if svc.status(job_id)["shards"].get("done", 0) >= min_done:
            return
        time.sleep(0.02)
    raise AssertionError(f"no progress: {svc.status(job_id)}")


def _wait_done(svc, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if svc.status(job_id)["status"] in ("done", "failed"):
            return
        time.sleep(0.05)
    raise AssertionError(f"job stuck: {svc.status(job_id)}")


class TestSigkillOneWorker:
    def test_surviving_worker_recovers_lease(self, tmp_path):
        """Kill one of two workers mid-run; the survivor picks up the
        dead worker's shard after its (short) lease lapses and the
        aggregate matches the uninterrupted reference byte for byte."""
        params = {"n_shards": 10, "seed": 3, "sleep": 0.2}
        expected = _reference_bytes(tmp_path, "svc-sum", params)

        svc = DesignService(tmp_path / "crashy")
        job_id = svc.submit("svc-sum", params)
        pool = svc.pool(2, lease_seconds=1.5, poll_seconds=0.02).start()
        try:
            _wait_for_progress(svc, job_id, min_done=2)
            victim = pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            _wait_done(svc, job_id)
        finally:
            pool.terminate()

        assert svc.status(job_id)["status"] == "done"
        assert svc.result_bytes(job_id) == expected
        # The kill is visible in the audit trail or in retried attempts
        # only if the victim held a lease at that instant; correctness
        # must hold either way.
        svc.close()


class TestKillWholePoolThenRestart:
    def test_fresh_pool_resumes_byte_identical(self, tmp_path):
        """kill -9 every worker mid-grid, then start a brand-new pool
        on the same root: it resumes from the queue and completes to
        the identical artifact."""
        params = {"n_shards": 12, "seed": 7, "sleep": 0.15}
        expected = _reference_bytes(tmp_path, "svc-sum", params)

        svc = DesignService(tmp_path / "crashy")
        job_id = svc.submit("svc-sum", params)
        pool = svc.pool(2, lease_seconds=1.0, poll_seconds=0.02).start()
        try:
            _wait_for_progress(svc, job_id, min_done=2)
            for pid in pool.pids():
                os.kill(pid, signal.SIGKILL)
        finally:
            pool.terminate()
        status = svc.status(job_id)
        assert status["status"] == "running"
        assert status["shards"].get("done", 0) < params["n_shards"]

        pool2 = svc.pool(2, lease_seconds=1.0, poll_seconds=0.02).start()
        try:
            _wait_done(svc, job_id)
        finally:
            pool2.terminate()

        assert svc.status(job_id)["status"] == "done"
        assert svc.result_bytes(job_id) == expected
        svc.close()


class TestRobustnessGridResume:
    """The paper-facing workload: a Monte-Carlo robustness grid."""

    GRID_PARAMS = {
        "mesh": "mzi",
        "k": 8,
        "n_test": 32,
        "n_train": 32,
        "train_epochs": 0,
        "noise_stds": [0.02, 0.08],
        "n_runs": 8,
        "shard_trials": 2,
        "batch_size": 16,
    }

    def test_kill_worker_mid_grid_byte_identical(self, tmp_path):
        expected = _reference_bytes(tmp_path, "robustness-grid",
                                    self.GRID_PARAMS)

        svc = DesignService(tmp_path / "crashy")
        job_id = svc.submit("robustness-grid", self.GRID_PARAMS)
        # 2 noise levels x 8 runs = 16 trials, 2 per shard.
        assert svc.status(job_id)["n_shards"] == 8
        pool = svc.pool(2, lease_seconds=2.0, poll_seconds=0.02).start()
        try:
            _wait_for_progress(svc, job_id, min_done=1, timeout=120)
            os.kill(pool.pids()[-1], signal.SIGKILL)
            _wait_done(svc, job_id, timeout=180)
        finally:
            pool.terminate()

        assert svc.status(job_id)["status"] == "done"
        assert svc.result_bytes(job_id) == expected

        # And the decoded grid is a sane accuracy table.
        result = svc.result(job_id)
        grid = np.asarray(result["grid"])
        assert grid.shape == (2, 8)
        assert np.all((grid >= 0.0) & (grid <= 1.0))
        svc.close()
