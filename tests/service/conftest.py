"""Shared fixtures for the design-service test suites.

The job kinds registered here are deterministic by construction (all
randomness seeded via :func:`repro.utils.rng.stable_seed`) and cheap,
so the queue/worker machinery — not the science — dominates test
time.  Registration happens at import time in the parent process;
fork-started worker processes inherit the registry.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.service import DesignService, JobType, register_job_type
from repro.utils.rng import stable_seed

SUM_KIND = "svc-sum"
ECHO_KIND = "svc-echo"
BOOM_KIND = "svc-boom"
FLAKY_KIND = "svc-flaky"


def _sum_expand(params):
    return [{"i": i} for i in range(int(params.get("n_shards", 4)))]


def _sum_run_shard(params, shard):
    if params.get("sleep"):
        time.sleep(float(params["sleep"]))
    rng = np.random.default_rng(
        stable_seed("svc-sum", params.get("seed", 0), shard["i"])
    )
    return {"i": shard["i"], "value": float(rng.normal(size=64).sum())}


def _sum_aggregate(params, results):
    values = [r["value"] for r in results]
    return {"values": values, "total": float(sum(values))}


def _echo_expand(params):
    return [{"idx": 0}]


def _boom_run_shard(params, shard):
    raise RuntimeError(f"boom on shard {shard}")


def _flaky_run_shard(params, shard):
    # Fails once per shard, then succeeds: the retry-path probe.  The
    # marker file stands in for external transient state.
    marker = Path(params["marker_dir"]) / f"attempted-{shard['i']}"
    if not marker.exists():
        marker.write_text("1")
        raise RuntimeError("transient failure, retry me")
    return {"i": shard["i"], "value": shard["i"] * 10}


register_job_type(JobType(
    kind=SUM_KIND,
    expand=_sum_expand,
    run_shard=_sum_run_shard,
    aggregate=_sum_aggregate,
    description="deterministic seeded sums (tests)",
))

register_job_type(JobType(
    kind=ECHO_KIND,
    expand=_echo_expand,
    run_shard=lambda params, shard: {"params": params},
    aggregate=lambda params, results: results[0],
    description="echoes its params back (tests)",
))

register_job_type(JobType(
    kind=BOOM_KIND,
    expand=_sum_expand,
    run_shard=_boom_run_shard,
    aggregate=_sum_aggregate,
    description="always fails (tests)",
))

register_job_type(JobType(
    kind=FLAKY_KIND,
    expand=_sum_expand,
    run_shard=_flaky_run_shard,
    aggregate=lambda params, results: {"values": [r["value"] for r in results]},
    description="fails each shard once then succeeds (tests)",
))


@pytest.fixture()
def service(tmp_path):
    svc = DesignService(tmp_path / "svc")
    yield svc
    svc.close()
