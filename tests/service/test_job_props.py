"""Hypothesis properties of the job model and the queue state machine.

Two families:

* randomized JSON payloads survive the submit -> claim -> artifact
  round trip bit-for-bit, and content addressing is insensitive to
  dict key order;
* random interleavings of queue operations never skip a state — every
  audit-trail edge is legal under the declared transition tables, and
  public APIs never leak :class:`IllegalTransition`.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    ArtifactStore,
    JOB_TRANSITIONS,
    JobQueue,
    JobSpec,
    SHARD_TRANSITIONS,
)
from repro.utils.serialization import canonical_json_dumps, json_digest

# JSON-native scalars; floats bounded + integral-safe so Python/JSON
# round-trips are exact (canonical encoding forbids NaN/Inf anyway).
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

json_params = st.dictionaries(st.text(min_size=1, max_size=10), json_values,
                              max_size=5)


class TestPayloadRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(params=json_params)
    def test_canonical_encoding_round_trips(self, params):
        spec = JobSpec(kind="svc-echo", params=params).validate()
        assert json.loads(spec.canonical())["params"] == params

    @settings(max_examples=40, deadline=None)
    @given(params=json_params)
    def test_job_id_ignores_key_order(self, params):
        reversed_params = dict(reversed(list(params.items())))
        assert (
            JobSpec(kind="svc-echo", params=params).job_id
            == JobSpec(kind="svc-echo", params=reversed_params).job_id
        )

    @settings(max_examples=25, deadline=None)
    @given(params=json_params)
    def test_submit_claim_round_trip(self, tmp_path_factory, params):
        root = tmp_path_factory.mktemp("props")
        queue = JobQueue(root / "q.sqlite")
        try:
            job_id = queue.submit(
                JobSpec(kind="svc-echo", params=params), now=100.0
            )
            assert job_id == json_digest(
                {"kind": "svc-echo", "params": params}
            )
            claim = queue.claim_shard("w", now=101.0)
            assert claim.params == params
            # Resubmission while running is a no-op.
            assert queue.submit(
                JobSpec(kind="svc-echo", params=params), now=102.0
            ) == job_id
            assert len(queue.list_jobs()) == 1
        finally:
            queue.close()

    @settings(max_examples=40, deadline=None)
    @given(obj=json_values)
    def test_artifact_store_round_trip(self, tmp_path_factory, obj):
        store = ArtifactStore(tmp_path_factory.mktemp("art"))
        ref = store.put(obj)
        assert store.get(ref) == obj
        assert store.raw_bytes(ref) == canonical_json_dumps(obj).encode()


def _apply_op(queue, op, now):
    """One randomized queue operation; returns claims it produced."""
    name, arg = op
    if name == "claim":
        return queue.claim_shard(f"w{arg}", lease_seconds=arg * 3.0 + 0.5,
                                 now=now)
    if name == "requeue":
        queue.requeue_expired(now=now)
    elif name == "finalize":
        for job_id in queue.finalizable_jobs():
            queue.finalize_job(job_id, "final-ref", now=now)
    return None


ops = st.lists(
    st.one_of(
        st.tuples(st.just("claim"), st.integers(0, 2)),
        st.tuples(st.just("complete"), st.integers(0, 3)),
        st.tuples(st.just("fail"), st.integers(0, 3)),
        st.tuples(st.just("requeue"), st.just(0)),
        st.tuples(st.just("finalize"), st.just(0)),
        st.tuples(st.just("tick"), st.integers(1, 20)),
    ),
    min_size=5,
    max_size=40,
)


class TestStateMachineNeverSkips:
    @settings(max_examples=30, deadline=None)
    @given(op_list=ops, n_shards=st.integers(1, 4))
    def test_random_interleavings_keep_history_legal(
        self, tmp_path_factory, op_list, n_shards
    ):
        root = tmp_path_factory.mktemp("fsm")
        queue = JobQueue(root / "q.sqlite")
        now = 100.0
        outstanding = []  # live claims: (job_id, idx, worker)
        try:
            job_id = queue.submit(
                JobSpec(kind="svc-sum", params={"n_shards": n_shards}),
                now=now,
            )
            for name, arg in op_list:
                now += 0.25
                if name == "tick":
                    now += float(arg)
                elif name == "claim":
                    claim = _apply_op(queue, (name, arg), now)
                    if claim is not None:
                        outstanding.append(
                            (claim.job_id, claim.idx, f"w{arg}")
                        )
                elif name in ("complete", "fail") and outstanding:
                    jid, idx, worker = outstanding.pop(arg % len(outstanding))
                    if name == "complete":
                        queue.complete_shard(jid, idx, f"ref-{idx}", worker,
                                             now=now)
                    else:
                        queue.fail_shard(jid, idx, "induced", worker,
                                         max_attempts=2,
                                         backoff_seconds=0.5, now=now)
                else:
                    _apply_op(queue, (name, arg), now)

            # Invariant 1: every audited edge is legal from the tracked
            # state — no transition was ever skipped.
            state = {}
            for row in queue.history():
                key = (row["entity"], row["job_id"], row["idx"])
                assert state.get(key) == row["from_state"]
                table = (JOB_TRANSITIONS if row["entity"] == "job"
                         else SHARD_TRANSITIONS)
                assert row["to_state"] in table[state.get(key)]
                state[key] = row["to_state"]

            # Invariant 2: the final DB states agree with the replay.
            status = queue.job_status(job_id)
            assert state[("job", job_id, None)] == status["status"]
            for idx_status, count in status["shards"].items():
                assert count >= 0

            # Invariant 3: a done job has every shard done and a
            # result only via finalize; a failed job accepts no claims.
            if status["status"] in ("done", "failed"):
                assert queue.claim_shard("probe", now=now + 1000.0) is None
        finally:
            queue.close()
