"""Unit tests for the persistent queue: lifecycle, leases, retries,
fencing, and the legality of every audited transition."""

import pytest

from repro.service import (
    IllegalTransition,
    JOB_TRANSITIONS,
    JobQueue,
    JobSpec,
    SHARD_TRANSITIONS,
)



@pytest.fixture()
def queue(tmp_path):
    q = JobQueue(tmp_path / "queue.sqlite")
    yield q
    q.close()


def _submit(queue, n_shards=3, seed=0, now=100.0, kind="svc-sum"):
    spec = JobSpec(kind=kind, params={"n_shards": n_shards, "seed": seed})
    return queue.submit(spec, now=now)


def assert_history_legal(history):
    """Replay the audit trail; every edge must be a legal transition
    from the tracked state (i.e. no state was ever skipped)."""
    state = {}
    for row in history:
        key = (row["entity"], row["job_id"], row["idx"])
        old = state.get(key)
        assert old == row["from_state"], (
            f"{key}: audit says {row['from_state']} -> {row['to_state']} "
            f"but tracked state is {old}"
        )
        table = JOB_TRANSITIONS if row["entity"] == "job" else SHARD_TRANSITIONS
        assert row["to_state"] in table[old], (
            f"{key}: illegal edge {old} -> {row['to_state']}"
        )
        state[key] = row["to_state"]


class TestSubmit:
    def test_idempotent_same_id(self, queue):
        a = _submit(queue, now=100.0)
        b = _submit(queue, now=200.0)
        assert a == b
        assert len(queue.list_jobs()) == 1
        assert queue.job_status(a)["n_shards"] == 3

    def test_different_params_different_id(self, queue):
        assert _submit(queue, seed=0) != _submit(queue, seed=1)

    def test_unknown_kind_rejected(self, queue):
        with pytest.raises(KeyError, match="unknown job kind"):
            queue.submit(JobSpec(kind="no-such-kind", params={}))

    def test_non_json_params_rejected(self, queue):
        with pytest.raises((TypeError, ValueError)):
            queue.submit(JobSpec(kind="svc-sum", params={"bad": {1, 2}}))

    def test_status_of_missing_job(self, queue):
        with pytest.raises(KeyError):
            queue.job_status("does-not-exist")


class TestClaimComplete:
    def test_full_lifecycle(self, queue):
        job_id = _submit(queue, n_shards=2, now=100.0)
        assert queue.job_status(job_id)["status"] == "pending"

        c0 = queue.claim_shard("w1", lease_seconds=60, now=101.0)
        assert (c0.job_id, c0.idx, c0.attempts) == (job_id, 0, 1)
        assert queue.job_status(job_id)["status"] == "running"

        c1 = queue.claim_shard("w1", lease_seconds=60, now=102.0)
        assert c1.idx == 1
        assert queue.claim_shard("w1", now=103.0) is None

        assert queue.complete_shard(job_id, 0, "ref-0", "w1", now=104.0)
        assert not queue.finalizable_jobs()
        assert queue.complete_shard(job_id, 1, "ref-1", "w1", now=105.0)
        assert queue.finalizable_jobs() == [job_id]
        assert queue.shard_result_refs(job_id) == ["ref-0", "ref-1"]

        assert queue.finalize_job(job_id, "ref-final", now=106.0)
        status = queue.job_status(job_id)
        assert status["status"] == "done"
        assert status["result_ref"] == "ref-final"
        assert queue.unfinished() == 0
        assert_history_legal(queue.history())

    def test_claims_in_index_order(self, queue):
        job_id = _submit(queue, n_shards=4)
        order = [queue.claim_shard("w", now=101.0 + i).idx for i in range(4)]
        assert order == [0, 1, 2, 3]

    def test_finalize_requires_all_done(self, queue):
        job_id = _submit(queue, n_shards=2)
        queue.claim_shard("w", now=101.0)
        queue.complete_shard(job_id, 0, "r0", "w", now=102.0)
        assert not queue.finalize_job(job_id, "final", now=103.0)

    def test_double_finalize_single_winner(self, queue):
        job_id = _submit(queue, n_shards=1)
        queue.claim_shard("w", now=101.0)
        queue.complete_shard(job_id, 0, "r0", "w", now=102.0)
        assert queue.finalize_job(job_id, "final", now=103.0)
        assert not queue.finalize_job(job_id, "final-again", now=104.0)


class TestLeases:
    def test_expired_lease_requeued_and_reclaimed(self, queue):
        job_id = _submit(queue, n_shards=1)
        queue.claim_shard("w1", lease_seconds=10, now=100.0)
        # Live lease: nothing else claimable.
        assert queue.claim_shard("w2", now=105.0) is None
        # Lapsed: the same shard goes to w2 with attempts bumped.
        c = queue.claim_shard("w2", lease_seconds=10, now=111.0)
        assert (c.idx, c.attempts) == (0, 2)
        assert_history_legal(queue.history())

    def test_stale_worker_completion_fenced(self, queue):
        job_id = _submit(queue, n_shards=1)
        queue.claim_shard("w1", lease_seconds=10, now=100.0)
        queue.claim_shard("w2", lease_seconds=10, now=111.0)
        # w1's lease expired and the shard moved on: its result is dropped.
        assert not queue.complete_shard(job_id, 0, "stale", "w1", now=112.0)
        assert queue.complete_shard(job_id, 0, "fresh", "w2", now=113.0)
        assert queue.shard_result_refs(job_id) == ["fresh"]

    def test_stale_worker_failure_fenced(self, queue):
        job_id = _submit(queue, n_shards=1)
        queue.claim_shard("w1", lease_seconds=10, now=100.0)
        queue.claim_shard("w2", lease_seconds=10, now=111.0)
        assert not queue.fail_shard(job_id, 0, "late err", "w1", now=112.0)

    def test_requeue_expired_counts(self, queue):
        _submit(queue, n_shards=2)
        queue.claim_shard("w1", lease_seconds=5, now=100.0)
        queue.claim_shard("w2", lease_seconds=500, now=100.0)
        assert queue.requeue_expired(now=106.0) == 1


class TestRetries:
    def test_backoff_schedule(self, queue):
        job_id = _submit(queue, n_shards=1, kind="svc-boom")
        queue.claim_shard("w", now=100.0)
        queue.fail_shard(job_id, 0, "e1", "w", backoff_seconds=2.0, now=101.0)
        # attempts=1 -> delay 2.0: not claimable before 103.
        assert queue.claim_shard("w", now=102.0) is None
        c = queue.claim_shard("w", now=103.5)
        assert c.attempts == 2
        queue.fail_shard(job_id, 0, "e2", "w", backoff_seconds=2.0, now=104.0)
        # attempts=2 -> delay 4.0.
        assert queue.claim_shard("w", now=107.0) is None
        assert queue.claim_shard("w", now=108.5).attempts == 3

    def test_exhausted_attempts_fail_job(self, queue):
        job_id = _submit(queue, n_shards=1, kind="svc-boom")
        for i in range(3):
            queue.claim_shard("w", now=100.0 + 10 * i)
            queue.fail_shard(
                job_id, 0, f"err {i}", "w",
                max_attempts=3, backoff_seconds=0.1, now=101.0 + 10 * i,
            )
        status = queue.job_status(job_id)
        assert status["status"] == "failed"
        assert "err 2" in status["error"]
        assert queue.claim_shard("w", now=200.0) is None
        assert queue.unfinished() == 0
        assert_history_legal(queue.history())


class TestTransitionGuards:
    def test_illegal_job_edge_raises(self, queue):
        job_id = _submit(queue)
        with pytest.raises(IllegalTransition):
            queue._transition_job(job_id, "done", now=101.0)  # pending -> done

    def test_illegal_shard_edge_raises(self, queue):
        job_id = _submit(queue)
        with pytest.raises(IllegalTransition):
            queue._transition_shard(job_id, 0, "done", now=101.0)

    def test_missing_entities_raise(self, queue):
        with pytest.raises(IllegalTransition):
            queue._transition_job("ghost", "running", now=100.0)
        with pytest.raises(IllegalTransition):
            queue._transition_shard("ghost", 0, "running", now=100.0)

    def test_terminal_states_are_terminal(self):
        assert JOB_TRANSITIONS["done"] == set()
        assert JOB_TRANSITIONS["failed"] == set()
        assert SHARD_TRANSITIONS["done"] == set()
        assert SHARD_TRANSITIONS["failed"] == set()


class TestPersistence:
    def test_reopen_preserves_state(self, tmp_path):
        path = tmp_path / "queue.sqlite"
        q1 = JobQueue(path)
        job_id = q1.submit(
            JobSpec(kind="svc-sum", params={"n_shards": 2}), now=100.0
        )
        q1.claim_shard("w", lease_seconds=60, now=101.0)
        q1.complete_shard(job_id, 0, "r0", "w", now=102.0)
        q1.close()

        q2 = JobQueue(path)  # crash/restart stand-in
        status = q2.job_status(job_id)
        assert status["status"] == "running"
        assert status["shards"] == {"done": 1, "pending": 1}
        c = q2.claim_shard("w2", now=103.0)
        assert c.idx == 1
        assert_history_legal(q2.history())
        q2.close()
