"""In-process tests for the ``python -m repro`` CLI, plus subprocess
regression tests pinning the exit-code contract (success 0, command
failure 1, usage error 2)."""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.topology import random_topology

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture()
def saved_topology(tmp_path):
    topo = random_topology(8, 3, 3, np.random.default_rng(0), permute_prob=0.5)
    topo.name = "cli-test"
    path = tmp_path / "topo.json"
    topo.save(path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_search_requires_window(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search"])


class TestInfo:
    def test_lists_pdks_and_windows(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "AMF" in out and "AIM" in out
        assert "[240, 300]" in out
        assert "Table 2" in out


class TestExport(object):
    def test_export_writes_netlist(self, saved_topology, tmp_path, capsys):
        out = tmp_path / "net.json"
        assert main(["export", str(saved_topology), "--out", str(out)]) == 0
        report = capsys.readouterr().out
        assert out.exists()
        data = json.loads(out.read_text())
        assert data["k"] == 8
        assert "floorplan" in report
        assert "legend" in report

    def test_export_default_out_path(self, saved_topology, capsys):
        assert main(["export", str(saved_topology)]) == 0
        expected = saved_topology.with_suffix(".netlist.json")
        assert expected.exists()

    def test_export_aim_pdk(self, saved_topology, capsys):
        assert main(["export", str(saved_topology), "--pdk", "aim"]) == 0
        assert "AIM" in capsys.readouterr().out

    def test_export_svg(self, saved_topology, tmp_path, capsys):
        svg = tmp_path / "plan.svg"
        assert main(["export", str(saved_topology), "--svg", str(svg)]) == 0
        assert svg.exists()
        assert svg.read_text().startswith("<svg")


class TestRobustness:
    def test_sweep_prints_rows(self, saved_topology, capsys):
        rc = main(["robustness", str(saved_topology),
                   "--sigmas", "0.02", "0.1", "--n-trials", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.020" in out and "0.100" in out
        # Fidelity at mild noise must exceed fidelity at harsh noise.
        rows = [line.split() for line in out.splitlines()
                if line.strip().startswith("0.")]
        fid = {float(r[0]): float(r[1]) for r in rows}
        assert fid[0.02] > fid[0.1]


class TestBaselineSearch:
    def test_random_saves_feasible_topology(self, tmp_path, capsys):
        out = tmp_path / "best.json"
        rc = main(["baseline-search", "--method", "random", "--budget", "4",
                   "--f-min", "240", "--f-max", "300", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        report = capsys.readouterr().out
        assert "random search" in report
        data = json.loads(out.read_text())
        assert data["k"] == 8

    def test_evolutionary_runs(self, capsys):
        rc = main(["baseline-search", "--method", "evolutionary",
                   "--budget", "6", "--f-min", "240", "--f-max", "300"])
        assert rc == 0
        assert "evolutionary search" in capsys.readouterr().out


class TestEvaluate:
    def test_baseline_requires_k(self, capsys):
        rc = main(["evaluate", "mzi"])
        assert rc == 2
        assert "--k is required" in capsys.readouterr().err

    def test_evaluate_topology_fast(self, saved_topology, capsys, monkeypatch):
        # Shrink the budget so this runs in seconds.
        from repro.experiments import common

        rc = main(["evaluate", str(saved_topology), "--epochs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-test" in out and "%" in out


def _run_cli(*argv, cwd=None):
    """Invoke ``python -m repro`` as a real subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd or REPO_ROOT,
        timeout=120,
    )


class TestExitCodes:
    """Subprocess regression tests: failures must not exit 0."""

    def test_no_command_is_usage_error(self):
        proc = _run_cli()
        assert proc.returncode == 2

    def test_unknown_command_is_usage_error(self):
        proc = _run_cli("frobnicate")
        assert proc.returncode == 2

    def test_submit_without_root_is_usage_error(self):
        proc = _run_cli("submit", "evaluate")
        assert proc.returncode == 2
        assert "--root" in proc.stderr

    def test_unknown_job_kind_fails(self, tmp_path):
        proc = _run_cli("submit", "nope", "--root", str(tmp_path))
        assert proc.returncode == 1
        assert proc.stderr.startswith("error:")
        assert "unknown job kind" in proc.stderr

    def test_export_missing_file_fails(self, tmp_path):
        proc = _run_cli("export", str(tmp_path / "missing.json"))
        assert proc.returncode == 1
        assert proc.stderr.startswith("error:")

    def test_export_corrupt_topology_fails(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        proc = _run_cli("export", str(bad))
        assert proc.returncode == 1
        assert proc.stderr.startswith("error:")

    def test_submit_invalid_params_json_fails(self, tmp_path):
        proc = _run_cli("submit", "evaluate", "--root", str(tmp_path),
                        "--params", "{broken")
        assert proc.returncode == 1
        assert proc.stderr.startswith("error:")

    def test_status_missing_job_fails(self, tmp_path):
        proc = _run_cli("status", "deadbeef", "--root", str(tmp_path))
        assert proc.returncode == 1
        assert "no such job" in proc.stderr

    def test_status_kinds_succeeds(self):
        proc = _run_cli("status", "--kinds")
        assert proc.returncode == 0
        assert "robustness-grid" in proc.stdout

    def test_info_succeeds(self):
        proc = _run_cli("info")
        assert proc.returncode == 0

    def test_chip_without_subcommand_is_usage_error(self):
        proc = _run_cli("chip")
        assert proc.returncode == 2
        assert "chip_command" in proc.stderr

    def test_chip_unknown_subcommand_is_usage_error(self):
        proc = _run_cli("chip", "frobnicate")
        assert proc.returncode == 2

    def test_chip_serve_missing_design_fails(self, tmp_path):
        proc = _run_cli("chip", "serve", "--design",
                        str(tmp_path / "missing.json"))
        assert proc.returncode == 1
        assert proc.stderr.startswith("error:")

    def test_chip_bench_zero_requests_fails(self):
        proc = _run_cli("chip", "bench", "--requests", "0")
        assert proc.returncode == 1
        assert "error:" in proc.stderr


class TestLintCLI:
    """Subprocess tests pinning the ``repro lint`` exit contract."""

    BAD = 'with open("out.json", "w") as f:\n    f.write("{}")\n'

    def test_clean_tree_exits_zero(self):
        # The checked-in baseline grandfathers only RL009 findings
        # (the frozen pre-campaign sweep oracles).
        proc = _run_cli("lint", "src/repro", "--baseline", "lint-baseline.json")
        assert proc.returncode == 0
        assert "0 finding(s)" in proc.stdout
        assert "grandfathered" in proc.stdout

    def test_findings_exit_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        proc = _run_cli("lint", str(bad))
        assert proc.returncode == 1
        assert "RL005" in proc.stdout

    def test_unknown_format_is_usage_error(self):
        proc = _run_cli("lint", "--format", "xml", "src/repro")
        assert proc.returncode == 2

    def test_unknown_rule_fails(self):
        proc = _run_cli("lint", "--rules", "RL999", "src/repro")
        assert proc.returncode == 1
        assert proc.stderr.startswith("error:")
        assert "RL999" in proc.stderr

    def test_missing_path_fails(self, tmp_path):
        proc = _run_cli("lint", str(tmp_path / "nope"))
        assert proc.returncode == 1
        assert proc.stderr.startswith("error:")

    def test_json_output_round_trips(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        proc = _run_cli("lint", "--format", "json", str(bad))
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        assert report["n_findings"] == 1
        assert report["findings"][0]["rule"] == "RL005"
        assert report["findings"][0]["path"].endswith("bad.py")

    def test_list_rules(self):
        proc = _run_cli("lint", "--list-rules")
        assert proc.returncode == 0
        assert "RL001" in proc.stdout and "RL008" in proc.stdout

    def test_baseline_round_trip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        proc = _run_cli("lint", str(bad), "--write-baseline", str(baseline))
        assert proc.returncode == 0
        assert baseline.exists()
        proc = _run_cli("lint", str(bad), "--baseline", str(baseline))
        assert proc.returncode == 0
        assert "grandfathered" in proc.stdout


class TestCampaignCLI:
    """Subprocess tests for ``repro campaign run/status/report``."""

    @pytest.fixture()
    def spec_path(self, tmp_path):
        from repro.campaign.studies import fig5a_spec

        spec = fig5a_spec(k=4, n_blocks=2, steps=12,
                          rho0_values=(1e-7, 1e-6), seed=0,
                          name="cli-alm-scan")
        path = tmp_path / "campaign.json"
        spec.save(path)
        return path

    def test_run_inline_writes_artifacts(self, spec_path, tmp_path):
        out = tmp_path / "artifacts"
        proc = _run_cli("campaign", "run", str(spec_path), "--out", str(out))
        assert proc.returncode == 0
        assert "cli-alm-scan (alm-scan" in proc.stdout
        assert "2 cell(s)" in proc.stdout
        for name in ("campaign.json", "result.json", "cells.csv",
                     "report.md"):
            assert (out / name).exists()

    def test_status_before_run_is_an_error(self, spec_path, tmp_path):
        proc = _run_cli("campaign", "status", str(spec_path),
                        "--root", str(tmp_path / "svc"))
        assert proc.returncode == 1
        assert proc.stderr.startswith("error:")
        assert "has not been submitted" in proc.stderr

    def test_sharded_run_status_report_round_trip(self, spec_path, tmp_path):
        root = tmp_path / "svc"
        inline_out = tmp_path / "inline"
        proc = _run_cli("campaign", "run", str(spec_path),
                        "--out", str(inline_out))
        assert proc.returncode == 0

        proc = _run_cli("campaign", "run", str(spec_path),
                        "--root", str(root), "--workers", "1")
        assert proc.returncode == 0
        proc = _run_cli("campaign", "status", str(spec_path),
                        "--root", str(root))
        assert proc.returncode == 0
        assert "done" in proc.stdout

        # `report` renders from the queue without recomputing, and the
        # artifacts match the inline run byte for byte.
        report_out = tmp_path / "from-service"
        proc = _run_cli("campaign", "report", str(spec_path),
                        "--root", str(root), "--out", str(report_out))
        assert proc.returncode == 0
        for path in sorted(inline_out.iterdir()):
            assert (report_out / path.name).read_bytes() == path.read_bytes()

    def test_invalid_spec_fails(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}')
        proc = _run_cli("campaign", "run", str(bad))
        assert proc.returncode == 1
        assert proc.stderr.startswith("error:")

    def test_unknown_kind_fails(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "kind": "no-such-kind", '
                       '"axes": {"a": [1]}}')
        proc = _run_cli("campaign", "run", str(bad))
        assert proc.returncode == 1
        assert "unknown campaign kind" in proc.stderr


class TestChipCommands:
    def test_bench_reports_speedup(self, capsys):
        rc = main(["chip", "bench", "--requests", "48", "--k", "6",
                   "--blocks", "3", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "micro-batching virtual-time speedup" in out
        assert "one-at-a-time" in out

    def test_serve_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        rc = main(["chip", "serve", "--requests", "48", "--k", "6",
                   "--blocks", "3", "--seed", "2", "--drift-std", "0.05",
                   "--calib-steps", "30", "--window", "4",
                   "--out", str(report_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "calibrated" in out and "served 48 requests" in out
        report = json.loads(report_path.read_text())
        assert report["n_requests"] == 48
        assert len(report["fidelity_trace"]) == report["n_batches"]

    def test_serve_accepts_saved_topology(self, saved_topology, capsys):
        rc = main(["chip", "serve", "--design", str(saved_topology),
                   "--requests", "16", "--calib-steps", "10",
                   "--drift-std", "0.0"])
        assert rc == 0
        assert "served 16 requests" in capsys.readouterr().out


@pytest.fixture()
def cli_job_kind():
    """Register a tiny deterministic job kind for in-process CLI tests."""
    from repro.service import JobType, register_job_type

    def expand(params):
        return [{"v": v} for v in params["values"]]

    def run_shard(params, shard):
        if params.get("explode"):
            raise RuntimeError("boom")
        return {"doubled": shard["v"] * 2}

    def aggregate(params, results):
        return {"doubled": [r["doubled"] for r in results]}

    register_job_type(JobType(
        kind="cli-double",
        expand=expand,
        run_shard=run_shard,
        aggregate=aggregate,
        description="test kind",
    ))
    return "cli-double"


class TestServiceCommands:
    """In-process submit -> serve -> status round-trip."""

    def test_submit_serve_status(self, tmp_path, capsys, cli_job_kind):
        root = str(tmp_path / "svc")
        rc = main(["submit", cli_job_kind, "--root", root,
                   "--params", '{"values": [1, 2, 3]}'])
        assert rc == 0
        out = capsys.readouterr().out
        match = re.search(r"job ([0-9a-f]{32}) \((\d+) shards\)", out)
        assert match and match.group(2) == "3"
        job_id = match.group(1)

        # Idempotent resubmit: same params -> same content-addressed id.
        assert main(["submit", cli_job_kind, "--root", root,
                     "--params", '{"values": [1, 2, 3]}']) == 0
        assert job_id in capsys.readouterr().out

        assert main(["serve", "--root", root, "--workers", "0",
                     "--until-idle"]) == 0
        capsys.readouterr()

        assert main(["status", "--root", root]) == 0
        assert job_id in capsys.readouterr().out

        assert main(["status", job_id, "--root", root, "--result"]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert json.loads(out[out.index("{"):]) == {"doubled": [2, 4, 6]}

    def test_status_of_failed_job_exits_nonzero(
        self, tmp_path, capsys, cli_job_kind
    ):
        root = str(tmp_path / "svc")
        assert main(["submit", cli_job_kind, "--root", root, "--params",
                     '{"values": [1], "explode": true}']) == 0
        out = capsys.readouterr().out
        job_id = re.search(r"job ([0-9a-f]{32})", out).group(1)
        assert main(["serve", "--root", root, "--workers", "0",
                     "--until-idle", "--max-attempts", "1"]) == 0
        capsys.readouterr()
        assert main(["status", job_id, "--root", root]) == 1
        assert "failed" in capsys.readouterr().out

    def test_submit_conflicting_param_sources(self, tmp_path, capsys,
                                              cli_job_kind):
        pfile = tmp_path / "p.json"
        pfile.write_text('{"values": [1]}')
        rc = main(["submit", cli_job_kind, "--root", str(tmp_path),
                   "--params", "{}", "--params-file", str(pfile)])
        assert rc == 1
        assert "not both" in capsys.readouterr().err


class TestSearch:
    def test_search_tiny_budget(self, tmp_path, capsys):
        out = tmp_path / "searched.json"
        rc = main(["search", "--k", "8", "--f-min", "240", "--f-max", "300",
                   "--epochs", "2", "--n-train", "96", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        report = capsys.readouterr().out
        assert "saved" in report
        data = json.loads(out.read_text())
        assert data["k"] == 8
        assert len(data["blocks_u"]) >= 1
