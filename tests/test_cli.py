"""In-process tests for the ``python -m repro`` CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.topology import random_topology


@pytest.fixture()
def saved_topology(tmp_path):
    topo = random_topology(8, 3, 3, np.random.default_rng(0), permute_prob=0.5)
    topo.name = "cli-test"
    path = tmp_path / "topo.json"
    topo.save(path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_search_requires_window(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search"])


class TestInfo:
    def test_lists_pdks_and_windows(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "AMF" in out and "AIM" in out
        assert "[240, 300]" in out
        assert "Table 2" in out


class TestExport(object):
    def test_export_writes_netlist(self, saved_topology, tmp_path, capsys):
        out = tmp_path / "net.json"
        assert main(["export", str(saved_topology), "--out", str(out)]) == 0
        report = capsys.readouterr().out
        assert out.exists()
        data = json.loads(out.read_text())
        assert data["k"] == 8
        assert "floorplan" in report
        assert "legend" in report

    def test_export_default_out_path(self, saved_topology, capsys):
        assert main(["export", str(saved_topology)]) == 0
        expected = saved_topology.with_suffix(".netlist.json")
        assert expected.exists()

    def test_export_aim_pdk(self, saved_topology, capsys):
        assert main(["export", str(saved_topology), "--pdk", "aim"]) == 0
        assert "AIM" in capsys.readouterr().out

    def test_export_svg(self, saved_topology, tmp_path, capsys):
        svg = tmp_path / "plan.svg"
        assert main(["export", str(saved_topology), "--svg", str(svg)]) == 0
        assert svg.exists()
        assert svg.read_text().startswith("<svg")


class TestRobustness:
    def test_sweep_prints_rows(self, saved_topology, capsys):
        rc = main(["robustness", str(saved_topology),
                   "--sigmas", "0.02", "0.1", "--n-trials", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.020" in out and "0.100" in out
        # Fidelity at mild noise must exceed fidelity at harsh noise.
        rows = [line.split() for line in out.splitlines()
                if line.strip().startswith("0.")]
        fid = {float(r[0]): float(r[1]) for r in rows}
        assert fid[0.02] > fid[0.1]


class TestBaselineSearch:
    def test_random_saves_feasible_topology(self, tmp_path, capsys):
        out = tmp_path / "best.json"
        rc = main(["baseline-search", "--method", "random", "--budget", "4",
                   "--f-min", "240", "--f-max", "300", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        report = capsys.readouterr().out
        assert "random search" in report
        data = json.loads(out.read_text())
        assert data["k"] == 8

    def test_evolutionary_runs(self, capsys):
        rc = main(["baseline-search", "--method", "evolutionary",
                   "--budget", "6", "--f-min", "240", "--f-max", "300"])
        assert rc == 0
        assert "evolutionary search" in capsys.readouterr().out


class TestEvaluate:
    def test_baseline_requires_k(self, capsys):
        rc = main(["evaluate", "mzi"])
        assert rc == 2
        assert "--k is required" in capsys.readouterr().err

    def test_evaluate_topology_fast(self, saved_topology, capsys, monkeypatch):
        # Shrink the budget so this runs in seconds.
        from repro.experiments import common

        rc = main(["evaluate", str(saved_topology), "--epochs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli-test" in out and "%" in out


class TestSearch:
    def test_search_tiny_budget(self, tmp_path, capsys):
        out = tmp_path / "searched.json"
        rc = main(["search", "--k", "8", "--f-min", "240", "--f-max", "300",
                   "--epochs", "2", "--n-train", "96", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        report = capsys.readouterr().out
        assert "saved" in report
        data = json.loads(out.read_text())
        assert data["k"] == 8
        assert len(data["blocks_u"]) >= 1
