"""RL005 regression: ``TraceLogger.save`` publishes atomically.

Before this fix the CSV path went through a bare ``open(path, "w")``:
a crash (or a concurrent reader) mid-write left a torn file that
parsed as a truncated run.  Saves now render in memory and publish via
``atomic_write_text`` (same-directory tmp + ``os.replace``), so a
crash *between the write and the rename* leaves the previous complete
trace untouched.
"""

import pytest

import repro.utils.serialization as serialization
from repro.utils.logging import TraceLogger


def _logger(values):
    log = TraceLogger()
    for v in values:
        log.log(loss=v)
    return log


class TestAtomicTraceSave:
    @pytest.mark.parametrize("suffix", [".csv", ".json"])
    def test_crash_between_write_and_rename_keeps_old_file(
        self, tmp_path, monkeypatch, suffix
    ):
        path = tmp_path / f"trace{suffix}"
        _logger([1.0, 2.0]).save(path)
        before = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash between write and rename")

        monkeypatch.setattr(serialization.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            _logger([9.0]).save(path)
        monkeypatch.undo()

        # The previous complete trace survives, byte for byte, and the
        # failed attempt leaves no temp-file litter behind.
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]
        assert TraceLogger.load(path).series("loss") == [1.0, 2.0]

    def test_csv_bytes_unchanged_by_atomic_path(self, tmp_path):
        # The rendered CSV is identical to what the old open(path, "w")
        # writer produced (header + \r\n rows), so existing consumers
        # and load() see the same bytes.
        path = tmp_path / "trace.csv"
        log = TraceLogger()
        log.log(a=1.5, b=0.25)
        log.log(a=2.5)
        log.save(path)
        assert path.read_bytes() == b"step,a,b\r\n0,1.5,0.25\r\n1,2.5,\r\n"

    def test_overwrite_replaces_content(self, tmp_path):
        path = tmp_path / "trace.json"
        _logger([1.0]).save(path)
        _logger([5.0, 6.0]).save(path)
        assert TraceLogger.load(path).series("loss") == [5.0, 6.0]
