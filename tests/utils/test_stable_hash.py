"""stable_hash / stable_seed: deterministic, typed, and independent of
Python's per-process hash randomization."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.utils.rng import stable_hash, stable_seed


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash("a", 1, 0.5) == stable_hash("a", 1, 0.5)

    def test_known_distinctions(self):
        # Type tags keep look-alike values apart.
        assert stable_hash(1) != stable_hash(1.0)
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash("ab", "c") != stable_hash("a", "bc")
        assert stable_hash(("a", "b")) != stable_hash("a", "b")  # nesting tagged
        assert stable_hash(None) != stable_hash(0)

    def test_nested_tuples_and_numpy_scalars(self):
        assert stable_hash(("part", ("mesh", 3))) == stable_hash(("part", ("mesh", 3)))
        assert stable_hash(np.int64(7)) == stable_hash(7)
        assert stable_hash(np.float64(0.25)) == stable_hash(0.25)

    def test_seed_range(self):
        for parts in [("x",), (0,), ("noise-grid", 123), (1.5, "y", None)]:
            s = stable_seed(*parts)
            assert 0 <= s < 2**31

    def test_rejects_unhashable_types(self):
        with pytest.raises(TypeError):
            stable_hash(object())
        with pytest.raises(TypeError):
            stable_hash({"a": 1})


SNIPPET = """
from repro.utils.rng import stable_hash, stable_seed
from repro.data.synthetic import train_test_split
tr, te = train_test_split("mnist", 16, 8, seed=3)
print(stable_hash("fig4", ("a", "MZI"), 0.05, 7))
print(stable_seed("noise-grid", 0))
print(round(float(tr.images.sum()), 10), int(tr.labels.sum()))
"""


SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
)


def _run_with_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", SNIPPET],
        capture_output=True, text=True, env=env, check=True,
    )
    return out.stdout


def test_independent_of_hash_randomization():
    """Seeds (and everything derived from them, e.g. synthetic datasets)
    must be identical under different PYTHONHASHSEED values — the bug
    this helper replaced: ``hash((name, seed))`` differed per process."""
    a = _run_with_hashseed("0")
    b = _run_with_hashseed("12345")
    c = _run_with_hashseed("random")
    assert a == b == c
    assert a.strip()  # produced output at all
