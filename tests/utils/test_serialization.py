"""Checkpoint round-trips must preserve array dtypes end to end."""

import json

import numpy as np
import pytest

from repro import nn
from repro.autograd import no_grad
from repro.nn.module import Module, Parameter
from repro.utils import load_checkpoint, save_checkpoint


class MixedDtypeModule(Module):
    """One parameter per dtype lane the execution backends use."""

    def __init__(self, complex_dtype=np.complex128, real_dtype=np.float64):
        super().__init__()
        rng = np.random.default_rng(5)
        self.phases = Parameter(rng.uniform(0, 1, size=(3, 4)).astype(real_dtype))
        self.field = Parameter(
            (rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))).astype(
                complex_dtype
            )
        )
        self.register_buffer("running", np.zeros(4, dtype=real_dtype))


class TestDtypeRoundTrip:
    def test_default_dtypes_preserved(self, tmp_path):
        m1 = MixedDtypeModule()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        m2 = MixedDtypeModule()
        load_checkpoint(m2, path)
        assert m2.phases.data.dtype == np.float64
        assert m2.field.data.dtype == np.complex128

    def test_complex64_artifact_reloads_as_complex64(self, tmp_path):
        """An artifact built in the c64 lane must not be silently
        promoted on reload into a complex128-initialized model."""
        m1 = MixedDtypeModule(complex_dtype=np.complex64, real_dtype=np.float32)
        path = tmp_path / "c64.npz"
        save_checkpoint(m1, path)
        m2 = MixedDtypeModule()  # fresh model initialized at full precision
        load_checkpoint(m2, path)
        assert m2.field.data.dtype == np.complex64
        assert m2.phases.data.dtype == np.float32
        assert np.array_equal(m2.field.data, m1.field.data)

    def test_manifest_records_dtypes(self, tmp_path):
        m = MixedDtypeModule(complex_dtype=np.complex64, real_dtype=np.float32)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m, path)
        with np.load(path, allow_pickle=False) as data:
            manifest = json.loads(str(data["__manifest__"]))
        assert manifest["field"]["dtype"] == "complex64"
        assert manifest["phases"]["dtype"] == "float32"

    def test_strict_dtype_mismatch_raises(self, tmp_path):
        """A stored array whose dtype disagrees with its manifest entry
        (corrupted / hand-edited artifact) must fail a strict load."""
        m = MixedDtypeModule()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {n: data[n] for n in data.files}
        manifest = json.loads(str(arrays.pop("__manifest__")))
        arrays["field"] = arrays["field"].astype(np.complex64)  # silent downcast
        tampered = tmp_path / "tampered.npz"
        np.savez(tampered, __manifest__=json.dumps(manifest), **arrays)
        with pytest.raises(ValueError, match="dtype mismatch"):
            load_checkpoint(MixedDtypeModule(), tampered)
        # Non-strict loads skip validation (dtype is still adopted).
        m2 = MixedDtypeModule()
        load_checkpoint(m2, tampered, strict=False)
        assert m2.field.data.dtype == np.complex64


class TestRescoreParity:
    def _model(self):
        from repro.onn import PTCLinear

        return nn.Sequential(nn.Flatten(), PTCLinear(64, 10, k=8, mesh="butterfly"))

    def test_save_load_rescore_bit_exact(self, tmp_path):
        rng = np.random.default_rng(17)
        m1 = self._model()
        batch = rng.normal(size=(6, 64))
        from repro.autograd import Tensor

        m1.eval()
        with no_grad():
            before = m1(Tensor(batch)).data.copy()
        path = tmp_path / "model.npz"
        save_checkpoint(m1, path)
        m2 = self._model()  # different random init
        m2.eval()
        load_checkpoint(m2, path)
        with no_grad():
            after = m2(Tensor(batch)).data
        assert np.array_equal(before, after)

    def test_c64_eval_scores_survive_roundtrip(self, tmp_path, tiny_mnist):
        """Accuracy under the complex64 lane is identical before and
        after a checkpoint round-trip."""
        from repro.onn import PTCLinear, evaluate

        _, te = tiny_mnist
        m1 = nn.Sequential(nn.Flatten(), PTCLinear(784, 10, k=8, mesh="butterfly"))
        acc_before = evaluate(m1, te, exec_backend="numpy-c64")
        path = tmp_path / "model.npz"
        save_checkpoint(m1, path)
        m2 = nn.Sequential(nn.Flatten(), PTCLinear(784, 10, k=8, mesh="butterfly"))
        load_checkpoint(m2, path)
        acc_after = evaluate(m2, te, exec_backend="numpy-c64")
        assert acc_before == acc_after
