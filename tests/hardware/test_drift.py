"""Drift-state determinism and physics contracts."""

import math

import numpy as np
import pytest

from repro.hardware import DriftState
from repro.photonics import DriftSpec, crosstalk_gamma_at


def make_state(seed=0, **spec_kwargs):
    spec_kwargs.setdefault("phase_walk_std", 0.05)
    return DriftState(n_blocks=3, k=6, spec=DriftSpec(**spec_kwargs),
                      seed=seed)


class TestDeterminism:
    def test_same_seed_same_advances_bitwise_identical(self):
        a, b = make_state(seed=11), make_state(seed=11)
        for dt in (0.5, 1.25, 0.125, 3.0):
            a.advance(dt)
            b.advance(dt)
        assert np.array_equal(a.phase_offsets(), b.phase_offsets())
        assert a.gamma() == b.gamma()
        assert a.t == b.t

    def test_different_seeds_diverge(self):
        a, b = make_state(seed=1), make_state(seed=2)
        a.advance(1.0)
        b.advance(1.0)
        assert not np.array_equal(a.phase_offsets(), b.phase_offsets())

    def test_zero_advance_is_strict_noop(self):
        # A dt=0 advance must not draw from the RNG: interleaving
        # zero advances must not change the trajectory.
        a, b = make_state(seed=3), make_state(seed=3)
        a.advance(1.0)
        a.advance(0.0)
        a.advance(2.0)
        b.advance(1.0)
        b.advance(2.0)
        assert np.array_equal(a.phase_offsets(), b.phase_offsets())
        assert a.t == b.t

    def test_frozen_snapshot_is_reproducible(self):
        a, b = make_state(seed=7), make_state(seed=7)
        for s in (a, b):
            s.advance(0.75)
            s.advance(1.5)
        assert a.frozen() == b.frozen()

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            make_state().advance(-0.1)


class TestPhysics:
    def test_walk_scale_grows_with_time(self):
        state = make_state(seed=5, phase_walk_std=0.05)
        state.advance(1.0)
        early = float(np.abs(state.phase_offsets()).mean())
        for _ in range(200):
            state.advance(5.0)
        late = float(np.abs(state.phase_offsets()).mean())
        assert late > early
        assert state.accumulated_walk_std() == pytest.approx(
            0.05 * math.sqrt(state.t))

    def test_ambient_sinusoid_is_deterministic_and_periodic(self):
        state = DriftState(n_blocks=2, k=4,
                           spec=DriftSpec(ambient_amp=0.1,
                                          ambient_period_s=8.0))
        state.advance(2.0)  # quarter period -> peak
        assert state.phase_offsets() == pytest.approx(
            np.full((2, 4), 0.1))
        state.advance(4.0)  # three-quarter period -> trough
        assert state.phase_offsets() == pytest.approx(
            np.full((2, 4), -0.1))

    def test_gamma_saturates_toward_drifted_value(self):
        state = DriftState(
            n_blocks=2, k=4, gamma0=0.01,
            spec=DriftSpec(crosstalk_gamma_drift=0.02, crosstalk_tau_s=10.0))
        assert state.gamma() == pytest.approx(0.01)
        state.advance(10.0)
        assert state.gamma() == pytest.approx(
            crosstalk_gamma_at(0.01, 0.02, 10.0, 10.0))
        state.advance(1e4)
        assert state.gamma() == pytest.approx(0.03, rel=1e-3)

    def test_crosstalk_matrix_appears_when_gamma_positive(self):
        state = DriftState(n_blocks=1, k=4,
                           spec=DriftSpec(crosstalk_gamma_drift=0.05,
                                          crosstalk_tau_s=1.0))
        assert state.crosstalk() is None  # gamma0 = 0, t = 0
        state.advance(50.0)
        c = state.crosstalk()
        assert c is not None
        assert np.allclose(np.diag(c), 1.0)
        assert c[0, 1] > 0

    def test_static_spec_never_moves(self):
        state = DriftState(n_blocks=2, k=4, spec=DriftSpec())
        state.advance(1e6)
        assert np.array_equal(state.phase_offsets(), np.zeros((2, 4)))
        assert state.gamma() == 0.0

    def test_frozen_is_json_native(self):
        import json

        state = make_state(seed=9, crosstalk_gamma_drift=0.01)
        state.advance(3.0)
        snap = state.frozen()
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped["t_s"] == snap["t_s"]
        assert round_tripped["phase_offsets"] == snap["phase_offsets"]
