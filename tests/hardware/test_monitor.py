"""RollingMonitor: trigger correctness and hysteresis (no thrashing)."""

import pytest

from repro.hardware import RollingMonitor


class TestTrigger:
    def test_quiet_until_window_filled(self):
        mon = RollingMonitor(window=4, trigger_below=0.9)
        assert not mon.record(0.1)
        assert not mon.record(0.1)
        assert not mon.record(0.1)
        assert mon.record(0.1)  # fourth score fills the window
        assert mon.n_triggers == 1

    def test_healthy_scores_never_trigger(self):
        mon = RollingMonitor(window=4, trigger_below=0.9)
        assert not any(mon.record(0.99) for _ in range(50))
        assert mon.n_triggers == 0

    def test_rolling_mean_not_single_sample(self):
        mon = RollingMonitor(window=4, trigger_below=0.9)
        for _ in range(4):
            mon.record(1.0)
        # One bad reading among good ones: mean stays above threshold.
        assert not mon.record(0.7)
        assert mon.n_triggers == 0

    def test_min_samples_allows_early_decision(self):
        mon = RollingMonitor(window=16, trigger_below=0.9, min_samples=2)
        assert not mon.record(0.5)
        assert mon.record(0.5)


class TestHysteresis:
    def test_no_thrashing_while_degraded(self):
        mon = RollingMonitor(window=4, trigger_below=0.9, rearm_above=0.95)
        fired = [mon.record(0.5) for _ in range(20)]
        # Exactly one trigger despite 20 consecutive bad windows.
        assert sum(fired) == 1
        assert mon.n_triggers == 1
        assert not mon.armed

    def test_rearm_requires_recovery_margin(self):
        mon = RollingMonitor(window=2, trigger_below=0.9, rearm_above=0.97,
                             min_samples=1)
        assert mon.record(0.5)
        # Above trigger but below rearm: still disarmed, no re-trigger.
        mon.record(0.92)
        mon.record(0.92)
        assert not mon.armed
        # Full recovery re-arms without firing.
        mon.record(0.99)
        mon.record(0.99)
        assert mon.armed
        # A second degradation fires a second trigger as soon as the
        # rolling mean crosses the threshold again.
        assert not mon.record(0.99)  # mean still >= threshold
        assert mon.record(0.5)  # mean (0.99 + 0.5) / 2 < 0.9
        assert mon.n_triggers == 2

    def test_reset_clears_window_and_rearms(self):
        mon = RollingMonitor(window=4, trigger_below=0.9)
        fired = [mon.record(0.5) for _ in range(4)]
        assert any(fired)
        mon.reset()
        assert mon.armed
        # Post-reset scores start a fresh window.
        assert not mon.record(0.5)
        assert mon.snapshot()["n_triggers"] == 1


class TestValidation:
    def test_rearm_below_trigger_rejected(self):
        with pytest.raises(ValueError, match="rearm_above"):
            RollingMonitor(trigger_below=0.9, rearm_above=0.8)

    def test_default_rearm_is_halfway_to_perfect(self):
        mon = RollingMonitor(trigger_below=0.9)
        assert mon.rearm_above == pytest.approx(0.95)

    def test_window_and_min_samples_validated(self):
        with pytest.raises(ValueError, match="window"):
            RollingMonitor(window=0)
        with pytest.raises(ValueError, match="min_samples"):
            RollingMonitor(window=4, min_samples=5)

    def test_snapshot_is_json_native(self):
        import json

        mon = RollingMonitor(window=3)
        mon.record(0.5)
        snap = mon.snapshot()
        assert json.loads(json.dumps(snap)) == snap
