"""Pre-execution validation: a rejected program or batch must leave
the chip exactly as it was."""

import math

import numpy as np
import pytest

from repro.core.topology import random_topology
from repro.hardware import (
    ChipCapabilities,
    ProgramValidationError,
    SimulatedChip,
    plan_execution,
    validate_batch,
    validate_phases,
)
from repro.photonics import DriftSpec


@pytest.fixture
def chip():
    topo = random_topology(6, 3, 0, rng=np.random.default_rng(0))
    return SimulatedChip(topo, seed=1, max_batch=8)


CAPS = ChipCapabilities(k=6, n_blocks=3, max_batch=8)


class TestPhaseValidation:
    def test_in_range_program_accepted(self):
        arr = validate_phases(np.zeros((3, 6)), CAPS)
        assert arr.shape == (3, 6)

    def test_out_of_range_rejected_before_execution(self, chip):
        before_phases = chip.programmed_phases
        before_t = chip.virtual_time_s
        bad = np.zeros((3, 6))
        bad[1, 2] = 100.0
        with pytest.raises(ProgramValidationError, match="drive range"):
            chip.program(bad)
        # The rejection happened before any state change.
        assert np.array_equal(chip.programmed_phases, before_phases)
        assert chip.virtual_time_s == before_t
        assert chip.n_programs == 0

    def test_all_violations_reported_together(self):
        bad = np.zeros((3, 6))
        bad[0, 0] = 1e3
        bad[2, 5] = np.nan
        # Non-finite values and range checks can't mix; the non-finite
        # message must win without crashing on the comparison.
        with pytest.raises(ProgramValidationError, match="non-finite"):
            validate_phases(bad, CAPS)

    def test_range_violation_counts_entries(self):
        bad = np.zeros((3, 6))
        bad[0, 0] = -100.0
        bad[1, 1] = 100.0
        with pytest.raises(ProgramValidationError, match="2 phase"):
            validate_phases(bad, CAPS)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ProgramValidationError, match="shape"):
            validate_phases(np.zeros((2, 6)), CAPS)

    def test_non_numeric_rejected(self):
        with pytest.raises(ProgramValidationError, match="numeric"):
            validate_phases([["a"] * 6] * 3, CAPS)

    def test_phase_range_edges_inclusive(self):
        lo, hi = CAPS.phase_range
        edges = np.full((3, 6), lo)
        edges[0, 0] = hi
        assert validate_phases(edges, CAPS).shape == (3, 6)
        assert math.isclose(hi - lo, 6 * math.pi)


class TestBatchValidation:
    def test_vector_promoted_to_batch(self):
        arr = validate_batch(np.ones(6), CAPS)
        assert arr.shape == (1, 6)

    def test_complex_inputs_allowed(self):
        arr = validate_batch(np.ones((2, 6)) * (1 + 1j), CAPS)
        assert arr.dtype.kind == "c"

    def test_oversized_batch_rejected(self, chip):
        with pytest.raises(ProgramValidationError, match="max_batch"):
            chip.execute(np.ones((9, 6)))
        assert chip.n_batches == 0
        assert chip.virtual_time_s == 0.0

    def test_wrong_width_rejected(self):
        with pytest.raises(ProgramValidationError, match="shape"):
            validate_batch(np.ones((2, 5)), CAPS)

    def test_empty_batch_rejected(self):
        with pytest.raises(ProgramValidationError, match="empty"):
            validate_batch(np.zeros((0, 6)), CAPS)

    def test_non_finite_rejected(self):
        bad = np.ones((2, 6))
        bad[1, 3] = np.inf
        with pytest.raises(ProgramValidationError, match="non-finite"):
            validate_batch(bad, CAPS)

    def test_mid_stream_rejection_keeps_earlier_results(self, chip):
        good = np.ones((2, 6))
        with pytest.raises(ProgramValidationError):
            chip.stream([good, np.ones((2, 5))])
        kept = chip.read_detections()
        assert len(kept) == 1
        assert chip.n_batches == 1


class TestPlanning:
    def test_chunking_splits_at_max_batch(self):
        plan = plan_execution([20, 4], CAPS)
        assert plan.chunks == [8, 8, 4, 4]
        assert plan.n_inputs == 24
        assert plan.ok

    def test_virtual_time_matches_cost_model(self):
        plan = plan_execution([8, 8], CAPS, t_start_s=1.0)
        expected = 2 * CAPS.batch_seconds(8)
        assert plan.virtual_seconds == pytest.approx(expected)
        assert plan.t_end_s == pytest.approx(1.0 + expected)

    def test_include_program_adds_program_time(self):
        base = plan_execution([4], CAPS)
        with_prog = plan_execution([4], CAPS, include_program=True)
        assert with_prog.virtual_seconds == pytest.approx(
            base.virtual_seconds + CAPS.program_time_s)

    def test_nonpositive_sizes_are_violations(self):
        plan = plan_execution([4, 0, -2], CAPS)
        assert not plan.ok
        assert len(plan.violations) == 2
        assert plan.chunks == [4]
        assert "REJECTED" in plan.summary()

    def test_drift_forecast_integrates_walk(self):
        drift = DriftSpec(phase_walk_std=0.1)
        plan = plan_execution([8, 8], CAPS, drift=drift)
        assert plan.forecast_walk_std == pytest.approx(
            0.1 * math.sqrt(plan.virtual_seconds))

    def test_plan_never_mutates_chip(self, chip):
        before = chip.programmed_phases
        plan = chip.plan([100, 3])
        assert plan.n_inputs == 103
        assert chip.virtual_time_s == 0.0
        assert np.array_equal(chip.programmed_phases, before)
