"""Streaming server: micro-batching, the closed drift/recalibration
loop, and byte-identical replay of a full serving scenario."""

import numpy as np
import pytest

from repro.core.topology import random_topology
from repro.hardware import (
    InlineRecalibrator,
    ProgramValidationError,
    RollingMonitor,
    ServiceRecalibrator,
    SimulatedChip,
    StreamingServer,
)
from repro.photonics import DriftSpec
from repro.utils.rng import spawn_rng, stable_seed
from repro.utils.serialization import canonical_json_dumps


def make_topo():
    return random_topology(6, 3, 0, rng=np.random.default_rng(0))


def make_inputs(n, k=6, seed=0):
    rng = spawn_rng(stable_seed("server-test-inputs", seed))
    return [rng.normal(size=k) for _ in range(n)]


def static_chip(**kwargs):
    kwargs.setdefault("seed", 1)
    kwargs.setdefault("max_batch", 8)
    return SimulatedChip(make_topo(), **kwargs)


class TestMicroBatching:
    def test_queued_requests_share_chip_calls(self):
        chip = static_chip()
        server = StreamingServer(chip)
        server.serve_sync(make_inputs(20))
        assert server.batch_sizes == [8, 8, 4]
        assert chip.n_batches == 3
        assert server.n_requests == 20

    def test_wave_size_bounds_micro_batches(self):
        server = StreamingServer(static_chip())
        server.serve_sync(make_inputs(9), wave_size=3)
        assert server.batch_sizes == [3, 3, 3]

    def test_results_match_unbatched_execution(self):
        chip = static_chip()
        inputs = make_inputs(13)
        results = StreamingServer(chip).serve_sync(inputs)
        reference = static_chip()
        for x, got in zip(inputs, results):
            assert got == pytest.approx(
                reference.execute(x)[0], abs=1e-12)

    def test_batching_amortizes_virtual_time(self):
        batched = static_chip(batch_overhead_s=1.0)
        single = static_chip(batch_overhead_s=1.0)
        inputs = make_inputs(16)
        StreamingServer(batched, max_batch=8).serve_sync(inputs)
        StreamingServer(single, max_batch=1).serve_sync(inputs)
        assert single.virtual_time_s > 2 * batched.virtual_time_s

    def test_empty_workload(self):
        server = StreamingServer(static_chip())
        assert server.serve_sync([]) == []
        assert server.n_batches == 0

    def test_invalid_input_propagates_to_caller(self):
        server = StreamingServer(static_chip())
        with pytest.raises(ProgramValidationError):
            server.serve_sync([np.ones(5)])

    def test_submit_requires_started_server(self):
        import asyncio

        async def bad():
            await StreamingServer(static_chip()).submit(np.ones(6))

        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(bad())

    def test_max_batch_clamped_to_chip_capability(self):
        server = StreamingServer(static_chip(max_batch=4), max_batch=64)
        assert server.max_batch == 4


def run_drift_scenario(recalibrate, n_requests=160, seed=9):
    """One full serving scenario on a drifting chip.

    The chip ages with traffic; the monitor watches rolling fidelity;
    ``recalibrate`` closes the loop.  Returns the serving report plus
    the freshly-calibrated baseline fidelity.
    """
    topo = make_topo()
    chip = SimulatedChip(topo, drift=DriftSpec(phase_walk_std=0.04),
                         seed=seed, batch_overhead_s=1.0,
                         sample_time_s=0.05, max_batch=8)
    target = SimulatedChip(topo, seed=seed).transfer_matrix()
    if recalibrate is not None:
        recalibrate(chip, target)
    baseline = chip.fidelity_to(target)
    monitor = RollingMonitor(window=4, trigger_below=0.99,
                             rearm_above=0.995, min_samples=4)
    server = StreamingServer(chip, target=target, monitor=monitor,
                             recalibrate=recalibrate, max_batch=8)
    server.serve_sync(make_inputs(n_requests, seed=seed), wave_size=16)
    report = server.report()
    report["baseline_fidelity"] = float(baseline)
    return report


class TestDriftRecalibrationLoop:
    def test_loop_detects_and_recovers(self):
        report = run_drift_scenario(InlineRecalibrator(steps=200, lr=0.05))
        trace = report["fidelity_trace"]
        recals = report["recalibrations"]
        # Drift degraded the rolling window enough to trigger at least
        # once, and every recalibration restored the chip to within 1%
        # of the freshly-calibrated baseline.
        assert len(recals) >= 1
        assert min(trace) < 0.99
        for r in recals:
            assert r["applied"]
            assert r["final_error"] < r["initial_error"]
            assert (r["fidelity_after"]
                    >= report["baseline_fidelity"] - 0.01)

    def test_unmonitored_drift_keeps_degrading(self):
        # Same scenario with the loop open: no recovery.
        report = run_drift_scenario(None)
        trace = report["fidelity_trace"]
        assert not report["recalibrations"] or not any(
            r["applied"] for r in report["recalibrations"])
        with_loop = run_drift_scenario(
            InlineRecalibrator(steps=200, lr=0.05))
        assert trace[-1] < with_loop["fidelity_trace"][-1]

    def test_scenario_replay_is_byte_identical(self):
        a = run_drift_scenario(InlineRecalibrator(steps=150, lr=0.05))
        b = run_drift_scenario(InlineRecalibrator(steps=150, lr=0.05))
        assert canonical_json_dumps(a) == canonical_json_dumps(b)

    def test_hysteresis_prevents_trigger_thrash(self):
        # With recalibration disabled the window stays degraded;
        # hysteresis must not re-fire on every batch.
        report = run_drift_scenario(None, n_requests=240)
        monitor = report["monitor"]
        assert monitor["n_triggers"] >= 1
        # Triggers cannot outnumber recoveries + 1; with no recovery
        # path, each trigger needs the mean to climb back over the
        # rearm threshold first, which open-loop drift rarely does.
        assert monitor["n_triggers"] < report["n_batches"] // 4


class TestServiceRecalibration:
    def test_queue_routed_recalibration_matches_inline(self, tmp_path):
        from repro.service import DesignService

        svc = DesignService(tmp_path / "svc")
        try:
            service_report = run_drift_scenario(
                ServiceRecalibrator(svc, steps=150, lr=0.05))
            inline_report = run_drift_scenario(
                InlineRecalibrator(steps=150, lr=0.05))
            # The pure recalibrate job computes the same phases the
            # inline path does, so the entire serving trajectory
            # matches float-for-float.
            assert (service_report["fidelity_trace"]
                    == inline_report["fidelity_trace"])
            assert (service_report["batch_sizes"]
                    == inline_report["batch_sizes"])
            applied = [r for r in service_report["recalibrations"]
                       if r["applied"]]
            assert applied
            for r in applied:
                assert r["job_id"] in {j["id"] for j in svc.jobs()}
                assert svc.status(r["job_id"])["status"] == "done"
        finally:
            svc.close()
