"""SimulatedChip: execution semantics, drift aging, and the pure
snapshot-recalibration path."""

import json

import numpy as np
import pytest

from repro.core.topology import random_topology
from repro.hardware import (
    InlineRecalibrator,
    SimulatedChip,
    build_frozen_twin,
    recalibrate_snapshot,
)
from repro.photonics import DriftSpec, NonidealitySpec
from repro.utils.serialization import canonical_json_dumps


def make_topo(k=6, blocks=3, seed=0):
    return random_topology(k, blocks, 0, rng=np.random.default_rng(seed))


@pytest.fixture
def topo():
    return make_topo()


class TestExecution:
    def test_ideal_chip_transfer_is_unitary(self, topo):
        chip = SimulatedChip(topo, seed=2)
        u = chip.transfer_matrix()
        assert np.allclose(u @ u.conj().T, np.eye(6), atol=1e-10)

    def test_detections_are_output_intensities(self, topo):
        chip = SimulatedChip(topo, seed=2)
        x = np.linspace(-1, 1, 6)
        u = chip.transfer_matrix()
        det = chip.execute(x)
        assert det.shape == (1, 6)
        assert det[0] == pytest.approx(np.abs(u @ x) ** 2)

    def test_stream_buffers_until_read(self, topo):
        chip = SimulatedChip(topo, seed=2)
        batches = [np.ones((2, 6)), np.zeros((1, 6))]
        assert chip.stream(batches) == 2
        out = chip.read_detections()
        assert [d.shape for d in out] == [(2, 6), (1, 6)]
        assert chip.read_detections() == []

    def test_execution_advances_virtual_clock(self, topo):
        chip = SimulatedChip(topo, seed=2, batch_overhead_s=0.5,
                             sample_time_s=0.1)
        chip.execute(np.ones((4, 6)))
        assert chip.virtual_time_s == pytest.approx(0.5 + 4 * 0.1)
        assert chip.n_samples == 4

    def test_program_loads_phases_and_costs_time(self, topo):
        chip = SimulatedChip(topo, seed=2, program_time_s=0.25)
        phases = np.full((3, 6), 0.5)
        chip.program(phases)
        assert np.array_equal(chip.programmed_phases, phases)
        assert chip.virtual_time_s == pytest.approx(0.25)

    def test_same_seed_chips_are_bitwise_identical(self, topo):
        spec = NonidealitySpec(dc_t_std=0.02, loss_ps_db=0.05,
                               crosstalk_gamma=0.01)
        drift = DriftSpec(phase_walk_std=0.05)
        a = SimulatedChip(topo, nonideality=spec, drift=drift, seed=4)
        b = SimulatedChip(topo, nonideality=spec, drift=drift, seed=4)
        x = np.ones((3, 6))
        assert np.array_equal(a.execute(x), b.execute(x))
        assert np.array_equal(a.transfer_matrix(), b.transfer_matrix())


class TestDriftAging:
    def test_traffic_degrades_fidelity(self, topo):
        drift = DriftSpec(phase_walk_std=0.05)
        chip = SimulatedChip(topo, drift=drift, seed=3,
                             batch_overhead_s=1.0)
        target = chip.transfer_matrix()
        assert chip.fidelity_to(target) == pytest.approx(1.0)
        for _ in range(50):
            chip.execute(np.ones((4, 6)))
        assert chip.fidelity_to(target) < 0.99

    def test_static_chip_never_ages(self, topo):
        chip = SimulatedChip(topo, seed=3, batch_overhead_s=1.0)
        target = chip.transfer_matrix()
        for _ in range(20):
            chip.execute(np.ones((4, 6)))
        assert chip.fidelity_to(target) == pytest.approx(1.0, abs=1e-12)

    def test_diagnostics_are_free_of_virtual_time(self, topo):
        chip = SimulatedChip(topo, drift=DriftSpec(phase_walk_std=0.1),
                             seed=3)
        target = chip.transfer_matrix()
        for _ in range(10):
            chip.fidelity_to(target)
            chip.transfer_matrix()
        assert chip.virtual_time_s == 0.0
        assert chip.fidelity_to(target) == pytest.approx(1.0)


class TestRecalibration:
    def test_snapshot_params_are_json_native(self, topo):
        spec = NonidealitySpec(dc_t_std=0.02, crosstalk_gamma=0.01)
        chip = SimulatedChip(topo, nonideality=spec,
                             drift=DriftSpec(phase_walk_std=0.05), seed=5)
        chip.execute(np.ones((2, 6)))
        params = chip.recalibration_params(np.eye(6))
        # canonical JSON round-trip must be lossless
        assert json.loads(canonical_json_dumps(params)) == json.loads(
            json.dumps(params))

    def test_recalibrate_snapshot_is_pure(self, topo):
        chip = SimulatedChip(topo, drift=DriftSpec(phase_walk_std=0.05),
                             seed=5, batch_overhead_s=2.0)
        target = chip.transfer_matrix()
        for _ in range(20):
            chip.execute(np.ones((2, 6)))
        params = chip.recalibration_params(target, steps=40)
        r1 = recalibrate_snapshot(params)
        r2 = recalibrate_snapshot(params)
        assert r1 == r2  # bitwise: same floats through JSON-native dicts

    def test_twin_matches_chip_at_snapshot_instant(self, topo):
        spec = NonidealitySpec(dc_t_std=0.02, crosstalk_gamma=0.01)
        chip = SimulatedChip(topo, nonideality=spec,
                             drift=DriftSpec(phase_walk_std=0.05), seed=6,
                             batch_overhead_s=1.0)
        for _ in range(10):
            chip.execute(np.ones((2, 6)))
        params = chip.recalibration_params(np.eye(6))
        twin = build_frozen_twin(params)
        from repro.autograd import no_grad

        with no_grad():
            twin_u = twin.build().data[0]
        assert twin_u == pytest.approx(chip.transfer_matrix(), abs=1e-12)

    def test_inline_recalibration_restores_drifted_chip(self, topo):
        chip = SimulatedChip(topo, drift=DriftSpec(phase_walk_std=0.04),
                             seed=7, batch_overhead_s=1.0)
        target = chip.transfer_matrix()
        recal = InlineRecalibrator(steps=200, lr=0.05)
        for _ in range(40):
            chip.execute(np.ones((2, 6)))
        degraded = chip.fidelity_to(target)
        assert degraded < 0.995
        result = recal(chip, target)
        assert result["final_error"] < result["initial_error"]
        assert chip.fidelity_to(target) > degraded
        assert chip.fidelity_to(target) > 0.999

    def test_unknown_method_rejected(self, topo):
        chip = SimulatedChip(topo, seed=5)
        params = chip.recalibration_params(np.eye(6), method="magic")
        with pytest.raises(ValueError, match="unknown calibration method"):
            recalibrate_snapshot(params)

    def test_spsa_method_runs_deterministically(self, topo):
        chip = SimulatedChip(topo, seed=5)
        params = chip.recalibration_params(chip.transfer_matrix(),
                                           method="spsa", steps=10)
        r1 = recalibrate_snapshot(params)
        r2 = recalibrate_snapshot(params)
        assert r1 == r2
        assert r1["method"] == "spsa"
        assert r1["n_measurements"] == 31

    def test_target_shape_checked(self, topo):
        chip = SimulatedChip(topo, seed=5)
        with pytest.raises(ValueError, match="target"):
            chip.recalibration_params(np.eye(4))
