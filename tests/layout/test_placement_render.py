"""Tests for floorplan estimation and ASCII rendering."""

import numpy as np
import pytest

from repro.core.topology import random_topology
from repro.layout import (
    DeviceGeometry,
    PlacementReport,
    build_netlist,
    place,
    render_netlist,
    render_topology,
)
from repro.photonics import AIM, AMF


def make_netlist(seed=0, k=8, nb=3, permute_prob=0.7):
    topo = random_topology(k, nb, nb, np.random.default_rng(seed),
                           permute_prob=permute_prob)
    return topo, build_netlist(topo)


class TestDeviceGeometry:
    @pytest.mark.parametrize("kind", ["ps", "dc", "cr"])
    def test_area_matches_pdk(self, kind):
        g = DeviceGeometry.from_pdk(kind, AMF)
        expected = {"ps": AMF.ps_area, "dc": AMF.dc_area, "cr": AMF.cr_area}[kind]
        assert g.area_um2 == pytest.approx(expected)

    def test_ps_is_long_and_thin(self):
        g = DeviceGeometry.from_pdk("ps", AMF)
        assert g.length_um > g.width_um

    def test_cr_is_square(self):
        g = DeviceGeometry.from_pdk("cr", AIM)
        assert g.length_um == pytest.approx(g.width_um)

    def test_custom_aspect(self):
        g = DeviceGeometry.from_pdk("dc", AMF, aspect=1.0)
        assert g.length_um == pytest.approx(g.width_um)


class TestPlace:
    def test_report_structure(self):
        _, netlist = make_netlist()
        report = place(netlist, AMF)
        assert isinstance(report, PlacementReport)
        assert report.pdk_name == "AMF"
        assert report.n_columns == netlist.n_columns

    def test_chip_area_exceeds_active_area(self):
        _, netlist = make_netlist(1)
        report = place(netlist, AMF)
        assert report.chip_area_um2 > report.active_area_um2
        assert 0.0 < report.utilization < 1.0

    def test_active_area_is_pdk_sum(self):
        topo, netlist = make_netlist(2)
        report = place(netlist, AMF)
        n_ps, n_dc, n_cr = topo.device_counts()
        assert report.active_area_um2 == pytest.approx(
            AMF.footprint(n_ps, n_dc, n_cr))

    def test_height_scales_with_k(self):
        _, small = make_netlist(3, k=8)
        _, large = make_netlist(3, k=16)
        assert (place(large, AMF).chip_height_um
                > place(small, AMF).chip_height_um)

    def test_aim_crossings_dominate(self):
        # On AIM, one crossing (4900 um^2) outweighs a DC (4000 um^2):
        # a crossing-heavy design gets a longer chip than a DC-only one.
        topo_cr = random_topology(8, 4, 4, np.random.default_rng(4),
                                  permute_prob=1.0)
        topo_dc = random_topology(8, 4, 4, np.random.default_rng(4),
                                  permute_prob=0.0)
        r_cr = place(build_netlist(topo_cr), AIM)
        r_dc = place(build_netlist(topo_dc), AIM)
        assert r_cr.chip_length_um > r_dc.chip_length_um

    def test_summary_string(self):
        _, netlist = make_netlist(5)
        s = place(netlist, AMF).summary()
        assert "AMF" in s and "columns" in s and "utilization" in s


class TestRenderNetlist:
    def test_one_row_per_waveguide(self):
        _, netlist = make_netlist(6, k=8)
        lines = render_netlist(netlist).splitlines()
        assert len(lines) == 8

    def test_glyph_counts_match_devices(self):
        _, netlist = make_netlist(7)
        text = render_netlist(netlist)
        n_ps, n_dc, n_cr = netlist.device_counts()
        assert text.count("[P]") == n_ps
        assert text.count("(D~") == n_dc
        assert text.count("~D)") == n_dc
        assert text.count(_cr_top()) == n_cr

    def test_truncation_marker(self):
        _, netlist = make_netlist(8)
        text = render_netlist(netlist, max_columns=3)
        assert ".." in text

    def test_no_marker_when_fits(self):
        _, netlist = make_netlist(9)
        text = render_netlist(netlist, max_columns=netlist.n_columns)
        assert ".." not in text


def _cr_top():
    from repro.layout.render import _CELL

    return _CELL["cr_top"]


class TestRenderTopology:
    def test_both_meshes_rendered(self):
        topo, _ = make_netlist(10)
        text = render_topology(topo)
        assert "U mesh" in text and "V mesh" in text and "legend" in text

    def test_single_mesh(self):
        topo, _ = make_netlist(11)
        text = render_topology(topo, mesh="U")
        assert "U mesh" in text and "V mesh" not in text

    def test_invalid_mesh(self):
        topo, _ = make_netlist(12)
        with pytest.raises(ValueError, match="mesh"):
            render_topology(topo, mesh="W")
