"""Tests for netlist extraction."""

import networkx as nx
import numpy as np
import pytest

from repro.core.topology import BlockSpec, PTCTopology, random_topology
from repro.layout.netlist import Device, Netlist, _pack_swaps, build_netlist
from repro.photonics.nonideality import NonidealitySpec


def make_topology(seed=0, k=8, nb=3, permute_prob=0.7):
    return random_topology(k, nb, nb, np.random.default_rng(seed),
                           permute_prob=permute_prob)


class TestDevice:
    def test_valid_kinds_only(self):
        with pytest.raises(ValueError, match="kind"):
            Device("x", "laser", "U", 0, 0, (0,))

    def test_ps_single_wire(self):
        with pytest.raises(ValueError, match="one wire"):
            Device("x", "ps", "U", 0, 0, (0, 1))

    def test_dc_two_wires(self):
        with pytest.raises(ValueError, match="two wires"):
            Device("x", "dc", "U", 0, 0, (0,))


class TestBuildNetlist:
    @pytest.mark.parametrize("seed", range(5))
    def test_counts_match_topology(self, seed):
        topo = make_topology(seed)
        netlist = build_netlist(topo)
        assert netlist.device_counts() == topo.device_counts()

    def test_identity_perm_adds_no_crossings(self):
        block = BlockSpec(coupler_mask=np.array([True] * 4), offset=0,
                          perm=np.arange(8))
        topo = PTCTopology(k=8, blocks_u=[block], blocks_v=[])
        netlist = build_netlist(topo)
        assert netlist.device_counts() == (8, 4, 0)

    def test_device_ids_unique(self):
        netlist = build_netlist(make_topology(1))
        ids = [d.device_id for d in netlist.devices]
        assert len(ids) == len(set(ids))

    def test_columns_homogeneous(self):
        netlist = build_netlist(make_topology(2))
        kinds = netlist.column_kinds()
        assert set(kinds) <= {"ps", "dc", "cr"}

    def test_first_column_is_ps(self):
        netlist = build_netlist(make_topology(3))
        assert netlist.column_kinds()[0] == "ps"

    def test_mesh_labels(self):
        topo = make_topology(4)
        netlist = build_netlist(topo)
        meshes = {d.mesh for d in netlist.devices}
        assert meshes == {"U", "V"}

    def test_u_devices_before_v(self):
        netlist = build_netlist(make_topology(5))
        last_u = max(d.column for d in netlist.devices if d.mesh == "U")
        first_v = min(d.column for d in netlist.devices if d.mesh == "V")
        assert last_u < first_v


class TestPackSwaps:
    def test_empty(self):
        assert _pack_swaps([]) == []

    def test_disjoint_swaps_share_column(self):
        cols = _pack_swaps([(0, 1), (2, 3), (4, 5)])
        assert len(cols) == 1
        assert len(cols[0]) == 3

    def test_conflicting_swaps_serialize(self):
        cols = _pack_swaps([(0, 1), (1, 2)])
        assert len(cols) == 2

    def test_order_preserved_on_shared_wires(self):
        swaps = [(0, 1), (1, 2), (0, 1)]
        cols = _pack_swaps(swaps)
        # Flattened column order must keep the original schedule order
        # for swaps sharing wires.
        flat = [s for col in cols for s in col]
        assert flat.count((0, 1)) == 2
        assert len(cols) == 3


class TestGraph:
    def test_is_dag(self):
        netlist = build_netlist(make_topology(6))
        g = netlist.to_graph()
        assert nx.is_directed_acyclic_graph(g)

    def test_ports_present(self):
        netlist = build_netlist(make_topology(7, k=8))
        g = netlist.to_graph()
        for w in range(8):
            assert f"in:{w}" in g
            assert f"out:{w}" in g

    def test_every_device_reachable(self):
        netlist = build_netlist(make_topology(8))
        g = netlist.to_graph()
        sources = {f"in:{w}" for w in range(netlist.k)}
        reachable = set()
        for s in sources:
            reachable |= nx.descendants(g, s)
        device_ids = {d.device_id for d in netlist.devices}
        assert device_ids <= reachable

    def test_optical_depth_bounds(self):
        topo = make_topology(9)
        netlist = build_netlist(topo)
        depth = netlist.optical_depth()
        assert depth >= topo.n_blocks  # at least one PS column per block
        assert depth <= len(netlist.devices)


class TestPathLoss:
    def test_zero_spec_zero_loss(self):
        netlist = build_netlist(make_topology(10))
        np.testing.assert_array_equal(
            netlist.path_loss_db(NonidealitySpec()), 0.0)

    def test_ps_loss_counts_blocks(self):
        topo = make_topology(11, nb=4, permute_prob=0.0)
        netlist = build_netlist(topo)
        loss = netlist.path_loss_db(NonidealitySpec(loss_ps_db=0.25))
        # Every wire passes one PS per block (8 blocks total).
        np.testing.assert_allclose(loss, 0.25 * topo.n_blocks)

    def test_loss_additive_across_kinds(self):
        netlist = build_netlist(make_topology(12))
        a = netlist.path_loss_db(NonidealitySpec(loss_ps_db=0.1))
        b = netlist.path_loss_db(NonidealitySpec(loss_dc_db=0.2))
        both = netlist.path_loss_db(
            NonidealitySpec(loss_ps_db=0.1, loss_dc_db=0.2))
        np.testing.assert_allclose(both, a + b)


class TestSerialization:
    def test_round_trip(self):
        netlist = build_netlist(make_topology(13))
        again = Netlist.from_json(netlist.to_json())
        assert again.k == netlist.k
        assert again.device_counts() == netlist.device_counts()
        assert [d.device_id for d in again.devices] == [
            d.device_id for d in netlist.devices]

    def test_save_load(self, tmp_path):
        netlist = build_netlist(make_topology(14))
        path = tmp_path / "design.json"
        netlist.save(path)
        assert Netlist.load(path).device_counts() == netlist.device_counts()
