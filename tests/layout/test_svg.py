"""Tests for the SVG floorplan export."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.topology import random_topology
from repro.layout import build_netlist
from repro.layout.svg import floorplan_svg
from repro.photonics import AIM, AMF

SVG_NS = "{http://www.w3.org/2000/svg}"


def make_netlist(seed=0, k=8, nb=3):
    topo = random_topology(k, nb, nb, np.random.default_rng(seed),
                           permute_prob=0.7)
    return topo, build_netlist(topo)


class TestFloorplanSVG:
    def test_valid_xml(self):
        _, netlist = make_netlist()
        root = ET.fromstring(floorplan_svg(netlist, AMF))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_rect_per_device_plus_background(self):
        _, netlist = make_netlist(1)
        root = ET.fromstring(floorplan_svg(netlist, AMF))
        rects = root.findall(f".//{SVG_NS}rect")
        assert len(rects) == len(netlist.devices) + 1  # + background

    def test_one_line_per_waveguide(self):
        _, netlist = make_netlist(2, k=8)
        root = ET.fromstring(floorplan_svg(netlist, AMF))
        lines = root.findall(f"{SVG_NS}line")
        assert len(lines) == 8

    def test_device_ids_in_titles(self):
        _, netlist = make_netlist(3)
        svg = floorplan_svg(netlist, AMF)
        for device in netlist.devices[:5]:
            assert device.device_id in svg

    def test_title_escaped(self):
        _, netlist = make_netlist(4)
        svg = floorplan_svg(netlist, AMF, title="a<b>&c")
        assert "a&lt;b&gt;&amp;c" in svg

    def test_scale_changes_canvas(self):
        _, netlist = make_netlist(5)
        small = ET.fromstring(floorplan_svg(netlist, AMF, scale=0.1))
        large = ET.fromstring(floorplan_svg(netlist, AMF, scale=0.5))
        assert float(large.get("width")) > float(small.get("width"))

    def test_rejects_bad_scale(self):
        _, netlist = make_netlist(6)
        with pytest.raises(ValueError, match="scale"):
            floorplan_svg(netlist, AMF, scale=0.0)

    def test_aim_pdk_renders(self):
        _, netlist = make_netlist(7)
        root = ET.fromstring(floorplan_svg(netlist, AIM))
        assert root is not None
