"""Tests for the terminal plotting utilities."""

import pytest

from repro.utils.ascii_plot import bar_chart, line_plot, sparkline


class TestLinePlot:
    def test_basic_structure(self):
        out = line_plot({"a": ([0, 1, 2], [0, 1, 4])}, width=20, height=6)
        lines = out.splitlines()
        boxed = [l for l in lines if "|" in l]
        assert len(boxed) == 6
        assert "o a" in lines[-1]

    def test_title_and_labels(self):
        out = line_plot({"s": ([0, 1], [1, 2])}, title="T", x_label="sigma",
                        y_label="acc")
        assert out.splitlines()[0] == "T"
        assert "sigma" in out
        assert "acc" in out

    def test_multiple_series_distinct_glyphs(self):
        out = line_plot({"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])},
                        width=10, height=5)
        assert "o a" in out and "x b" in out
        body = "\n".join(l for l in out.splitlines() if "|" in l)
        assert "o" in body and "x" in body

    def test_extremes_plotted_at_corners(self):
        out = line_plot({"a": ([0, 10], [0, 10])}, width=11, height=5)
        rows = [l.split("|")[1] for l in out.splitlines() if l.count("|") == 2]
        assert rows[0][-1] == "o"  # max at top-right
        assert rows[-1][0] == "o"  # min at bottom-left

    def test_constant_series_ok(self):
        out = line_plot({"flat": ([0, 1, 2], [5, 5, 5])})
        assert "flat" in out

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            line_plot({})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="lengths"):
            line_plot({"a": ([0, 1], [0])})

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError, match="empty"):
            line_plot({"a": ([], [])})

    def test_axis_ranges_shown(self):
        out = line_plot({"a": ([2, 8], [10, 30])})
        assert "30" in out and "10" in out


class TestBarChart:
    def test_lengths_proportional(self):
        out = bar_chart(["x", "y"], [1.0, 2.0], width=20)
        bars = [l.split("|")[1] for l in out.splitlines()]
        assert bars[0].count("#") == 10
        assert bars[1].count("#") == 20

    def test_values_printed(self):
        out = bar_chart(["mzi"], [1909.0], unit="k")
        assert "mzi" in out
        assert "k" in out

    def test_title(self):
        out = bar_chart(["a"], [1.0], title="Footprints")
        assert out.splitlines()[0] == "Footprints"

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            bar_chart(["a"], [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            bar_chart([], [])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            bar_chart(["a"], [-1.0])

    def test_all_zero_ok(self):
        out = bar_chart(["a", "b"], [0.0, 0.0])
        assert "#" not in out


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_min_max_glyphs(self):
        s = sparkline([0.0, 1.0])
        assert s[0] == " " and s[1] == "@"

    def test_constant(self):
        s = sparkline([3.0, 3.0, 3.0])
        assert len(set(s)) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            sparkline([])

    def test_monotone_trace(self):
        s = sparkline(range(10))
        order = [" .:-=+*#%@".index(c) for c in s]
        assert order == sorted(order)
