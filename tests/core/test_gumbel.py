"""Gumbel-softmax depth relaxation."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import TemperatureSchedule, categorical_probs, gumbel_softmax


class TestGumbelSoftmax:
    def test_rows_sum_to_one(self, rng):
        theta = Tensor(rng.normal(size=(5, 2)))
        m = gumbel_softmax(theta, tau=1.0, rng=rng)
        assert np.allclose(m.data.sum(-1), 1.0)

    def test_low_temperature_near_onehot(self, rng):
        theta = Tensor(np.array([[2.0, -2.0]]))
        m = gumbel_softmax(theta, tau=0.01, rng=rng)
        assert m.data.max() > 0.99

    def test_high_temperature_uniformish(self, rng):
        theta = Tensor(np.array([[2.0, -2.0]]))
        samples = np.stack(
            [gumbel_softmax(theta, tau=100.0, rng=rng).data for _ in range(50)]
        )
        assert abs(samples.mean() - 0.5) < 0.1

    def test_sampling_follows_logits(self, rng):
        """Hard argmax of Gumbel-softmax samples is a Gumbel-max draw:
        selection frequency must follow softmax(theta)."""
        theta = Tensor(np.array([[np.log(4.0), 0.0]]))  # P = [0.8, 0.2]
        wins = 0
        n = 400
        for _ in range(n):
            m = gumbel_softmax(theta, tau=0.5, rng=rng)
            wins += int(np.argmax(m.data) == 0)
        assert 0.7 < wins / n < 0.9

    def test_gradient_flows_to_theta(self, rng):
        theta = Tensor(np.zeros((3, 2)), requires_grad=True)
        m = gumbel_softmax(theta, tau=1.0, rng=rng)
        (m[:, 1] ** 2).sum().backward()
        assert theta.grad is not None and np.abs(theta.grad).max() > 0

    def test_hard_mode_one_hot_with_soft_grads(self, rng):
        theta = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        m = gumbel_softmax(theta, tau=1.0, rng=rng, hard=True)
        assert set(np.unique(m.data)) <= {0.0, 1.0}
        m.sum().backward()
        assert theta.grad is not None

    def test_invalid_temperature(self, rng):
        with pytest.raises(ValueError):
            gumbel_softmax(Tensor(np.zeros((1, 2))), tau=0.0, rng=rng)

    def test_categorical_probs(self):
        theta = Tensor(np.array([[0.0, 0.0], [10.0, 0.0]]))
        p = categorical_probs(theta).data
        assert np.allclose(p[0], [0.5, 0.5])
        assert p[1, 0] > 0.99


class TestTemperatureSchedule:
    def test_paper_endpoints(self):
        s = TemperatureSchedule(5.0, 0.5, total_epochs=90)
        assert np.isclose(s.at_epoch(0), 5.0)
        assert np.isclose(s.at_epoch(90), 0.5)

    def test_monotone_decay(self):
        s = TemperatureSchedule(5.0, 0.5, total_epochs=10)
        taus = [s.at_epoch(e) for e in range(11)]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_clamped_outside_range(self):
        s = TemperatureSchedule(5.0, 0.5, total_epochs=10)
        assert s.at_epoch(-1) == s.at_epoch(0)
        assert s.at_epoch(100) == s.at_epoch(10)

    def test_invalid(self):
        with pytest.raises(ValueError):
            TemperatureSchedule(0.0, 0.5)
