"""Trial-batched Monte-Carlo robustness engine: backend parity,
non-mutation guarantees, and the fabrication x noise scenario grid."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    evaluate_noise_grid,
    noise_robustness_curve,
    scenario_robustness_grid,
)
from repro.core.topology import random_topology
from repro.onn import PTCLinear, evaluate
from repro.photonics.nonideality import NonidealitySpec

K = 8


def small_dataset(tiny_mnist):
    _, te = tiny_mnist
    return te


def make_model(mesh, seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Flatten(), PTCLinear(784, 10, k=K, mesh=mesh, rng=rng))


MESHES = ["mzi", "butterfly", "topology"]


def resolve_mesh(name):
    if name == "topology":
        return random_topology(K, 6, 6, np.random.default_rng(4))
    return name


class TestNoiseGridParity:
    @pytest.mark.parametrize("mesh", MESHES)
    def test_fast_matches_sequential_reference(self, tiny_mnist, mesh):
        te = small_dataset(tiny_mnist)
        model = make_model(resolve_mesh(mesh))
        g_fast = evaluate_noise_grid(
            model, te, (0.02, 0.08), 3, seed=5, backend="fast", batch_size=16
        )
        g_ref = evaluate_noise_grid(
            model, te, (0.02, 0.08), 3, seed=5, backend="reference", batch_size=16
        )
        assert g_fast.shape == (2, 3)
        assert np.array_equal(g_fast, g_ref)

    def test_zero_noise_grid_equals_clean_accuracy(self, tiny_mnist):
        te = small_dataset(tiny_mnist)
        model = make_model("butterfly")
        clean = evaluate(model, te)
        grid = evaluate_noise_grid(model, te, (0.0,), 2, backend="fast")
        assert np.allclose(grid, clean)

    def test_deterministic_across_calls(self, tiny_mnist):
        te = small_dataset(tiny_mnist)
        model = make_model("mzi")
        a = evaluate_noise_grid(model, te, (0.05,), 4, seed=9)
        b = evaluate_noise_grid(model, te, (0.05,), 4, seed=9)
        assert np.array_equal(a, b)
        c = evaluate_noise_grid(model, te, (0.05,), 4, seed=10)
        assert not np.array_equal(a, c)

    def test_model_state_untouched(self, tiny_mnist):
        te = small_dataset(tiny_mnist)
        model = make_model("mzi")
        model.eval()
        before = evaluate(model, te)
        evaluate_noise_grid(model, te, (0.1,), 2, backend="fast")
        evaluate_noise_grid(model, te, (0.1,), 2, backend="reference")
        core = model.m1.core
        assert core.frozen_weight is None
        assert core.u_factory.trial_phase_offsets is None
        assert core.u_factory.noise_std == 0.0
        assert not model.training  # eval mode preserved
        assert np.isclose(evaluate(model, te), before)

    def test_rejects_non_photonic_model(self, tiny_mnist):
        te = small_dataset(tiny_mnist)
        model = nn.Sequential(nn.Flatten(), nn.Linear(784, 10))
        with pytest.raises(ValueError):
            evaluate_noise_grid(model, te, (0.02,), 2)

    def test_rejects_unknown_backend(self, tiny_mnist):
        te = small_dataset(tiny_mnist)
        model = make_model("butterfly")
        with pytest.raises(ValueError):
            evaluate_noise_grid(model, te, (0.02,), 2, backend="nope")


class TestCurveOnEngine:
    def test_curve_matches_grid(self, tiny_mnist):
        te = small_dataset(tiny_mnist)
        model = make_model("butterfly")
        points = noise_robustness_curve(
            model, te, noise_stds=(0.02, 0.1), n_runs=3, seed=2
        )
        grid = evaluate_noise_grid(model, te, (0.02, 0.1), 3, seed=2)
        assert [p.noise_std for p in points] == [0.02, 0.1]
        for p, runs in zip(points, grid):
            assert p.runs == [float(a) for a in runs]
            assert np.isclose(p.mean_acc, runs.mean())
            assert np.isclose(p.std_acc, runs.std())


class TestScenarioGrid:
    def spec(self):
        return NonidealitySpec(
            dc_t_std=0.02, loss_ps_db=0.05, loss_dc_db=0.1,
            crosstalk_gamma=0.05,
        )

    def test_parity_and_shape(self, tiny_mnist):
        te = small_dataset(tiny_mnist)
        model = make_model(resolve_mesh("topology"), seed=1)
        kw = dict(
            noise_stds=(0.02, 0.06), n_fab_samples=2, n_runs=2, seed=3,
            batch_size=16,
        )
        g_fast = scenario_robustness_grid(model, te, self.spec(), backend="fast", **kw)
        g_ref = scenario_robustness_grid(
            model, te, self.spec(), backend="reference", **kw
        )
        assert g_fast.accs.shape == (2, 2, 2)
        assert np.array_equal(g_fast.accs, g_ref.accs)
        assert g_fast.mean_over_runs().shape == (2, 2)
        curve = g_fast.curve()
        assert len(curve) == 2 and len(curve[0].runs) == 4

    def test_restores_factory_constants(self, tiny_mnist):
        te = small_dataset(tiny_mnist)
        model = make_model(resolve_mesh("topology"), seed=1)
        factory = model.m1.core.u_factory
        before = [c.copy() for c in factory._const]
        for backend in ("fast", "reference"):
            scenario_robustness_grid(
                model, te, self.spec(), noise_stds=(0.05,), n_fab_samples=2,
                n_runs=1, backend=backend, batch_size=16,
            )
        assert all(np.array_equal(a, b) for a, b in zip(before, factory._const))

    def test_requires_searched_topology(self, tiny_mnist):
        te = small_dataset(tiny_mnist)
        model = make_model("mzi")
        with pytest.raises(ValueError, match="FixedTopologyFactory"):
            scenario_robustness_grid(model, te, self.spec())

    def test_crosstalk_acts_on_transformed_phases(self, tiny_mnist, monkeypatch):
        """Crosstalk must mix the *programmed* drive (post phase
        transform): with zero runtime noise the engine's additive
        offsets must equal C @ Q(phi) - Q(phi), not C @ phi - phi
        (regression: the correction used to be derived from the raw,
        untransformed phases)."""
        import repro.core.variation as variation_mod
        from repro.photonics.nonideality import thermal_crosstalk_matrix

        te = small_dataset(tiny_mnist)
        model = make_model(resolve_mesh("topology"), seed=6)
        shift = 0.37
        for factory in (model.m1.core.u_factory, model.m1.core.v_factory):
            factory.phase_transform = lambda t: t + shift
        captured = {}
        orig = variation_mod._run_weight_trials

        def spy(model_, cores, offsets, *args, **kwargs):
            captured["offsets"] = offsets
            return orig(model_, cores, offsets, *args, **kwargs)

        monkeypatch.setattr(variation_mod, "_run_weight_trials", spy)
        spec = NonidealitySpec(crosstalk_gamma=0.2, crosstalk_radius=2)
        scenario_robustness_grid(
            model, te, spec, noise_stds=(0.0,), n_fab_samples=1, n_runs=1,
            seed=0, batch_size=16,
        )
        xtalk = thermal_crosstalk_matrix(K, 0.2, 2)
        ((off_u,), (off_v,)) = captured["offsets"][0]
        for factory, off in (
            (model.m1.core.u_factory, off_u),
            (model.m1.core.v_factory, off_v),
        ):
            programmed = factory.phases.data + shift
            expected = programmed @ xtalk.T - programmed
            assert np.allclose(off[0], expected)
            # The wrong (raw-phase) correction differs measurably.
            raw = factory.phases.data
            assert not np.allclose(off[0], raw @ xtalk.T - raw)

    def test_ideal_spec_reduces_to_noise_grid(self, tiny_mnist):
        """With no passive nonidealities every fabrication sample is the
        nominal chip, so fabrication rows are identical."""
        te = small_dataset(tiny_mnist)
        model = make_model(resolve_mesh("topology"), seed=1)
        grid = scenario_robustness_grid(
            model, te, NonidealitySpec(), noise_stds=(0.0,), n_fab_samples=2,
            n_runs=1, batch_size=16,
        )
        clean = evaluate(model, te)
        assert np.allclose(grid.accs, clean)
