"""Utilities: RNG management, trace logging, checkpointing."""

import numpy as np
import pytest

from repro import nn
from repro.utils import (
    TraceLogger,
    get_rng,
    load_checkpoint,
    save_checkpoint,
    set_seed,
    spawn_rng,
)


class TestRNG:
    def test_set_seed_reproducible(self):
        set_seed(7)
        a = get_rng().normal(size=3)
        set_seed(7)
        b = get_rng().normal(size=3)
        assert np.array_equal(a, b)

    def test_get_rng_passthrough(self):
        rng = np.random.default_rng(1)
        assert get_rng(rng) is rng

    def test_spawn_independent(self):
        set_seed(0)
        r1 = spawn_rng()
        r2 = spawn_rng()
        assert not np.array_equal(r1.normal(size=4), r2.normal(size=4))

    def test_spawn_with_seed(self):
        assert np.array_equal(
            spawn_rng(5).normal(size=3), spawn_rng(5).normal(size=3)
        )


class TestTraceLogger:
    def test_log_and_series(self):
        log = TraceLogger()
        for i in range(5):
            log.log(loss=1.0 / (i + 1), acc=i * 0.1)
        assert len(log) == 5
        assert log.series("loss")[0] == 1.0
        assert log.names == ["acc", "loss"]

    def test_json_roundtrip(self):
        log = TraceLogger()
        log.log(a=1.0, b=2.0)
        log.log(a=3.0)
        back = TraceLogger.from_json(log.to_json())
        assert back.series("a") == [1.0, 3.0]
        assert back.series("b") == [2.0]

    def test_csv_roundtrip(self, tmp_path):
        log = TraceLogger()
        log.log(x=1.5)
        log.log(x=2.5, y=0.1)
        path = tmp_path / "trace.csv"
        log.save(path)
        back = TraceLogger.load(path)
        assert back.series("x") == [1.5, 2.5]
        assert back.series("y") == [0.1]

    def test_json_file_roundtrip(self, tmp_path):
        log = TraceLogger()
        log.log(z=9.0)
        path = tmp_path / "trace.json"
        log.save(path)
        assert TraceLogger.load(path).series("z") == [9.0]

    def test_missing_series_empty(self):
        assert TraceLogger().series("nope") == []


class TestCheckpoint:
    def make_model(self):
        return nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))

    def test_roundtrip(self, tmp_path):
        m1 = self.make_model()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        m2 = self.make_model()
        load_checkpoint(m2, path)
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert np.allclose(p1.data, p2.data), n1

    def test_shape_mismatch_raises(self, tmp_path):
        m1 = self.make_model()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        wrong = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 3))
        with pytest.raises((ValueError, KeyError)):
            load_checkpoint(wrong, path)

    def test_missing_param_raises(self, tmp_path):
        small = nn.Sequential(nn.Linear(4, 8))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(small, path)
        big = self.make_model()
        with pytest.raises(KeyError):
            load_checkpoint(big, path)

    def test_non_strict_partial_load(self, tmp_path):
        small = nn.Sequential(nn.Linear(4, 8))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(small, path)
        big = self.make_model()
        load_checkpoint(big, path, strict=False)  # no error

    def test_photonic_model_checkpoint(self, tmp_path):
        from repro.onn import PTCLinear

        m1 = nn.Sequential(PTCLinear(8, 8, k=4, mesh="butterfly"))
        path = tmp_path / "ptc.npz"
        save_checkpoint(m1, path)
        m2 = nn.Sequential(PTCLinear(8, 8, k=4, mesh="butterfly"))
        load_checkpoint(m2, path)
        x = np.random.default_rng(0).normal(size=(2, 8))
        from repro.autograd import Tensor

        assert np.allclose(m1(Tensor(x)).data, m2(Tensor(x)).data)
