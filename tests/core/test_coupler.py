"""Coupler binarization-aware training (Eq. 14-15)."""

import math

import numpy as np

from repro.autograd import Tensor
from repro.core import CouplerLearner, binarize_couplers, dc_count_expr, quantize_t


SQ2 = math.sqrt(2.0) / 2.0


class TestQuantization:
    def test_negative_maps_to_coupler(self):
        assert np.allclose(quantize_t(np.array([-0.5, -2.0])), SQ2)

    def test_positive_maps_to_passthrough(self):
        assert np.allclose(quantize_t(np.array([0.5, 3.0])), 1.0)

    def test_binary_codomain(self, rng):
        q = quantize_t(rng.normal(size=100))
        assert set(np.round(np.unique(q), 12)) <= {round(SQ2, 12), 1.0}


class TestSTE:
    def test_forward_is_quantized(self, rng):
        t = Tensor(rng.normal(size=5), requires_grad=True)
        out = binarize_couplers(t)
        assert np.allclose(out.data, quantize_t(t.data))

    def test_gradient_scaled(self):
        t = Tensor(np.array([-0.5]), requires_grad=True)
        binarize_couplers(t).sum().backward()
        assert np.isclose(t.grad[0], (2 - math.sqrt(2)) / 4)

    def test_gradient_clipped(self):
        t = Tensor(np.array([0.5]), requires_grad=True)
        out = binarize_couplers(t)
        (out * 1e6).sum().backward()
        assert abs(t.grad[0]) <= 1.0


class TestDCCount:
    def test_counts_placed_couplers(self):
        t_q = Tensor(np.array([SQ2, 1.0, SQ2, SQ2]))
        assert np.isclose(dc_count_expr(t_q).item(), 3.0)

    def test_all_passthrough_zero(self):
        t_q = Tensor(np.full(4, 1.0))
        assert np.isclose(dc_count_expr(t_q).item(), 0.0, atol=1e-12)


class TestCouplerLearner:
    def test_interleaved_offsets(self):
        learner = CouplerLearner(8, 4)
        assert list(learner.offsets) == [0, 1, 0, 1]
        assert list(learner.slot_counts) == [4, 3, 4, 3]

    def test_block_transmissions_valid_slots_only(self):
        learner = CouplerLearner(8, 2)
        assert learner.block_transmissions(1).shape == (3,)

    def test_dc_counts_ignore_padded_slots(self):
        learner = CouplerLearner(8, 2)
        np.copyto(learner.latent.data, -np.ones_like(learner.latent.data))
        counts = learner.dc_counts().data
        assert np.allclose(counts, [4.0, 3.0])  # not [4, 4]

    def test_hard_masks_match_latent_signs(self):
        learner = CouplerLearner(6, 2)
        np.copyto(learner.latent.data[0], [-1.0, 1.0, -1.0])
        masks = learner.hard_masks()
        assert masks[0].tolist() == [True, False, True]

    def test_gradients_reach_latent(self):
        learner = CouplerLearner(6, 2)
        learner.dc_counts().sum().backward()
        assert learner.latent.grad is not None
        assert np.abs(learner.latent.grad).max() > 0

    def test_odd_k(self):
        learner = CouplerLearner(7, 3)
        assert list(learner.slot_counts) == [3, 3, 3]
