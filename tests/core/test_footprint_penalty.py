"""Probabilistic footprint penalty (Eq. 15)."""

import numpy as np

from repro.core import (
    FootprintPenaltyConfig,
    SuperMeshSpace,
    block_footprints_exact,
    expected_footprint_exact,
    expected_footprint_proxy,
    footprint_penalty,
)
from repro.photonics import AMF


def make_space(f_min, f_max, **kw):
    kw.setdefault("b_min", 2)
    kw.setdefault("b_max", 6)
    return SuperMeshSpace(k=8, pdk=AMF, f_min=f_min, f_max=f_max, **kw)


class TestExactExpectation:
    def test_block_footprints_include_ps_column(self):
        space = make_space(100_000, 200_000)
        fbs = block_footprints_exact(space)
        assert (fbs >= 8 * AMF.ps_area).all()

    def test_expectation_weighted_by_probs(self):
        space = make_space(100_000, 200_000)
        # Force all searchable blocks to skip.
        space.theta.data[:] = np.array([[10.0, -10.0]] * space.theta.shape[0])
        e_off = expected_footprint_exact(space)
        space.theta.data[:] = np.array([[-10.0, 10.0]] * space.theta.shape[0])
        e_on = expected_footprint_exact(space)
        assert e_on > e_off


class TestPenaltyBranches:
    def test_zero_inside_window(self):
        space = make_space(100_000, 500_000)
        pen, e = footprint_penalty(space)
        assert 100_000 * 1.05 <= e <= 500_000 * 0.95
        assert pen.item() == 0.0

    def test_positive_when_over_budget(self):
        space = make_space(10_000, 50_000)  # tiny window, must be over
        pen, e = footprint_penalty(space)
        assert e > 50_000 * 0.95
        assert pen.item() > 0

    def test_negative_when_under_budget(self):
        space = make_space(5_000_000, 9_000_000)
        pen, e = footprint_penalty(space)
        assert e < 5_000_000 * 1.05
        assert pen.item() < 0

    def test_margin_is_five_percent(self):
        cfg = FootprintPenaltyConfig()
        assert cfg.margin == 0.05
        assert cfg.beta == 10.0 and cfg.beta_cr == 100.0


class TestGradients:
    def test_over_budget_pushes_theta_down(self):
        space = make_space(10_000, 50_000)
        pen, _ = footprint_penalty(space)
        pen.backward()
        g = space.theta.grad
        # Positive grad on the execute logit -> Adam decreases it.
        assert (g[:, 1] > 0).all()
        assert np.allclose(g.sum(axis=1), 0.0, atol=1e-12)

    def test_under_budget_pushes_theta_up(self):
        space = make_space(5_000_000, 9_000_000)
        pen, _ = footprint_penalty(space)
        pen.backward()
        assert (space.theta.grad[:, 1] < 0).all()

    def test_proxy_reaches_couplers_and_perms(self):
        space = make_space(10_000, 50_000)
        proxy = expected_footprint_proxy(space)
        proxy.backward()
        assert np.abs(space.couplers.latent.grad).max() > 0
        assert space.perms.raw.grad is not None

    def test_proxy_cr_term_grows_with_perm_distance(self):
        space = make_space(100_000, 200_000)
        base = expected_footprint_proxy(space).item()
        # Push the relaxation away from identity.
        space.perms.raw.data[:] = np.random.default_rng(0).random(
            space.perms.raw.shape
        )
        far = expected_footprint_proxy(space).item()
        assert far > base
