"""Tests for low-bit phase quantization with STE."""

import math

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.quantization import (
    PhaseQuantConfig,
    QuantizationPoint,
    make_phase_quantizer,
    phase_grid,
    phase_resolution,
    quantization_robustness_curve,
    quantize_phase,
    ste_quantize_phase,
)
from repro.photonics.devices import is_unitary
from repro.ptc.unitary import ButterflyFactory, MZIMeshFactory

TWO_PI = 2.0 * math.pi


class TestConfig:
    def test_levels_and_step(self):
        cfg = PhaseQuantConfig(bits=3)
        assert cfg.n_levels == 8
        assert cfg.step == pytest.approx(TWO_PI / 8)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError, match="bits"):
            PhaseQuantConfig(bits=0)

    def test_resolution_halves_per_bit(self):
        assert phase_resolution(4) == pytest.approx(phase_resolution(3) / 2)

    def test_grid_size_and_range(self):
        g = phase_grid(5)
        assert len(g) == 32
        assert g[0] == 0.0
        assert g[-1] < TWO_PI


class TestQuantizePhase:
    def test_grid_points_are_fixed(self):
        g = phase_grid(4)
        np.testing.assert_allclose(quantize_phase(g, 4), g, atol=1e-12)

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        phi = rng.uniform(0, TWO_PI, size=100)
        once = quantize_phase(phi, 3)
        np.testing.assert_allclose(quantize_phase(once, 3), once, atol=1e-12)

    def test_error_bounded_by_half_step(self):
        rng = np.random.default_rng(1)
        phi = rng.uniform(0, TWO_PI, size=1000)
        for bits in (2, 4, 6):
            q = quantize_phase(phi, bits)
            err = np.abs(np.angle(np.exp(1j * (q - phi))))
            assert err.max() <= phase_resolution(bits) / 2 + 1e-9

    def test_wraps_near_period(self):
        q = quantize_phase(np.array([TWO_PI - 1e-6]), 4)
        assert q[0] == pytest.approx(0.0, abs=1e-9)

    def test_negative_phase_wrapped(self):
        q = quantize_phase(np.array([-math.pi / 2]), 8)
        assert 0.0 <= q[0] < TWO_PI
        assert q[0] == pytest.approx(3 * math.pi / 2, abs=phase_resolution(8))

    def test_one_bit_binary(self):
        phi = np.array([0.1, math.pi - 0.1, math.pi + 0.1, TWO_PI - 0.1])
        q = quantize_phase(phi, 1)
        assert set(np.round(q, 9)) <= {0.0, round(math.pi, 9)}

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        phi = rng.uniform(0, TWO_PI, size=500)
        errors = []
        for bits in (1, 2, 4, 8):
            q = quantize_phase(phi, bits)
            errors.append(np.abs(np.angle(np.exp(1j * (q - phi)))).mean())
        assert errors == sorted(errors, reverse=True)


class TestSTE:
    def test_forward_matches_numpy(self):
        rng = np.random.default_rng(3)
        phi = rng.uniform(0, TWO_PI, size=(4, 5))
        t = Tensor(phi, requires_grad=True)
        out = ste_quantize_phase(t, 3)
        np.testing.assert_allclose(out.data, quantize_phase(phi, 3))

    def test_gradient_is_identity(self):
        phi = Tensor(np.array([0.3, 1.7, 4.0]), requires_grad=True)
        out = ste_quantize_phase(phi, 2)
        out.backward(np.array([1.0, 2.0, -3.0]))
        np.testing.assert_allclose(phi.grad, [1.0, 2.0, -3.0])

    def test_training_moves_latent_phase(self):
        # Even though the forward is piecewise constant, STE descent
        # on |q(phi) - target| moves the latent across level edges.
        phi = Tensor(np.array([0.0]), requires_grad=True)
        target = phase_grid(3)[3]
        for _ in range(200):
            q = ste_quantize_phase(phi, 3)
            loss = ((q - target) * (q - target)).sum()
            loss.backward()
            phi.data = phi.data - 0.05 * phi.grad
            phi.grad = None
        assert quantize_phase(phi.data, 3)[0] == pytest.approx(target)


class TestFactoryIntegration:
    def test_mzi_factory_stays_unitary(self):
        f = MZIMeshFactory(k=8, n_units=2, rng=np.random.default_rng(0))
        f.phase_transform = make_phase_quantizer(bits=4)
        u = f.build().data
        for i in range(2):
            assert is_unitary(u[i])

    def test_quantized_build_uses_grid_phases(self):
        f = ButterflyFactory(k=8, n_units=1, rng=np.random.default_rng(1))
        ideal = f.build().data.copy()
        f.phase_transform = make_phase_quantizer(bits=2)
        coarse = f.build().data
        assert not np.allclose(ideal, coarse)

    def test_high_bits_close_to_ideal(self):
        f = ButterflyFactory(k=8, n_units=1, rng=np.random.default_rng(2))
        ideal = f.build().data.copy()
        f.phase_transform = make_phase_quantizer(bits=10)
        fine = f.build().data
        f.phase_transform = make_phase_quantizer(bits=2)
        coarse = f.build().data
        assert np.abs(fine - ideal).max() < np.abs(coarse - ideal).max()

    def test_transform_introspectable(self):
        tr = make_phase_quantizer(bits=5)
        assert tr.bits == 5

    def test_gradients_flow_through_quantized_factory(self):
        f = MZIMeshFactory(k=4, n_units=1, rng=np.random.default_rng(3))
        f.phase_transform = make_phase_quantizer(bits=4)
        u = f.build()
        loss = (u * u.conj()).real().sum()
        loss.backward()
        assert f.theta.grad is not None
        assert np.isfinite(f.theta.grad).all()


class TestRobustnessCurve:
    def test_curve_structure(self):
        def evaluate(bits):
            return 1.0 if bits is None else 1.0 - 1.0 / (1 + bits)

        pts = quantization_robustness_curve(evaluate, bit_widths=(4, 2, 1))
        assert [p.bits for p in pts] == [0, 4, 2, 1]
        assert pts[0].score == 1.0
        assert all(isinstance(p, QuantizationPoint) for p in pts)

    def test_monotone_toy_model(self):
        rng = np.random.default_rng(4)
        target = rng.uniform(0, TWO_PI, size=64)

        def evaluate(bits):
            phi = target if bits is None else quantize_phase(target, bits)
            err = np.abs(np.angle(np.exp(1j * (phi - target)))).mean()
            return 1.0 - err

        pts = quantization_robustness_curve(evaluate, bit_widths=(6, 4, 2, 1))
        scores = [p.score for p in pts]
        assert scores == sorted(scores, reverse=True)

    def test_n_trials_std(self):
        calls = {"n": 0}

        def evaluate(bits):
            calls["n"] += 1
            return float(calls["n"] % 2)

        pts = quantization_robustness_curve(evaluate, bit_widths=(1,), n_trials=4)
        assert pts[1].score_std > 0
