"""End-to-end ADEPT search flow (scaled down)."""

import numpy as np
import pytest

from repro.core import ADEPTConfig, ADEPTSearch, search_ptc
from repro.data import train_test_split
from repro.photonics import AMF


@pytest.fixture(scope="module")
def mini_result():
    cfg = ADEPTConfig(
        k=8,
        pdk=AMF,
        f_min=240_000,
        f_max=300_000,
        epochs=6,
        warmup_epochs=1,
        spl_epoch=4,
        n_train=96,
        n_test=48,
        proxy_channels=4,
        batch_size=32,
        seed=11,
        lr=5e-3,
        perm_init="identity",  # paper-exact init: stable at tiny scale
    )
    tr, te = train_test_split("mnist", 96, 48, seed=11)
    search = ADEPTSearch(cfg, tr, te)
    return cfg, search, search.run()


class TestSearchFlow:
    def test_topology_feasible(self, mini_result):
        cfg, search, res = mini_result
        f = res.topology.footprint(AMF).total
        assert cfg.f_min <= f <= cfg.f_max

    def test_permutations_legalized(self, mini_result):
        _, search, res = mini_result
        assert search.space.perms.frozen
        assert res.spl_tries is not None

    def test_history_recorded(self, mini_result):
        cfg, search, res = mini_result
        h = res.history
        n_steps = len(h.task_loss)
        assert n_steps == len(h.perm_error) == len(h.rho)
        assert n_steps >= cfg.epochs * 2
        assert len(h.epoch_boundaries) == cfg.epochs
        # Arch steps happened and recorded footprint expectations.
        assert len(h.expected_footprint) > 0

    def test_perm_error_zero_after_spl(self, mini_result):
        _, search, res = mini_result
        assert res.history.perm_error[-1] < 1e-9

    def test_task_loss_recorded_and_finite(self, mini_result):
        """Loss-trend assertions at this miniature scale are noise-bound
        (stochastic architecture sampling); learning itself is verified
        by TestWarmupLearns at a fair budget.  Here we assert the trace
        is sane."""
        _, _, res = mini_result
        assert all(np.isfinite(res.history.task_loss))
        assert all(l > 0 for l in res.history.task_loss)

    def test_topology_in_search_space(self, mini_result):
        cfg, search, res = mini_result
        topo = res.topology
        assert 2 * search.space.half_min <= topo.n_blocks <= 2 * search.space.half_max
        for spec in topo.blocks_u + topo.blocks_v:
            assert spec.offset in (0, 1)
            assert spec.coupler_mask.dtype == bool

    def test_summary_string(self, mini_result):
        _, _, res = mini_result
        assert "PTCTopology" in res.summary()


class TestWarmupLearns:
    def test_supermesh_weight_training_reduces_loss(self):
        """Stage 1 (warmup: weights only) must fit the proxy task.

        Full-batch steps remove sampling noise from the loss trace so
        the trend is attributable to learning.
        """
        cfg = ADEPTConfig(
            k=8, pdk=AMF, f_min=240_000, f_max=300_000,
            epochs=10, warmup_epochs=10, spl_epoch=99, lr=1e-2,
            n_train=64, n_test=32, proxy_channels=6, batch_size=64,
            seed=11, perm_init="identity",
        )
        res = ADEPTSearch(cfg).run()
        h = res.history
        assert np.mean(h.task_loss[-3:]) < h.task_loss[0] - 0.1


class TestConfigHandling:
    def test_b_max_cap_enforced(self):
        cfg = ADEPTConfig(
            k=8, pdk=AMF, f_min=2_000_000, f_max=3_000_000,
            b_max_cap=8, epochs=1, n_train=32, n_test=16, proxy_channels=2,
        )
        search = ADEPTSearch(cfg)
        assert search.space.n_blocks <= 8

    def test_search_ptc_one_call(self):
        cfg = ADEPTConfig(
            k=8, pdk=AMF, f_min=240_000, f_max=300_000,
            epochs=1, warmup_epochs=0, spl_epoch=1,
            n_train=32, n_test=16, proxy_channels=2, batch_size=16, seed=3,
        )
        res = search_ptc(cfg)
        assert res.topology.k == 8
