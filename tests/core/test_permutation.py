"""Permutation learning: reparametrization, ALM, projection, freezing."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import (
    PermutationLearner,
    delta_l1_l2,
    smoothed_identity,
    soft_projection,
)
from repro.core.permutation import _row_col_normalize
from repro.optim import Adam


class TestSmoothedIdentity:
    def test_shape_and_stochasticity(self):
        p = smoothed_identity(6, 3)
        assert p.shape == (3, 6, 6)
        assert np.allclose(p.sum(-1), 1.0)
        assert np.allclose(p.sum(-2), 1.0)

    def test_all_entries_positive(self):
        """Random-permutation init kills gradients at zeros (paper);
        smoothed identity keeps every entry strictly positive."""
        p = smoothed_identity(8)
        assert p.min() > 0

    def test_diagonal_dominant(self):
        p = smoothed_identity(8)[0]
        assert np.all(np.diag(p) > p.max(axis=1) - 1e-12)

    def test_paper_formula(self):
        k = 8
        p = smoothed_identity(k)[0]
        off = 1.0 / (2 * k - 2)
        assert np.isclose(p[0, 1], off)
        assert np.isclose(p[0, 0], 0.5 - off + off)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            smoothed_identity(1)


class TestReparametrization:
    def test_rows_sum_to_one(self, rng):
        p = Tensor(rng.normal(size=(2, 5, 5)))
        out = _row_col_normalize(p).data
        assert np.allclose(out.sum(-1), 1.0)
        assert (out >= 0).all()

    def test_negative_entries_handled(self):
        p = Tensor(np.array([[[-1.0, 0.0], [0.5, -0.5]]]))
        out = _row_col_normalize(p).data
        assert (out >= 0).all()


class TestSoftProjection:
    def test_near_binary_rows_rounded(self):
        p = Tensor(np.array([[0.97, 0.03], [0.4, 0.6]]))
        out = soft_projection(p, eps=0.05).data
        assert np.allclose(out[0], [1.0, 0.0])  # row frozen
        assert np.allclose(out[1], [0.4, 0.6])  # row untouched

    def test_gradient_stopped_on_frozen_rows(self):
        p = Tensor(np.array([[0.97, 0.03], [0.4, 0.6]]), requires_grad=True)
        out = soft_projection(p, eps=0.05)
        (out ** 2).sum().backward()
        assert np.allclose(p.grad[0], 0.0)
        assert np.abs(p.grad[1]).max() > 0


class TestDelta:
    def test_zero_for_one_hot(self):
        p = Tensor(np.eye(4)[None])
        assert np.allclose(delta_l1_l2(p, axis=-1).data, 0.0, atol=1e-12)

    def test_positive_for_spread(self):
        p = Tensor(np.full((1, 3, 3), 1 / 3))
        d = delta_l1_l2(p, axis=-1).data
        assert (d > 0.4).all()  # 1 - 1/sqrt(3) ~ 0.42


class TestALM:
    def test_multipliers_grow_while_violated(self):
        learner = PermutationLearner(4, 2, rho0=1e-3)
        lam0 = learner.mean_lambda()
        for _ in range(5):
            learner.update_multipliers()
        assert learner.mean_lambda() > lam0

    def test_rho_schedule_reaches_1e4x(self):
        learner = PermutationLearner(4, 1, rho0=1e-6, total_steps=100)
        for _ in range(100):
            learner.step_rho()
        assert np.isclose(learner.rho, 1e-6 * 1e4, rtol=1e-6)

    def test_alm_drives_toward_permutation(self):
        """Optimizing only the ALM loss must push the relaxation toward
        a legal permutation (error -> ~0)."""
        learner = PermutationLearner(4, 2, rho0=1e-2, total_steps=300)
        opt = Adam([learner.raw], lr=0.02)
        err0 = learner.permutation_error()
        for _ in range(300):
            loss = learner.alm_loss()
            learner.raw.grad = None
            loss.backward()
            opt.step()
            learner.update_multipliers()
            learner.step_rho()
        assert learner.permutation_error() < err0 * 0.2

    def test_alm_loss_zero_when_frozen(self):
        learner = PermutationLearner(3, 2)
        perms = np.stack([np.eye(3), np.eye(3)[::-1]])
        learner.freeze_to(perms)
        assert learner.alm_loss().item() == 0.0
        assert learner.permutation_error() < 1e-12


class TestFreeze:
    def test_freeze_replaces_and_stops_grad(self):
        learner = PermutationLearner(3, 1)
        learner.freeze_to(np.eye(3)[None])
        assert learner.frozen
        assert not learner.raw.requires_grad
        assert np.allclose(learner.relaxed().data, np.eye(3))

    def test_freeze_shape_validated(self):
        learner = PermutationLearner(3, 2)
        with pytest.raises(ValueError):
            learner.freeze_to(np.eye(3)[None])

    def test_update_after_freeze_is_noop(self):
        learner = PermutationLearner(3, 1)
        learner.freeze_to(np.eye(3)[None])
        lam = learner.mean_lambda()
        learner.update_multipliers()
        assert learner.mean_lambda() == lam
