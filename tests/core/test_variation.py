"""Variation-aware training and noise-robustness evaluation."""

import numpy as np
import pytest

from repro import nn
from repro.core import noise_robustness_curve, variation_aware_train
from repro.onn import PTCLinear, TrainConfig, evaluate


def photonic_model():
    return nn.Sequential(nn.Flatten(), PTCLinear(784, 10, k=8, mesh="butterfly"))


class TestVariationAwareTrain:
    def test_trains_and_disables_noise_after(self, tiny_mnist):
        tr, te = tiny_mnist
        model = photonic_model()
        res = variation_aware_train(
            model, tr, te, noise_std=0.02,
            config=TrainConfig(epochs=2, batch_size=32, lr=5e-3),
        )
        assert len(res.test_accs) == 2
        # Noise must be off after training.
        for m in model.modules():
            if hasattr(m, "u_factory"):
                assert m.u_factory.noise_std == 0.0

    def test_rejects_non_photonic_model(self, tiny_mnist):
        tr, _ = tiny_mnist
        model = nn.Sequential(nn.Flatten(), nn.Linear(784, 10))
        with pytest.raises(ValueError):
            variation_aware_train(model, tr, noise_std=0.02)


class TestRobustnessCurve:
    def test_curve_structure(self, tiny_mnist):
        _, te = tiny_mnist
        model = photonic_model()
        points = noise_robustness_curve(model, te, noise_stds=(0.02, 0.1), n_runs=3)
        assert [p.noise_std for p in points] == [0.02, 0.1]
        for p in points:
            assert len(p.runs) == 3
            assert 0.0 <= p.mean_acc <= 1.0
            assert p.std_acc >= 0.0

    def test_noise_degrades_trained_model(self, tiny_mnist):
        """A trained model must lose accuracy under heavy phase noise
        relative to its clean accuracy."""
        from repro.onn import train

        tr, te = tiny_mnist
        model = photonic_model()
        train(model, tr, te, TrainConfig(epochs=4, batch_size=32, lr=5e-3))
        clean = evaluate(model, te)
        noisy = noise_robustness_curve(model, te, noise_stds=(0.5,), n_runs=3)
        assert noisy[0].mean_acc <= clean + 0.05

    def test_model_restored_after_curve(self, tiny_mnist):
        _, te = tiny_mnist
        model = photonic_model()
        before = evaluate(model, te)
        noise_robustness_curve(model, te, noise_stds=(0.1,), n_runs=2)
        after = evaluate(model, te)
        assert np.isclose(before, after)
