"""Candidate sampling + single-graph population ranking entry points."""

import numpy as np

from repro.core import (
    rank_candidate_topologies,
    sample_candidate_topologies,
)
from repro.core.supermesh import SuperMeshSpace
from repro.photonics import AMF


def _space(seed=7):
    return SuperMeshSpace(
        k=8, pdk=AMF, f_min=240_000, f_max=300_000,
        rng=np.random.default_rng(seed),
    )


class TestCandidateSampling:
    def test_candidates_are_feasible_and_distinct(self):
        space = _space()
        cands = sample_candidate_topologies(
            space, n_candidates=4, rng=np.random.default_rng(0)
        )
        assert 1 <= len(cands) <= 4
        seen = set()
        for topo in cands:
            f = topo.footprint(AMF).total
            assert space.f_min <= f <= space.f_max
            key = topo.to_json()
            assert key not in seen
            seen.add(key)


class TestPopulationRanking:
    def test_rank_returns_one_score_per_candidate(self):
        space = _space()
        cands = sample_candidate_topologies(
            space, n_candidates=3, rng=np.random.default_rng(1)
        )
        res = rank_candidate_topologies(
            cands, steps=40, rng=np.random.default_rng(2)
        )
        assert res.errors.shape == (len(cands),)
        assert np.isfinite(res.errors).all()
        assert set(res.ranking) == set(range(len(cands)))
        assert res.errors[res.best] == res.errors.min()

    def test_fit_actually_reduces_error(self):
        space = _space()
        cands = sample_candidate_topologies(
            space, n_candidates=2, rng=np.random.default_rng(3)
        )
        res = rank_candidate_topologies(
            cands, steps=120, rng=np.random.default_rng(4)
        )
        # history[0] is the error at step 0, history[-1] the final error.
        assert (res.history[-1] <= res.history[0] + 1e-12).all()
