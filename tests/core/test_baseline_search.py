"""Tests for the black-box search baselines."""

import numpy as np
import pytest

from repro.core.baseline_search import (
    BaselineSearchResult,
    EvolutionarySearch,
    RandomSearch,
    is_feasible,
    make_expressivity_evaluator,
    mutate_topology,
    random_feasible_topology,
)
from repro.core.topology import random_topology
from repro.photonics import AIM, AMF

WINDOW = (240_000.0, 300_000.0)  # the paper's smallest 8x8 AMF window


def count_evaluator(counter):
    def evaluate(topology):
        counter["n"] += 1
        # Deterministic cheap score: prefer more couplers.
        return float(topology.device_counts()[1])

    return evaluate


class TestFeasibility:
    def test_feasible_window(self):
        topo = random_feasible_topology(8, AMF, *WINDOW, rng=np.random.default_rng(0))
        assert is_feasible(topo, AMF, *WINDOW)

    def test_infeasible_when_window_moved(self):
        topo = random_feasible_topology(8, AMF, *WINDOW, rng=np.random.default_rng(0))
        assert not is_feasible(topo, AMF, 1_000.0, 2_000.0)


class TestRandomFeasibleTopology:
    @pytest.mark.parametrize("seed", range(4))
    def test_always_in_window(self, seed):
        topo = random_feasible_topology(8, AMF, *WINDOW,
                                        rng=np.random.default_rng(seed))
        total = topo.footprint(AMF).total
        assert WINDOW[0] <= total <= WINDOW[1]

    def test_aim_pdk(self):
        topo = random_feasible_topology(16, AIM, 384_000, 480_000,
                                        rng=np.random.default_rng(1))
        total = topo.footprint(AIM).total
        assert 384_000 <= total <= 480_000

    def test_offsets_interleave(self):
        topo = random_feasible_topology(8, AMF, *WINDOW,
                                        rng=np.random.default_rng(2))
        for blocks in (topo.blocks_u, topo.blocks_v):
            for b, block in enumerate(blocks):
                assert block.offset == b % 2

    def test_impossible_window_raises(self):
        with pytest.raises(RuntimeError, match="feasible"):
            random_feasible_topology(8, AMF, 1.0, 2.0,
                                     rng=np.random.default_rng(0), max_tries=5)

    def test_constraint_recorded(self):
        topo = random_feasible_topology(8, AMF, *WINDOW,
                                        rng=np.random.default_rng(3))
        assert topo.footprint_constraint == WINDOW
        assert topo.pdk_name == AMF.name


class TestMutateTopology:
    def test_returns_new_object(self):
        topo = random_topology(8, 3, 3, np.random.default_rng(0))
        child = mutate_topology(topo, rng=np.random.default_rng(1))
        assert child is not topo
        assert child.k == topo.k

    def test_does_not_modify_parent(self):
        topo = random_topology(8, 3, 3, np.random.default_rng(0))
        before = topo.to_json()
        for seed in range(10):
            mutate_topology(topo, rng=np.random.default_rng(seed), n_edits=3)
        assert topo.to_json() == before

    @pytest.mark.parametrize("seed", range(8))
    def test_invariants_preserved(self, seed):
        topo = random_topology(8, 3, 3, np.random.default_rng(0))
        child = mutate_topology(topo, rng=np.random.default_rng(seed), n_edits=4)
        for blocks in (child.blocks_u, child.blocks_v):
            assert len(blocks) >= 1
            for b, block in enumerate(blocks):
                assert block.offset == b % 2
                assert block.coupler_mask.size == (8 - block.offset) // 2
                assert block.coupler_mask.any()
                if block.perm is not None:
                    assert sorted(block.perm) == list(range(8))

    def test_eventually_changes_something(self):
        topo = random_topology(8, 3, 3, np.random.default_rng(0))
        changed = any(
            mutate_topology(topo, rng=np.random.default_rng(s)).to_json()
            != topo.to_json()
            for s in range(5)
        )
        assert changed


class TestRandomSearch:
    def test_result_feasible_and_counted(self):
        counter = {"n": 0}
        rs = RandomSearch(8, AMF, *WINDOW, evaluate=count_evaluator(counter), seed=0)
        res = rs.run(n_samples=6)
        assert isinstance(res, BaselineSearchResult)
        assert res.n_evaluated == 6
        assert counter["n"] == 6
        assert is_feasible(res.topology, AMF, *WINDOW)

    def test_history_monotone(self):
        rs = RandomSearch(8, AMF, *WINDOW,
                          evaluate=count_evaluator({"n": 0}), seed=1)
        res = rs.run(n_samples=8)
        assert res.history == sorted(res.history)

    def test_best_matches_score(self):
        rs = RandomSearch(8, AMF, *WINDOW,
                          evaluate=lambda t: float(t.n_blocks), seed=2)
        res = rs.run(n_samples=5)
        assert res.score == float(res.topology.n_blocks)


class TestEvolutionarySearch:
    def test_result_feasible(self):
        es = EvolutionarySearch(8, AMF, *WINDOW,
                                evaluate=lambda t: float(t.device_counts()[1]),
                                population=4, seed=0)
        res = es.run(generations=3, children_per_gen=4)
        assert is_feasible(res.topology, AMF, *WINDOW)
        assert res.n_evaluated >= 4

    def test_history_monotone(self):
        es = EvolutionarySearch(8, AMF, *WINDOW,
                                evaluate=lambda t: float(t.device_counts()[1]),
                                population=4, seed=1)
        res = es.run(generations=4, children_per_gen=4)
        assert res.history == sorted(res.history)

    def test_improves_on_simple_objective(self):
        # Hitting an exact coupler count is a hill the mutations can
        # climb; random init is unlikely to land on it, so at least one
        # seed must show strict improvement.
        evaluate = lambda t: -abs(t.device_counts()[1] - 13)
        improved = []
        for seed in range(3):
            es = EvolutionarySearch(8, AMF, *WINDOW, evaluate=evaluate,
                                    population=4, seed=seed)
            res = es.run(generations=5, children_per_gen=6)
            improved.append(res.history[-1] > res.history[0])
        assert any(improved)

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError, match="population"):
            EvolutionarySearch(8, AMF, *WINDOW, population=1)

    def test_beats_or_matches_random_at_budget(self):
        # Same evaluator, same seed family, comparable budgets.
        evaluate = lambda t: float(t.device_counts()[1] + 10 * t.n_blocks)
        rs = RandomSearch(8, AMF, *WINDOW, evaluate=evaluate, seed=4)
        r_res = rs.run(n_samples=20)
        es = EvolutionarySearch(8, AMF, *WINDOW, evaluate=evaluate,
                                population=4, seed=4)
        e_res = es.run(generations=4, children_per_gen=4)
        assert e_res.score >= r_res.score * 0.9


class TestExpressivityEvaluator:
    def test_deeper_scores_higher(self):
        evaluate = make_expressivity_evaluator(steps=150, seed=0)
        shallow = random_topology(8, 2, 2, np.random.default_rng(0),
                                  coupler_density=1.0)
        deep = random_topology(8, 8, 8, np.random.default_rng(0),
                               coupler_density=1.0)
        assert evaluate(deep) > evaluate(shallow)
