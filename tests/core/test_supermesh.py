"""SuperMesh: sampling, depth bounds, topology extraction."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import SuperMeshConv2d, SuperMeshLinear, SuperMeshSpace
from repro.photonics import AMF


def make_space(k=8, f_min=240_000, f_max=300_000, **kw):
    return SuperMeshSpace(k=k, pdk=AMF, f_min=f_min, f_max=f_max, **kw)


class TestSpaceConstruction:
    def test_analytic_bounds_used(self):
        space = make_space()
        # F_b_min = 8*6800 + 1500 = 55.9k -> B_max = ceil(300/55.9) = 6
        assert space.n_blocks == 6
        assert space.half_max == 3

    def test_explicit_bounds_override(self):
        space = make_space(b_min=4, b_max=10)
        assert space.half_max == 5
        assert space.half_min == 2

    def test_always_on_blocks(self):
        space = make_space(b_min=4, b_max=8)
        # per side: 4 super blocks, last 2 always on.
        always = [b for b in range(space.n_blocks)
                  if space._searchable_index(b) is None]
        assert len(always) == 4

    def test_side_partition(self):
        space = make_space(b_min=2, b_max=8)
        u = list(space.side_blocks("u"))
        v = list(space.side_blocks("v"))
        assert u + v == list(range(space.n_blocks))
        with pytest.raises(ValueError):
            space.side_blocks("w")


class TestSampling:
    def test_sample_shapes(self):
        space = make_space(b_min=2, b_max=6)
        s = space.sample(tau=1.0)
        assert len(s.block_transfer) == space.n_blocks
        assert s.exec_prob.shape == (space.n_blocks,)
        assert space.current is s

    def test_always_on_probability_one(self):
        space = make_space(b_min=4, b_max=8)
        s = space.sample(tau=1.0)
        for b in range(space.n_blocks):
            if space._searchable_index(b) is None:
                assert s.exec_prob.data[b] == 1.0

    def test_deterministic_sample(self):
        space = make_space(b_min=2, b_max=6)
        s1 = space.sample(stochastic=False)
        s2 = space.sample(stochastic=False)
        assert np.allclose(s1.exec_prob.data, s2.exec_prob.data)

    def test_exec_probabilities_match_theta(self):
        space = make_space(b_min=2, b_max=6)
        space.theta.data[:] = np.array([[0.0, 10.0]] * space.theta.shape[0])
        probs = space.exec_probabilities()
        assert np.all(probs > 0.99)


class TestLayers:
    def test_linear_forward_backward(self, rng):
        space = make_space(b_min=2, b_max=6)
        lin = SuperMeshLinear(space, 16, 10)
        space.sample(tau=1.0)
        out = lin(Tensor(rng.normal(size=(4, 16))))
        assert out.shape == (4, 10)
        (out ** 2).sum().backward()
        assert lin.core.phases.grad is not None
        assert lin.core.sigma.grad is not None
        assert space.perms.raw.grad is not None
        assert space.couplers.latent.grad is not None

    def test_conv_forward(self, rng):
        space = make_space(b_min=2, b_max=6)
        conv = SuperMeshConv2d(space, 1, 4, 5)
        space.sample(tau=1.0)
        out = conv(Tensor(rng.normal(size=(2, 1, 12, 12))))
        assert out.shape == (2, 4, 8, 8)

    def test_forward_without_sample_uses_deterministic(self, rng):
        space = make_space(b_min=2, b_max=6)
        lin = SuperMeshLinear(space, 8, 8)
        space.current = None
        out = lin(Tensor(rng.normal(size=(2, 8))))
        assert out.shape == (2, 8)

    def test_phase_noise(self, rng):
        space = make_space(b_min=2, b_max=6)
        lin = SuperMeshLinear(space, 8, 8)
        space.sample(stochastic=False)
        w0 = lin.core().data.copy()
        lin.core.noise_std = 0.1
        w1 = lin.core().data
        assert not np.allclose(w0, w1)


class TestLegalization:
    def test_legalize_freezes(self):
        space = make_space(b_min=2, b_max=6)
        tries = space.legalize_permutations()
        assert space.perms.frozen
        assert tries.shape == (space.n_blocks,)
        p = space.perms.relaxed().data
        from repro.photonics import is_permutation_matrix

        for b in range(space.n_blocks):
            assert is_permutation_matrix(p[b])


class TestExtractTopology:
    def test_feasible_topology(self):
        space = make_space()
        topo = space.extract_topology(rng=np.random.default_rng(3))
        f = topo.footprint(AMF).total
        assert space.f_min <= f <= space.f_max
        assert topo.blocks_u and topo.blocks_v
        assert topo.pdk_name == "AMF"

    def test_identity_perms_dropped(self):
        space = make_space(b_min=2, b_max=6)
        # Identity-initialized relaxation legalizes to identity perms.
        topo = space.extract_topology(rng=np.random.default_rng(0))
        for spec in topo.blocks_u + topo.blocks_v:
            if spec.perm is not None:
                assert not np.array_equal(spec.perm, np.arange(space.k))

    def test_instantiable_into_ptc_layer(self, rng):
        from repro.onn import PTCLinear

        space = make_space()
        topo = space.extract_topology(rng=np.random.default_rng(1))
        lin = PTCLinear(16, 16, k=8, mesh=topo)
        assert lin(Tensor(rng.normal(size=(2, 16)))).shape == (2, 16)
