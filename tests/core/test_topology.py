"""PTCTopology artifact: accounting and serialization."""

import numpy as np
import pytest

from repro.core import BlockSpec, PTCTopology, random_topology
from repro.photonics import AIM, AMF


def sample_topology(rng):
    return PTCTopology(
        k=8,
        blocks_u=[
            BlockSpec(coupler_mask=np.array([True, True, False, True]), offset=0,
                      perm=np.array([1, 0, 3, 2, 5, 4, 7, 6])),
            BlockSpec(coupler_mask=np.array([True, False, True]), offset=1),
        ],
        blocks_v=[
            BlockSpec(coupler_mask=np.array([True] * 4), offset=0,
                      perm=rng.permutation(8)),
        ],
        name="unit-test",
        pdk_name="AMF",
        footprint_constraint=(100.0, 200.0),
    )


class TestAccounting:
    def test_device_counts(self, rng):
        topo = sample_topology(rng)
        n_ps, n_dc, n_cr = topo.device_counts()
        assert n_ps == 8 * 3
        assert n_dc == 3 + 2 + 4
        assert n_cr >= 4  # first block has 4 adjacent swaps

    def test_block_crossings(self):
        b = BlockSpec(coupler_mask=np.array([True]), offset=0,
                      perm=np.array([2, 1, 0]))
        assert b.n_cr() == 3
        assert BlockSpec(coupler_mask=np.array([True]), offset=0).n_cr() == 0

    def test_footprint_pdk_dependent(self, rng):
        topo = sample_topology(rng)
        f_amf = topo.footprint(AMF).total
        f_aim = topo.footprint(AIM).total
        assert f_amf != f_aim
        n_ps, n_dc, n_cr = topo.device_counts()
        assert f_amf == AMF.footprint(n_ps, n_dc, n_cr)

    def test_summary_contains_counts(self, rng):
        s = sample_topology(rng).summary(AMF)
        assert "#Blk=3" in s and "AMF" in s


class TestSerialization:
    def test_json_roundtrip(self, rng):
        topo = sample_topology(rng)
        back = PTCTopology.from_json(topo.to_json())
        assert back.k == topo.k
        assert back.name == topo.name
        assert back.device_counts() == topo.device_counts()
        assert np.array_equal(back.blocks_u[0].perm, topo.blocks_u[0].perm)
        assert back.blocks_u[1].perm is None

    def test_file_roundtrip(self, rng, tmp_path):
        topo = sample_topology(rng)
        path = tmp_path / "topo.json"
        topo.save(path)
        back = PTCTopology.load(path)
        assert back.device_counts() == topo.device_counts()
        assert back.footprint_constraint == topo.footprint_constraint


class TestRandomTopology:
    def test_in_search_space(self, rng):
        topo = random_topology(8, 3, 4, rng)
        assert len(topo.blocks_u) == 3 and len(topo.blocks_v) == 4
        for b, spec in enumerate(topo.blocks_u):
            assert spec.offset == b % 2
            assert spec.coupler_mask.any()  # at least one coupler

    def test_instantiable(self, rng):
        from repro.autograd import Tensor
        from repro.onn import PTCLinear

        topo = random_topology(4, 2, 2, rng)
        lin = PTCLinear(8, 8, k=4, mesh=topo)
        assert lin(Tensor(rng.normal(size=(2, 8)))).shape == (2, 8)
