"""SuperMesh fast-backend parity and batched sample assembly."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.supermesh import (
    SuperMeshCore,
    SuperMeshSpace,
    _dc_matrix_from_transmissions,
)
from repro.photonics import AMF

TOL = 1e-9


def _space(seed=5, **kw):
    kw.setdefault("b_min", 4)
    kw.setdefault("b_max", 12)
    return SuperMeshSpace(
        k=8, pdk=AMF, f_min=240_000, f_max=300_000,
        rng=np.random.default_rng(seed), **kw,
    )


def _pair(seed=5, rows=16, cols=16):
    """(fast, reference) space+core pairs with identical init."""
    out = []
    for backend in ("fast", "reference"):
        space = _space(seed)
        core = SuperMeshCore(
            space, rows, cols, rng=np.random.default_rng(seed + 1), backend=backend
        )
        out.append((space, core))
    return out


class TestSampleAssembly:
    def test_batched_dc_columns_match_per_block_reference(self):
        space = _space()
        stacked = space._dc_columns()
        for b in range(space.n_blocks):
            ts = space.couplers.block_transmissions(b)
            ref = _dc_matrix_from_transmissions(
                ts, space.k, int(space.couplers.offsets[b])
            )
            assert np.abs(stacked.data[b] - ref.data).max() <= TOL

    def test_dc_column_gradients_reach_coupler_latents(self):
        space = _space()
        out = space._dc_columns()
        (out * out.conj()).real().sum().backward()
        assert space.couplers.latent.grad is not None
        assert np.isfinite(space.couplers.latent.grad).all()

    def test_stacked_transfer_matches_block_views(self):
        space = _space()
        s = space.sample(tau=1.0, rng=np.random.default_rng(0))
        views = s.block_transfer
        assert len(views) == space.n_blocks
        for b in range(space.n_blocks):
            assert np.array_equal(views[b].data, s.transfer.data[b])


class TestCoreParity:
    def test_forward_parity(self):
        (sf, cf), (sr, cr) = _pair()
        sf.sample(tau=1.0, rng=np.random.default_rng(9))
        sr.sample(tau=1.0, rng=np.random.default_rng(9))
        assert np.abs(cf().data - cr().data).max() <= TOL

    def test_gradient_parity_all_parameter_groups(self):
        (sf, cf), (sr, cr) = _pair()
        sf.sample(tau=1.0, rng=np.random.default_rng(9))
        sr.sample(tau=1.0, rng=np.random.default_rng(9))
        (cf() ** 2).sum().backward()
        (cr() ** 2).sum().backward()
        pairs = [
            (cf.phases.grad, cr.phases.grad),
            (cf.sigma.grad, cr.sigma.grad),
            (sf.perms.raw.grad, sr.perms.raw.grad),
            (sf.couplers.latent.grad, sr.couplers.latent.grad),
            (sf.theta.grad, sr.theta.grad),
        ]
        for gf, gr in pairs:
            assert gf is not None and gr is not None
            assert np.abs(gf - gr).max() <= TOL

    def test_parity_after_legalization(self):
        """Frozen (hard permutation) topologies go through the same path."""
        (sf, cf), (sr, cr) = _pair()
        sf.legalize_permutations(rng=np.random.default_rng(2))
        sr.legalize_permutations(rng=np.random.default_rng(2))
        sf.sample(stochastic=False)
        sr.sample(stochastic=False)
        assert np.abs(cf().data - cr().data).max() <= TOL

    def test_deterministic_eval_parity(self):
        (sf, cf), (sr, cr) = _pair()
        sf.current = None
        sr.current = None
        assert np.abs(cf().data - cr().data).max() <= TOL

    def test_invalid_backend_rejected(self):
        space = _space()
        with pytest.raises(ValueError):
            SuperMeshCore(space, 8, 8, backend="turbo")
