"""Stochastic permutation legalization."""

import numpy as np

from repro.core import legalize_all, legalize_one
from repro.photonics import count_inversions, is_permutation_matrix


class TestLegalizeOne:
    def test_already_legal_passthrough(self, rng):
        k = 5
        p = np.eye(k)[rng.permutation(k)]
        legal, tries = legalize_one(p + rng.normal(0, 0.01, (k, k)), rng=rng)
        assert tries == 0
        assert np.allclose(legal, p)

    def test_paper_saddle_example(self, rng):
        """The Fig. 3 saddle: two rows argmax onto the same column."""
        p = np.array(
            [
                [0.1, 0.8, 0.1],
                [0.1, 0.9, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        legal, tries = legalize_one(p, rng=rng)
        assert is_permutation_matrix(legal)
        assert tries >= 1  # stochastic rounds were needed

    def test_uniform_matrix(self, rng):
        p = np.full((6, 6), 1 / 6)
        legal, _ = legalize_one(p, rng=rng)
        assert is_permutation_matrix(legal)

    def test_keeps_cheap_crossings(self, rng):
        """Near-identity relaxations should legalize to few crossings."""
        k = 8
        p = np.eye(k) + rng.normal(0, 0.05, (k, k))
        legal, _ = legalize_one(p, rng=rng)
        assert is_permutation_matrix(legal)
        perm = np.argmax(legal, axis=1)
        assert count_inversions(list(perm)) <= k  # far below max K(K-1)/2

    def test_fallback_assignment_guarantees_legality(self, rng):
        """Even with zero tries allowed, the Hungarian fallback returns
        a legal permutation."""
        p = np.full((4, 4), 0.25)
        legal, _ = legalize_one(p, sigma=0.0, max_tries=1, rng=rng)
        assert is_permutation_matrix(legal)


class TestLegalizeAll:
    def test_batch(self, rng):
        stack = rng.random((5, 6, 6))
        legal, tries = legalize_all(stack, rng=rng)
        assert legal.shape == (5, 6, 6)
        assert tries.shape == (5,)
        for b in range(5):
            assert is_permutation_matrix(legal[b])

    def test_deterministic_with_seeded_rng(self):
        stack = np.random.default_rng(0).random((3, 5, 5))
        l1, _ = legalize_all(stack, rng=np.random.default_rng(9))
        l2, _ = legalize_all(stack, rng=np.random.default_rng(9))
        assert np.array_equal(l1, l2)
