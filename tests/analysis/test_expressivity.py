"""Tests for expressivity measurement (unitary/matrix fitting)."""

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.analysis import (
    FitResult,
    build_factory,
    fit_unitary,
    matrix_expressivity,
    unitary_expressivity,
)
from repro.core.topology import random_topology
from repro.ptc.unitary import ButterflyFactory, FixedTopologyFactory, MZIMeshFactory


class TestBuildFactory:
    def test_mzi(self):
        assert isinstance(build_factory("mzi", 4), MZIMeshFactory)

    def test_fft_alias(self):
        assert isinstance(build_factory("fft", 8), ButterflyFactory)
        assert isinstance(build_factory("butterfly", 8), ButterflyFactory)

    def test_topology(self):
        topo = random_topology(8, 3, 3, np.random.default_rng(0))
        f = build_factory("topology", 8, topology=topo)
        assert isinstance(f, FixedTopologyFactory)
        assert f.n_blocks == 3

    def test_topology_requires_topology(self):
        with pytest.raises(ValueError, match="requires a topology"):
            build_factory("topology", 8)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            build_factory("quantum", 8)


class TestFitUnitary:
    def test_mzi_is_universal(self):
        f = build_factory("mzi", 4, rng=np.random.default_rng(0))
        target = unitary_group.rvs(4, random_state=1)
        res = fit_unitary(f, target, steps=500, lr=0.05,
                          rng=np.random.default_rng(2))
        assert res.error < 0.02
        assert res.fidelity > 0.999
        assert res.converged or res.error < 0.02

    def test_butterfly_is_restricted(self):
        f = build_factory("fft", 8, rng=np.random.default_rng(0))
        target = unitary_group.rvs(8, random_state=1)
        res = fit_unitary(f, target, steps=300, lr=0.05,
                          rng=np.random.default_rng(2))
        assert res.error > 0.3  # log-depth mesh cannot reach a Haar unitary

    def test_identity_target_trivial_for_topology(self):
        # A topology can always realize *some* matrices well: fitting
        # its own realization must give ~zero error.
        topo = random_topology(8, 2, 2, np.random.default_rng(3))
        f = build_factory("topology", 8, topology=topo, rng=np.random.default_rng(4))
        self_target = f.build().data[0]
        res = fit_unitary(f, self_target, steps=50, lr=0.02,
                          output_phases=False, rng=np.random.default_rng(5))
        assert res.error < 1e-6

    def test_rejects_multi_unit_factory(self):
        f = MZIMeshFactory(4, n_units=2)
        with pytest.raises(ValueError, match="n_units"):
            fit_unitary(f, np.eye(4))

    def test_rejects_wrong_target_shape(self):
        f = MZIMeshFactory(4, n_units=1)
        with pytest.raises(ValueError, match="target"):
            fit_unitary(f, np.eye(5))

    def test_history_recorded(self):
        f = build_factory("fft", 8, rng=np.random.default_rng(0))
        res = fit_unitary(f, unitary_group.rvs(8, random_state=0),
                          steps=50, record_every=10)
        assert len(res.history) >= 5
        assert res.history[-1] == pytest.approx(res.error)


class TestUnitaryExpressivity:
    def test_mzi_beats_butterfly(self):
        k = 8
        mzi = unitary_expressivity(
            lambda: build_factory("mzi", k, rng=np.random.default_rng(0)),
            n_targets=1, steps=400, lr=0.05, rng=np.random.default_rng(1))
        fft = unitary_expressivity(
            lambda: build_factory("fft", k, rng=np.random.default_rng(0)),
            n_targets=1, steps=400, lr=0.05, rng=np.random.default_rng(1))
        assert mzi.error < fft.error
        assert mzi.fidelity > fft.fidelity

    def test_deeper_topology_more_expressive(self):
        k = 8
        rng = np.random.default_rng(0)
        shallow = random_topology(k, 2, 2, rng, coupler_density=1.0)
        deep = random_topology(k, 8, 8, rng, coupler_density=1.0)
        results = {}
        for name, topo in (("shallow", shallow), ("deep", deep)):
            results[name] = unitary_expressivity(
                lambda t=topo: build_factory("topology", k, topology=t,
                                             rng=np.random.default_rng(1)),
                n_targets=1, steps=400, lr=0.05, rng=np.random.default_rng(2))
        assert results["deep"].error < results["shallow"].error


class TestMatrixExpressivity:
    def test_mzi_fits_general_matrices(self):
        res = matrix_expressivity("mzi", 4, n_targets=1, steps=500, lr=0.05,
                                  rng=np.random.default_rng(0))
        assert res.error < 0.05
        assert res.fidelity > 0.99

    def test_result_type(self):
        res = matrix_expressivity("fft", 8, n_targets=1, steps=30,
                                  rng=np.random.default_rng(1))
        assert isinstance(res, FitResult)
        assert len(res.history) == 1
