"""Tests for singular-spectrum statistics."""

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.analysis import (
    SpectrumStats,
    condition_number,
    effective_rank,
    factory_spectrum_stats,
    singular_spectrum,
    unitarity_error,
)
from repro.core.topology import random_topology
from repro.photonics.nonideality import NonidealitySpec, NonidealTopologyFactory
from repro.ptc.unitary import ButterflyFactory, MZIMeshFactory


class TestSingularSpectrum:
    def test_unitary_flat_spectrum(self):
        u = unitary_group.rvs(6, random_state=0)
        np.testing.assert_allclose(singular_spectrum(u), 1.0, atol=1e-10)

    def test_descending(self):
        m = np.random.default_rng(0).normal(size=(5, 5))
        s = singular_spectrum(m)
        assert (np.diff(s) <= 1e-12).all()


class TestEffectiveRank:
    def test_flat_spectrum_full_rank(self):
        assert effective_rank(np.ones(7)) == pytest.approx(7.0)

    def test_single_mode_rank_one(self):
        assert effective_rank([5.0, 0.0, 0.0]) == pytest.approx(1.0)

    def test_empty_or_zero(self):
        assert effective_rank([]) == 0.0
        assert effective_rank([0.0, 0.0]) == 0.0

    def test_between_one_and_n(self):
        rng = np.random.default_rng(1)
        s = rng.uniform(0.1, 1.0, size=9)
        er = effective_rank(s)
        assert 1.0 <= er <= 9.0

    def test_decay_reduces_rank(self):
        flat = effective_rank(np.ones(8))
        decayed = effective_rank(0.5 ** np.arange(8))
        assert decayed < flat


class TestConditionAndUnitarity:
    def test_unitary_condition_one(self):
        u = unitary_group.rvs(5, random_state=2)
        assert condition_number(u) == pytest.approx(1.0, abs=1e-9)

    def test_singular_matrix_inf(self):
        m = np.zeros((3, 3))
        m[0, 0] = 1.0
        assert condition_number(m) == float("inf")

    def test_unitarity_error_zero_for_unitary(self):
        u = unitary_group.rvs(6, random_state=3)
        assert unitarity_error(u) == pytest.approx(0.0, abs=1e-10)

    def test_unitarity_error_positive_for_contraction(self):
        assert unitarity_error(0.5 * np.eye(4)) > 0.1


class TestFactoryStats:
    def test_mzi_mesh_is_unitary_ensemble(self):
        f = MZIMeshFactory(8, n_units=1, rng=np.random.default_rng(0))
        stats = factory_spectrum_stats(f, n_samples=3, rng=np.random.default_rng(1))
        assert isinstance(stats, SpectrumStats)
        assert stats.mean_effective_rank == pytest.approx(8.0, abs=1e-6)
        assert stats.mean_condition_number == pytest.approx(1.0, abs=1e-6)
        assert stats.mean_unitarity_error < 1e-10

    def test_butterfly_mesh_is_unitary_ensemble(self):
        f = ButterflyFactory(8, n_units=1, rng=np.random.default_rng(0))
        stats = factory_spectrum_stats(f, n_samples=3, rng=np.random.default_rng(1))
        assert stats.mean_unitarity_error < 1e-10

    def test_lossy_factory_spectrum_decays(self):
        topo = random_topology(8, 4, 4, np.random.default_rng(0))
        spec = NonidealitySpec(loss_ps_db=0.5, loss_dc_db=0.5)
        f = NonidealTopologyFactory(8, 1, topo.blocks_u, spec,
                                    rng=np.random.default_rng(1))
        stats = factory_spectrum_stats(f, n_samples=3, rng=np.random.default_rng(2))
        assert stats.mean_smax < 1.0
        assert stats.mean_unitarity_error > 0.01

    def test_parameters_restored_after_sampling(self):
        f = MZIMeshFactory(4, n_units=1, rng=np.random.default_rng(0))
        before = [p.data.copy() for p in f.parameters()]
        factory_spectrum_stats(f, n_samples=2, rng=np.random.default_rng(1))
        for p, saved in zip(f.parameters(), before):
            np.testing.assert_array_equal(p.data, saved)

    def test_n_samples_counts_units(self):
        f = ButterflyFactory(8, n_units=3, rng=np.random.default_rng(0))
        stats = factory_spectrum_stats(f, n_samples=2, rng=np.random.default_rng(1))
        assert stats.n_samples == 6
