"""Tests for structural mixing (light-cone) analysis."""

import math

import numpy as np
import pytest

from repro.analysis.connectivity import (
    block_adjacency,
    light_cone_sizes,
    mixing_depth,
    reachability,
    topology_mixing_report,
)
from repro.core.topology import BlockSpec, PTCTopology, random_topology
from repro.ptc.reference_topologies import butterfly_topology, mzi_topology


def full_block(b, k):
    offset = b % 2
    return BlockSpec(coupler_mask=np.ones((k - offset) // 2, dtype=bool),
                     offset=offset, perm=None)


class TestBlockAdjacency:
    def test_no_couplers_is_identity(self):
        block = BlockSpec(coupler_mask=np.zeros(4, dtype=bool), offset=0,
                          perm=None)
        np.testing.assert_array_equal(block_adjacency(block, 8), np.eye(8, dtype=bool))

    def test_coupler_links_pair(self):
        mask = np.zeros(4, dtype=bool)
        mask[1] = True  # wires 2, 3
        block = BlockSpec(coupler_mask=mask, offset=0, perm=None)
        a = block_adjacency(block, 8)
        assert a[2, 3] and a[3, 2]
        assert not a[0, 1]

    def test_perm_relabels_rows(self):
        block = BlockSpec(coupler_mask=np.zeros(4, dtype=bool), offset=0,
                          perm=np.array([1, 0, 2, 3, 4, 5, 6, 7]))
        a = block_adjacency(block, 8)
        assert a[0, 1] and a[1, 0]
        assert not a[0, 0]


class TestReachabilityAndMixing:
    def test_butterfly_mixes_in_log2k_stages(self):
        for k in (4, 8, 16):
            topo = butterfly_topology(k)
            assert mixing_depth(topo.blocks_u, k) == int(math.log2(k))

    def test_mzi_rectangle_mixes(self):
        topo = mzi_topology(8)
        depth = mixing_depth(topo.blocks_u, 8)
        assert depth is not None
        # Adjacent-pair mixing needs ~K columns = 2K blocks to span.
        assert depth <= 2 * 8

    def test_couplerless_cascade_never_mixes(self):
        blocks = [BlockSpec(coupler_mask=np.zeros(4, dtype=bool), offset=0,
                            perm=None)] * 5
        assert mixing_depth(blocks, 8) is None

    def test_light_cone_growth_monotone(self):
        k = 8
        blocks = [full_block(b, k) for b in range(6)]
        prev = np.ones(k)
        for d in range(1, len(blocks) + 1):
            cones = light_cone_sizes(blocks[:d], k)
            assert (cones >= prev).all()
            prev = cones

    def test_adjacent_mixing_cone_bound(self):
        # Without permutations, one block extends a cone by at most
        # two wires in each direction.
        k = 8
        blocks = [full_block(b, k) for b in range(2)]
        cones = light_cone_sizes(blocks, k)
        assert cones.max() <= 5

    def test_reachability_shape_and_diagonal(self):
        topo = random_topology(8, 3, 3, np.random.default_rng(0))
        r = reachability(topo.blocks_u, 8)
        assert r.shape == (8, 8)
        # Light always reaches the wire it stays on (perms relabel).
        assert r.sum() >= 8


class TestReport:
    def test_mixed_report(self):
        topo = butterfly_topology(8)
        assert "fully mixed" in topology_mixing_report(topo)

    def test_unmixed_report(self):
        blocks = [BlockSpec(coupler_mask=np.zeros(4, dtype=bool), offset=0,
                            perm=None)]
        topo = PTCTopology(k=8, blocks_u=blocks, blocks_v=[], name="bare")
        report = topology_mixing_report(topo)
        assert "NOT fully mixed" in report
