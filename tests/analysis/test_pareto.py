"""Tests for Pareto-front utilities."""

import pytest

from repro.analysis import ParetoPoint, dominates, hypervolume_2d, pareto_front


def pt(f, s, label=""):
    return ParetoPoint(footprint=f, score=s, label=label)


class TestDominates:
    def test_strictly_better(self):
        assert dominates(pt(1, 9), pt(2, 8))

    def test_better_on_one_axis(self):
        assert dominates(pt(1, 9), pt(2, 9))
        assert dominates(pt(1, 9), pt(1, 8))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(pt(1, 9), pt(1, 9))

    def test_trade_off_no_domination(self):
        assert not dominates(pt(1, 5), pt(2, 9))
        assert not dominates(pt(2, 9), pt(1, 5))

    def test_rejects_negative_footprint(self):
        with pytest.raises(ValueError):
            pt(-1, 5)


class TestParetoFront:
    def test_removes_dominated(self):
        points = [pt(1, 5), pt(2, 9), pt(3, 7), pt(2.5, 9.5)]
        front = pareto_front(points)
        assert pt(3, 7) not in front
        assert pt(2, 9) in front

    def test_sorted_by_footprint(self):
        points = [pt(5, 10), pt(1, 2), pt(3, 6)]
        front = pareto_front(points)
        fps = [p.footprint for p in front]
        assert fps == sorted(fps)

    def test_scores_ascend_along_front(self):
        points = [pt(1, 3), pt(2, 7), pt(4, 9), pt(3, 1), pt(5, 8)]
        front = pareto_front(points)
        scores = [p.score for p in front]
        assert scores == sorted(scores)

    def test_single_point(self):
        assert pareto_front([pt(2, 2)]) == [pt(2, 2)]

    def test_empty(self):
        assert pareto_front([]) == []

    def test_duplicate_footprint_keeps_best(self):
        front = pareto_front([pt(1, 5, "a"), pt(1, 9, "b")])
        assert len(front) == 1
        assert front[0].score == 9

    def test_all_on_front(self):
        points = [pt(1, 1), pt(2, 2), pt(3, 3)]
        assert pareto_front(points) == points


class TestHypervolume:
    def test_single_point_rectangle(self):
        hv = hypervolume_2d([pt(2, 5)], ref_footprint=10, ref_score=0)
        assert hv == pytest.approx((10 - 2) * 5)

    def test_staircase(self):
        front = [pt(1, 1), pt(2, 2)]
        hv = hypervolume_2d(front, ref_footprint=4, ref_score=0)
        # [1,2) x [0,1) + [2,4) x [0,2)
        assert hv == pytest.approx(1 * 1 + 2 * 2)

    def test_dominated_points_ignored(self):
        with_dom = hypervolume_2d([pt(1, 1), pt(2, 2), pt(3, 1.5)],
                                  ref_footprint=4)
        without = hypervolume_2d([pt(1, 1), pt(2, 2)], ref_footprint=4)
        assert with_dom == pytest.approx(without)

    def test_points_outside_ref_box_ignored(self):
        hv = hypervolume_2d([pt(20, 5)], ref_footprint=10)
        assert hv == 0.0

    def test_empty_front(self):
        assert hypervolume_2d([], ref_footprint=10) == 0.0

    def test_more_points_more_volume(self):
        base = [pt(5, 5)]
        richer = [pt(5, 5), pt(2, 3)]
        assert (hypervolume_2d(richer, ref_footprint=10)
                > hypervolume_2d(base, ref_footprint=10))
