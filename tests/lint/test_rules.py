# repro-lint: disable-file=all  (fixtures below violate rules on purpose)
"""Per-rule fixtures for ``repro lint``: one known-bad and one
known-good snippet per rule, including regression fixtures that
reconstruct the historical bugs verbatim — the pre-PR-4 ``hash()``
seeding and the pre-PR-8 ``(p+d)-d`` SPSA restore — and assert the
linter flags each one."""

import textwrap

from repro.lint import lint_source


def ids(src, path="src/repro/somemod.py"):
    """Rule ids found in ``src`` (dedented), reported under ``path``."""
    return sorted({f.rule for f in lint_source(textwrap.dedent(src), path=path)})


def findings(src, path="src/repro/somemod.py"):
    return lint_source(textwrap.dedent(src), path=path)


class TestRL001UnstableSeed:
    def test_flags_pre_pr4_hash_seeding_verbatim(self):
        # The exact idiom PR 4 removed: seeds derived via builtin
        # hash() differ between processes under PYTHONHASHSEED.
        src = """
        import numpy as np

        def run_rng(name, run):
            seed = hash((name, run)) % (2**31)
            return np.random.default_rng(seed)
        """
        fs = findings(src)
        assert [f.rule for f in fs] == ["RL001"]
        assert "hash(" in fs[0].text
        assert "PYTHONHASHSEED" in fs[0].message

    def test_flags_hash_inline_in_seed_kwarg(self):
        src = """
        from repro.utils.rng import spawn_rng

        def make(label):
            return spawn_rng(seed=hash(label))
        """
        assert ids(src) == ["RL001"]

    def test_clean_with_stable_seed(self):
        src = """
        import numpy as np
        from repro.utils.rng import stable_seed

        def run_rng(name, run):
            return np.random.default_rng(stable_seed(name, run))
        """
        assert ids(src) == []

    def test_locally_defined_hash_is_not_the_builtin(self):
        src = """
        def hash(x):
            return 0

        def use(x):
            return hash(x)
        """
        assert ids(src) == []


class TestRL002GlobalRng:
    def test_flags_module_level_numpy_random(self):
        src = """
        import numpy as np

        def draw(n):
            np.random.seed(0)
            return np.random.normal(size=n)
        """
        fs = findings(src)
        assert [f.rule for f in fs] == ["RL002", "RL002"]
        assert "global RNG" in fs[0].message

    def test_flags_from_import_and_aliased_module(self):
        assert ids("from numpy.random import normal\n") == ["RL002"]
        src = """
        import numpy.random as nr

        def draw(n):
            return nr.uniform(size=n)
        """
        assert ids(src) == ["RL002"]

    def test_flags_legacy_randomstate(self):
        src = """
        import numpy as np

        def draw():
            return np.random.RandomState(0)
        """
        fs = findings(src)
        assert [f.rule for f in fs] == ["RL002"]
        assert "RandomState" in fs[0].message

    def test_clean_with_threaded_generator(self):
        src = """
        import numpy as np

        def draw(n, rng=None):
            rng = rng if rng is not None else np.random.default_rng(0)
            return rng.normal(size=n)
        """
        assert ids(src) == []


class TestRL003FloatRestore:
    PRE_PR8_SPSA = """
    def _perturbed_error(factory, target, params, deltas, sign):
        for p, d in zip(params, deltas):
            p.data += sign * d
        err = _chip_error(factory, target)
        for p, d in zip(params, deltas):
            p.data -= sign * d
        return err
    """

    def test_flags_pre_pr8_spsa_restore_verbatim(self):
        # The exact idiom PR 8 removed: (p+d)-d does not round-trip in
        # floating point, so every SPSA evaluation drifted the phases.
        fs = findings(self.PRE_PR8_SPSA)
        assert [f.rule for f in fs] == ["RL003"]
        assert "-=" in fs[0].text  # flagged at the restoring subtract

    def test_flags_spelled_out_binop_form(self):
        src = """
        def probe(p, d):
            p.data = p.data + d
            err = measure(p)
            p.data = p.data - d
            return err
        """
        assert ids(src) == ["RL003"]

    def test_flags_subtract_then_add_order(self):
        src = """
        def probe(p, d):
            p.data -= d
            err = measure(p)
            p.data += d
            return err
        """
        assert ids(src) == ["RL003"]

    def test_clean_restore_from_copy(self):
        src = """
        def _perturbed_error(factory, target, params, deltas, sign):
            saved = [p.data.copy() for p in params]
            for p, d in zip(params, deltas):
                p.data += sign * d
            err = _chip_error(factory, target)
            for p, s in zip(params, saved):
                p.data = s
            return err
        """
        assert ids(src) == []

    def test_integer_counters_are_not_flagged(self):
        src = """
        def count(self):
            self.depth += 1
            walk(self)
            self.depth -= 1
        """
        assert ids(src) == []


class TestRL004ModeLeak:
    def test_flags_eval_without_restore(self):
        src = """
        def score(model, data):
            model.eval()
            return sum(model(x) for x in data)
        """
        fs = findings(src)
        assert [f.rule for f in fs] == ["RL004"]
        assert "try/finally" in fs[0].message

    def test_clean_with_try_finally_restore(self):
        src = """
        def score(model, data):
            prior = model.training
            try:
                model.eval()
                return sum(model(x) for x in data)
            finally:
                model.train(prior)
        """
        assert ids(src) == []

    def test_mode_transition_api_itself_is_exempt(self):
        src = """
        class Module:
            def train(self, mode=True):
                for m in self.children():
                    m.train(mode)
                return self

            def eval(self):
                return self.train(False)
        """
        assert ids(src) == []

    def test_constructor_setting_own_mode_is_exempt(self):
        src = """
        class View:
            def __init__(self, model):
                self.base = model
                self.train(model.training)
        """
        assert ids(src) == []

    def test_constructor_touching_another_object_is_flagged(self):
        src = """
        class View:
            def __init__(self, model):
                model.eval()
        """
        assert ids(src) == ["RL004"]


class TestRL005NonAtomicWrite:
    def test_flags_bare_write_open(self):
        src = """
        def publish(path, text):
            with open(path, "w") as f:
                f.write(text)
        """
        fs = findings(src)
        assert [f.rule for f in fs] == ["RL005"]
        assert "atomic_write" in fs[0].message

    def test_flags_keyword_mode_and_binary(self):
        src = """
        def publish(path, data):
            f = open(path, mode="wb")
            f.write(data)
            f.close()
        """
        assert ids(src) == ["RL005"]

    def test_read_open_is_clean(self):
        src = """
        def load(path):
            with open(path) as f:
                return f.read()
        """
        assert ids(src) == []

    def test_serialization_module_is_exempt(self):
        src = """
        def atomic_write_bytes(path, data):
            with open(path, "wb") as f:
                f.write(data)
        """
        assert ids(src, path="src/repro/utils/serialization.py") == []

    def test_clean_via_atomic_helper(self):
        src = """
        from repro.utils.serialization import atomic_write_text

        def publish(path, text):
            atomic_write_text(path, text)
        """
        assert ids(src) == []


class TestRL006WallClock:
    def test_flags_time_time_in_hardware(self):
        src = """
        import time

        def stamp():
            return time.time()
        """
        fs = findings(src, path="src/repro/hardware/clock.py")
        assert [f.rule for f in fs] == ["RL006"]
        assert "virtual clock" in fs[0].message

    def test_flags_datetime_now_in_core(self):
        src = """
        from datetime import datetime

        def stamp():
            return datetime.now()
        """
        assert ids(src, path="src/repro/core/run.py") == ["RL006"]

    def test_wall_clock_fine_outside_deterministic_dirs(self):
        src = """
        import time

        def stamp():
            return time.time()
        """
        assert ids(src, path="src/repro/service/clock.py") == []

    def test_injected_now_is_clean(self):
        src = """
        def advance(state, now=None):
            return state.at(now)
        """
        assert ids(src, path="src/repro/hardware/drift2.py") == []


class TestRL007RawQueueTransition:
    def test_flags_raw_status_update(self):
        src = """
        def force_done(conn, job_id):
            conn.execute("UPDATE jobs SET status='done' WHERE id=?", (job_id,))
        """
        fs = findings(src, path="src/repro/service/tools.py")
        assert [f.rule for f in fs] == ["RL007"]
        assert "queue.py" in fs[0].message

    def test_flags_raw_shard_insert(self):
        src = """
        def inject(conn, job_id, payload):
            conn.execute("INSERT INTO shards (job_id, payload) VALUES (?,?)",
                         (job_id, payload))
        """
        assert ids(src, path="src/repro/service/tools.py") == ["RL007"]

    def test_queue_module_is_exempt(self):
        src = """
        def _transition_job(conn, job_id, new, now):
            conn.execute("UPDATE jobs SET status=?, updated=? WHERE id=?",
                         (new, now, job_id))
        """
        assert ids(src, path="src/repro/service/queue.py") == []

    def test_docstring_mentioning_sql_is_clean(self):
        src = '''
        def helper():
            """Never write UPDATE jobs SET status=... by hand."""
            return None
        '''
        assert ids(src, path="src/repro/service/tools.py") == []

    def test_unrelated_tables_are_clean(self):
        src = """
        def tally(conn):
            conn.execute("UPDATE metrics SET status='x' WHERE 1")
        """
        assert ids(src, path="src/repro/service/tools.py") == []


class TestRL008CliExitContract:
    def test_flags_swallowed_failure(self):
        src = """
        def cmd_run(args):
            try:
                work(args)
            except Exception:
                print("failed")
            return 0
        """
        fs = findings(src, path="src/repro/cli.py")
        assert [f.rule for f in fs] == ["RL008"]
        assert "exit 0" in fs[0].message

    def test_clean_when_returning_nonzero(self):
        src = """
        import sys

        def cmd_run(args):
            try:
                work(args)
            except Exception as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            return 0
        """
        assert ids(src, path="src/repro/cli.py") == []

    def test_clean_when_reraising(self):
        src = """
        def cmd_run(args):
            try:
                work(args)
            except Exception:
                cleanup()
                raise
            return 0
        """
        assert ids(src, path="src/repro/cli.py") == []

    def test_narrow_handlers_are_fine(self):
        src = """
        def cmd_run(args):
            try:
                work(args)
            except KeyError:
                return fallback(args)
            return 0
        """
        assert ids(src, path="src/repro/cli.py") == []

    def test_only_cli_modules_are_in_scope(self):
        src = """
        def cmd_run(args):
            try:
                work(args)
            except Exception:
                pass
            return 0
        """
        assert ids(src, path="src/repro/service/workers.py") == []


class TestRL009BespokeSweep:
    PATH = "src/repro/experiments/mystudy.py"

    def test_flags_pre_campaign_sweep_verbatim(self):
        # The exact idiom the campaign redesign replaced: run_* drivers
        # looping over a module-level value grid.
        src = """
        BETA_VALUES = (0.001, 0.01, 0.1, 1.0, 10.0)

        def run_fig5b(steps=150):
            out = {}
            for beta in BETA_VALUES:
                out[beta] = scan_point(beta, steps=steps)
            return out
        """
        fs = findings(src, path=self.PATH)
        assert [f.rule for f in fs] == ["RL009"]
        assert "CampaignSpec" in fs[0].message

    def test_flags_items_over_spec_table(self):
        src = """
        def run_nonideality_study(n_trials=8):
            rows = []
            for name, spec in specs.items():
                rows.append(measure(name, spec, n_trials))
            return rows
        """
        assert ids(src, path=self.PATH) == ["RL009"]

    def test_flags_literal_numeric_grid_and_subscripted_windows(self):
        src = """
        def run_quantization_study(k=8):
            for bits in (6, 4, 3, 2):
                evaluate(bits, k)

        def run_table(k=8, n_targets=2):
            for i, window in enumerate(WINDOWS[k][:n_targets], start=1):
                search(i, window)
        """
        fs = findings(src, path=self.PATH)
        assert [f.rule for f in fs] == ["RL009", "RL009"]

    def test_campaign_shim_loops_are_clean(self):
        # The post-redesign shim shape: iterate the campaign's cells
        # and results, not a parameter grid.
        src = """
        def run_fig5b(steps=150):
            run = run_campaign(build_spec(steps))
            out = {}
            for cell, r in zip(run.cells, run.results):
                out[cell.coords["beta"]] = r
            for beta, trace in out.items():
                report(beta, trace)
            return out
        """
        assert ids(src, path=self.PATH) == []

    def test_only_run_drivers_in_experiments_are_in_scope(self):
        sweep = """
        def {name}(k=8):
            for bits in bit_widths:
                evaluate(bits, k)
        """
        # Helper functions are out of scope ...
        assert ids(sweep.format(name="collect_cells"), path=self.PATH) == []
        # ... as are run_* drivers outside experiments/.
        assert ids(sweep.format(name="run_scan"),
                   path="src/repro/analysis/scan.py") == []
        # Reference oracles (leading underscore) stay in scope: the
        # checked-in ones are baselined, not exempted.
        assert ids(sweep.format(name="_run_scan_reference"),
                   path=self.PATH) == ["RL009"]
