"""The linter gates its own repository: ``src/repro`` must be clean.

This is the acceptance bar of the lint subsystem — every rule runs
over the real tree against the checked-in ``lint-baseline.json``, so
any regression of a bug class the project has already paid for
(unstable seeds, torn writes, mode leaks, raw queue transitions ...)
fails tier-1 here before it can corrupt a result.  The baseline
itself is constrained: only RL009 (bespoke-sweep) entries may appear
in it, grandfathering the frozen pre-campaign parity oracles — every
other rule must hold with zero suppressions.
"""

from dataclasses import replace
from pathlib import Path

from repro.lint import apply_baseline, available_rules, lint_paths, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"


def _relative_to_repo(findings):
    # The checked-in baseline fingerprints repo-relative paths (it is
    # written by `repro lint src/repro ...` from the repo root).
    return [
        replace(f, path=str(Path(f.path).relative_to(REPO_ROOT)))
        for f in findings
    ]


class TestSelfHosted:
    def test_src_repro_is_clean(self):
        findings = _relative_to_repo(lint_paths([SRC]))
        fresh, _ = apply_baseline(findings, load_baseline(BASELINE))
        assert fresh == [], "\n".join(f.render() for f in fresh)

    def test_baseline_only_grandfathers_sweep_oracles(self):
        # The baseline exists solely for RL009's frozen pre-campaign
        # loops (reference parity oracles, table sweeps).  Any other
        # rule id in it means a true positive got suppressed instead
        # of fixed.
        baseline = load_baseline(BASELINE)
        assert sum(baseline.values()) > 0
        assert {rule for rule, _path, _text in baseline} == {"RL009"}

    def test_src_is_clean_without_rl009_baseline(self):
        # Everything except the grandfathered sweeps must be clean
        # with NO baseline at all.
        findings = [f for f in lint_paths([SRC]) if f.rule != "RL009"]
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_all_rules_ran(self):
        # The clean result above must come from the full rule set, not
        # an accidentally empty registry.
        assert len(available_rules()) >= 9

    def test_lint_package_lints_itself(self):
        findings = lint_paths([SRC / "lint"])
        assert findings == [], "\n".join(f.render() for f in findings)
