"""The linter gates its own repository: ``src/repro`` must be clean.

This is the acceptance bar of the lint subsystem — every rule runs
over the real tree with an *empty* baseline, so any regression of a
bug class the project has already paid for (unstable seeds, torn
writes, mode leaks, raw queue transitions ...) fails tier-1 here
before it can corrupt a result.
"""

from pathlib import Path

from repro.lint import available_rules, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


class TestSelfHosted:
    def test_src_repro_is_clean(self):
        findings = lint_paths([SRC])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_all_rules_ran(self):
        # The clean result above must come from the full rule set, not
        # an accidentally empty registry.
        assert len(available_rules()) >= 8

    def test_lint_package_lints_itself(self):
        findings = lint_paths([SRC / "lint"])
        assert findings == [], "\n".join(f.render() for f in findings)
