# repro-lint: disable-file=all  (fixtures below violate rules on purpose)
"""Engine-level tests: pragmas, baselines, name resolution, parse
errors, registry, and path walking."""

import json
import textwrap

import pytest

from repro.lint import (
    FileContext,
    apply_baseline,
    available_rules,
    get_rule,
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)

BAD_WRITE = 'with open("out.json", "w") as f:\n    f.write("{}")\n'


class TestRegistry:
    def test_nine_rules_plus_stable_ids(self):
        rules = available_rules()
        assert [r.id for r in rules] == [f"RL00{i}" for i in range(1, 10)]
        assert all(r.name and r.description and r.rationale for r in rules)

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown lint rule"):
            get_rule("RL999")


class TestPragmas:
    def test_same_line_disable(self):
        src = BAD_WRITE.replace(
            "as f:", "as f:  # repro-lint: disable=RL005"
        )
        assert lint_source(src, path="src/repro/x.py") == []

    def test_disable_next_line(self):
        src = "# repro-lint: disable-next-line=RL005\n" + BAD_WRITE
        assert lint_source(src, path="src/repro/x.py") == []

    def test_disable_wrong_rule_does_not_suppress(self):
        src = BAD_WRITE.replace(
            "as f:", "as f:  # repro-lint: disable=RL001"
        )
        assert [f.rule for f in lint_source(src, path="src/repro/x.py")] == [
            "RL005"
        ]

    def test_disable_file(self):
        src = "# repro-lint: disable-file=RL005\n" + BAD_WRITE
        assert lint_source(src, path="src/repro/x.py") == []

    def test_disable_file_all(self):
        src = "# repro-lint: disable-file=all\n" + BAD_WRITE + "x = hash('a')\n"
        assert lint_source(src, path="src/repro/x.py") == []

    def test_disable_all_on_one_line(self):
        src = BAD_WRITE.replace("as f:", "as f:  # repro-lint: disable=all")
        assert lint_source(src, path="src/repro/x.py") == []


class TestParseErrors:
    def test_syntax_error_yields_rl000(self):
        fs = lint_source("def broken(:\n", path="src/repro/x.py")
        assert len(fs) == 1
        assert fs[0].rule == "RL000"
        assert "does not parse" in fs[0].message

    def test_rl000_is_not_pragma_suppressible(self):
        fs = lint_source(
            "# repro-lint: disable-file=all\ndef broken(:\n",
            path="src/repro/x.py",
        )
        assert [f.rule for f in fs] == ["RL000"]


class TestNameResolution:
    def test_aliased_module_chain(self):
        src = "import numpy.random as nr\nnr.normal(size=3)\n"
        ctx_findings = lint_source(src, path="src/repro/x.py")
        assert [f.rule for f in ctx_findings] == ["RL002"]

    def test_unimported_names_do_not_resolve(self):
        # A local object called `time` is not the stdlib module.
        src = textwrap.dedent(
            """
            def f(time):
                return time.time()
            """
        )
        assert lint_source(src, path="src/repro/hardware/x.py") == []

    def test_file_context_resolve(self):
        import ast

        src = "import numpy as np\nx = np.random.default_rng(0)\n"
        ctx = FileContext("src/repro/x.py", src, ast.parse(src))
        call = next(
            n for n in ast.walk(ctx.tree) if isinstance(n, ast.Call)
        )
        assert ctx.resolve(call.func) == "numpy.random.default_rng"


class TestFindings:
    def test_render_and_dict_shape(self):
        fs = lint_source(BAD_WRITE, path="src/repro/x.py")
        assert len(fs) == 1
        f = fs[0]
        assert f.render().startswith("src/repro/x.py:1:")
        assert "RL005" in f.render()
        d = f.to_dict()
        assert set(d) == {
            "rule", "name", "path", "line", "col", "message", "text",
        }
        json.dumps(d)  # JSON-serializable

    def test_findings_sorted_by_location(self):
        src = "x = hash('b')\n" + BAD_WRITE
        fs = lint_source(src, path="src/repro/x.py")
        assert [f.rule for f in fs] == ["RL001", "RL005"]
        assert fs[0].line < fs[1].line


class TestBaseline:
    def test_round_trip_suppresses_grandfathered(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_WRITE)
        findings = lint_paths([bad])
        assert len(findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        fresh, grandfathered = apply_baseline(
            findings, load_baseline(baseline_path)
        )
        assert fresh == [] and grandfathered == 1

    def test_baseline_is_line_number_independent(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_WRITE)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([bad]))
        # Shift the violation down two lines: still grandfathered.
        bad.write_text("import os\nimport sys\n" + BAD_WRITE)
        fresh, grandfathered = apply_baseline(
            lint_paths([bad]), load_baseline(baseline_path)
        )
        assert fresh == [] and grandfathered == 1

    def test_new_second_occurrence_still_reported(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_WRITE)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([bad]))
        # A second, identical violation appears: exactly one of the two
        # is grandfathered, the other is fresh.
        bad.write_text(BAD_WRITE + BAD_WRITE)
        fresh, grandfathered = apply_baseline(
            lint_paths([bad]), load_baseline(baseline_path)
        )
        assert len(fresh) == 1 and grandfathered == 1

    def test_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "nope.json"
        p.write_text('{"some": "thing"}')
        with pytest.raises(ValueError, match="baseline"):
            load_baseline(p)

    def test_checked_in_baseline_is_rl009_only(self):
        # The sole grandfathered rule is RL009 (bespoke-sweep): the
        # frozen pre-campaign parity oracles keep their legacy loops
        # on purpose.  Every other rule holds with zero suppressions
        # (tests/lint/test_self_hosted.py pins that side).
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        baseline = load_baseline(repo / "lint-baseline.json")
        assert sum(baseline.values()) > 0
        assert {rule for rule, _path, _text in baseline} == {"RL009"}


class TestPathWalking:
    def test_directory_walk_dedup_and_sort(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        a = tmp_path / "pkg" / "a.py"
        b = tmp_path / "pkg" / "b.py"
        a.write_text("x = 1\n")
        b.write_text("y = 2\n")
        files = iter_python_files([tmp_path, a])
        assert files == [a, b]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files(["definitely/not/here"])

    def test_non_python_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("open('x', 'w')")
        assert iter_python_files([tmp_path]) == []
