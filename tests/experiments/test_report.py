"""Tests for markdown / CSV report rendering."""

import csv
import io

from repro.experiments.common import MeshResult
from repro.experiments.report import (
    mesh_results_csv,
    mesh_results_markdown,
    robustness_csv,
)
from repro.photonics import AMF
from repro.photonics.footprint import mzi_onn_footprint


def rows():
    return [
        MeshResult(name="MZI-ONN", footprint=mzi_onn_footprint(AMF, 8),
                   accuracy=98.63),
        MeshResult(name="ADEPT-a1", footprint=mzi_onn_footprint(AMF, 8),
                   accuracy=98.26, window=(240.0, 300.0)),
    ]


class TestMarkdown:
    def test_header_and_rows(self):
        md = mesh_results_markdown(rows(), title="Table 1")
        lines = md.splitlines()
        assert lines[0] == "### Table 1"
        assert any("MZI-ONN" in l for l in lines)
        assert any("[240, 300]" in l for l in lines)

    def test_baseline_window_dash(self):
        md = mesh_results_markdown(rows())
        mzi_line = next(l for l in md.splitlines() if "MZI-ONN" in l)
        assert "| - |" in mzi_line

    def test_column_count_consistent(self):
        md = mesh_results_markdown(rows())
        table = [l for l in md.splitlines() if l.startswith("|")]
        counts = {l.count("|") for l in table}
        assert len(counts) == 1

    def test_no_title_no_heading(self):
        md = mesh_results_markdown(rows())
        assert not md.startswith("###")


class TestCSV:
    def test_parses_back(self):
        text = mesh_results_csv(rows())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert parsed[0]["design"] == "MZI-ONN"
        assert parsed[1]["window_lo_kum2"] == "240.0"

    def test_footprint_value(self):
        text = mesh_results_csv(rows())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert abs(float(parsed[0]["footprint_kum2"]) - 1908.8) < 0.1

    def test_robustness_csv(self):
        curves = {"MZI": [(0.02, 96.8, 6.8), (0.10, 52.8, 14.0)]}
        parsed = list(csv.DictReader(io.StringIO(robustness_csv(curves))))
        assert len(parsed) == 2
        assert parsed[0]["design"] == "MZI"
        assert float(parsed[1]["accuracy_mean"]) == 52.8
