"""Fig. 4 driver reproducibility: identical curves regardless of
PYTHONHASHSEED (regression for seed derivation via randomized
``hash((part, mesh_name))``)."""

import os
import subprocess
import sys

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
)

SNIPPET = """
from repro.experiments.common import ExperimentScale
from repro.experiments.fig4 import run_fig4_part
scale = ExperimentScale(n_train=32, n_test=24, retrain_epochs=1, batch_size=16,
                        model_width=0.25, noise_runs=2, seed=0)
res = run_fig4_part("a", {}, k=8, scale=scale, noise_stds=(0.02, 0.06))
for name in sorted(res.curves):
    print(name, [(s, round(m, 9), round(sd, 9)) for s, m, sd in res.curves[name]])
"""


def _run(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FULL", None)
    out = subprocess.run(
        [sys.executable, "-c", SNIPPET],
        capture_output=True, text=True, env=env, check=True,
    )
    # Drop the progress prints; keep only the curve lines.
    return "\n".join(
        line for line in out.stdout.splitlines()
        if line.startswith(("MZI", "FFT"))
    )


def test_fig4_curves_independent_of_hash_randomization():
    a = _run("1")
    b = _run("987654")
    assert a == b
    assert "MZI" in a and "FFT" in a
