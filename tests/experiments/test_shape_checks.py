"""Unit tests for the experiment shape-check logic.

The benches run the full pipelines; these tests exercise the
*checkers* on hand-built results, so a regression in the claim logic
is caught without a training run.
"""

import math

import numpy as np
import pytest

from repro.experiments.common import MeshResult, TABLE1_WINDOWS, TABLE2_WINDOWS
from repro.experiments.table1 import Table1Result, check_table1_shape
from repro.photonics import AMF
from repro.photonics.footprint import FootprintBreakdown, mzi_onn_footprint


def breakdown(total_kum2: float, n_blocks: int = 6) -> FootprintBreakdown:
    return FootprintBreakdown(n_ps=0, n_dc=0, n_cr=0,
                              total=total_kum2 * 1000.0, n_blocks=n_blocks)


def mzi_row(k: int) -> MeshResult:
    return MeshResult(name="MZI-ONN", footprint=mzi_onn_footprint(AMF, k),
                      accuracy=98.6)


def searched_row(name, kum2, window, n_blocks) -> MeshResult:
    return MeshResult(name=name, footprint=breakdown(kum2, n_blocks),
                      accuracy=98.0, window=window)


class TestTable1Checker:
    def test_clean_result_passes(self):
        res = Table1Result(size=8)
        res.rows.append(mzi_row(8))
        windows = TABLE1_WINDOWS[8]
        for i, w in enumerate(windows, start=1):
            res.rows.append(searched_row(f"ADEPT-a{i}", (w[0] + w[1]) / 2, w,
                                         n_blocks=4 + i))
        assert check_table1_shape({8: res}) == []

    def test_out_of_window_flagged(self):
        res = Table1Result(size=8)
        res.rows.append(mzi_row(8))
        w = TABLE1_WINDOWS[8][0]
        res.rows.append(searched_row("ADEPT-a1", w[1] + 50, w, 5))
        problems = check_table1_shape({8: res})
        assert any("outside" in p for p in problems)

    def test_insufficient_compression_flagged(self):
        res = Table1Result(size=8)
        res.rows.append(mzi_row(8))
        # 1200k um^2 is more than half of MZI's 1909k.
        res.rows.append(searched_row("ADEPT-a1", 1200, (0.0, 1e9), 5))
        problems = check_table1_shape({8: res})
        assert any("2x" in p for p in problems)

    def test_non_monotone_blocks_flagged(self):
        res = Table1Result(size=8)
        res.rows.append(mzi_row(8))
        windows = TABLE1_WINDOWS[8][:2]
        res.rows.append(searched_row("ADEPT-a1", 270, windows[0], n_blocks=9))
        res.rows.append(searched_row("ADEPT-a2", 380, windows[1], n_blocks=5))
        problems = check_table1_shape({8: res})
        assert any("monotone" in p for p in problems)

    def test_baseline_vs_searched_partition(self):
        res = Table1Result(size=8)
        res.rows.append(mzi_row(8))
        w = TABLE1_WINDOWS[8][0]
        res.rows.append(searched_row("ADEPT-a1", 270, w, 5))
        assert [r.name for r in res.baselines] == ["MZI-ONN"]
        assert [r.name for r in res.searched] == ["ADEPT-a1"]


class TestPaperWindows:
    def test_table1_windows_follow_08_rule(self):
        # Paper: all constraints follow F_min = 0.8 F_max.
        for k, windows in TABLE1_WINDOWS.items():
            for lo, hi in windows:
                assert lo == pytest.approx(0.8 * hi, rel=1e-9)

    def test_table1_window_counts(self):
        assert set(TABLE1_WINDOWS) == {8, 16, 32}
        assert all(len(w) == 5 for w in TABLE1_WINDOWS.values())

    def test_table2_has_six_targets(self):
        assert len(TABLE2_WINDOWS) == 6
        assert TABLE2_WINDOWS[0] == (384, 480)

    def test_windows_ascend(self):
        for windows in list(TABLE1_WINDOWS.values()) + [TABLE2_WINDOWS]:
            los = [lo for lo, _ in windows]
            assert los == sorted(los)
