"""Unit tests for the Table 2 / Fig. 4 / Fig. 5 shape checkers."""

import pytest

from repro.experiments.common import MeshResult
from repro.experiments.fig4 import RobustnessCurves, check_fig4_shape, degradation
from repro.experiments.fig5 import (
    ALMTrace,
    PenaltyTrace,
    check_fig5a_shape,
    check_fig5b_shape,
)
from repro.experiments.table2 import Table2Result, check_table2_shape
from repro.photonics.footprint import FootprintBreakdown


def breakdown(total_kum2, n_blocks=6, n_cr=0):
    return FootprintBreakdown(n_ps=0, n_dc=0, n_cr=n_cr,
                              total=total_kum2 * 1000.0, n_blocks=n_blocks)


class TestTable2Checker:
    def _result(self, kum2=450.0, n_cr=5, n_blocks=6, window=(384, 480)):
        res = Table2Result()
        res.rows.append(MeshResult(name="ADEPT-a0",
                                   footprint=breakdown(kum2, n_blocks, n_cr),
                                   accuracy=98.0, window=window))
        return res

    def test_clean_passes(self):
        assert check_table2_shape(self._result()) == []

    def test_out_of_window_flagged(self):
        problems = check_table2_shape(self._result(kum2=700.0))
        assert any("outside" in p for p in problems)

    def test_crossing_heavy_design_flagged_on_tight_window(self):
        # Butterfly at 16 has 88 crossings over 8 blocks = 11/blk.
        res = self._result(n_cr=200, n_blocks=6)
        problems = check_table2_shape(res)
        assert any("crossing-heavier" in p for p in problems)

    def test_loose_window_tolerates_crossings(self):
        res = self._result(kum2=1300.0, n_cr=200, n_blocks=6,
                           window=(1248, 1560))
        problems = check_table2_shape(res)
        assert not any("crossing-heavier" in p for p in problems)

    def test_compactness_vs_mzi(self):
        # MZI-ONN on AIM at 16x16 is 4480k; a 2000k "smallest" design
        # violates the >2.5x compactness claim.
        res = self._result(kum2=2000.0, window=(1900, 2500))
        problems = check_table2_shape(res)
        assert any("2.5x" in p for p in problems)


def curve(accs, stds=None):
    """[(sigma, acc, std)] for sigmas 0.02..0.10."""
    sigmas = [0.02, 0.04, 0.06, 0.08, 0.10]
    stds = stds or [0.0] * len(accs)
    return list(zip(sigmas, accs, stds))


class TestFig4Checker:
    def test_degradation_is_first_minus_last(self):
        c = curve([98.0, 97.0, 95.0, 90.0, 80.0])
        assert degradation(c) == pytest.approx(18.0)

    def test_missing_mzi_flagged(self):
        res = RobustnessCurves(part="a", curves={"ADEPT-a2": curve([98] * 5)})
        assert check_fig4_shape(res) == ["missing MZI curve"]

    def test_adept_tracking_passes(self):
        res = RobustnessCurves(part="a", curves={
            "MZI": curve([98, 95, 90, 80, 65]),
            "FFT": curve([98, 97, 96, 94, 92]),
            "ADEPT-a2": curve([98, 97, 95, 93, 90]),
        })
        assert check_fig4_shape(res) == []

    def test_fragile_searched_design_flagged(self):
        res = RobustnessCurves(part="a", curves={
            "MZI": curve([98, 97, 96, 95, 94]),
            "ADEPT-a2": curve([98, 90, 75, 60, 40]),
        })
        problems = check_fig4_shape(res)
        assert any("ADEPT-a2" in p for p in problems)


class TestFig5aChecker:
    def test_converging_trace_passes(self):
        tr = ALMTrace(rho0=1e-7, perm_error=[1.0, 0.5, 0.1],
                      mean_lambda=[0.0, 0.1, 0.3])
        assert check_fig5a_shape({1e-7: tr}) == []

    def test_stalled_error_flagged(self):
        tr = ALMTrace(rho0=1e-7, perm_error=[1.0, 0.9, 0.8],
                      mean_lambda=[0.0, 0.1, 0.3])
        problems = check_fig5a_shape({1e-7: tr})
        assert any("error only" in p for p in problems)

    def test_dead_multipliers_flagged(self):
        tr = ALMTrace(rho0=1e-7, perm_error=[1.0, 0.1, 0.05],
                      mean_lambda=[0.0, 0.0, 0.0])
        problems = check_fig5a_shape({1e-7: tr})
        assert any("multipliers" in p for p in problems)


class TestFig5bChecker:
    def _trace(self, beta, final_fp, window=(240e3, 300e3)):
        return PenaltyTrace(beta=beta, expected_footprint=[500e3, final_fp],
                            penalty_over_beta=[0.5, 0.1], window=window)

    def test_large_beta_bounded_passes(self):
        traces = {0.001: self._trace(0.001, 600e3),
                  10.0: self._trace(10.0, 280e3)}
        assert check_fig5b_shape(traces) == []

    def test_unbounded_large_beta_flagged(self):
        traces = {0.001: self._trace(0.001, 600e3),
                  10.0: self._trace(10.0, 700e3)}
        problems = check_fig5b_shape(traces)
        assert any("not bounded" in p for p in problems)

    def test_inverted_tightness_flagged(self):
        traces = {0.001: self._trace(0.001, 290e3),
                  10.0: self._trace(10.0, 301e3)}
        problems = check_fig5b_shape(traces)
        assert any("unexpectedly tighter" in p for p in problems)
