"""Synthetic dataset generation: shapes, balance, determinism, ladder."""

import numpy as np
import pytest

from repro.data import SPECS, DataLoader, make_dataset, train_test_split


class TestShapes:
    @pytest.mark.parametrize(
        "name,channels,size",
        [("mnist", 1, 28), ("fmnist", 1, 28), ("svhn", 3, 32), ("cifar10", 3, 32)],
    )
    def test_image_shape(self, name, channels, size):
        ds = make_dataset(name, 20, seed=0)
        assert ds.images.shape == (20, channels, size, size)
        assert ds.labels.shape == (20,)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet", 10)

    def test_class_balance(self):
        ds = make_dataset("mnist", 100, seed=0)
        counts = np.bincount(ds.labels, minlength=10)
        assert counts.min() == counts.max() == 10

    def test_labels_in_range(self):
        ds = make_dataset("cifar10", 30, seed=1)
        assert ds.labels.min() >= 0 and ds.labels.max() < 10


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = make_dataset("mnist", 16, seed=5)
        b = make_dataset("mnist", 16, seed=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seed_different_data(self):
        a = make_dataset("mnist", 16, seed=5)
        b = make_dataset("mnist", 16, seed=6)
        assert not np.allclose(a.images, b.images)

    def test_train_test_disjoint_streams(self):
        tr, te = train_test_split("mnist", 16, 16, seed=0)
        assert not np.allclose(tr.images[:16], te.images[:16])


class TestStatistics:
    def test_normalized(self):
        ds = make_dataset("mnist", 200, seed=0)
        assert abs(ds.images.mean()) < 0.05
        assert abs(ds.images.std() - 1.0) < 0.05

    def test_unnormalized_in_unit_range(self):
        ds = make_dataset("mnist", 20, seed=0, normalize=False)
        assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0

    def test_classes_distinguishable(self):
        """Mean images of different classes must differ substantially —
        otherwise the dataset carries no signal."""
        ds = make_dataset("mnist", 200, seed=0, normalize=False)
        means = [ds.images[ds.labels == c].mean(axis=0) for c in range(10)]
        dists = [
            np.abs(means[i] - means[j]).mean()
            for i in range(10)
            for j in range(i + 1, 10)
        ]
        assert min(dists) > 0.01

    def test_difficulty_ladder_noise(self):
        """Harder datasets have larger intra-class variation."""
        def intra_class_var(name):
            ds = make_dataset(name, 200, seed=0, normalize=False)
            return np.mean(
                [ds.images[ds.labels == c].std(axis=0).mean() for c in range(10)]
            )

        assert intra_class_var("mnist") < intra_class_var("svhn")
        assert intra_class_var("mnist") < intra_class_var("cifar10")


class TestLoader:
    def test_batches_cover_dataset(self):
        ds = make_dataset("mnist", 50, seed=0)
        loader = DataLoader(ds, batch_size=16, shuffle=True)
        seen = sum(len(y) for _, y in loader)
        assert seen == 50
        assert len(loader) == 4

    def test_drop_last(self):
        ds = make_dataset("mnist", 50, seed=0)
        loader = DataLoader(ds, batch_size=16, drop_last=True)
        sizes = [len(y) for _, y in loader]
        assert sizes == [16, 16, 16]
        assert len(loader) == 3

    def test_no_shuffle_is_ordered(self):
        ds = make_dataset("mnist", 20, seed=0)
        loader = DataLoader(ds, batch_size=10, shuffle=False)
        _, y0 = next(iter(loader))
        assert np.array_equal(y0, ds.labels[:10])

    def test_getitem(self):
        ds = make_dataset("mnist", 10, seed=0)
        img, lab = ds[3]
        assert img.shape == (1, 28, 28)
        assert lab == ds.labels[3]
