"""Tests for data augmentation transforms."""

import numpy as np
import pytest

from repro.data import DataLoader, train_test_split
from repro.data.transforms import (
    Compose,
    GaussianNoise,
    Normalize,
    RandomHorizontalFlip,
    RandomShift,
)


@pytest.fixture()
def batch():
    rng = np.random.default_rng(0)
    return rng.normal(size=(8, 3, 12, 12))


class TestRandomShift:
    def test_shape_preserved(self, batch):
        out = RandomShift(2)(batch, np.random.default_rng(1))
        assert out.shape == batch.shape

    def test_zero_shift_identity(self, batch):
        out = RandomShift(0)(batch, np.random.default_rng(1))
        np.testing.assert_array_equal(out, batch)

    def test_content_translated_not_mangled(self):
        img = np.zeros((1, 1, 8, 8))
        img[0, 0, 4, 4] = 1.0
        out = RandomShift(2)(img, np.random.default_rng(3))
        assert out.sum() == pytest.approx(1.0)  # the pixel moved, intact
        y, x = np.argwhere(out[0, 0] == 1.0)[0]
        assert abs(y - 4) <= 2 and abs(x - 4) <= 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RandomShift(-1)


class TestRandomHorizontalFlip:
    def test_p_one_mirrors_everything(self, batch):
        out = RandomHorizontalFlip(1.0)(batch, np.random.default_rng(1))
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_p_zero_identity(self, batch):
        out = RandomHorizontalFlip(0.0)(batch, np.random.default_rng(1))
        np.testing.assert_array_equal(out, batch)

    def test_input_not_modified(self, batch):
        before = batch.copy()
        RandomHorizontalFlip(1.0)(batch, np.random.default_rng(1))
        np.testing.assert_array_equal(batch, before)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(1.5)


class TestGaussianNoise:
    def test_zero_std_identity(self, batch):
        out = GaussianNoise(0.0)(batch, np.random.default_rng(1))
        np.testing.assert_array_equal(out, batch)

    def test_noise_magnitude(self, batch):
        out = GaussianNoise(0.1)(batch, np.random.default_rng(1))
        resid = out - batch
        assert 0.05 < resid.std() < 0.2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            GaussianNoise(-0.1)


class TestNormalize:
    def test_standardizes(self, batch):
        mean = batch.mean(axis=(0, 2, 3))
        std = batch.std(axis=(0, 2, 3))
        out = Normalize(mean, std)(batch)
        assert abs(out.mean()) < 1e-9
        assert out.std() == pytest.approx(1.0, rel=0.05)

    def test_channel_mismatch(self, batch):
        with pytest.raises(ValueError, match="channels"):
            Normalize([0.0], [1.0])(batch)

    def test_rejects_zero_std(self):
        with pytest.raises(ValueError, match="std"):
            Normalize([0.0], [0.0])


class TestCompose:
    def test_applies_in_order(self, batch):
        seen = []

        def a(x, rng):
            seen.append("a")
            return x + 1

        def b(x, rng):
            seen.append("b")
            return x * 2

        out = Compose([a, b])(batch, np.random.default_rng(0))
        assert seen == ["a", "b"]
        np.testing.assert_allclose(out, (batch + 1) * 2)

    def test_repr(self):
        c = Compose([RandomShift(1), GaussianNoise(0.1)])
        assert "RandomShift" in repr(c)


class TestLoaderIntegration:
    def test_transform_applied_per_batch(self):
        train, _ = train_test_split("mnist", 64, 32, seed=0)
        marker = {"calls": 0}

        def bump(images, rng):
            marker["calls"] += 1
            return images + 100.0

        loader = DataLoader(train, batch_size=16, transform=bump,
                            rng=np.random.default_rng(0))
        for images, _labels in loader:
            assert images.min() > 50.0  # transform visibly applied
        assert marker["calls"] == len(loader)

    def test_no_transform_returns_raw(self):
        train, _ = train_test_split("mnist", 32, 16, seed=0)
        loader = DataLoader(train, batch_size=16, shuffle=False,
                            rng=np.random.default_rng(0))
        images, _ = next(iter(loader))
        np.testing.assert_array_equal(images, train.images[:16])
