"""Hypothesis invariants: every photonic mesh is energy-conserving."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics import dc_layer_matrix_np, is_unitary, mzi_matrix, ps_matrix
from repro.ptc import ButterflyFactory, FixedTopologyFactory, MZIMeshFactory

phases = st.floats(0.0, 2 * np.pi, allow_nan=False)


@settings(max_examples=30, deadline=None)
@given(phases, phases)
def test_mzi_unitary_everywhere(theta, phi):
    assert is_unitary(mzi_matrix(theta, phi))


@settings(max_examples=20, deadline=None)
@given(st.lists(phases, min_size=2, max_size=6))
def test_ps_column_unitary(phis):
    assert is_unitary(ps_matrix(np.array(phis)))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=3),
       st.integers(0, 1))
def test_dc_layer_unitary_any_transmissions(ts, offset):
    m = dc_layer_matrix_np(ts, 8, offset)
    assert is_unitary(m)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_mzi_mesh_factory_unitary(seed):
    rng = np.random.default_rng(seed)
    f = MZIMeshFactory(5, 2, rng=rng)
    u = f.build().data
    for i in range(u.shape[0]):
        assert is_unitary(u[i], atol=1e-8)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_butterfly_factory_unitary(seed):
    rng = np.random.default_rng(seed)
    f = ButterflyFactory(8, 1, rng=rng)
    assert is_unitary(f.build().data[0], atol=1e-8)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 4))
def test_fixed_topology_unitary(seed, n_blocks):
    rng = np.random.default_rng(seed)
    k = 6
    blocks = []
    for b in range(n_blocks):
        offset = b % 2
        slots = (k - offset) // 2
        blocks.append((rng.permutation(k), rng.random(slots) < 0.5, offset))
    f = FixedTopologyFactory(k, 1, blocks, rng=rng)
    assert is_unitary(f.build().data[0], atol=1e-8)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_energy_conservation_through_mesh(seed):
    """Physical invariant: optical power is conserved through any
    lossless mesh, for any input field."""
    rng = np.random.default_rng(seed)
    f = MZIMeshFactory(4, 1, rng=rng)
    u = f.build().data[0]
    x = rng.normal(size=4) + 1j * rng.normal(size=4)
    assert np.isclose(np.linalg.norm(u @ x), np.linalg.norm(x))
