"""Hypothesis invariants for permutation machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor
from repro.core import legalize_one, soft_projection
from repro.core.permutation import _row_col_normalize
from repro.photonics import count_inversions, is_permutation_matrix, perm_to_matrix

pos_floats = st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False)
any_floats = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (1, 5, 5), elements=any_floats))
def test_reparametrization_row_stochastic(raw):
    out = _row_col_normalize(Tensor(raw)).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(-1), 1.0, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (4, 4), elements=pos_floats), st.integers(0, 10_000))
def test_spl_always_legal(relaxed, seed):
    """SPL must return a legal permutation for ANY relaxed input."""
    legal, _ = legalize_one(relaxed, rng=np.random.default_rng(seed))
    assert is_permutation_matrix(legal)


@settings(max_examples=30, deadline=None)
@given(st.permutations(list(range(7))))
def test_inversions_bounds(perm):
    inv = count_inversions(perm)
    n = len(perm)
    assert 0 <= inv <= n * (n - 1) // 2


@settings(max_examples=30, deadline=None)
@given(st.permutations(list(range(6))))
def test_inversions_of_inverse_equal(perm):
    """A permutation and its inverse need the same number of crossings
    (the physical circuit is reversible)."""
    perm = list(perm)
    inverse = np.argsort(perm)
    assert count_inversions(perm) == count_inversions(list(inverse))


@settings(max_examples=20, deadline=None)
@given(st.permutations(list(range(6))))
def test_legal_input_is_fixed_point(perm):
    """SPL on an already-legal permutation returns it unchanged."""
    m = perm_to_matrix(list(perm))
    legal, tries = legalize_one(m, rng=np.random.default_rng(0))
    assert tries == 0
    assert np.array_equal(legal, m)


@settings(max_examples=20, deadline=None)
@given(arrays(np.float64, (3, 3), elements=pos_floats))
def test_soft_projection_preserves_non_binary_rows(raw):
    p = _row_col_normalize(Tensor(raw[None]))
    out = soft_projection(p, eps=0.05).data[0]
    src = p.data[0]
    for i in range(3):
        if src[i].max() < 0.95:
            assert np.allclose(out[i], src[i])
        else:
            assert set(np.unique(out[i])) <= {0.0, 1.0}
