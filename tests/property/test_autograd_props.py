"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, gradcheck, softmax

finite_floats = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def small_arrays(shape):
    return arrays(np.float64, shape, elements=finite_floats)


@settings(max_examples=25, deadline=None)
@given(small_arrays((3, 4)), small_arrays((3, 4)))
def test_add_commutes(a, b):
    assert np.allclose((Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data)


@settings(max_examples=25, deadline=None)
@given(small_arrays((2, 3)), small_arrays((3, 4)), small_arrays((4, 2)))
def test_matmul_associative(a, b, c):
    left = ((Tensor(a) @ Tensor(b)) @ Tensor(c)).data
    right = (Tensor(a) @ (Tensor(b) @ Tensor(c))).data
    assert np.allclose(left, right, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(small_arrays((4, 5)))
def test_softmax_is_distribution(x):
    s = softmax(Tensor(x), axis=-1).data
    assert np.all(s >= 0)
    assert np.allclose(s.sum(-1), 1.0)


@settings(max_examples=15, deadline=None)
@given(small_arrays((3,)), small_arrays((3,)))
def test_mul_gradcheck_random_values(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    assert gradcheck(lambda x, y: (x * y).sum(), [ta, tb], atol=1e-4)


@settings(max_examples=15, deadline=None)
@given(small_arrays((2, 3)))
def test_sum_linearity(x):
    t = Tensor(x)
    assert np.isclose((t * 2).sum().item(), 2 * t.sum().item())


@settings(max_examples=15, deadline=None)
@given(
    arrays(np.float64, (4,), elements=finite_floats),
    arrays(np.float64, (4,), elements=finite_floats),
)
def test_complex_abs_squared_identity(re, im):
    """|z|^2 == z * conj(z) for all complex tensors."""
    z = Tensor(re + 1j * im)
    lhs = (z.abs() ** 2).data
    rhs = (z * z.conj()).real().data
    assert np.allclose(lhs, rhs, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(small_arrays((3, 4)))
def test_transpose_involution(x):
    t = Tensor(x)
    assert np.allclose(t.T.T.data, x)


@settings(max_examples=10, deadline=None)
@given(small_arrays((6,)))
def test_backward_of_sum_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    assert np.allclose(t.grad, 1.0)
