"""Hypothesis invariants for footprint accounting."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BlockSpec, PTCTopology, random_topology
from repro.photonics import (
    AIM,
    AMF,
    FoundryPDK,
    block_footprint_bounds,
    supermesh_block_bounds,
)

counts = st.integers(0, 1000)


@settings(max_examples=30, deadline=None)
@given(counts, counts, counts)
def test_footprint_monotone_in_devices(n_ps, n_dc, n_cr):
    base = AMF.footprint(n_ps, n_dc, n_cr)
    assert AMF.footprint(n_ps + 1, n_dc, n_cr) > base
    assert AMF.footprint(n_ps, n_dc + 1, n_cr) > base
    assert AMF.footprint(n_ps, n_dc, n_cr + 1) > base


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 64))
def test_block_bounds_ordered(k):
    fb_min, fb_max = block_footprint_bounds(AMF, k)
    assert 0 < fb_min < fb_max


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 32), st.floats(1e5, 1e6), st.floats(1.1, 3.0))
def test_supermesh_bounds_consistent(k, f_min, ratio):
    f_max = f_min * ratio
    b_min, b_max = supermesh_block_bounds(AMF, k, f_min, f_max)
    assert 2 <= b_min <= b_max
    fb_min, _ = block_footprint_bounds(AMF, k)
    # B_max minimal blocks must be able to reach f_max.
    assert b_max * fb_min >= f_max


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 5), st.integers(1, 5))
def test_topology_footprint_consistency(seed, nu, nv):
    """Topology footprint equals PDK footprint of its device counts,
    for every PDK."""
    rng = np.random.default_rng(seed)
    topo = random_topology(8, nu, nv, rng)
    n_ps, n_dc, n_cr = topo.device_counts()
    for pdk in (AMF, AIM):
        assert topo.footprint(pdk).total == pdk.footprint(n_ps, n_dc, n_cr)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_topology_serialization_preserves_footprint(seed):
    rng = np.random.default_rng(seed)
    topo = random_topology(6, 2, 3, rng)
    back = PTCTopology.from_json(topo.to_json())
    assert back.footprint(AMF).total == topo.footprint(AMF).total


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 16))
def test_ps_always_full_column(k):
    """Every block bills a full K-wide PS column (the paper's rule:
    programmability is never traded away)."""
    spec = BlockSpec(coupler_mask=np.zeros(k // 2, dtype=bool), offset=0)
    topo = PTCTopology(k=k, blocks_u=[spec], blocks_v=[spec])
    n_ps, _, _ = topo.device_counts()
    assert n_ps == 2 * k
