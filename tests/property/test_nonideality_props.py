"""Hypothesis invariants for nonideality physics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topology import random_topology
from repro.photonics.nonideality import (
    NonidealitySpec,
    db_to_amplitude,
    noisy_unitary,
    sample_fabrication,
    thermal_crosstalk_matrix,
)

topo_params = st.tuples(
    st.sampled_from([4, 8]),
    st.integers(1, 5),
    st.integers(0, 2**31 - 1),
)


def make(params):
    k, nb, seed = params
    return random_topology(k, nb, nb, np.random.default_rng(seed))


@settings(max_examples=30, deadline=None)
@given(st.floats(0.0, 30.0, allow_nan=False))
def test_amplitude_in_unit_interval(db):
    a = db_to_amplitude(db)
    assert 0.0 < a <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.floats(0.0, 10.0), st.floats(0.0, 10.0))
def test_amplitude_multiplicative(db1, db2):
    """Losses in dB add; amplitudes multiply."""
    np.testing.assert_allclose(
        db_to_amplitude(db1) * db_to_amplitude(db2),
        db_to_amplitude(db1 + db2), rtol=1e-12)


@settings(max_examples=20, deadline=None)
@given(topo_params,
       st.floats(0.0, 1.0),
       st.floats(0.0, 1.0),
       st.integers(0, 2**31 - 1))
def test_lossy_mesh_is_contractive(params, loss_ps, loss_dc, noise_seed):
    """No passive mesh amplifies light: every singular value <= 1."""
    topo = make(params)
    spec = NonidealitySpec(loss_ps_db=loss_ps, loss_dc_db=loss_dc,
                           loss_cr_db=0.1)
    rng = np.random.default_rng(noise_seed)
    phases = rng.uniform(0, 2 * np.pi, size=(len(topo.blocks_u), topo.k))
    sample, _ = sample_fabrication(topo, spec, rng=rng)
    u = noisy_unitary(topo.blocks_u, phases, topo.k, spec, sample=sample,
                      rng=rng)
    s = np.linalg.svd(u, compute_uv=False)
    assert s.max() <= 1.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(topo_params, st.floats(0.0, 0.3), st.integers(0, 2**31 - 1))
def test_imbalanced_mesh_stays_unitary(params, t_std, seed):
    """Coupler imbalance redistributes energy but conserves it: the
    mesh remains exactly unitary (imbalance without loss)."""
    topo = make(params)
    spec = NonidealitySpec(dc_t_std=t_std)
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0, 2 * np.pi, size=(len(topo.blocks_u), topo.k))
    sample, _ = sample_fabrication(topo, spec, rng=rng)
    u = noisy_unitary(topo.blocks_u, phases, topo.k, spec, sample=sample,
                      rng=rng)
    np.testing.assert_allclose(u.conj().T @ u, np.eye(topo.k), atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 16), st.floats(0.0, 0.9), st.integers(0, 4))
def test_crosstalk_matrix_invariants(k, gamma, radius):
    c = thermal_crosstalk_matrix(k, gamma, radius)
    assert c.shape == (k, k)
    np.testing.assert_allclose(np.diag(c), 1.0)
    np.testing.assert_allclose(c, c.T)
    assert (c >= 0).all()
