"""Hypothesis invariants for Pareto-front extraction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ParetoPoint, dominates, hypervolume_2d, pareto_front

points = st.lists(
    st.builds(
        ParetoPoint,
        footprint=st.floats(0.0, 100.0, allow_nan=False),
        score=st.floats(-10.0, 10.0, allow_nan=False),
    ),
    min_size=0,
    max_size=20,
)


@settings(max_examples=60, deadline=None)
@given(points)
def test_front_is_subset_and_nondominated(pts):
    front = pareto_front(pts)
    assert all(p in pts for p in front)
    for p in front:
        assert not any(dominates(q, p) for q in pts)


@settings(max_examples=60, deadline=None)
@given(points)
def test_front_sorted_and_scores_ascend(pts):
    front = pareto_front(pts)
    fps = [p.footprint for p in front]
    scores = [p.score for p in front]
    assert fps == sorted(fps)
    assert scores == sorted(scores)


@settings(max_examples=60, deadline=None)
@given(points)
def test_every_point_dominated_or_on_front(pts):
    front = pareto_front(pts)
    front_set = set(front)
    for p in pts:
        if p in front_set:
            continue
        assert any(dominates(q, p) or (q.footprint == p.footprint
                                       and q.score >= p.score)
                   for q in front)


@settings(max_examples=60, deadline=None)
@given(points)
def test_front_idempotent(pts):
    front = pareto_front(pts)
    assert pareto_front(front) == front


@settings(max_examples=60, deadline=None)
@given(points, st.floats(1.0, 200.0, allow_nan=False))
def test_hypervolume_nonnegative_and_monotone(pts, ref_fp):
    hv = hypervolume_2d(pts, ref_footprint=ref_fp, ref_score=-10.0)
    assert hv >= 0.0
    # Adding a point can only grow (or keep) the dominated area.
    extra = pts + [ParetoPoint(footprint=0.5, score=9.5)]
    hv2 = hypervolume_2d(extra, ref_footprint=ref_fp, ref_score=-10.0)
    assert hv2 >= hv - 1e-9


@settings(max_examples=40, deadline=None)
@given(st.floats(0.0, 50.0, allow_nan=False), st.floats(0.0, 10.0, allow_nan=False))
def test_hypervolume_single_point_exact(fp, score):
    hv = hypervolume_2d([ParetoPoint(footprint=fp, score=score)],
                        ref_footprint=100.0, ref_score=0.0)
    assert abs(hv - (100.0 - fp) * score) < 1e-6
