"""Hypothesis invariants linking topologies, netlists, and mutations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline_search import mutate_topology
from repro.core.topology import random_topology
from repro.layout import build_netlist, place
from repro.photonics import AIM, AMF
from repro.photonics.crossings import count_inversions
from repro.photonics.nonideality import crossings_per_wire

topo_params = st.tuples(
    st.sampled_from([4, 6, 8, 16]),  # k
    st.integers(1, 6),  # blocks U
    st.integers(1, 6),  # blocks V
    st.integers(0, 2**31 - 1),  # seed
)


def make(params):
    k, nu, nv, seed = params
    return random_topology(k, nu, nv, np.random.default_rng(seed),
                           permute_prob=0.6)


@settings(max_examples=30, deadline=None)
@given(topo_params)
def test_netlist_counts_always_match_topology(params):
    topo = make(params)
    assert build_netlist(topo).device_counts() == topo.device_counts()


@settings(max_examples=30, deadline=None)
@given(topo_params)
def test_netlist_ids_unique(params):
    netlist = build_netlist(make(params))
    ids = [d.device_id for d in netlist.devices]
    assert len(ids) == len(set(ids))


@settings(max_examples=20, deadline=None)
@given(topo_params)
def test_placement_area_dominates_active_area(params):
    netlist = build_netlist(make(params))
    for pdk in (AMF, AIM):
        report = place(netlist, pdk)
        assert report.chip_area_um2 >= report.active_area_um2 - 1e-6
        assert 0.0 < report.utilization <= 1.0


@settings(max_examples=30, deadline=None)
@given(topo_params, st.integers(0, 2**31 - 1), st.integers(1, 5))
def test_mutation_preserves_space_invariants(params, seed, n_edits):
    topo = make(params)
    child = mutate_topology(topo, rng=np.random.default_rng(seed),
                            n_edits=n_edits)
    k = topo.k
    for blocks in (child.blocks_u, child.blocks_v):
        assert len(blocks) >= 1
        for b, block in enumerate(blocks):
            assert block.offset == b % 2
            assert block.coupler_mask.size == (k - block.offset) // 2
            assert block.coupler_mask.any()
            if block.perm is not None:
                assert sorted(block.perm) == list(range(k))


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 12), st.integers(0, 2**31 - 1))
def test_per_wire_crossings_sum_rule(k, seed):
    perm = list(np.random.default_rng(seed).permutation(k))
    assert crossings_per_wire(perm).sum() == 2 * count_inversions(perm)
