"""Hypothesis invariants for phase quantization."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quantization import (
    phase_grid,
    phase_resolution,
    quantize_phase,
)

TWO_PI = 2.0 * math.pi

phases = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(max_dims=2, max_side=16),
    elements=st.floats(-20.0, 20.0, allow_nan=False),
)
bits = st.integers(1, 10)


@settings(max_examples=40, deadline=None)
@given(phases, bits)
def test_output_always_on_grid(phi, b):
    q = quantize_phase(phi, b)
    step = phase_resolution(b)
    ratio = q / step
    np.testing.assert_allclose(ratio, np.round(ratio), atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(phases, bits)
def test_output_in_period(phi, b):
    q = quantize_phase(phi, b)
    assert (q >= 0.0).all()
    assert (q < TWO_PI).all()


@settings(max_examples=40, deadline=None)
@given(phases, bits)
def test_idempotent(phi, b):
    once = quantize_phase(phi, b)
    np.testing.assert_allclose(quantize_phase(once, b), once, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(phases, bits)
def test_circular_error_bounded(phi, b):
    q = quantize_phase(phi, b)
    err = np.abs(np.angle(np.exp(1j * (q - phi))))
    assert (err <= phase_resolution(b) / 2 + 1e-8).all()


@settings(max_examples=40, deadline=None)
@given(phases, bits)
def test_shift_by_period_invariant(phi, b):
    np.testing.assert_allclose(
        quantize_phase(phi + TWO_PI, b), quantize_phase(phi, b), atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(bits)
def test_grid_fixed_points(b):
    g = phase_grid(b)
    np.testing.assert_allclose(quantize_phase(g, b), g, atol=1e-9)
    assert len(g) == 2 ** b
