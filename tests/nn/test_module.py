"""Module system: registration, traversal, modes, state dict."""

import numpy as np

from repro import nn
from repro.nn.module import Module, Parameter


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 3)
        self.fc2 = nn.Linear(3, 2)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_parameters_discovered(self):
        m = Toy()
        names = dict(m.named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names and "scale" in names
        assert len(m.parameters()) == 5

    def test_num_parameters(self):
        m = Toy()
        assert m.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2 + 1

    def test_modules_iteration(self):
        m = Toy()
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds.count("Linear") == 2

    def test_reassignment_replaces(self):
        m = Toy()
        m.fc1 = nn.Linear(4, 3)
        assert len(m.parameters()) == 5


class TestModes:
    def test_train_eval_propagates(self):
        m = Toy()
        m.eval()
        assert not m.training and not m.fc1.training
        m.train()
        assert m.training and m.fc2.training

    def test_zero_grad(self):
        m = Toy()
        for p in m.parameters():
            p.grad = np.ones_like(p.data)
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_roundtrip(self):
        m1, m2 = Toy(), Toy()
        state = m1.state_dict()
        m2.load_state_dict(state)
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)

    def test_buffers_in_state(self):
        bn = nn.BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_buffer_loading(self):
        bn1, bn2 = nn.BatchNorm2d(2), nn.BatchNorm2d(2)
        bn1._set_buffer("running_mean", np.array([1.0, 2.0]))
        bn2.load_state_dict(bn1.state_dict())
        assert np.allclose(bn2.running_mean, [1.0, 2.0])


class TestContainers:
    def test_sequential_order_and_index(self):
        seq = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        assert len(seq) == 3
        assert isinstance(seq[1], nn.ReLU)
        from repro.autograd import Tensor

        out = seq(Tensor(np.zeros((2, 4))))
        assert out.shape == (2, 2)

    def test_sequential_append(self):
        seq = nn.Sequential(nn.Linear(2, 2))
        seq.append(nn.ReLU())
        assert len(seq) == 2

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert len([p for m in ml for p in m.parameters()]) == 4
