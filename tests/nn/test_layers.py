"""Linear / pooling / dropout / flatten layers."""

import numpy as np

from repro import nn
from repro.autograd import Tensor, gradcheck
from repro.nn import functional as F


class TestLinear:
    def test_affine_math(self, rng):
        lin = nn.Linear(4, 3)
        x = rng.normal(size=(5, 4))
        out = lin(Tensor(x))
        assert np.allclose(out.data, x @ lin.weight.data.T + lin.bias.data)

    def test_gradcheck(self, rng):
        lin = nn.Linear(3, 2)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        assert gradcheck(
            lambda x, w, b: (F.linear(x, w, b) ** 2).sum(),
            [x, lin.weight, lin.bias],
        )

    def test_init_scale(self):
        lin = nn.Linear(1000, 10)
        # Kaiming-uniform bound: sqrt(6 / ((1 + 5) * fan_in)) = 1/sqrt(fan_in)
        assert np.abs(lin.weight.data).max() <= 1.0 / np.sqrt(1000) + 1e-9


class TestPooling:
    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_ragged_border_cropped(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        assert F.avg_pool2d(x, 2).shape == (1, 2, 2, 2)
        assert F.max_pool2d(x, 2).shape == (1, 2, 2, 2)

    def test_adaptive_avg_pool(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 8, 8)))
        assert F.adaptive_avg_pool2d(x, 2).shape == (1, 2, 2, 2)

    def test_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)), requires_grad=True)
        assert gradcheck(lambda x: (F.avg_pool2d(x, 2) ** 2).sum(), [x])
        x2 = Tensor(np.arange(16.0).reshape(1, 1, 4, 4) + rng.normal(size=(1, 1, 4, 4)) * 0.01)
        x2.requires_grad = True
        assert gradcheck(lambda x: (F.max_pool2d(x, 2) ** 2).sum(), [x2])


class TestDropout:
    def test_eval_is_identity(self, rng):
        d = nn.Dropout(0.5)
        d.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        assert np.allclose(d(x).data, x.data)

    def test_train_scales_kept_units(self, rng):
        d = nn.Dropout(0.5)
        x = Tensor(np.ones((1000,)))
        out = d(x).data
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)
        assert 0.3 < (out != 0).mean() < 0.7

    def test_zero_p_identity(self, rng):
        d = nn.Dropout(0.0)
        x = Tensor(rng.normal(size=(5,)))
        assert np.allclose(d(x).data, x.data)


class TestFlattenIdentity:
    def test_flatten(self, rng):
        f = nn.Flatten()
        assert f(Tensor(rng.normal(size=(2, 3, 4)))).shape == (2, 12)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 3)))
        assert np.allclose(nn.Identity()(x).data, x.data)
