"""BatchNorm: normalization math, running stats, eval mode, gradients."""

import numpy as np

from repro import nn
from repro.autograd import Tensor, gradcheck


class TestBatchNorm2d:
    def test_normalizes_batch(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(8, 3, 4, 4)))
        out = bn(x).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_move_toward_batch(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.normal(loc=2.0, size=(16, 2, 3, 3)))
        bn(x)
        assert np.all(bn.running_mean > 0.5)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        for _ in range(20):
            bn(Tensor(rng.normal(loc=1.0, size=(32, 2, 2, 2))))
        bn.eval()
        x = Tensor(np.full((4, 2, 2, 2), 1.0))
        out = bn(x).data
        # Input at the running mean should map near zero.
        assert np.abs(out).max() < 0.5

    def test_affine_params_used(self, rng):
        bn = nn.BatchNorm2d(2)
        np.copyto(bn.weight.data, [2.0, 3.0])
        np.copyto(bn.bias.data, [1.0, -1.0])
        x = Tensor(rng.normal(size=(8, 2, 4, 4)))
        out = bn(x).data
        assert abs(out[:, 0].mean() - 1.0) < 1e-6
        assert abs(out[:, 1].mean() + 1.0) < 1e-6

    def test_gradcheck(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 2, 2)), requires_grad=True)

        def f(x, w, b):
            # Rebuild each call: running stats update is pure-numpy
            bn2 = nn.BatchNorm2d(2)
            bn2.weight = w
            bn2.bias = b
            return (bn2(x) ** 2).sum()

        from repro.nn.module import Parameter

        w = Parameter(np.array([1.5, 0.5]))
        b = Parameter(np.array([0.1, -0.2]))
        assert gradcheck(f, [x, w, b], atol=1e-4)


class TestBatchNorm1d:
    def test_normalizes(self, rng):
        bn = nn.BatchNorm1d(4)
        x = Tensor(rng.normal(loc=3.0, size=(64, 4)))
        out = bn(x).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)

    def test_eval_mode_no_stat_update(self, rng):
        bn = nn.BatchNorm1d(2)
        bn(Tensor(rng.normal(size=(8, 2))))
        bn.eval()
        rm = bn.running_mean.copy()
        bn(Tensor(rng.normal(loc=10.0, size=(8, 2))))
        assert np.allclose(bn.running_mean, rm)
