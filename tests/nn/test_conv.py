"""Convolution: im2col adjoint, correctness vs naive loops, gradients."""

import numpy as np

from repro import nn
from repro.autograd import Tensor, gradcheck
from repro.nn import functional as F


def naive_conv2d(x, w, b, stride=1, padding=0):
    """Direct-loop cross-correlation reference."""
    n, c, h, wd = x.shape
    o, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        h, wd = h + 2 * padding, wd + 2 * padding
    oh = (h - kh) // stride + 1
    ow = (wd - kw) // stride + 1
    out = np.zeros((n, o, oh, ow))
    for i in range(oh):
        for j in range(ow):
            patch = x[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("nchw,ochw->no", patch, w)
    if b is not None:
        out += b[None, :, None, None]
    return out


class TestIm2Col:
    def test_shapes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        col = F.im2col(x, (3, 3), stride=1)
        assert col.shape == (2, 6, 6, 3, 3, 3)

    def test_adjoint_property(self, rng):
        """col2im is the exact adjoint of im2col: <Ax, y> == <x, A^T y>."""
        x = rng.normal(size=(1, 2, 6, 6))
        y = rng.normal(size=(1, 4, 4, 2, 3, 3))
        ax = F._im2col_array(x, 3, 3, 1, 1)
        aty = F._col2im_array(y, x.shape, 3, 3, 1, 1)
        assert np.allclose((ax * y).sum(), (x * aty).sum())

    def test_strided_adjoint(self, rng):
        x = rng.normal(size=(2, 3, 9, 9))
        ax = F._im2col_array(x, 3, 3, 2, 2)
        y = rng.normal(size=ax.shape)
        aty = F._col2im_array(y, x.shape, 3, 3, 2, 2)
        assert np.allclose((ax * y).sum(), (x * aty).sum())

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        assert gradcheck(lambda x: (F.im2col(x, (3, 3)) ** 2).sum(), [x])


class TestConv2d:
    def test_matches_naive(self, rng):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b))
        assert np.allclose(out.data, naive_conv2d(x, w, b), atol=1e-10)

    def test_matches_naive_stride_padding(self, rng):
        x = rng.normal(size=(2, 2, 8, 8))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, stride=2, padding=1)
        assert np.allclose(out.data, naive_conv2d(x, w, None, 2, 1), atol=1e-10)

    def test_gradcheck_weight_and_input(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2,)), requires_grad=True)
        assert gradcheck(lambda x, w, b: (F.conv2d(x, w, b) ** 2).sum(), [x, w, b])

    def test_layer_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 5, stride=1, padding=2)
        out = conv(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 8, 16, 16)

    def test_layer_no_bias(self):
        conv = nn.Conv2d(1, 2, 3, bias=False)
        assert conv.bias is None
        assert len(conv.parameters()) == 1
