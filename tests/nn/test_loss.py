"""Loss functions vs manual references."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, gradcheck


class TestCrossEntropy:
    def manual_ce(self, logits, target):
        z = logits - logits.max(axis=1, keepdims=True)
        logp = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
        return -logp[np.arange(len(target)), target].mean()

    def test_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        target = rng.integers(0, 4, 6)
        loss = nn.CrossEntropyLoss()(Tensor(logits), target)
        assert np.allclose(loss.item(), self.manual_ce(logits, target))

    def test_reductions(self, rng):
        logits = rng.normal(size=(5, 3))
        target = rng.integers(0, 3, 5)
        mean = nn.CrossEntropyLoss("mean")(Tensor(logits), target).item()
        total = nn.CrossEntropyLoss("sum")(Tensor(logits), target).item()
        none = nn.CrossEntropyLoss("none")(Tensor(logits), target)
        assert np.allclose(total / 5, mean)
        assert none.shape == (5,)

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss("bogus")

    def test_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        target = np.array([0, 2, 1, 1])
        assert gradcheck(lambda l: nn.CrossEntropyLoss()(l, target), [logits])

    def test_perfect_prediction_low_loss(self):
        logits = np.full((3, 3), -20.0)
        logits[np.arange(3), np.arange(3)] = 20.0
        loss = nn.CrossEntropyLoss()(Tensor(logits), np.arange(3))
        assert loss.item() < 1e-8


class TestMSE:
    def test_real(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        loss = nn.MSELoss()(Tensor(a), Tensor(b))
        assert np.allclose(loss.item(), ((a - b) ** 2).mean())

    def test_complex_uses_magnitude(self):
        a = Tensor(np.array([1 + 1j]))
        b = Tensor(np.array([0 + 0j]))
        loss = nn.MSELoss()(a, b)
        assert np.allclose(loss.item(), 2.0)
        assert not np.iscomplexobj(loss.data)

    def test_gradcheck(self, rng):
        a = Tensor(rng.normal(size=4), requires_grad=True)
        b = Tensor(rng.normal(size=4))
        assert gradcheck(lambda a: nn.MSELoss()(a, b), [a])


class TestAccuracy:
    def test_accuracy(self):
        logits = Tensor(np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 1.0]]))
        assert nn.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
