#!/usr/bin/env python
"""PDK adaptation: equally tight budgets on AMF vs AIM foundries.

AMF crossings cost 64 um^2 (nearly free); AIM crossings cost 4900 um^2
(more than a coupler).  Given a *tight* footprint window — sized so a
~4-5 block design barely fits on each PDK — the search must adapt: on
AIM, routing competes with couplers for area, so the footprint penalty
prunes crossings; on AMF, routing is essentially free and survives.
This is the mechanism behind the paper's Table 2.

Run:  python examples/adapt_to_aim_pdk.py
"""

from repro.experiments import ExperimentScale, run_search
from repro.photonics import AIM, AMF, block_footprint_bounds

K = 8

# Per-PDK windows targeting the same block budget (~4-5 blocks): a
# minimal block costs 55.9k um^2 on AMF but only 24k um^2 on AIM.
WINDOWS = {"AMF": (240.0, 300.0), "AIM": (100.0, 135.0)}  # 1000 um^2


def main() -> None:
    scale = ExperimentScale()
    results = {}
    for pdk in (AMF, AIM):
        window = WINDOWS[pdk.name]
        fb_min, _ = block_footprint_bounds(pdk, K)
        print(f"--- {pdk.name}: PS {pdk.ps_area:.0f} / DC {pdk.dc_area:.0f} / "
              f"CR {pdk.cr_area:.0f} um^2, window [{window[0]:.0f}, "
              f"{window[1]:.0f}]k (~{window[1] * 1000 / fb_min:.1f} minimal "
              f"blocks) ---")
        res = run_search(K, pdk, window, scale,
                         name=f"adept-{pdk.name.lower()}", seed=1)
        topo = res.topology
        results[pdk.name] = topo
        n_ps, n_dc, n_cr = topo.device_counts()
        fb = topo.footprint(pdk)
        share = n_cr * pdk.cr_area / max(fb.total, 1)
        print(f"  blocks={topo.n_blocks}  PS={n_ps} DC={n_dc} CR={n_cr}  "
              f"footprint={fb.in_paper_units():.1f}k um^2")
        print(f"  crossing area share: {share:.1%}\n")

    amf = results["AMF"]
    aim = results["AIM"]
    amf_share = amf.device_counts()[2] * AMF.cr_area / amf.footprint(AMF).total
    aim_share = aim.device_counts()[2] * AIM.cr_area / aim.footprint(AIM).total
    print(f"Crossing area share: AMF {amf_share:.1%} (crossings ~free, kept) "
          f"vs AIM {aim_share:.1%} (budget-capped)")
    print("Both designs honor their windows; the AIM design cannot afford "
          "crossing-heavy routing and the search prunes it.")


if __name__ == "__main__":
    main()
