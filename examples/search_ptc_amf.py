#!/usr/bin/env python
"""Footprint-adaptive search on AMF (a Table-1 row, end to end).

Searches a 16x16 PTC for one footprint target, retrains the searched
topology on the proxy task, and prints the paper-style comparison row
against MZI-ONN and FFT-ONN — device counts, footprint, and accuracy.

Run:  python examples/search_ptc_amf.py [target_index 0-4]
"""

import sys

from repro.experiments import (
    ExperimentScale,
    TABLE1_WINDOWS,
    baseline_results,
    print_table,
    run_search,
    train_eval_mesh,
)
from repro.experiments.common import MeshResult
from repro.photonics import AMF

K = 16


def main() -> None:
    target = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    window = TABLE1_WINDOWS[K][target]
    scale = ExperimentScale()

    print(f"Searching {K}x{K} PTC on AMF, footprint window "
          f"[{window[0]:.0f}, {window[1]:.0f}]k um^2 (ADEPT-a{target + 1})")
    search = run_search(K, AMF, window, scale, name=f"ADEPT-a{target + 1}")
    topo = search.topology
    print("  " + topo.summary(AMF))

    print("\nRetraining searched topology on the proxy task...")
    acc, _ = train_eval_mesh(topo, K, scale)

    print("Training baselines for comparison (same budget)...")
    rows = baseline_results(K, AMF, scale, with_accuracy=True)
    rows.append(
        MeshResult(
            name=topo.name, footprint=topo.footprint(AMF), accuracy=acc,
            window=window, topology=topo,
        )
    )
    print_table(f"{K}x{K} PTCs on AMF (scaled-down budgets)", rows)

    mzi = rows[0]
    print(f"\nADEPT is {mzi.footprint.total / topo.footprint(AMF).total:.1f}x "
          f"smaller than MZI-ONN at {acc:.1f}% vs {mzi.accuracy:.1f}% accuracy.")


if __name__ == "__main__":
    main()
