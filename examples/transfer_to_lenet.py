#!/usr/bin/env python
"""Transfer a proxy-searched topology to a bigger model and dataset.

The paper searches the PTC on a 2-layer CNN / MNIST proxy, then deploys
the *fixed* circuit inside LeNet-5 on harder datasets (Table 3).  This
example searches a 16x16 topology, freezes it, instantiates LeNet-5
around it, and trains on the FashionMNIST stand-in with variation-aware
training.

Run:  python examples/transfer_to_lenet.py
"""

from repro.core import variation_aware_train
from repro.data import train_test_split
from repro.experiments import ExperimentScale, TABLE1_WINDOWS, run_search
from repro.onn import TrainConfig, build_lenet5, evaluate
from repro.photonics import AMF, mzi_onn_footprint

K = 16


def main() -> None:
    scale = ExperimentScale()

    print("Step 1: search a 16x16 topology on the MNIST proxy (ADEPT-a2 window)")
    res = run_search(K, AMF, TABLE1_WINDOWS[K][1], scale, name="ADEPT-a2")
    topo = res.topology
    print("  " + topo.summary(AMF))

    print("\nStep 2: instantiate LeNet-5 around the frozen topology")
    train_set, test_set = train_test_split("fmnist", scale.n_train, scale.n_test)
    model = build_lenet5(topo, k=K, width_mult=scale.model_width)
    print(f"  LeNet-5 with {model.num_parameters()} trainable parameters "
          f"(phases + sigma + BN; circuit layout is fixed)")

    print("\nStep 3: variation-aware training (phase noise sigma = 0.02)")
    result = variation_aware_train(
        model, train_set, test_set, noise_std=0.02,
        config=TrainConfig(epochs=scale.retrain_epochs,
                           batch_size=scale.batch_size, lr=2e-3),
    )
    acc = 100 * evaluate(model, test_set)

    mzi = mzi_onn_footprint(AMF, K)
    saving = 1 - topo.footprint(AMF).total / mzi.total
    print(f"\nFashionMNIST-like accuracy: {acc:.1f}% "
          f"(best during training {100 * result.best_test_acc:.1f}%)")
    print(f"Footprint saving vs MZI-ONN: {saving:.0%} "
          f"({topo.footprint(AMF).in_paper_units():.0f}k vs "
          f"{mzi.in_paper_units():.0f}k um^2)")


if __name__ == "__main__":
    main()
