#!/usr/bin/env python
"""Programming a fabricated chip: digital twin vs hardware-in-the-loop.

A fabricated PTC differs from its design: couplers are imbalanced and
devices lose light.  This example deploys a target matrix onto such a
chip two ways and compares measurement budgets:

* **adjoint** — gradient descent on the differentiable chip model
  (requires an accurate digital twin);
* **SPSA** — forward-only simultaneous-perturbation calibration:
  three chip measurements per step, no model, no gradients — the
  protocol available on real hardware.

Run:  python examples/onchip_calibration.py
"""

import numpy as np

from repro.core import random_topology
from repro.onn import calibrate_adjoint, calibrate_spsa
from repro.photonics.nonideality import (
    NonidealitySpec,
    NonidealTopologyFactory,
)
from repro.ptc.unitary import FixedTopologyFactory
from repro.utils import sparkline

K = 8


def main() -> None:
    rng = np.random.default_rng(0)
    topo = random_topology(K, 3, 3, rng, coupler_density=1.0)
    blocks = [(b.perm, b.coupler_mask, b.offset) for b in topo.blocks_u]

    # The deployment target: a matrix this topology can realize.
    ref = FixedTopologyFactory(K, 1, blocks, rng=np.random.default_rng(1))
    target = ref.build().data[0]

    spec = NonidealitySpec(dc_t_std=0.03, loss_dc_db=0.05)
    print(f"fabricated chip: {len(topo.blocks_u)}-block {K}x{K} mesh, "
          f"coupler imbalance sigma=0.03, 0.05 dB/DC loss\n")

    runs = {}
    for method, calibrate, kwargs in (
        ("adjoint (digital twin)", calibrate_adjoint, dict(steps=250)),
        ("SPSA (hardware loop)", calibrate_spsa,
         dict(steps=800, rng=np.random.default_rng(4))),
    ):
        chip = NonidealTopologyFactory(K, 1, topo.blocks_u, spec,
                                       rng=np.random.default_rng(2))
        res = calibrate(chip, target, **kwargs)
        runs[method] = res
        print(f"{method}")
        print(f"  error {res.initial_error:.3f} -> {res.final_error:.4f} "
              f"({100 * res.improvement:.1f}% recovered) in "
              f"{res.n_measurements} chip measurements")
        print(f"  trace [{sparkline(res.history)}]\n")

    adj, spsa = runs["adjoint (digital twin)"], runs["SPSA (hardware loop)"]
    print("Reading: both reach a similar error floor (set by the")
    print("phase-incorrigible amplitude errors), but the digital twin")
    print(f"needs {spsa.n_measurements / adj.n_measurements:.0f}x fewer chip")
    print("evaluations — IF its model matches the silicon. SPSA needs no")
    print("model at all, which is why real photonic demos calibrate with")
    print("perturbative methods.")


if __name__ == "__main__":
    main()
