#!/usr/bin/env python
"""Low-bit phase-control quantization: PTQ vs quantization-aware STE.

Phase shifters are driven by b-bit DACs.  This example trains an MZI
mesh to implement a random unitary, then deploys it at 6/4/3/2-bit
phase control two ways:

* **PTQ** — snap the trained phases to the grid;
* **QAT** — finetune with straight-through quantizers in the loop
  (the ROQ recipe, reference [8] of the paper), keeping the best
  quantized configuration encountered.

Run:  python examples/quantization_study.py
"""

from repro.core.quantization import phase_resolution
from repro.experiments import run_quantization_study

K = 6
BITS = (8, 6, 4, 3, 2)


def main() -> None:
    print(f"Fitting a {K}x{K} MZI mesh to a Haar-random unitary, then")
    print("deploying with quantized phase controls...\n")
    res = run_quantization_study(k=K, bit_widths=BITS, steps=400)

    print(f"full-precision fit error: {res.full_precision_error:.4f}\n")
    print(f"{'bits':>5} {'resolution':>11} {'PTQ error':>10} {'QAT error':>10} "
          f"{'QAT gain':>9}")
    for bits, ptq, qat in zip(res.bit_widths, res.ptq_errors, res.qat_errors):
        gain = (ptq - qat) / ptq * 100 if ptq > 0 else 0.0
        print(f"{bits:>5} {phase_resolution(bits):11.4f} {ptq:10.4f} "
              f"{qat:10.4f} {gain:8.1f}%")

    print("\nReading: at high bit width both converge to the full-precision")
    print("floor; as the DAC coarsens, quantization-aware finetuning")
    print("recovers a growing share of the PTQ loss.")


if __name__ == "__main__":
    main()
