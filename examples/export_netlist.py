#!/usr/bin/env python
"""From a searched topology to a manufacturable design description.

Loads (or builds) a topology, then produces everything a layout team
would ask for: the device-level netlist (JSON), an ASCII schematic,
the estimated floorplan on both foundry PDKs, and the optical depth /
per-wire insertion-loss budget.

Run:  python examples/export_netlist.py [topology.json]
"""

import sys
from pathlib import Path

import numpy as np

from repro.core import PTCTopology, random_feasible_topology
from repro.layout import build_netlist, place, render_topology
from repro.photonics import AIM, AMF
from repro.photonics.nonideality import NonidealitySpec


def main() -> None:
    if len(sys.argv) > 1:
        topo = PTCTopology.load(sys.argv[1])
        print(f"loaded topology from {sys.argv[1]}")
    else:
        topo = random_feasible_topology(8, AMF, 336_000, 420_000,
                                        rng=np.random.default_rng(7),
                                        name="demo-a2")
        print("no topology given; sampled a feasible demo design "
              "(window [336, 420]k um^2, AMF)")
    print("  " + topo.summary(AMF) + "\n")

    netlist = build_netlist(topo)
    out = Path(f"{topo.name}.netlist.json")
    netlist.save(out)
    n_ps, n_dc, n_cr = netlist.device_counts()
    print(f"netlist: {len(netlist.devices)} devices "
          f"(PS={n_ps}, DC={n_dc}, CR={n_cr}) in {netlist.n_columns} columns")
    print(f"optical depth: {netlist.optical_depth()} devices on the "
          f"longest path")
    print(f"saved -> {out}\n")

    spec = NonidealitySpec(loss_ps_db=0.2, loss_dc_db=0.15, loss_cr_db=0.1)
    loss = netlist.path_loss_db(spec)
    print("insertion-loss budget (0.2/0.15/0.1 dB per PS/DC/CR):")
    print(f"  worst wire: {loss.max():.2f} dB, best wire: {loss.min():.2f} dB, "
          f"mean {loss.mean():.2f} dB\n")

    for pdk in (AMF, AIM):
        print(place(netlist, pdk).summary())
    print()
    print(render_topology(topo, max_columns=20))


if __name__ == "__main__":
    main()
