#!/usr/bin/env python
"""Measure matrix representability directly, family by family.

The paper compares PTC families by classification accuracy — a proxy
for how well each mesh represents arbitrary linear operators.  This
example measures the quantity itself: it gradient-fits the
programmable phases of each family to Haar-random unitary targets and
reports the residual error, the singular-spectrum statistics, and the
footprint/expressivity Pareto front.

Run:  python examples/expressivity_study.py
"""

import numpy as np

from repro.analysis import (
    ParetoPoint,
    build_factory,
    factory_spectrum_stats,
    pareto_front,
    unitary_expressivity,
)
from repro.core import random_feasible_topology
from repro.photonics import AMF, butterfly_footprint, mzi_onn_footprint

K = 8
STEPS = 400


def main() -> None:
    windows = {"adept-small": (240e3, 300e3), "adept-large": (624e3, 780e3)}
    topologies = {
        name: random_feasible_topology(K, AMF, lo, hi,
                                       rng=np.random.default_rng(1), name=name)
        for name, (lo, hi) in windows.items()
    }
    designs = [
        ("mzi", "mzi", None, mzi_onn_footprint(AMF, K).in_paper_units()),
        ("fft", "fft", None, butterfly_footprint(AMF, K).in_paper_units()),
    ] + [
        (name, "topology", topo, topo.footprint(AMF).in_paper_units())
        for name, topo in topologies.items()
    ]

    print(f"Unitary-fit expressivity at K={K} ({STEPS} Adam steps/target)\n")
    print(f"{'design':>12} {'fit error':>10} {'fidelity':>9} "
          f"{'eff.rank':>9} {'F (k um^2)':>11}")
    points = []
    for name, kind, topo, fp in designs:
        fit = unitary_expressivity(
            lambda: build_factory(kind, K, topology=topo,
                                  rng=np.random.default_rng(0)),
            n_targets=2, steps=STEPS, rng=np.random.default_rng(2))
        stats = factory_spectrum_stats(
            build_factory(kind, K, topology=topo, rng=np.random.default_rng(0)),
            n_samples=4, rng=np.random.default_rng(3))
        print(f"{name:>12} {fit.error:10.3f} {fit.fidelity:9.3f} "
              f"{stats.mean_effective_rank:9.2f} {fp:11.0f}")
        points.append(ParetoPoint(footprint=fp, score=1.0 - fit.error,
                                  label=name))

    front = pareto_front(points)
    print("\nPareto front (ascending footprint):")
    for p in front:
        print(f"  {p.label:>12}: footprint {p.footprint:.0f}k, "
              f"expressivity score {p.score:.3f}")
    print("\nReading: the MZI mesh is universal but pays ~5-7x the area;")
    print("inside ADEPT's space, footprint buys expressivity — the")
    print("trade-off the differentiable search navigates automatically.")


if __name__ == "__main__":
    main()
