#!/usr/bin/env python
"""Noise-robustness comparison with an ASCII rendition of Fig. 4(a).

Trains three 8x8 PTC designs (MZI-ONN, FFT-ONN, and a searched ADEPT
topology) with variation-aware training, sweeps inference-time phase
noise, and plots accuracy-vs-noise curves in the terminal.

Run:  python examples/noise_robustness.py
"""

from repro.core import noise_robustness_curve, variation_aware_train
from repro.data import train_test_split
from repro.experiments import ExperimentScale, TABLE1_WINDOWS, run_search
from repro.onn import TrainConfig, build_cnn2
from repro.photonics import AMF
from repro.utils import line_plot
from repro.utils.rng import spawn_rng

K = 8
STDS = (0.02, 0.04, 0.06, 0.08, 0.10)


def ascii_plot(curves: dict) -> None:
    """Fig. 4(a)-style accuracy-vs-noise chart in the terminal."""
    series = {name: ([sigma for sigma, _, _ in pts],
                     [acc for _, acc, _ in pts])
              for name, pts in curves.items()}
    print(line_plot(series, width=50, height=12,
                    title="accuracy (%) vs phase-noise sigma",
                    x_label="phase noise std"))
    for name, pts in curves.items():
        row = "  ".join(f"{acc:5.1f}+-{3 * std:4.1f}" for _, acc, std in pts)
        print(f"  {name:<6} {row}")


def main() -> None:
    scale = ExperimentScale()
    train_set, test_set = train_test_split("mnist", scale.n_train, scale.n_test)

    print("Searching an ADEPT topology (8x8, ADEPT-a2 window)...")
    topo = run_search(K, AMF, TABLE1_WINDOWS[K][1], scale, name="ADEPT").topology

    curves = {}
    for name, mesh in (("MZI", "mzi"), ("FFT", "butterfly"), ("ADEPT", topo)):
        print(f"Variation-aware training: {name}")
        model = build_cnn2(mesh, k=K, width_mult=scale.model_width,
                           rng=spawn_rng(7))
        variation_aware_train(
            model, train_set, test_set, noise_std=0.02,
            config=TrainConfig(epochs=scale.retrain_epochs,
                               batch_size=scale.batch_size, lr=2e-3),
        )
        pts = noise_robustness_curve(model, test_set, noise_stds=STDS,
                                     n_runs=scale.noise_runs)
        curves[name] = [(p.noise_std, 100 * p.mean_acc, 100 * p.std_acc)
                        for p in pts]

    print("\nAccuracy under phase noise (mean over "
          f"{scale.noise_runs} runs):")
    ascii_plot(curves)
    drops = {n: c[0][1] - c[-1][1] for n, c in curves.items()}
    print("\nAccuracy drop from sigma=0.02 to sigma=0.10:")
    for name, d in drops.items():
        print(f"  {name:<8} {d:5.1f} percentage points")


if __name__ == "__main__":
    main()
