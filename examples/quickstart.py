#!/usr/bin/env python
"""Quickstart: search a photonic tensor-core topology in one call.

Searches an 8x8 PTC under a 300k um^2 footprint budget on the AMF PDK,
prints the discovered topology, saves it to JSON, and compares its
footprint against the two manual baselines from the paper.

Run:  python examples/quickstart.py
"""

from repro.core import ADEPTConfig, search_ptc
from repro.photonics import AMF, butterfly_footprint, mzi_onn_footprint


def main() -> None:
    config = ADEPTConfig(
        k=8,                  # PTC size (8x8 tensor core)
        pdk=AMF,              # foundry device areas
        f_min=240_000.0,      # footprint window, um^2
        f_max=300_000.0,
        epochs=8,             # scaled-down search budget (paper: 90)
        warmup_epochs=2,
        spl_epoch=5,
        n_train=384,          # synthetic MNIST-like proxy task
        n_test=192,
        proxy_channels=6,
        seed=0,
        verbose=True,
    )
    print("Running ADEPT search (8x8, AMF, F <= 300k um^2)...")
    result = search_ptc(config)

    topo = result.topology
    print("\nSearched topology:")
    print("  " + topo.summary(AMF))
    for i, spec in enumerate(topo.blocks_u):
        routing = "identity" if spec.perm is None else f"perm {[int(x) for x in spec.perm]}"
        print(f"  U block {i}: couplers {spec.coupler_mask.astype(int)} "
              f"offset {spec.offset}, routing {routing}")
    for i, spec in enumerate(topo.blocks_v):
        routing = "identity" if spec.perm is None else f"perm {[int(x) for x in spec.perm]}"
        print(f"  V block {i}: couplers {spec.coupler_mask.astype(int)} "
              f"offset {spec.offset}, routing {routing}")

    topo.save("adept_topology.json")
    print("\nSaved to adept_topology.json")

    adept = topo.footprint(AMF).in_paper_units()
    mzi = mzi_onn_footprint(AMF, 8).in_paper_units()
    fft = butterfly_footprint(AMF, 8).in_paper_units()
    print(f"\nFootprint (1000 um^2):  ADEPT {adept:.0f}  "
          f"vs MZI-ONN {mzi:.0f} ({mzi / adept:.1f}x)  "
          f"vs FFT-ONN {fft:.0f} ({fft / adept:.1f}x)")


if __name__ == "__main__":
    main()
