#!/usr/bin/env python
"""Link-budget study: what does each PTC family cost to operate?

Builds the MZI-ONN and FFT-ONN baselines as explicit block topologies,
samples an ADEPT-space design in the paper's smallest 8x8 footprint
window, and compares electrical power, optical latency, worst-path
insertion loss, and energy per MAC on both foundry PDKs.

Run:  python examples/power_budget.py
"""

import numpy as np

from repro.core import random_feasible_topology
from repro.photonics import AIM, AMF, PowerConfig, estimate_power
from repro.photonics.nonideality import NonidealitySpec
from repro.ptc import butterfly_topology, mzi_topology

K = 8


def main() -> None:
    designs = [
        ("MZI-ONN", mzi_topology(K)),
        ("FFT-ONN", butterfly_topology(K)),
        ("ADEPT", random_feasible_topology(
            K, AMF, 240_000, 300_000, rng=np.random.default_rng(0),
            name="adept")),
    ]
    loss = NonidealitySpec(loss_ps_db=0.2, loss_dc_db=0.15, loss_cr_db=0.1)

    for pdk in (AMF, AIM):
        print(f"\n=== {pdk.name} PDK, K={K}, 10 GHz modulation ===")
        print(f"{'design':>8} {'blocks':>7} {'power mW':>9} {'latency ps':>11} "
              f"{'loss dB':>8} {'fJ/MAC':>8}")
        for name, topo in designs:
            r = estimate_power(topo, pdk, loss_spec=loss)
            print(f"{name:>8} {topo.n_blocks:>7} {r.total_power_mw:9.1f} "
                  f"{r.latency_ps:11.1f} {r.worst_path_loss_db:8.2f} "
                  f"{r.energy_per_mac_fj:8.1f}")

    print("\nSensitivity: halving heater power (advanced phase shifters)")
    cfg = PowerConfig(heater_p_pi_mw=12.5)
    for name, topo in designs:
        r = estimate_power(topo, AMF, loss_spec=loss, config=cfg)
        print(f"  {name:>8}: {r.total_power_mw:8.1f} mW "
              f"({r.energy_per_mac_fj:.1f} fJ/MAC)")

    print("\nReading: depth dominates every axis. The 4K-block MZI mesh")
    print("pays ~5x the power and ~6x the latency of footprint-constrained")
    print("designs; loss compounds per column, so its laser budget grows")
    print("exponentially with depth.")


if __name__ == "__main__":
    main()
