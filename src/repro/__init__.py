"""ADEPT: Automatic Differentiable DEsign of Photonic Tensor cores.

A from-scratch reproduction of Gu et al., DAC 2022
(arXiv:2112.08703), including every substrate: a complex-valued
autograd engine, an NN layer library, photonic device models and
foundry PDKs, the MZI-ONN and FFT-ONN baselines, and the full ADEPT
differentiable topology-search flow.

Quickstart::

    from repro.core import ADEPTConfig, search_ptc
    from repro.photonics import AMF

    cfg = ADEPTConfig(k=8, pdk=AMF, f_min=240_000, f_max=300_000)
    result = search_ptc(cfg)
    print(result.topology.summary(AMF))
"""

from . import (
    analysis,
    autograd,
    core,
    data,
    layout,
    nn,
    onn,
    optim,
    photonics,
    ptc,
    service,
    utils,
)
from .autograd.backend import (
    available_backends,
    backend_scope,
    default_backend,
    get_backend,
    register_backend,
    set_default_backend,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "autograd",
    "available_backends",
    "backend_scope",
    "core",
    "data",
    "default_backend",
    "get_backend",
    "layout",
    "nn",
    "onn",
    "optim",
    "photonics",
    "ptc",
    "register_backend",
    "service",
    "set_default_backend",
    "utils",
    "__version__",
]
