"""ASCII schematic rendering of PTC netlists.

A quick visual check of a searched design: one text row per
waveguide, one 3-character cell per column.  Glyphs:

* ``[P]`` — phase shifter;
* ``(D`` / ``D)`` — top/bottom port of a directional coupler;
* ``\\ /`` rendered as ``\\X/`` pairs — a waveguide crossing
  (``>X<`` top row, ``>X<`` bottom row are joined as ``\\`` over
  ``/``);
* ``---`` — plain waveguide pass-through.

The rendering is intentionally dependency-free (plain ``str``) so it
can be printed from examples and embedded in experiment logs.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.topology import PTCTopology
from .netlist import Netlist, build_netlist

__all__ = ["render_netlist", "render_topology"]

_CELL = {
    "pass": "---",
    "ps": "[P]",
    "dc_top": "(D~",
    "dc_bot": "~D)",
    "cr_top": r"-\-",
    "cr_bot": "-/-",
}


def render_netlist(netlist: Netlist, max_columns: Optional[int] = None) -> str:
    """Render a netlist as K waveguide rows of 3-char cells.

    ``max_columns`` truncates wide meshes (an ellipsis column is
    appended when truncation happens).
    """
    k = netlist.k
    n_cols = netlist.n_columns
    shown = n_cols if max_columns is None else min(n_cols, max_columns)
    grid: List[List[str]] = [[_CELL["pass"]] * shown for _ in range(k)]
    for device in netlist.devices:
        if device.column >= shown:
            continue
        if device.kind == "ps":
            grid[device.wires[0]][device.column] = _CELL["ps"]
        elif device.kind == "dc":
            top, bot = sorted(device.wires)
            grid[top][device.column] = _CELL["dc_top"]
            grid[bot][device.column] = _CELL["dc_bot"]
        elif device.kind == "cr":
            top, bot = sorted(device.wires)
            grid[top][device.column] = _CELL["cr_top"]
            grid[bot][device.column] = _CELL["cr_bot"]
    lines = []
    for w in range(k):
        row = "".join(grid[w])
        if shown < n_cols:
            row += " .."
        lines.append(f"{w:>2} >{row}> {w:>2}")
    return "\n".join(lines)


def render_topology(
    topology: PTCTopology,
    mesh: str = "both",
    max_columns: Optional[int] = None,
) -> str:
    """Render a topology's U mesh, V mesh, or both, with headers.

    ``mesh`` is ``"U"``, ``"V"``, or ``"both"``.
    """
    if mesh not in ("U", "V", "both"):
        raise ValueError(f"mesh must be 'U', 'V', or 'both', got {mesh!r}")
    sections: List[str] = []
    selected = {
        "U": [("U", topology.blocks_u)],
        "V": [("V", topology.blocks_v)],
        "both": [("U", topology.blocks_u), ("V", topology.blocks_v)],
    }[mesh]
    for label, blocks in selected:
        sub = PTCTopology(k=topology.k, blocks_u=list(blocks), blocks_v=[],
                          name=topology.name)
        netlist = build_netlist(sub, name=f"{topology.name}.{label}")
        header = (
            f"{label} mesh of {topology.name!r} "
            f"({len(blocks)} blocks, {netlist.n_columns} columns)"
        )
        sections.append(header + "\n" + render_netlist(netlist, max_columns))
    legend = "legend: [P] phase shifter  (D~/~D) coupler  -\\-/-/- crossing"
    return ("\n\n".join(sections)) + "\n" + legend
