"""Netlist extraction, floorplan estimation, and schematic rendering."""

from .netlist import Device, Netlist, build_netlist
from .placement import DeviceGeometry, PlacementReport, place
from .render import render_netlist, render_topology
from .svg import floorplan_svg

__all__ = [
    "Device",
    "DeviceGeometry",
    "Netlist",
    "PlacementReport",
    "build_netlist",
    "floorplan_svg",
    "place",
    "render_netlist",
    "render_topology",
]
