"""SVG floorplan export — a visual, to-scale chip plot.

Renders the column floorplan of :func:`repro.layout.placement.place`
as standalone SVG: one rectangle per device, placed at its column's
x-offset and its wire's y-pitch, colored by device kind.  No drawing
dependency; output is plain XML that any browser opens.
"""

from __future__ import annotations

from typing import Dict, List
from xml.sax.saxutils import escape

from ..photonics.pdk import FoundryPDK
from .netlist import Netlist
from .placement import DeviceGeometry, PlacementReport, place

__all__ = ["floorplan_svg"]

_FILL = {"ps": "#e4572e", "dc": "#17bebb", "cr": "#76b041"}
_MARGIN = 20.0


def floorplan_svg(
    netlist: Netlist,
    pdk: FoundryPDK,
    scale: float = 0.25,
    title: str = "",
) -> str:
    """Standalone SVG of the column floorplan (1 px = ``1/scale`` um).

    Devices are drawn to their PDK dimensions on the placement grid;
    waveguides appear as thin horizontal lines spanning the chip.
    """
    if scale <= 0:
        raise ValueError("scale must be > 0")
    report: PlacementReport = place(netlist, pdk)
    geom = {kind: DeviceGeometry.from_pdk(kind, pdk)
            for kind in ("ps", "dc", "cr")}

    # x-offset of each column = running sum of column lengths + gaps.
    x_off: Dict[int, float] = {}
    x = 0.0
    for col in range(report.n_columns):
        x_off[col] = x
        x += report.column_lengths_um.get(col, 0.0) + 10.0

    pitch = report.pitch_um
    width = (report.chip_length_um + 2 * _MARGIN) * scale
    height = (report.chip_height_um + 2 * _MARGIN) * scale

    def sx(v: float) -> float:
        return (v + _MARGIN) * scale

    def sy(v: float) -> float:
        return (v + _MARGIN) * scale

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect width="100%" height="100%" fill="#fafafa"/>',
    ]
    if title:
        parts.append(
            f'<title>{escape(title)}</title>')
    # Waveguides.
    for w in range(netlist.k):
        y = sy((w + 0.5) * pitch)
        parts.append(
            f'<line x1="{sx(0):.1f}" y1="{y:.1f}" '
            f'x2="{sx(report.chip_length_um):.1f}" y2="{y:.1f}" '
            f'stroke="#888" stroke-width="1"/>')
    # Devices.
    for device in netlist.devices:
        g = geom[device.kind]
        x0 = sx(x_off[device.column])
        top_wire = min(device.wires)
        span = len(device.wires)
        y0 = sy(top_wire * pitch + (pitch - g.width_um) / 2.0)
        h = (g.width_um + (span - 1) * pitch) * scale
        parts.append(
            f'<rect x="{x0:.1f}" y="{y0:.1f}" '
            f'width="{g.length_um * scale:.1f}" height="{h:.1f}" '
            f'fill="{_FILL[device.kind]}" fill-opacity="0.85" '
            f'stroke="#333" stroke-width="0.5">'
            f'<title>{escape(device.device_id)}</title></rect>')
    parts.append("</svg>")
    return "\n".join(parts)
