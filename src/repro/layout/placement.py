"""Column-based physical placement estimation.

Footprint accounting (Tables 1-2) sums device areas; an actual chip
also pays *packing* overhead: devices sit on a waveguide pitch grid
and a column is as wide as its widest device.  This module turns a
netlist into a simple column-per-column floorplan and reports chip
dimensions, so designs with identical summed-area footprints but
different column structures can be compared physically.

Device geometries are derived from the PDK areas with per-kind aspect
ratios (phase shifters are long and thin; crossings are square), and
can be overridden per foundry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..photonics.pdk import FoundryPDK
from .netlist import Netlist

__all__ = ["DeviceGeometry", "PlacementReport", "place"]

#: Default length/width aspect ratio per device kind.  Thermo-optic
#: phase shifters are dominated by a long heater; couplers by their
#: interaction length; crossings are roughly square.
DEFAULT_ASPECT: Dict[str, float] = {"ps": 10.0, "dc": 4.0, "cr": 1.0}

#: Lateral spacing between adjacent columns (um).
COLUMN_GAP_UM = 10.0

#: Minimum waveguide pitch (um) — lower bound on row spacing.
MIN_PITCH_UM = 25.0


@dataclass(frozen=True)
class DeviceGeometry:
    """Rectangular outline of one device kind: length along the light
    direction, width across waveguides."""

    kind: str
    length_um: float
    width_um: float

    @property
    def area_um2(self) -> float:
        return self.length_um * self.width_um

    @classmethod
    def from_pdk(cls, kind: str, pdk: FoundryPDK,
                 aspect: Optional[float] = None) -> "DeviceGeometry":
        area = {"ps": pdk.ps_area, "dc": pdk.dc_area, "cr": pdk.cr_area}[kind]
        a = DEFAULT_ASPECT[kind] if aspect is None else aspect
        width = math.sqrt(area / a)
        return cls(kind=kind, length_um=a * width, width_um=width)


@dataclass
class PlacementReport:
    """Estimated floorplan of a netlist on a given PDK."""

    pdk_name: str
    n_columns: int
    chip_length_um: float  # along light propagation
    chip_height_um: float  # across the K waveguides
    active_area_um2: float  # sum of device areas
    pitch_um: float
    column_lengths_um: Dict[int, float] = field(default_factory=dict)

    @property
    def chip_area_um2(self) -> float:
        return self.chip_length_um * self.chip_height_um

    @property
    def utilization(self) -> float:
        """Active device area / floorplan area, in (0, 1]."""
        if self.chip_area_um2 <= 0:
            return 0.0
        return self.active_area_um2 / self.chip_area_um2

    def summary(self) -> str:
        return (
            f"floorplan [{self.pdk_name}]: "
            f"{self.chip_length_um:.0f} x {self.chip_height_um:.0f} um "
            f"({self.chip_area_um2 / 1e6:.3f} mm^2), "
            f"{self.n_columns} columns, "
            f"utilization {100 * self.utilization:.1f}%"
        )


def place(
    netlist: Netlist,
    pdk: FoundryPDK,
    aspect: Optional[Dict[str, float]] = None,
    column_gap_um: float = COLUMN_GAP_UM,
    min_pitch_um: float = MIN_PITCH_UM,
) -> PlacementReport:
    """Column-per-column floorplan of ``netlist`` on ``pdk``.

    * chip length = sum over columns of the longest device in the
      column, plus inter-column gaps;
    * waveguide pitch = the widest device on the chip (devices in one
      column must not overlap laterally), floored at ``min_pitch_um``;
    * chip height = K * pitch.
    """
    aspects = dict(DEFAULT_ASPECT)
    if aspect:
        aspects.update(aspect)
    geom = {kind: DeviceGeometry.from_pdk(kind, pdk, aspects[kind])
            for kind in ("ps", "dc", "cr")}

    column_lengths: Dict[int, float] = {}
    active = 0.0
    pitch = min_pitch_um
    for device in netlist.devices:
        g = geom[device.kind]
        active += g.area_um2
        pitch = max(pitch, g.width_um)
        column_lengths[device.column] = max(
            column_lengths.get(device.column, 0.0), g.length_um
        )
    n_columns = netlist.n_columns
    length = sum(column_lengths.values())
    if n_columns > 1:
        length += column_gap_um * (n_columns - 1)
    height = netlist.k * pitch
    return PlacementReport(
        pdk_name=pdk.name,
        n_columns=n_columns,
        chip_length_um=length,
        chip_height_um=height,
        active_area_um2=active,
        pitch_um=pitch,
        column_lengths_um=column_lengths,
    )
