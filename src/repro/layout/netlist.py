"""Device-level netlist extraction from a searched topology.

A :class:`~repro.core.topology.PTCTopology` is an abstract design:
block count, coupler masks, CR permutations.  Fabricating it requires
the concrete device list and connectivity.  This module flattens a
topology into a column-ordered netlist:

* every block contributes a **PS column** (K phase shifters), a **DC
  column** (one coupler per placed slot), and a **CR section** (one
  crossing per adjacent swap of the block's routing schedule, packed
  greedily into parallel columns);
* devices carry stable ids (``U.b2.dc1``) so netlists diff cleanly
  across search runs;
* :meth:`Netlist.to_graph` exports a ``networkx`` DAG (ports +
  devices) for connectivity analysis, and :meth:`Netlist.to_json`
  serializes the whole design for hand-off.

The netlist's device counts are, by construction, exactly the counts
used in footprint accounting — asserted in the test suite.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from ..core.topology import BlockSpec, PTCTopology
from ..photonics.crossings import routing_schedule
from ..photonics.nonideality import NonidealitySpec

__all__ = ["Device", "Netlist", "build_netlist"]


@dataclass(frozen=True)
class Device:
    """One physical optical component instance.

    ``wires`` are the waveguide *positions* the device touches in its
    column; ``column`` is the global column index (0 at the input
    facet).  ``kind`` is ``"ps"``, ``"dc"``, or ``"cr"``.
    """

    device_id: str
    kind: str
    mesh: str  # "U" or "V"
    block: int
    column: int
    wires: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("ps", "dc", "cr"):
            raise ValueError(f"unknown device kind {self.kind!r}")
        if self.kind == "ps" and len(self.wires) != 1:
            raise ValueError("a phase shifter touches exactly one wire")
        if self.kind in ("dc", "cr") and len(self.wires) != 2:
            raise ValueError(f"a {self.kind} touches exactly two wires")


@dataclass
class Netlist:
    """Column-ordered device list of one full PTC (U and V meshes)."""

    k: int
    name: str = "ptc"
    devices: List[Device] = field(default_factory=list)

    # -- accounting ---------------------------------------------------------
    def device_counts(self) -> Tuple[int, int, int]:
        """(n_ps, n_dc, n_cr) — must equal the topology's counts."""
        kinds = [d.kind for d in self.devices]
        return kinds.count("ps"), kinds.count("dc"), kinds.count("cr")

    @property
    def n_columns(self) -> int:
        return max((d.column for d in self.devices), default=-1) + 1

    def columns(self) -> List[List[Device]]:
        cols: List[List[Device]] = [[] for _ in range(self.n_columns)]
        for d in self.devices:
            cols[d.column].append(d)
        return cols

    def column_kinds(self) -> List[str]:
        """Dominant device kind per column (columns are homogeneous)."""
        out = []
        for col in self.columns():
            kinds = {d.kind for d in col}
            if len(kinds) > 1:
                raise AssertionError(f"mixed column: {kinds}")
            out.append(next(iter(kinds)) if kinds else "empty")
        return out

    # -- connectivity -------------------------------------------------------
    def to_graph(self) -> "nx.DiGraph":
        """Directed connectivity graph: ``in:i`` -> devices -> ``out:i``.

        Edges carry the waveguide position (``wire``).  Pass-through
        segments (a wire skipping a column) connect the previous
        emitter directly to the next consumer.
        """
        g = nx.DiGraph()
        last: Dict[int, str] = {}
        for w in range(self.k):
            node = f"in:{w}"
            g.add_node(node, kind="port", wire=w)
            last[w] = node
        for device in sorted(self.devices, key=lambda d: d.column):
            g.add_node(device.device_id, kind=device.kind, column=device.column)
            for w in device.wires:
                g.add_edge(last[w], device.device_id, wire=w)
                last[w] = device.device_id
        for w in range(self.k):
            node = f"out:{w}"
            g.add_node(node, kind="port", wire=w)
            g.add_edge(last[w], node, wire=w)
        return g

    def optical_depth(self) -> int:
        """Maximum number of devices on any input->output path."""
        g = self.to_graph()
        return int(nx.dag_longest_path_length(g)) - 1  # exclude the port hop

    def path_loss_db(self, spec: NonidealitySpec) -> np.ndarray:
        """Positional path loss (dB) accumulated at each output wire.

        Follows waveguide *positions* through the column sequence: a
        signal at position w pays the loss of every device touching w.
        This is the worst-case estimate used for link budgeting.
        """
        loss = np.zeros(self.k)
        per_kind = {"ps": spec.loss_ps_db, "dc": spec.loss_dc_db,
                    "cr": spec.loss_cr_db}
        for device in self.devices:
            for w in device.wires:
                loss[w] += per_kind[device.kind]
        return loss

    # -- serialization ------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "k": self.k,
                "name": self.name,
                "devices": [asdict(d) for d in self.devices],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Netlist":
        d = json.loads(text)
        devices = [
            Device(
                device_id=x["device_id"],
                kind=x["kind"],
                mesh=x["mesh"],
                block=int(x["block"]),
                column=int(x["column"]),
                wires=tuple(int(w) for w in x["wires"]),
            )
            for x in d["devices"]
        ]
        return cls(k=int(d["k"]), name=d.get("name", "ptc"), devices=devices)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Netlist":
        return cls.from_json(Path(path).read_text())


def _pack_swaps(swaps: Sequence[Tuple[int, int]]) -> List[List[Tuple[int, int]]]:
    """Pack adjacent swaps into parallel columns.

    Swaps must execute in schedule order along each wire; a swap can
    join a column only if no earlier-scheduled swap in a *later*
    column touches its wires.  Greedy ASAP scheduling: place each
    swap in the earliest column after the last column using its wires.
    """
    ready: Dict[int, int] = {}
    columns: List[List[Tuple[int, int]]] = []
    for i, j in swaps:
        col = max(ready.get(i, 0), ready.get(j, 0))
        while len(columns) <= col:
            columns.append([])
        columns[col].append((i, j))
        ready[i] = ready[j] = col + 1
    return columns


def build_netlist(topology: PTCTopology, name: Optional[str] = None) -> Netlist:
    """Flatten a topology into a :class:`Netlist`.

    Light traverses U's blocks first, then V's (the Sigma stage is an
    electro-optic attenuator array external to the meshes and is not
    part of the passive netlist).
    """
    netlist = Netlist(k=topology.k, name=name or topology.name)
    column = 0
    for mesh, blocks in (("U", topology.blocks_u), ("V", topology.blocks_v)):
        for b, block in enumerate(blocks):
            column = _emit_block(netlist, mesh, b, block, column)
    return netlist


def _emit_block(
    netlist: Netlist, mesh: str, b: int, block: BlockSpec, column: int
) -> int:
    k = netlist.k
    # PS column: always K shifters (paper: full column keeps the PTC
    # reprogrammable).
    for w in range(k):
        netlist.devices.append(
            Device(f"{mesh}.b{b}.ps{w}", "ps", mesh, b, column, (w,))
        )
    column += 1
    # DC column: one coupler per placed slot.
    placed = [
        i for i, on in enumerate(np.asarray(block.coupler_mask, dtype=bool)) if on
    ]
    if placed:
        for idx, i in enumerate(placed):
            p = block.offset + 2 * i
            if p + 1 >= k:
                continue
            netlist.devices.append(
                Device(f"{mesh}.b{b}.dc{idx}", "dc", mesh, b, column, (p, p + 1))
            )
        column += 1
    # CR section: adjacent swaps packed into parallel columns.
    if block.perm is not None:
        swaps = routing_schedule(list(block.perm))
        for swap_col in _pack_swaps(swaps):
            for idx, (i, j) in enumerate(swap_col):
                netlist.devices.append(
                    Device(f"{mesh}.b{b}.cr{column}_{idx}", "cr", mesh, b,
                           column, (i, j))
                )
            column += 1
    return column
