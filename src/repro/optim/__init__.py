"""Optimizers and LR schedulers."""

from .adam import Adam
from .lr_scheduler import CosineAnnealingLR, ExponentialLR, LRScheduler, StepLR
from .optimizer import Optimizer, clip_grad_norm_
from .sgd import SGD

__all__ = [
    "Adam",
    "CosineAnnealingLR",
    "ExponentialLR",
    "LRScheduler",
    "Optimizer",
    "SGD",
    "StepLR",
    "clip_grad_norm_",
]
