"""Learning-rate schedulers (cosine annealing, step decay).

The paper trains the SuperMesh with Adam + cosine LR over 90 epochs.
"""

from __future__ import annotations

import math

from .optimizer import Optimizer


class LRScheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lrs = [g["lr"] for g in optimizer.param_groups]
        self.last_epoch = -1

    def get_lr(self, base_lr: float) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.last_epoch += 1
        for group, base in zip(self.optimizer.param_groups, self.base_lrs):
            group["lr"] = self.get_lr(base)

    @property
    def current_lrs(self):
        return [g["lr"] for g in self.optimizer.param_groups]


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` steps.

    The schedule spans the *closed* interval: the first :meth:`step`
    yields the base LR and the ``t_max``-th yields exactly ``eta_min``
    (further steps stay at the floor).  A training loop that steps once
    at the start of each of ``t_max`` epochs therefore trains its final
    epoch at the annealed floor — previously the floor landed one step
    past the last epoch and was never used.
    """

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        self.t_max = max(1, t_max)
        self.eta_min = eta_min
        super().__init__(optimizer)

    def get_lr(self, base_lr: float) -> float:
        span = max(1, self.t_max - 1)
        t = min(max(self.last_epoch, 0), span)
        return self.eta_min + 0.5 * (base_lr - self.eta_min) * (
            1 + math.cos(math.pi * t / span)
        )


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.step_size = step_size
        self.gamma = gamma
        super().__init__(optimizer)

    def get_lr(self, base_lr: float) -> float:
        return base_lr * self.gamma ** (self.last_epoch // self.step_size)


class ExponentialLR(LRScheduler):
    """Multiply the LR by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float):
        self.gamma = gamma
        super().__init__(optimizer)

    def get_lr(self, base_lr: float) -> float:
        return base_lr * self.gamma ** max(0, self.last_epoch)
