"""Adam optimizer (Kingma & Ba), with complex-parameter support.

For complex parameters the second moment uses |g|^2 so that the update
remains a steepest-descent step under the Wirtinger gradient convention
of :mod:`repro.autograd`.
"""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer, ParamsLike


class Adam(Optimizer):
    def __init__(
        self,
        params: ParamsLike,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(
            params,
            dict(lr=lr, betas=betas, eps=eps, weight_decay=weight_decay),
        )

    def step(self) -> None:
        for group, p in self._iter_params():
            grad = p.grad
            wd = group["weight_decay"]
            if wd:
                grad = grad + wd * p.data
            st = self.state.setdefault(id(p), {})
            if not st:
                st["step"] = 0
                st["m"] = np.zeros_like(p.data)
                st["v"] = np.zeros_like(np.abs(p.data))
            st["step"] += 1
            b1, b2 = group["betas"]
            st["m"] = b1 * st["m"] + (1 - b1) * grad
            st["v"] = b2 * st["v"] + (1 - b2) * np.abs(grad) ** 2
            m_hat = st["m"] / (1 - b1 ** st["step"])
            v_hat = st["v"] / (1 - b2 ** st["step"])
            p.data -= group["lr"] * m_hat / (np.sqrt(v_hat) + group["eps"])
