"""Optimizer base class with parameter groups and weight decay.

Parameter groups mirror the paper's training recipe, which uses
different weight-decay rates for the phase/sigma weights (1e-4) and the
architecture sampling coefficients theta (5e-4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Union

import numpy as np

from ..nn.module import Parameter

ParamsLike = Union[Iterable[Parameter], Iterable[Dict]]


class Optimizer:
    def __init__(self, params: ParamsLike, defaults: Dict):
        self.defaults = dict(defaults)
        self.param_groups: List[Dict] = []
        params = list(params)
        if params and isinstance(params[0], dict):
            for group in params:
                g = dict(self.defaults)
                g.update(group)
                g["params"] = list(g["params"])
                self.param_groups.append(g)
        else:
            g = dict(self.defaults)
            g["params"] = params
            self.param_groups.append(g)
        self.state: Dict[int, Dict] = {}

    def zero_grad(self) -> None:
        for group in self.param_groups:
            for p in group["params"]:
                p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def _iter_params(self):
        for group in self.param_groups:
            for p in group["params"]:
                if p.grad is not None:
                    yield group, p

    @property
    def lr(self) -> float:
        return self.param_groups[0]["lr"]

    def set_lr(self, lr: float) -> None:
        for group in self.param_groups:
            group["lr"] = lr


def clip_grad_norm_(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``."""
    params = [p for p in params if p.grad is not None]
    total = float(
        np.sqrt(sum(float(np.sum(np.abs(p.grad) ** 2)) for p in params))
    )
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
