"""Plain SGD with optional momentum and weight decay."""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer, ParamsLike


class SGD(Optimizer):
    def __init__(
        self,
        params: ParamsLike,
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, dict(lr=lr, momentum=momentum, weight_decay=weight_decay))

    def step(self) -> None:
        for group, p in self._iter_params():
            grad = p.grad
            if group["weight_decay"]:
                grad = grad + group["weight_decay"] * p.data
            mom = group["momentum"]
            if mom:
                st = self.state.setdefault(id(p), {})
                buf = st.get("momentum_buffer")
                if buf is None:
                    buf = np.array(grad, copy=True)
                else:
                    buf = mom * buf + grad
                st["momentum_buffer"] = buf
                grad = buf
            p.data -= group["lr"] * grad
