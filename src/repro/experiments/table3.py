"""Table 3: transfer searched 16x16 PTCs to LeNet-5 / VGG-8 and harder
datasets (FashionMNIST, SVHN, CIFAR-10 — synthetic stand-ins here).

The topology is searched once on the MNIST proxy (2-layer CNN) and the
*same fixed topology* is re-instantiated inside larger models on new
datasets — the paper's test of whether a proxy-searched circuit remains
expressive after chip fabrication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import PTCTopology
from ..photonics import AMF, butterfly_footprint, mzi_onn_footprint
from ..utils.rng import stable_hash
from .common import ExperimentScale, TABLE1_WINDOWS, run_search, train_eval_mesh

#: Paper Table 3 reference accuracies (%), for printed comparison.
PAPER_TABLE3 = {
    ("lenet5", "fmnist"): {"mzi": 87.33, "fft": 85.87, "a2": 85.89, "a4": 87.07},
    ("lenet5", "svhn"): {"mzi": 69.91, "fft": 65.04, "a2": 65.26, "a4": 69.20},
    ("lenet5", "cifar10"): {"mzi": 51.40, "fft": 42.75, "a2": 51.26, "a4": 52.42},
    ("vgg8", "fmnist"): {"mzi": 89.59, "fft": 88.62, "a2": 89.23, "a4": 89.16},
    ("vgg8", "svhn"): {"mzi": 77.87, "fft": 75.22, "a2": 75.86, "a4": 77.20},
    ("vgg8", "cifar10"): {"mzi": 68.90, "fft": 63.57, "a2": 66.30, "a4": 68.50},
}


@dataclass
class Table3Result:
    topologies: Dict[str, PTCTopology] = field(default_factory=dict)
    accuracy: Dict[Tuple[str, str, str], float] = field(default_factory=dict)
    # key: (model, dataset, mesh_name)


def search_transfer_topologies(
    k: int = 16, scale: Optional[ExperimentScale] = None
) -> Dict[str, PTCTopology]:
    """Search ADEPT-a2 and ADEPT-a4 at 16x16 on the MNIST proxy."""
    scale = scale or ExperimentScale.from_env()
    topologies = {}
    for name, idx in (("ADEPT-a2", 1), ("ADEPT-a4", 3)):
        window = TABLE1_WINDOWS[k][idx]
        res = run_search(k, AMF, window, scale, name=name, seed=scale.seed + 200 + idx)
        topologies[name] = res.topology
    return topologies


def run_table3(
    models: Sequence[str] = ("lenet5", "vgg8"),
    datasets: Sequence[str] = ("fmnist", "svhn", "cifar10"),
    k: int = 16,
    scale: Optional[ExperimentScale] = None,
    topologies: Optional[Dict[str, PTCTopology]] = None,
) -> Table3Result:
    scale = scale or ExperimentScale.from_env()
    result = Table3Result()
    result.topologies = topologies or search_transfer_topologies(k, scale)

    meshes: List[Tuple[str, object]] = [("MZI", "mzi"), ("FFT", "butterfly")]
    meshes += [(name, topo) for name, topo in result.topologies.items()]

    print("\n=== Table 3 - transfer of searched 16x16 PTCs (AMF) ===")
    print(
        "  footprints (k um^2): "
        f"MZI={mzi_onn_footprint(AMF, k).in_paper_units():.0f} "
        f"FFT={butterfly_footprint(AMF, k).in_paper_units():.0f} "
        + " ".join(
            f"{n}={t.footprint(AMF).in_paper_units():.0f}"
            for n, t in result.topologies.items()
        )
    )
    for model_name in models:
        for ds in datasets:
            cells = []
            for mesh_name, mesh in meshes:
                acc, _ = train_eval_mesh(
                    mesh, k, scale, dataset=ds, model_name=model_name,
                    seed=scale.seed + stable_hash(model_name, ds, mesh_name) % 1000,
                )
                result.accuracy[(model_name, ds, mesh_name)] = acc
                cells.append(f"{mesh_name}={acc:5.1f}%")
            print(f"  {model_name:<7} {ds:<8} " + "  ".join(cells))
    return result


def check_table3_shape(result: Table3Result, k: int = 16) -> List[str]:
    """Footprint claims are exact; accuracy shape: ADEPT within reach of
    MZI (paper: 'competitive performance, 84% footprint saving')."""
    problems: List[str] = []
    mzi_f = mzi_onn_footprint(AMF, k).total
    for name, topo in result.topologies.items():
        saving = 1.0 - topo.footprint(AMF).total / mzi_f
        if saving < 0.5:
            problems.append(f"{name}: footprint saving vs MZI only {saving:.0%}")
    return problems
