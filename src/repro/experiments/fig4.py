"""Figure 4: noise robustness of 16x16 PTCs.

All designs receive variation-aware training (Gaussian phase noise,
sigma = 0.02) and are then evaluated under inference-time phase noise
sigma in {0.02 ... 0.10}, averaging over repeated noisy runs
(paper: 20 runs, +-3 sigma band).

(a) 2-layer CNN on MNIST;  (b) LeNet-5 on FashionMNIST.

Shape target: the deep MZI mesh degrades fastest as noise grows; the
searched ADEPT designs track or beat the log-depth FFT mesh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import PTCTopology, noise_robustness_curve, variation_aware_train
from ..onn import TrainConfig, build_model
from .common import ExperimentScale, get_data
from ..utils.rng import spawn_rng, stable_hash

NOISE_STDS = (0.02, 0.04, 0.06, 0.08, 0.10)

_PART_TASKS = {
    "a": ("cnn2", "mnist"),
    "b": ("lenet5", "fmnist"),
}


@dataclass
class RobustnessCurves:
    """mesh name -> list of (noise_std, mean_acc_percent, std_acc)."""

    part: str
    curves: Dict[str, List[Tuple[float, float, float]]] = field(default_factory=dict)


def mesh_noise_curve(
    part: str,
    mesh_name: str,
    mesh,
    k: int,
    scale: ExperimentScale,
    noise_stds: Sequence[float],
    backend: str = "fast",
) -> List[Tuple[float, float, float]]:
    """Variation-aware-train one mesh and sweep its noise robustness.

    The per-mesh unit of Fig. 4 — shared verbatim by the in-process
    loop in :func:`run_fig4_part` and the design service's
    ``fig4-part`` shards, so both paths produce identical curves at a
    fixed seed.  Returns ``(noise_std, mean_acc_%, std_acc_%)``
    triples.
    """
    model_name, dataset = _PART_TASKS[part]
    train_set, test_set = get_data(dataset, scale)
    rng = spawn_rng(scale.seed + stable_hash(part, mesh_name) % 1000)
    model = build_model(
        model_name,
        mesh,
        k=k,
        in_channels=train_set.images.shape[1],
        image_size=train_set.images.shape[2],
        width_mult=scale.model_width,
        rng=rng,
    )
    variation_aware_train(
        model,
        train_set,
        test_set,
        noise_std=0.02,
        config=TrainConfig(
            epochs=scale.retrain_epochs, batch_size=scale.batch_size, lr=2e-3
        ),
        rng=rng,
    )
    points = noise_robustness_curve(
        model, test_set, noise_stds=noise_stds, n_runs=scale.noise_runs,
        seed=scale.seed, backend=backend,
    )
    return [(p.noise_std, 100 * p.mean_acc, 100 * p.std_acc) for p in points]


def run_fig4_part(
    part: str,
    topologies: Dict[str, PTCTopology],
    k: int = 16,
    scale: Optional[ExperimentScale] = None,
    noise_stds: Sequence[float] = NOISE_STDS,
    backend: str = "fast",
    n_workers: int = 0,
) -> RobustnessCurves:
    """One subfigure: part 'a' = cnn2/mnist, part 'b' = lenet5/fmnist.

    The noise sweep runs through the trial-batched Monte-Carlo engine
    (``backend="fast"``; see :func:`repro.core.evaluate_noise_grid`);
    ``backend="reference"`` replays the sequential per-run loop.  All
    seeds derive from :func:`repro.utils.rng.stable_hash`, so repeated
    invocations produce identical curves regardless of
    ``PYTHONHASHSEED``.

    Since the campaign redesign this entry point is a thin shim over
    the ``fig4-noise`` campaign (see :mod:`repro.campaign.studies` and
    ``examples/campaigns/``): one cell per mesh, shared noise grid in
    the cell params so each mesh trains exactly once.  ``n_workers >
    0`` shards the cells through the design service's persistent queue
    and a local multiprocess pool — same curves, one process per mesh
    instead of a sequential loop.
    """
    scale = scale or ExperimentScale.from_env()
    model_name, dataset = _PART_TASKS[part]
    from ..campaign import run_campaign
    from ..campaign.studies import fig4_spec

    spec = fig4_spec(part, topologies=topologies, k=k, scale=scale,
                     noise_stds=noise_stds, backend=backend)
    out = RobustnessCurves(part=part)
    print(f"\n=== Fig. 4({part}) - {model_name} on {dataset}, noise sweep ===")
    if n_workers > 0:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-fig4-") as root:
            run = run_campaign(spec, n_workers=n_workers, root=root)
    else:
        run = run_campaign(spec)
    for cell, r in zip(run.cells, run.results):
        mesh_name = cell.coords["mesh"]
        curve = [tuple(c) for c in r["curve"]]
        out.curves[mesh_name] = curve
        series = "  ".join(f"{s:.2f}:{m:5.1f}+-{3 * sd:4.1f}" for s, m, sd in curve)
        print(f"  {mesh_name:<9} {series}")
    return out


def degradation(curve: List[Tuple[float, float, float]]) -> float:
    """Accuracy drop (percentage points) from the lowest to the highest
    noise level — the Fig. 4 robustness metric."""
    return curve[0][1] - curve[-1][1]


def check_fig4_shape(result: RobustnessCurves) -> List[str]:
    problems: List[str] = []
    if "MZI" not in result.curves:
        return ["missing MZI curve"]
    mzi_drop = degradation(result.curves["MZI"])
    for name, curve in result.curves.items():
        if name in ("MZI", "FFT"):
            continue
        # Searched designs must not degrade meaningfully faster than the
        # deep MZI mesh (paper: they track or beat FFT).
        if degradation(curve) > mzi_drop + 10.0:
            problems.append(
                f"{name} degrades {degradation(curve):.1f}pp vs MZI {mzi_drop:.1f}pp"
            )
    return problems
