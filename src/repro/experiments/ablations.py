"""Ablation studies for the reproduction's load-bearing design choices.

1. **Permutation init**: smoothed identity vs random legal permutation.
   The paper states random-permutation init fails because zero entries
   receive no gradient; we measure the fraction of entries with nonzero
   gradient under each init.
2. **Row/col L2 normalization of U, V**: relaxed CR layers are doubly
   stochastic but not orthogonal, so each one is a *contraction* — a
   cascade of them collapses the signal toward zero (vanishing
   activations/gradients).  The normalization restores unit row/column
   scale and keeps the statistics healthy (paper: "helps to stabilize
   the matrix statistics").
3. **Adaptive ALM (quadratic term scaled by lambda) vs standard ALM**:
   the adaptive form lets the task dominate early; we compare early-
   phase constraint pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..autograd import Tensor
from ..core import PermutationLearner, SuperMeshSpace
from ..core.permutation import smoothed_identity
from ..core.supermesh import SuperMeshLinear
from ..photonics import AMF, perm_to_matrix
from ..utils.rng import spawn_rng


@dataclass
class PermInitAblation:
    nonzero_grad_fraction_smoothed: float
    nonzero_grad_fraction_random: float


def run_perm_init_ablation(k: int = 8, seed: int = 0) -> PermInitAblation:
    """Fraction of permutation entries receiving gradient signal."""
    rng = spawn_rng(seed)

    def grad_fraction(init: np.ndarray) -> float:
        learner = PermutationLearner(k, 1)
        np.copyto(learner.raw.data, init)
        x = Tensor(rng.normal(size=(8, k)))
        p = learner.relaxed()
        loss = ((x @ p[0].T) ** 2).sum()
        learner.raw.grad = None
        loss.backward()
        g = learner.raw.grad
        if g is None:
            return 0.0
        return float((np.abs(g) > 1e-12).mean())

    smooth = grad_fraction(smoothed_identity(k, 1))
    random_perm = perm_to_matrix(rng.permutation(k))[None].astype(float)
    rand = grad_fraction(random_perm)
    print(
        f"\n=== Ablation: permutation init (K={k}) ===\n"
        f"  smoothed identity: {smooth:.0%} entries get gradient\n"
        f"  random permutation: {rand:.0%} entries get gradient"
    )
    return PermInitAblation(smooth, rand)


@dataclass
class NormalizationAblation:
    output_std_with_norm: float
    output_std_without_norm: float


def run_normalization_ablation(k: int = 8, seed: int = 0) -> NormalizationAblation:
    """Output scale of a SuperMesh layer with/without U,V normalization.

    The relaxation is pushed away from orthogonality to emulate
    mid-training conditions.
    """
    rng = spawn_rng(seed)

    def output_std(normalize: bool) -> float:
        space = SuperMeshSpace(
            k=k, pdk=AMF, f_min=240_000, f_max=300_000, b_min=4, b_max=8,
            rng=spawn_rng(seed),
        )
        # Inflate the relaxed permutations (non-orthogonal).
        space.perms.raw.data[:] = np.abs(rng.normal(1.0, 0.5, space.perms.raw.shape))
        lin = SuperMeshLinear(space, 2 * k, 2 * k, rng=spawn_rng(seed))
        if not normalize:
            # Monkey-patch: bypass the normalization inside the core.
            core = lin.core
            orig_unitary = core._unitary

            def forward_no_norm():
                sample = space.sample(stochastic=False)
                u = orig_unitary(sample, "u")
                v = orig_unitary(sample, "v")
                sv = core.sigma.astype(np.complex128).reshape(
                    (core.n_units, core.k, 1)
                ) * v
                blocks = (u @ sv).real()
                w = blocks.reshape((core.p, core.q, core.k, core.k))
                w = w.transpose((0, 2, 1, 3)).reshape(
                    (core.p * core.k, core.q * core.k)
                )
                return w

            core.forward = forward_no_norm
        space.sample(stochastic=False)
        x = Tensor(rng.normal(size=(32, 2 * k)))
        return float(lin(x).data.std())

    with_norm = output_std(True)
    without = output_std(False)
    print(
        f"\n=== Ablation: U/V L2 normalization (K={k}) ===\n"
        f"  with normalization:    output std {with_norm:8.3f}\n"
        f"  without normalization: output std {without:8.3f}"
    )
    return NormalizationAblation(with_norm, without)


@dataclass
class CrossingCostSweep:
    """Searched crossing usage as a function of the PDK's CR area."""

    cr_areas: Tuple[float, ...]
    crossings: Tuple[int, ...]
    footprints: Tuple[float, ...]


def run_crossing_cost_sweep(
    k: int = 8,
    cr_areas: Tuple[float, ...] = (64.0, 1000.0, 4900.0),
    seed: int = 0,
) -> CrossingCostSweep:
    """PDK what-if study (extension beyond the paper's two foundries).

    Sweeps the crossing area of a hypothetical PDK while keeping
    PS/DC at AMF values, under a window sized so that routing competes
    with couplers for area.  As crossings get more expensive the
    searched designs should use fewer of them — the continuous version
    of the paper's AMF -> AIM adaptation.
    """
    from ..core import ADEPTConfig, ADEPTSearch
    from ..photonics import AMF, FoundryPDK

    crossings = []
    footprints = []
    print("\n=== Ablation: crossing-cost sweep (PDK what-if) ===")
    for cr_area in cr_areas:
        pdk = FoundryPDK(
            name=f"whatif-cr{int(cr_area)}",
            ps_area=AMF.ps_area,
            dc_area=AMF.dc_area,
            cr_area=cr_area,
        )
        cfg = ADEPTConfig(
            k=k, pdk=pdk, f_min=240_000, f_max=300_000,
            epochs=8, warmup_epochs=2, spl_epoch=5, lr=5e-3,
            n_train=192, n_test=64, proxy_channels=4, batch_size=48,
            seed=seed,
        )
        result = ADEPTSearch(cfg).run()
        fb = result.topology.footprint(pdk)
        crossings.append(fb.n_cr)
        footprints.append(fb.total)
        print(
            f"  CR area {cr_area:7.0f} um^2 -> #CR={fb.n_cr:<3} "
            f"footprint={fb.total / 1000:6.1f}k (window [240, 300]k)"
        )
    return CrossingCostSweep(
        cr_areas=tuple(cr_areas),
        crossings=tuple(crossings),
        footprints=tuple(footprints),
    )


@dataclass
class ALMVariantAblation:
    early_penalty_adaptive: float
    early_penalty_standard: float


def run_alm_variant_ablation(k: int = 8, seed: int = 0) -> ALMVariantAblation:
    """Early-phase constraint pressure: adaptive vs standard ALM.

    In the paper's adaptive form the quadratic term is ALSO scaled by
    lambda, so with lambda ~= 0 at the start the constraint exerts no
    pressure and the task loss dominates.  Standard ALM applies
    rho/2 * Delta^2 immediately.
    """
    learner = PermutationLearner(k, 2, rho0=1e-2)
    p = learner.relaxed()
    adaptive = float(learner.alm_loss(p).item())

    # Standard ALM penalty with the same state.
    from ..core.permutation import delta_l1_l2

    d_row = delta_l1_l2(p, axis=-1)
    d_col = delta_l1_l2(p, axis=-2)
    standard = float(
        (
            (Tensor(learner.lambda_row) * d_row).sum()
            + (Tensor(learner.lambda_col) * d_col).sum()
            + (learner.rho / 2.0) * ((d_row * d_row).sum() + (d_col * d_col).sum())
        ).item()
    )
    print(
        f"\n=== Ablation: adaptive vs standard ALM (K={k}) ===\n"
        f"  adaptive (paper) initial penalty: {adaptive:.3e}\n"
        f"  standard ALM initial penalty:     {standard:.3e}"
    )
    return ALMVariantAblation(adaptive, standard)
