"""Paper-reproduction experiments: one module per table/figure.

The artifact map in the top-level README.md lists which module
regenerates which table/figure and which benchmark exercises it; each
module's docstring states its exact-reproduction and shape targets.
"""

from .ablations import (
    run_alm_variant_ablation,
    run_crossing_cost_sweep,
    run_normalization_ablation,
    run_perm_init_ablation,
)
from .common import (
    ExperimentScale,
    MeshResult,
    TABLE1_WINDOWS,
    TABLE2_WINDOWS,
    baseline_results,
    full_scale,
    get_data,
    run_search,
    train_eval_mesh,
)
from .extensions import (
    ExpressivityComparison,
    NonidealityStudy,
    PowerComparison,
    QuantizationStudy,
    SearchMethodAblation,
    expressivity_cell,
    nonideality_cell,
    power_cell,
    quantization_cell,
    run_expressivity_comparison,
    run_nonideality_study,
    run_power_comparison,
    run_quantization_study,
    run_search_method_ablation,
    search_method_cell,
)
from .fig4 import NOISE_STDS, RobustnessCurves, check_fig4_shape, run_fig4_part
from .fig5 import (
    BETA_VALUES,
    RHO0_VALUES,
    check_fig5a_shape,
    check_fig5b_shape,
    run_fig5a,
    run_fig5b,
)
from .report import (
    format_row,
    mesh_results_csv,
    mesh_results_markdown,
    print_table,
    robustness_csv,
    rows_to_csv,
    rows_to_markdown,
)
from .table1 import Table1Result, check_table1_shape, run_table1
from .table2 import Table2Result, check_table2_shape, run_table2
from .table3 import (
    PAPER_TABLE3,
    Table3Result,
    check_table3_shape,
    run_table3,
    search_transfer_topologies,
)

__all__ = [
    "ExpressivityComparison",
    "NonidealityStudy",
    "PowerComparison",
    "QuantizationStudy",
    "SearchMethodAblation",
    "run_expressivity_comparison",
    "run_nonideality_study",
    "run_power_comparison",
    "run_quantization_study",
    "run_search_method_ablation",
    "expressivity_cell",
    "nonideality_cell",
    "power_cell",
    "quantization_cell",
    "search_method_cell",
    "format_row",
    "mesh_results_csv",
    "mesh_results_markdown",
    "print_table",
    "robustness_csv",
    "rows_to_csv",
    "rows_to_markdown",
    "BETA_VALUES",
    "ExperimentScale",
    "MeshResult",
    "NOISE_STDS",
    "PAPER_TABLE3",
    "RHO0_VALUES",
    "RobustnessCurves",
    "TABLE1_WINDOWS",
    "TABLE2_WINDOWS",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "baseline_results",
    "check_fig4_shape",
    "check_fig5a_shape",
    "check_fig5b_shape",
    "check_table1_shape",
    "check_table2_shape",
    "check_table3_shape",
    "full_scale",
    "get_data",
    "run_alm_variant_ablation",
    "run_crossing_cost_sweep",
    "run_fig4_part",
    "run_fig5a",
    "run_fig5b",
    "run_normalization_ablation",
    "run_perm_init_ablation",
    "run_search",
    "run_table1",
    "run_table2",
    "run_table3",
    "search_transfer_topologies",
    "train_eval_mesh",
]
