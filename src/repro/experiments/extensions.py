"""Extension studies beyond the paper's tables and figures.

Each function here backs one bench in ``benchmarks/``:

* :func:`run_search_method_ablation` — differentiable ADEPT vs the
  black-box baselines (random, evolutionary) in the same space and
  footprint window.  Substantiates the paper's claim that the design
  space is too large for naive search.
* :func:`run_expressivity_comparison` — direct matrix-representability
  measurement (unitary-fitting error) of the three PTC families,
  replacing the accuracy proxy with the quantity it proxies.
* :func:`run_quantization_study` — post-training vs
  quantization-aware (STE) low-bit phase control, ROQ-style.
* :func:`run_nonideality_study` — depth vs robustness at the device
  level: insertion loss, coupler imbalance, and thermal crosstalk
  degrade deep meshes faster than shallow ones (the mechanism behind
  Fig. 4's MZI collapse).

Since the campaign redesign (see :mod:`repro.campaign` and
``docs/CAMPAIGNS.md``) each ``run_*`` entry point is a deprecated shim:
it builds the equivalent :class:`repro.campaign.CampaignSpec` (via
:mod:`repro.campaign.studies`) and routes every matrix cell through the
campaign engine.  The per-cell science lives in the ``*_cell``
functions below — pure functions of JSON-native params, shared by the
shims, the campaign configs in ``examples/campaigns/``, and the
service-sharded route.  The pre-redesign loops are kept verbatim as
``engine="reference"`` oracles; ``tests/campaign/test_campaign_parity.py`` pins
both paths byte-identical at fixed seeds.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.stats import unitary_group

from ..analysis.expressivity import build_factory, fit_unitary
from ..analysis.pareto import ParetoPoint, pareto_front
from ..core.baseline_search import (
    EvolutionarySearch,
    RandomSearch,
    is_feasible,
    make_expressivity_evaluator,
    random_feasible_topology,
)
from ..core.quantization import make_phase_quantizer, quantize_phase
from ..core.topology import PTCTopology
from ..photonics.nonideality import (
    NonidealitySpec,
    unitary_fidelity_under_noise,
)
from ..photonics.pdk import AMF, FoundryPDK, get_pdk
from ..utils.serialization import canonical_json_dumps
from .common import ExperimentScale, run_search

__all__ = [
    "ExpressivityComparison",
    "NonidealityStudy",
    "PowerComparison",
    "QuantizationStudy",
    "SearchMethodAblation",
    "expressivity_cell",
    "nonideality_cell",
    "power_cell",
    "quantization_cell",
    "run_expressivity_comparison",
    "run_nonideality_study",
    "run_power_comparison",
    "run_quantization_study",
    "run_search_method_ablation",
    "search_method_cell",
]


def _resolve_pdk(pdk: Union[str, FoundryPDK]) -> FoundryPDK:
    return get_pdk(pdk) if isinstance(pdk, str) else pdk


def _check_engine(engine: str) -> None:
    if engine not in ("campaign", "reference"):
        raise ValueError(
            f"engine must be 'campaign' or 'reference', got {engine!r}"
        )


def _warn_shim(legacy: str, builder: str) -> None:
    warnings.warn(
        f"{legacy} is a deprecated shim over the campaign engine; build "
        f"the spec with repro.campaign.studies.{builder} and run it via "
        "repro.campaign.run_campaign (see docs/CAMPAIGNS.md)",
        DeprecationWarning,
        stacklevel=3,
    )


# ----------------------------------------------------------------------
# search-method ablation
# ----------------------------------------------------------------------

@dataclass
class SearchMethodAblation:
    """Best design per search method, scored by expressivity."""

    window: Tuple[float, float]  # um^2
    methods: List[str] = field(default_factory=list)
    scores: List[float] = field(default_factory=list)
    footprints: List[float] = field(default_factory=list)  # um^2
    feasible: List[bool] = field(default_factory=list)
    topologies: List[PTCTopology] = field(default_factory=list)

    def score_of(self, method: str) -> float:
        return self.scores[self.methods.index(method)]


def search_method_cell(
    method: str,
    k: int = 8,
    pdk: Union[str, FoundryPDK] = AMF,
    window_kum2: Tuple[float, float] = (240.0, 300.0),
    budget: int = 12,
    scale: Union[None, dict, ExperimentScale] = None,
    seed: int = 0,
) -> dict:
    """One search method of the ablation — the campaign cell unit.

    Reproduces the corresponding candidate of the legacy loop exactly:
    every method seeds its own generators from ``seed``, so a single
    method rerun matches the joint run value-for-value.
    """
    pdk = _resolve_pdk(pdk)
    if isinstance(scale, dict):
        scale = ExperimentScale(**scale)
    scale = scale or ExperimentScale()
    f_min, f_max = window_kum2[0] * 1000.0, window_kum2[1] * 1000.0
    score_fn = make_expressivity_evaluator(steps=200, n_targets=2, seed=seed)

    if method == "adept":
        topo = run_search(k, pdk, window_kum2, scale, name="adept",
                          seed=seed).topology
    elif method == "random":
        topo = RandomSearch(
            k, pdk, f_min, f_max,
            evaluate=make_expressivity_evaluator(steps=80, seed=seed),
            seed=seed).run(n_samples=budget).topology
    elif method == "evolutionary":
        population = max(2, budget // 4)
        topo = EvolutionarySearch(
            k, pdk, f_min, f_max,
            evaluate=make_expressivity_evaluator(steps=80, seed=seed),
            population=population, seed=seed,
        ).run(generations=max(1, (budget - population) // population),
              children_per_gen=population).topology
    else:
        raise ValueError(
            f"unknown method {method!r}; "
            "expected adept | random | evolutionary"
        )
    return {
        "score": float(score_fn(topo)),
        "footprint_um2": float(topo.footprint(pdk).total),
        "feasible": bool(is_feasible(topo, pdk, f_min, f_max)),
        "topology": json.loads(topo.to_json()),
    }


def run_search_method_ablation(
    k: int = 8,
    pdk: FoundryPDK = AMF,
    window_kum2: Tuple[float, float] = (240.0, 300.0),
    budget: int = 12,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    engine: str = "campaign",
) -> SearchMethodAblation:
    """ADEPT vs random vs evolutionary at a matched evaluation budget.

    All methods search the same (coupler mask, CR permutation, block
    count) space inside the same footprint window; the final designs
    are scored with the same expressivity evaluator (1 - fit error to
    random unitaries).

    Deprecated shim: ``engine="campaign"`` (default) runs the
    ``search-ablation`` campaign; ``engine="reference"`` replays the
    pre-redesign loop (the parity oracle).
    """
    _check_engine(engine)
    if engine == "reference":
        return _run_search_method_ablation_reference(
            k, pdk, window_kum2, budget, scale, seed
        )
    _warn_shim("run_search_method_ablation", "search_ablation_spec")
    from ..campaign import run_campaign
    from ..campaign.studies import search_ablation_spec

    spec = search_ablation_spec(k=k, pdk=pdk, window_kum2=window_kum2,
                                budget=budget, scale=scale, seed=seed)
    run = run_campaign(spec)
    out = SearchMethodAblation(
        window=(window_kum2[0] * 1000.0, window_kum2[1] * 1000.0)
    )
    for cell, r in zip(run.cells, run.results):
        out.methods.append(cell.coords["method"])
        out.scores.append(r["score"])
        out.footprints.append(r["footprint_um2"])
        out.feasible.append(r["feasible"])
        out.topologies.append(
            PTCTopology.from_json(canonical_json_dumps(r["topology"]))
        )
    return out


def _run_search_method_ablation_reference(
    k: int,
    pdk: FoundryPDK,
    window_kum2: Tuple[float, float],
    budget: int,
    scale: Optional[ExperimentScale],
    seed: int,
) -> SearchMethodAblation:
    """The pre-redesign loop, kept verbatim as the parity oracle."""
    scale = scale or ExperimentScale()
    f_min, f_max = window_kum2[0] * 1000.0, window_kum2[1] * 1000.0
    score_fn = make_expressivity_evaluator(steps=200, n_targets=2, seed=seed)
    out = SearchMethodAblation(window=(f_min, f_max))

    adept = run_search(k, pdk, window_kum2, scale, name="adept", seed=seed)
    candidates = [("adept", adept.topology)]

    rnd = RandomSearch(k, pdk, f_min, f_max,
                       evaluate=make_expressivity_evaluator(steps=80, seed=seed),
                       seed=seed).run(n_samples=budget)
    candidates.append(("random", rnd.topology))

    population = max(2, budget // 4)
    evo = EvolutionarySearch(
        k, pdk, f_min, f_max,
        evaluate=make_expressivity_evaluator(steps=80, seed=seed),
        population=population, seed=seed,
    ).run(generations=max(1, (budget - population) // population),
          children_per_gen=population)
    candidates.append(("evolutionary", evo.topology))

    for name, topo in candidates:
        out.methods.append(name)
        out.scores.append(float(score_fn(topo)))
        out.footprints.append(topo.footprint(pdk).total)
        out.feasible.append(is_feasible(topo, pdk, f_min, f_max))
        out.topologies.append(topo)
    return out


# ----------------------------------------------------------------------
# expressivity comparison
# ----------------------------------------------------------------------

@dataclass
class ExpressivityComparison:
    """Unitary-fit error and footprint per PTC family at one size."""

    k: int
    names: List[str] = field(default_factory=list)
    errors: List[float] = field(default_factory=list)
    fidelities: List[float] = field(default_factory=list)
    footprints_kum2: List[float] = field(default_factory=list)

    def error_of(self, name: str) -> float:
        return self.errors[self.names.index(name)]

    def front(self) -> List[ParetoPoint]:
        points = [
            ParetoPoint(footprint=f, score=1.0 - e, label=n)
            for n, e, f in zip(self.names, self.errors, self.footprints_kum2)
        ]
        return pareto_front(points)


def expressivity_cell(
    design: str,
    k: int = 8,
    pdk: Union[str, FoundryPDK] = AMF,
    steps: int = 400,
    n_targets: int = 2,
    seed: int = 0,
) -> dict:
    """One design family of the comparison — the campaign cell unit.

    The adept-a1/adept-a5 cells redraw *both* searched topologies from
    the shared ``default_rng(seed)`` stream (shallow first, deep
    second), exactly as the legacy joint loop did, so each cell's
    topology matches the legacy run bit-for-bit.  Fits use fresh
    per-target generators and are independent across designs.
    """
    from ..photonics.footprint import butterfly_footprint, mzi_onn_footprint
    from .common import TABLE1_WINDOWS

    pdk = _resolve_pdk(pdk)
    if design == "mzi":
        kind, topo = "mzi", None
        fp = mzi_onn_footprint(pdk, k).total / 1e3
    elif design == "fft":
        kind, topo = "fft", None
        fp = butterfly_footprint(pdk, k).total / 1e3
    elif design in ("adept-a1", "adept-a5"):
        rng = np.random.default_rng(seed)
        windows = TABLE1_WINDOWS[k]
        shallow = random_feasible_topology(
            k, pdk, windows[0][0] * 1e3, windows[0][1] * 1e3, rng=rng,
            name="adept-a1")
        deep = random_feasible_topology(
            k, pdk, windows[-1][0] * 1e3, windows[-1][1] * 1e3, rng=rng,
            name="adept-a5")
        kind = "topology"
        topo = shallow if design == "adept-a1" else deep
        fp = topo.footprint(pdk).total / 1e3
    else:
        raise ValueError(
            f"unknown design {design!r}; "
            "expected mzi | fft | adept-a1 | adept-a5"
        )

    errs, fids = [], []
    for t in range(n_targets):
        factory = build_factory(kind, k, topology=topo,
                                rng=np.random.default_rng(seed + t))
        target = unitary_group.rvs(k, random_state=seed + 100 + t)
        res = fit_unitary(factory, target, steps=steps, lr=0.05,
                          rng=np.random.default_rng(seed + 200 + t))
        errs.append(res.error)
        fids.append(res.fidelity)
    return {
        "error": float(np.mean(errs)),
        "fidelity": float(np.mean(fids)),
        "footprint_kum2": float(fp),
    }


def run_expressivity_comparison(
    k: int = 8,
    pdk: FoundryPDK = AMF,
    steps: int = 400,
    n_targets: int = 2,
    seed: int = 0,
    engine: str = "campaign",
) -> ExpressivityComparison:
    """Fit error to Haar-random unitaries for MZI / FFT / searched-space
    topologies at two depths (windows a1 and a5 of Table 1).

    The expected ordering mirrors the paper's accuracy columns:
    MZI (universal) < deep ADEPT-space < shallow ADEPT-space ~ FFT,
    with footprints in the opposite order — the Pareto trade-off.

    Deprecated shim: ``engine="campaign"`` (default) runs the
    ``expressivity`` campaign; ``engine="reference"`` replays the
    pre-redesign loop (the parity oracle).
    """
    _check_engine(engine)
    if engine == "reference":
        return _run_expressivity_comparison_reference(
            k, pdk, steps, n_targets, seed
        )
    _warn_shim("run_expressivity_comparison", "expressivity_spec")
    from ..campaign import run_campaign
    from ..campaign.studies import expressivity_spec

    spec = expressivity_spec(k=k, pdk=pdk, steps=steps, n_targets=n_targets,
                             seed=seed)
    run = run_campaign(spec)
    out = ExpressivityComparison(k=k)
    for cell, r in zip(run.cells, run.results):
        out.names.append(cell.coords["design"])
        out.errors.append(r["error"])
        out.fidelities.append(r["fidelity"])
        out.footprints_kum2.append(r["footprint_kum2"])
    return out


def _run_expressivity_comparison_reference(
    k: int,
    pdk: FoundryPDK,
    steps: int,
    n_targets: int,
    seed: int,
) -> ExpressivityComparison:
    """The pre-redesign loop, kept verbatim as the parity oracle."""
    from ..photonics.footprint import butterfly_footprint, mzi_onn_footprint
    from .common import TABLE1_WINDOWS

    rng = np.random.default_rng(seed)
    windows = TABLE1_WINDOWS[k]
    shallow = random_feasible_topology(
        k, pdk, windows[0][0] * 1e3, windows[0][1] * 1e3, rng=rng, name="adept-a1")
    deep = random_feasible_topology(
        k, pdk, windows[-1][0] * 1e3, windows[-1][1] * 1e3, rng=rng, name="adept-a5")

    entries = [
        ("mzi", "mzi", None, mzi_onn_footprint(pdk, k).total / 1e3),
        ("fft", "fft", None, butterfly_footprint(pdk, k).total / 1e3),
        ("adept-a1", "topology", shallow, shallow.footprint(pdk).total / 1e3),
        ("adept-a5", "topology", deep, deep.footprint(pdk).total / 1e3),
    ]
    out = ExpressivityComparison(k=k)
    for name, kind, topo, fp in entries:
        errs, fids = [], []
        for t in range(n_targets):
            factory = build_factory(kind, k, topology=topo,
                                    rng=np.random.default_rng(seed + t))
            target = unitary_group.rvs(k, random_state=seed + 100 + t)
            res = fit_unitary(factory, target, steps=steps, lr=0.05,
                              rng=np.random.default_rng(seed + 200 + t))
            errs.append(res.error)
            fids.append(res.fidelity)
        out.names.append(name)
        out.errors.append(float(np.mean(errs)))
        out.fidelities.append(float(np.mean(fids)))
        out.footprints_kum2.append(float(fp))
    return out


# ----------------------------------------------------------------------
# quantization study
# ----------------------------------------------------------------------

@dataclass
class QuantizationStudy:
    """Fit error vs phase bit width, post-training vs STE-trained."""

    k: int
    bit_widths: List[int] = field(default_factory=list)
    full_precision_error: float = 0.0
    ptq_errors: List[float] = field(default_factory=list)  # post-training quant
    qat_errors: List[float] = field(default_factory=list)  # STE-trained


def quantization_cell(
    bits: int,
    k: int = 8,
    steps: int = 400,
    seed: int = 0,
) -> dict:
    """One bit width of the study — the campaign cell unit.

    The cell redoes the full-precision fit (seeded identically to the
    legacy run, so it lands on the same solution), then measures PTQ
    and QAT at this bit width alone.  The legacy loop's per-bit work
    was already independent — PTQ restores the trained phases after
    each width, QAT rebuilds a fresh factory per width — so a single
    width rerun matches the joint run value-for-value.
    """
    from ..autograd import Tensor
    from ..core.quantization import ste_quantize_phase
    from ..nn.module import Parameter
    from ..optim import Adam

    target = unitary_group.rvs(k, random_state=seed)
    target_norm = float(np.linalg.norm(target))

    def realized(factory, psi: np.ndarray) -> np.ndarray:
        u = factory.build().data[0]
        return np.exp(-1j * psi)[:, None] * u

    factory = build_factory("mzi", k, rng=np.random.default_rng(seed))
    full = fit_unitary(factory, target, steps=steps, lr=0.05,
                       rng=np.random.default_rng(seed + 1))

    # PTQ at this width (phases restored afterwards, as in the loop).
    saved = [p.data.copy() for p in factory.parameters()]
    for p in factory.parameters():
        p.data = quantize_phase(p.data, bits)
    psi_q = quantize_phase(full.output_phase, bits)
    u = realized(factory, psi_q)
    ptq_error = float(np.linalg.norm(u - target)) / target_norm
    for p, data in zip(factory.parameters(), saved):
        p.data = data

    # QAT at this width — identical to one iteration of the legacy
    # per-bit loop (fresh factory seeded from `seed`, phases copied
    # from the full-precision solution).
    trained = [p.data.copy() for p in factory.parameters()]
    t_target = Tensor(target.reshape(1, k, k))
    f = build_factory("mzi", k, rng=np.random.default_rng(seed))
    for p, data in zip(f.parameters(), trained):
        p.data = data.copy()
    f.phase_transform = make_phase_quantizer(bits)
    psi = Parameter(full.output_phase.copy())
    params = list(f.parameters()) + [psi]
    opt = Adam(params, lr=0.01)
    best = float("inf")
    best_state = [p.data.copy() for p in params]
    for _ in range(max(100, steps // 2)):
        opt.zero_grad()
        screen = (Tensor(np.array(-1j)) * ste_quantize_phase(psi, bits)).exp()
        u = screen.reshape((1, k, 1)) * f.build()
        loss = ((u - t_target) * (u - t_target).conj()).real().sum()
        err = float(loss.data)
        if err < best:
            best = err
            best_state = [p.data.copy() for p in params]
        loss.backward()
        opt.step()
    for p, data in zip(params, best_state):
        p.data = data
    u = realized(f, quantize_phase(psi.data, bits))
    qat_error = float(np.linalg.norm(u - target)) / target_norm

    return {
        "bits": int(bits),
        "full_precision_error": float(full.error),
        "ptq_error": ptq_error,
        "qat_error": qat_error,
    }


def run_quantization_study(
    k: int = 8,
    bit_widths: Sequence[int] = (6, 4, 3, 2),
    steps: int = 400,
    seed: int = 0,
    engine: str = "campaign",
) -> QuantizationStudy:
    """Low-bit phase control on the universal MZI mesh.

    *PTQ*: train at full precision, then snap phases to the b-bit
    grid.  *QAT*: train with the STE quantizer in the loop.  QAT must
    dominate PTQ at low bit widths (the ROQ result); both converge to
    the full-precision error as b grows.

    Deprecated shim: ``engine="campaign"`` (default) runs the
    ``quantization`` campaign (one cell per bit width);
    ``engine="reference"`` replays the pre-redesign loop (the parity
    oracle).
    """
    _check_engine(engine)
    if engine == "reference":
        return _run_quantization_study_reference(k, bit_widths, steps, seed)
    _warn_shim("run_quantization_study", "quantization_spec")
    from ..campaign import run_campaign
    from ..campaign.studies import quantization_spec

    spec = quantization_spec(k=k, bit_widths=bit_widths, steps=steps,
                             seed=seed)
    run = run_campaign(spec)
    out = QuantizationStudy(k=k, bit_widths=list(bit_widths))
    for cell, r in zip(run.cells, run.results):
        out.full_precision_error = r["full_precision_error"]
        out.ptq_errors.append(r["ptq_error"])
        out.qat_errors.append(r["qat_error"])
    return out


def _run_quantization_study_reference(
    k: int,
    bit_widths: Sequence[int],
    steps: int,
    seed: int,
) -> QuantizationStudy:
    """The pre-redesign loop, kept verbatim as the parity oracle."""
    target = unitary_group.rvs(k, random_state=seed)
    target_norm = float(np.linalg.norm(target))
    out = QuantizationStudy(k=k, bit_widths=list(bit_widths))

    def realized(factory, psi: np.ndarray) -> np.ndarray:
        u = factory.build().data[0]
        return np.exp(-1j * psi)[:, None] * u

    factory = build_factory("mzi", k, rng=np.random.default_rng(seed))
    full = fit_unitary(factory, target, steps=steps, lr=0.05,
                       rng=np.random.default_rng(seed + 1))
    out.full_precision_error = full.error

    # PTQ: snap every trained phase (mesh + output screen) to the
    # b-bit grid, re-measure the error.
    for bits in bit_widths:
        saved = [p.data.copy() for p in factory.parameters()]
        for p in factory.parameters():
            p.data = quantize_phase(p.data, bits)
        psi_q = quantize_phase(full.output_phase, bits)
        u = realized(factory, psi_q)
        out.ptq_errors.append(float(np.linalg.norm(u - target)) / target_norm)
        for p, data in zip(factory.parameters(), saved):
            p.data = data

    # QAT: finetune the full-precision solution with STE quantizers on
    # *every* phase — mesh and output screen — so the training
    # objective equals the deployed forward exactly (the ROQ recipe).
    from ..autograd import Tensor
    from ..core.quantization import ste_quantize_phase
    from ..nn.module import Parameter
    from ..optim import Adam

    trained = [p.data.copy() for p in factory.parameters()]
    t_target = Tensor(target.reshape(1, k, k))
    for bits in bit_widths:
        f = build_factory("mzi", k, rng=np.random.default_rng(seed))
        for p, data in zip(f.parameters(), trained):
            p.data = data.copy()
        f.phase_transform = make_phase_quantizer(bits)
        psi = Parameter(full.output_phase.copy())
        params = list(f.parameters()) + [psi]
        opt = Adam(params, lr=0.01)
        # STE descent on a piecewise-constant forward is not monotone:
        # keep the best quantized configuration seen.  The first
        # iterate *is* the PTQ solution, so QAT can only improve on it.
        best = float("inf")
        best_state = [p.data.copy() for p in params]
        for _ in range(max(100, steps // 2)):
            opt.zero_grad()
            screen = (Tensor(np.array(-1j)) * ste_quantize_phase(psi, bits)).exp()
            u = screen.reshape((1, k, 1)) * f.build()
            loss = ((u - t_target) * (u - t_target).conj()).real().sum()
            err = float(loss.data)
            if err < best:
                best = err
                best_state = [p.data.copy() for p in params]
            loss.backward()
            opt.step()
        for p, data in zip(params, best_state):
            p.data = data
        u = realized(f, quantize_phase(psi.data, bits))
        out.qat_errors.append(float(np.linalg.norm(u - target)) / target_norm)
    return out


# ----------------------------------------------------------------------
# power / latency comparison
# ----------------------------------------------------------------------

@dataclass
class PowerComparison:
    """Link-budget estimates per design family at one PTC size."""

    k: int
    names: List[str] = field(default_factory=list)
    total_power_mw: List[float] = field(default_factory=list)
    latency_ps: List[float] = field(default_factory=list)
    energy_per_mac_fj: List[float] = field(default_factory=list)
    worst_loss_db: List[float] = field(default_factory=list)

    def of(self, name: str) -> Tuple[float, float, float]:
        i = self.names.index(name)
        return (self.total_power_mw[i], self.latency_ps[i],
                self.energy_per_mac_fj[i])


def power_cell(
    design: str,
    k: int = 8,
    pdk: Union[str, FoundryPDK] = AMF,
    window_kum2: Tuple[float, float] = (240.0, 300.0),
    seed: int = 0,
) -> dict:
    """One design family of the comparison — the campaign cell unit."""
    from ..photonics.power import estimate_power
    from ..ptc.reference_topologies import butterfly_topology, mzi_topology

    pdk = _resolve_pdk(pdk)
    if design == "mzi":
        topo = mzi_topology(k)
    elif design == "fft":
        topo = butterfly_topology(k)
    elif design == "adept":
        topo = random_feasible_topology(
            k, pdk, window_kum2[0] * 1e3, window_kum2[1] * 1e3,
            rng=np.random.default_rng(seed), name="adept")
    else:
        raise ValueError(
            f"unknown design {design!r}; expected mzi | fft | adept"
        )
    report = estimate_power(topo, pdk)
    return {
        "total_power_mw": float(report.total_power_mw),
        "latency_ps": float(report.latency_ps),
        "energy_per_mac_fj": float(report.energy_per_mac_fj),
        "worst_loss_db": float(report.worst_path_loss_db),
    }


def run_power_comparison(
    k: int = 8,
    pdk: FoundryPDK = AMF,
    window_kum2: Tuple[float, float] = (240.0, 300.0),
    seed: int = 0,
    engine: str = "campaign",
) -> PowerComparison:
    """Electrical power, optical latency, and fJ/MAC for the MZI and
    butterfly baselines vs a footprint-constrained searched-space
    design.

    Depth is the dominant term everywhere: the MZI mesh carries ~4K
    blocks of heaters and the longest optical path, so it loses on all
    three axes — the physical argument behind ADEPT's compact designs.

    Deprecated shim: ``engine="campaign"`` (default) runs the ``power``
    campaign; ``engine="reference"`` replays the pre-redesign loop
    (the parity oracle).
    """
    _check_engine(engine)
    if engine == "reference":
        return _run_power_comparison_reference(k, pdk, window_kum2, seed)
    _warn_shim("run_power_comparison", "power_spec")
    from ..campaign import run_campaign
    from ..campaign.studies import power_spec

    spec = power_spec(k=k, pdk=pdk, window_kum2=window_kum2, seed=seed)
    run = run_campaign(spec)
    out = PowerComparison(k=k)
    for cell, r in zip(run.cells, run.results):
        out.names.append(cell.coords["design"])
        out.total_power_mw.append(r["total_power_mw"])
        out.latency_ps.append(r["latency_ps"])
        out.energy_per_mac_fj.append(r["energy_per_mac_fj"])
        out.worst_loss_db.append(r["worst_loss_db"])
    return out


def _run_power_comparison_reference(
    k: int,
    pdk: FoundryPDK,
    window_kum2: Tuple[float, float],
    seed: int,
) -> PowerComparison:
    """The pre-redesign loop, kept verbatim as the parity oracle."""
    from ..photonics.power import estimate_power
    from ..ptc.reference_topologies import butterfly_topology, mzi_topology

    designs = [
        ("mzi", mzi_topology(k)),
        ("fft", butterfly_topology(k)),
        ("adept", random_feasible_topology(
            k, pdk, window_kum2[0] * 1e3, window_kum2[1] * 1e3,
            rng=np.random.default_rng(seed), name="adept")),
    ]
    out = PowerComparison(k=k)
    for name, topo in designs:
        report = estimate_power(topo, pdk)
        out.names.append(name)
        out.total_power_mw.append(report.total_power_mw)
        out.latency_ps.append(report.latency_ps)
        out.energy_per_mac_fj.append(report.energy_per_mac_fj)
        out.worst_loss_db.append(report.worst_path_loss_db)
    return out


# ----------------------------------------------------------------------
# nonideality study
# ----------------------------------------------------------------------

@dataclass
class NonidealityStudy:
    """Unitary fidelity under passive nonidealities, shallow vs deep."""

    k: int
    specs: List[str] = field(default_factory=list)
    shallow_fidelity: List[float] = field(default_factory=list)
    deep_fidelity: List[float] = field(default_factory=list)
    shallow_blocks: int = 0
    deep_blocks: int = 0


def _nonideality_specs() -> Dict[str, NonidealitySpec]:
    """The five named device-nonideality settings of the study."""
    return {
        "phase-noise": NonidealitySpec(phase_noise_std=0.05),
        "insertion-loss": NonidealitySpec(loss_ps_db=0.1, loss_dc_db=0.1,
                                          loss_cr_db=0.1),
        "dc-imbalance": NonidealitySpec(dc_t_std=0.03),
        "crosstalk": NonidealitySpec(crosstalk_gamma=0.15),
        "combined": NonidealitySpec(phase_noise_std=0.05, loss_ps_db=0.1,
                                    loss_dc_db=0.1, loss_cr_db=0.1,
                                    dc_t_std=0.03, crosstalk_gamma=0.15),
    }


def nonideality_cell(
    nonideality: str,
    k: int = 8,
    shallow_blocks: int = 3,
    deep_blocks: int = 16,
    n_trials: int = 8,
    seed: int = 0,
) -> dict:
    """One nonideality of the study — the campaign cell unit.

    Both meshes are redrawn from the shared ``default_rng(seed)``
    stream (shallow first, deep second) exactly as the legacy loop
    built them; each fidelity estimate reseeds from ``seed + 1``, so
    per-spec cells match the joint run value-for-value.
    """
    from ..core.topology import random_topology

    rng = np.random.default_rng(seed)
    shallow = random_topology(k, shallow_blocks, shallow_blocks, rng,
                              coupler_density=1.0, permute_prob=0.5)
    deep = random_topology(k, deep_blocks, deep_blocks, rng,
                           coupler_density=1.0, permute_prob=0.5)
    specs = _nonideality_specs()
    if nonideality not in specs:
        raise ValueError(
            f"unknown nonideality {nonideality!r}; "
            f"expected one of {sorted(specs)}"
        )
    spec = specs[nonideality]
    s_mean, _ = unitary_fidelity_under_noise(
        shallow, spec, n_trials=n_trials, rng=np.random.default_rng(seed + 1))
    d_mean, _ = unitary_fidelity_under_noise(
        deep, spec, n_trials=n_trials, rng=np.random.default_rng(seed + 1))
    return {
        "shallow_fidelity": float(s_mean),
        "deep_fidelity": float(d_mean),
    }


def run_nonideality_study(
    k: int = 8,
    shallow_blocks: int = 3,
    deep_blocks: int = 16,
    n_trials: int = 8,
    seed: int = 0,
    engine: str = "campaign",
) -> NonidealityStudy:
    """Fidelity of shallow vs deep meshes under each nonideality.

    Deep meshes accumulate more loss, more coupler-imbalance error,
    and more crosstalk exposure per inference — the device-level
    mechanism behind the MZI-ONN accuracy collapse in Fig. 4.

    Deprecated shim: ``engine="campaign"`` (default) runs the
    ``nonideality`` campaign; ``engine="reference"`` replays the
    pre-redesign loop (the parity oracle).
    """
    _check_engine(engine)
    if engine == "reference":
        return _run_nonideality_study_reference(
            k, shallow_blocks, deep_blocks, n_trials, seed
        )
    _warn_shim("run_nonideality_study", "nonideality_spec")
    from ..campaign import run_campaign
    from ..campaign.studies import nonideality_spec

    spec = nonideality_spec(k=k, shallow_blocks=shallow_blocks,
                            deep_blocks=deep_blocks, n_trials=n_trials,
                            seed=seed)
    run = run_campaign(spec)
    out = NonidealityStudy(k=k, shallow_blocks=shallow_blocks,
                           deep_blocks=deep_blocks)
    for cell, r in zip(run.cells, run.results):
        out.specs.append(cell.coords["nonideality"])
        out.shallow_fidelity.append(r["shallow_fidelity"])
        out.deep_fidelity.append(r["deep_fidelity"])
    return out


def _run_nonideality_study_reference(
    k: int,
    shallow_blocks: int,
    deep_blocks: int,
    n_trials: int,
    seed: int,
) -> NonidealityStudy:
    """The pre-redesign loop, kept verbatim as the parity oracle."""
    from ..core.topology import random_topology

    rng = np.random.default_rng(seed)
    shallow = random_topology(k, shallow_blocks, shallow_blocks, rng,
                              coupler_density=1.0, permute_prob=0.5)
    deep = random_topology(k, deep_blocks, deep_blocks, rng,
                           coupler_density=1.0, permute_prob=0.5)
    specs = _nonideality_specs()
    out = NonidealityStudy(k=k, shallow_blocks=shallow_blocks,
                           deep_blocks=deep_blocks)
    for name, spec in specs.items():
        s_mean, _ = unitary_fidelity_under_noise(
            shallow, spec, n_trials=n_trials, rng=np.random.default_rng(seed + 1))
        d_mean, _ = unitary_fidelity_under_noise(
            deep, spec, n_trials=n_trials, rng=np.random.default_rng(seed + 1))
        out.specs.append(name)
        out.shallow_fidelity.append(s_mean)
        out.deep_fidelity.append(d_mean)
    return out
