"""Shared infrastructure for the paper-reproduction experiments.

Every table and figure of the paper has a module in this package that
regenerates it.  All experiments run at two scales:

* **fast** (default) — miniature training budgets sized for CPU-only
  continuous integration; footprint arithmetic is exact at any scale,
  accuracy numbers are lower than the paper's but orderings hold.
* **full** (``REPRO_FULL=1``) — larger budgets approaching the paper's
  settings (still CPU-feasible overnight).

The paper's footprint windows (Tables 1-2, in 1000 um^2, with
F_min = 0.8 * F_max on AMF) are encoded verbatim.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import ADEPTConfig, ADEPTSearch, PTCTopology, variation_aware_train
from ..data import Dataset, train_test_split
from ..onn import TrainConfig, build_model, evaluate
from ..photonics import (
    AIM,
    AMF,
    FootprintBreakdown,
    FoundryPDK,
    butterfly_footprint,
    mzi_onn_footprint,
)
from ..utils.rng import spawn_rng

#: Table 1 footprint windows per PTC size (1000 um^2), AMF PDK.
TABLE1_WINDOWS: Dict[int, List[Tuple[float, float]]] = {
    8: [(240, 300), (336, 420), (432, 540), (528, 660), (624, 780)],
    16: [(480, 600), (672, 840), (864, 1080), (1056, 1320), (1248, 1560)],
    32: [(960, 1200), (1344, 1680), (1728, 2160), (2112, 2640), (2496, 3120)],
}

#: Table 2 footprint windows (16x16, AIM PDK), ADEPT-a0 .. ADEPT-a5.
TABLE2_WINDOWS: List[Tuple[float, float]] = [
    (384, 480), (480, 600), (672, 840), (864, 1080), (1056, 1320), (1248, 1560),
]

#: Paper-reported reference numbers, used in printed comparisons.
PAPER_TABLE1_ACCURACY = {
    8: {"mzi": 98.63, "fft": 98.43,
        "adept": [98.26, 98.49, 98.56, 98.48, 98.69]},
    16: {"mzi": 98.65, "fft": 98.25,
         "adept": [98.16, 98.40, 98.24, 98.56, 98.57]},
    32: {"mzi": 98.68, "fft": 97.97,
         "adept": [98.10, 98.18, 98.36, 98.49, 98.39]},
}


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


@dataclass
class ExperimentScale:
    """Training-budget knobs shared by all experiments."""

    n_train: int = 384
    n_test: int = 192
    search_epochs: int = 8
    search_warmup: int = 2
    search_spl_epoch: int = 5
    retrain_epochs: int = 6
    batch_size: int = 48
    search_lr: float = 5e-3  # compressed budgets need a hotter LR
    proxy_channels: int = 6
    model_width: float = 0.25
    noise_runs: int = 5
    seed: int = 0

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        if full_scale():
            return cls(
                n_train=2048,
                n_test=512,
                search_epochs=30,
                search_warmup=5,
                search_spl_epoch=18,
                retrain_epochs=20,
                batch_size=64,
                search_lr=2e-3,
                proxy_channels=16,
                model_width=0.5,
                noise_runs=20,
            )
        return cls()


@dataclass
class MeshResult:
    """One row cell: a mesh design evaluated on the proxy task."""

    name: str
    footprint: FootprintBreakdown
    accuracy: float
    window: Optional[Tuple[float, float]] = None  # 1000 um^2
    topology: Optional[PTCTopology] = None


_DATA_CACHE: Dict[tuple, Tuple[Dataset, Dataset]] = {}


def get_data(name: str, scale: ExperimentScale) -> Tuple[Dataset, Dataset]:
    """Dataset pair cached across experiments in one process."""
    key = (name, scale.n_train, scale.n_test, scale.seed)
    if key not in _DATA_CACHE:
        _DATA_CACHE[key] = train_test_split(
            name, scale.n_train, scale.n_test, seed=scale.seed
        )
    return _DATA_CACHE[key]


def train_eval_mesh(
    mesh,
    k: int,
    scale: ExperimentScale,
    dataset: str = "mnist",
    model_name: str = "cnn2",
    noise_std: float = 0.0,
    seed: Optional[int] = None,
):
    """Train a model with the given mesh on a dataset; return
    (accuracy_percent, model)."""
    train_set, test_set = get_data(dataset, scale)
    rng = spawn_rng(seed if seed is not None else scale.seed)
    model = build_model(
        model_name,
        mesh,
        k=k,
        in_channels=train_set.images.shape[1],
        image_size=train_set.images.shape[2],
        width_mult=scale.model_width,
        rng=rng,
    )
    cfg = TrainConfig(
        epochs=scale.retrain_epochs, batch_size=scale.batch_size, lr=2e-3
    )
    if noise_std > 0:
        variation_aware_train(model, train_set, test_set, noise_std=noise_std,
                              config=cfg, rng=rng)
    else:
        from ..onn import train as _train

        _train(model, train_set, test_set, config=cfg, rng=rng)
    return 100.0 * evaluate(model, test_set), model


def run_search(
    k: int,
    pdk: FoundryPDK,
    window_kum2: Tuple[float, float],
    scale: ExperimentScale,
    name: str = "adept",
    seed: Optional[int] = None,
):
    """One ADEPT search for a footprint window given in 1000 um^2."""
    f_min, f_max = window_kum2[0] * 1000.0, window_kum2[1] * 1000.0
    cfg = ADEPTConfig(
        k=k,
        pdk=pdk,
        f_min=f_min,
        f_max=f_max,
        epochs=scale.search_epochs,
        warmup_epochs=scale.search_warmup,
        spl_epoch=scale.search_spl_epoch,
        lr=scale.search_lr,
        batch_size=scale.batch_size,
        n_train=scale.n_train,
        n_test=scale.n_test,
        proxy_channels=scale.proxy_channels,
        seed=seed if seed is not None else scale.seed,
    )
    tr, te = get_data("mnist", scale)
    result = ADEPTSearch(cfg, tr, te).run()
    result.topology.name = name
    return result


def baseline_results(
    k: int, pdk: FoundryPDK, scale: ExperimentScale, with_accuracy: bool = True
) -> List[MeshResult]:
    """MZI-ONN and FFT-ONN rows (footprints analytic, exact)."""
    rows = []
    for name, fb, mesh in (
        ("MZI-ONN", mzi_onn_footprint(pdk, k), "mzi"),
        ("FFT-ONN", butterfly_footprint(pdk, k), "butterfly"),
    ):
        acc = (
            train_eval_mesh(mesh, k, scale)[0] if with_accuracy else float("nan")
        )
        rows.append(MeshResult(name=name, footprint=fb, accuracy=acc))
    return rows


def format_row(r: MeshResult) -> str:
    """Back-compat alias — the writer moved to :mod:`.report`."""
    from .report import format_row as _format_row

    return _format_row(r)


def print_table(title: str, rows: Sequence[MeshResult]) -> None:
    """Back-compat alias — the writer moved to :mod:`.report`."""
    from .report import print_table as _print_table

    _print_table(title, rows)
