"""Markdown / CSV report generation from experiment results.

The benches print human-readable tables; downstream tooling (paper
drafts, dashboards, regression tracking) wants structured artifacts.
This module renders the experiment result dataclasses to GitHub
markdown and CSV without any formatting logic leaking into the
experiment code.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Sequence

from .common import MeshResult

__all__ = ["mesh_results_csv", "mesh_results_markdown", "robustness_csv"]


def _window_str(r: MeshResult) -> str:
    if r.window is None:
        return "-"
    return f"[{r.window[0]:.0f}, {r.window[1]:.0f}]"


def mesh_results_markdown(rows: Sequence[MeshResult], title: str = "") -> str:
    """GitHub-markdown table of one Table-1/2 style result set."""
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| design | #CR | #DC | #Blk | window (k µm²) "
                  "| footprint (k µm²) | accuracy (%) |")
    lines.append("|---|---:|---:|---:|---|---:|---:|")
    for r in rows:
        fb = r.footprint
        lines.append(
            f"| {r.name} | {fb.n_cr} | {fb.n_dc} | {fb.n_blocks} "
            f"| {_window_str(r)} | {fb.in_paper_units():.1f} "
            f"| {r.accuracy:.2f} |"
        )
    return "\n".join(lines)


def mesh_results_csv(rows: Sequence[MeshResult]) -> str:
    """CSV (header + one line per design) of a result set."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["design", "n_cr", "n_dc", "n_blocks", "window_lo_kum2",
                     "window_hi_kum2", "footprint_kum2", "accuracy_percent"])
    for r in rows:
        fb = r.footprint
        lo, hi = r.window if r.window is not None else ("", "")
        writer.writerow([r.name, fb.n_cr, fb.n_dc, fb.n_blocks, lo, hi,
                         f"{fb.in_paper_units():.3f}", f"{r.accuracy:.3f}"])
    return buf.getvalue()


def robustness_csv(curves: Dict[str, List[tuple]]) -> str:
    """CSV of Fig. 4-style noise curves: design, sigma, mean, std."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["design", "noise_std", "accuracy_mean", "accuracy_std"])
    for name, points in curves.items():
        for sigma, mean, std in points:
            writer.writerow([name, sigma, f"{mean:.4f}", f"{std:.4f}"])
    return buf.getvalue()
