"""Markdown / CSV report generation from experiment results.

The benches print human-readable tables; downstream tooling (paper
drafts, dashboards, regression tracking) wants structured artifacts.
This module renders the experiment result dataclasses to GitHub
markdown and CSV without any formatting logic leaking into the
experiment code.

Since the campaign redesign this is the *one* artifact-writer module:
:func:`rows_to_csv` and :func:`rows_to_markdown` are the generic
tabular writers (the campaign engine's report layer renders through
them), the ``mesh_results_*`` / :func:`robustness_csv` emitters are
thin presets over them with their historical bytes pinned by
``tests/experiments/test_report.py``, and the console-table helpers
:func:`format_row` / :func:`print_table` (formerly in ``common.py``)
live here too.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Mapping, Optional, Sequence

from .common import MeshResult

__all__ = [
    "format_row",
    "mesh_results_csv",
    "mesh_results_markdown",
    "print_table",
    "robustness_csv",
    "rows_to_csv",
    "rows_to_markdown",
]


# ----------------------------------------------------------------------
# generic tabular writers
# ----------------------------------------------------------------------

def rows_to_csv(columns: Sequence[str], rows: Sequence[Mapping]) -> str:
    """CSV (header + one line per row dict) of a flat table.

    Values are written as-is (``csv`` stringifies them), so callers
    control number formatting by pre-formatting the dict values.
    """
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(columns))
    for row in rows:
        writer.writerow([row[c] for c in columns])
    return buf.getvalue()


def rows_to_markdown(
    columns: Sequence[str],
    rows: Sequence[Mapping],
    title: str = "",
    aligns: Optional[Sequence[str]] = None,
) -> str:
    """GitHub-markdown table of a flat table of row dicts.

    ``aligns`` is the separator-row cell list (``"---"`` left,
    ``"---:"`` right); it defaults to all-left.
    """
    if aligns is None:
        aligns = ["---"] * len(columns)
    if len(aligns) != len(columns):
        raise ValueError(
            f"{len(aligns)} aligns for {len(columns)} columns"
        )
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(str(c) for c in columns) + " |")
    lines.append("|" + "|".join(aligns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(row[c]) for c in columns) + " |")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# mesh-result presets (bytes pinned by tests/experiments/test_report.py)
# ----------------------------------------------------------------------

_MESH_MD_COLUMNS = ("design", "#CR", "#DC", "#Blk", "window (k µm²)",
                    "footprint (k µm²)", "accuracy (%)")
_MESH_MD_ALIGNS = ("---", "---:", "---:", "---:", "---", "---:", "---:")
_MESH_CSV_COLUMNS = ("design", "n_cr", "n_dc", "n_blocks", "window_lo_kum2",
                     "window_hi_kum2", "footprint_kum2", "accuracy_percent")


def _window_str(r: MeshResult) -> str:
    if r.window is None:
        return "-"
    return f"[{r.window[0]:.0f}, {r.window[1]:.0f}]"


def mesh_results_markdown(rows: Sequence[MeshResult], title: str = "") -> str:
    """GitHub-markdown table of one Table-1/2 style result set."""
    table = []
    for r in rows:
        fb = r.footprint
        table.append({
            "design": r.name,
            "#CR": fb.n_cr,
            "#DC": fb.n_dc,
            "#Blk": fb.n_blocks,
            "window (k µm²)": _window_str(r),
            "footprint (k µm²)": f"{fb.in_paper_units():.1f}",
            "accuracy (%)": f"{r.accuracy:.2f}",
        })
    return rows_to_markdown(_MESH_MD_COLUMNS, table, title=title,
                            aligns=_MESH_MD_ALIGNS)


def mesh_results_csv(rows: Sequence[MeshResult]) -> str:
    """CSV (header + one line per design) of a result set."""
    table = []
    for r in rows:
        fb = r.footprint
        lo, hi = r.window if r.window is not None else ("", "")
        table.append({
            "design": r.name,
            "n_cr": fb.n_cr,
            "n_dc": fb.n_dc,
            "n_blocks": fb.n_blocks,
            "window_lo_kum2": lo,
            "window_hi_kum2": hi,
            "footprint_kum2": f"{fb.in_paper_units():.3f}",
            "accuracy_percent": f"{r.accuracy:.3f}",
        })
    return rows_to_csv(_MESH_CSV_COLUMNS, table)


def robustness_csv(curves: Dict[str, List[tuple]]) -> str:
    """CSV of Fig. 4-style noise curves: design, sigma, mean, std."""
    table = []
    for name, points in curves.items():
        for sigma, mean, std in points:
            table.append({
                "design": name,
                "noise_std": sigma,
                "accuracy_mean": f"{mean:.4f}",
                "accuracy_std": f"{std:.4f}",
            })
    return rows_to_csv(("design", "noise_std", "accuracy_mean",
                        "accuracy_std"), table)


# ----------------------------------------------------------------------
# console tables (moved here from common.py)
# ----------------------------------------------------------------------

def format_row(r: MeshResult) -> str:
    fb = r.footprint
    window = (
        f"[{r.window[0]:.0f}, {r.window[1]:.0f}]" if r.window else "-"
    )
    return (
        f"{r.name:<12} CR/DC/Blk={fb.n_cr}/{fb.n_dc}/{fb.n_blocks:<3} "
        f"window={window:<14} F={fb.in_paper_units():7.1f}k "
        f"acc={r.accuracy:6.2f}%"
    )


def print_table(title: str, rows: Sequence[MeshResult]) -> None:
    print(f"\n=== {title} ===")
    for r in rows:
        print("  " + format_row(r))
