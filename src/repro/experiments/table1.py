"""Table 1: searched PTCs vs manual baselines on AMF PDKs.

For each PTC size in {8, 16, 32} the paper searches five designs
(ADEPT-a1..a5) under footprint windows [0.8*F_max, F_max] and compares
#CR/#DC/#Blk, footprint, and MNIST accuracy (2-layer CNN) against
MZI-ONN and FFT-ONN.

Exact-reproduction targets: the baseline footprint columns must match
the paper to rounding; every searched footprint must land inside its
window.  Shape targets: ADEPT accuracy competitive with MZI at >=2x
smaller footprint; larger windows -> more blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..photonics import AMF
from .common import (
    ExperimentScale,
    MeshResult,
    TABLE1_WINDOWS,
    baseline_results,
    run_search,
    train_eval_mesh,
)
from .report import print_table


@dataclass
class Table1Result:
    size: int
    rows: List[MeshResult] = field(default_factory=list)

    @property
    def baselines(self) -> List[MeshResult]:
        return [r for r in self.rows if r.window is None]

    @property
    def searched(self) -> List[MeshResult]:
        return [r for r in self.rows if r.window is not None]


def run_table1(
    sizes: Sequence[int] = (8, 16, 32),
    n_targets: int = 5,
    scale: Optional[ExperimentScale] = None,
    with_accuracy: bool = True,
) -> Dict[int, Table1Result]:
    """Regenerate Table 1 (optionally a subset of sizes/targets)."""
    scale = scale or ExperimentScale.from_env()
    out: Dict[int, Table1Result] = {}
    for k in sizes:
        result = Table1Result(size=k)
        result.rows.extend(baseline_results(k, AMF, scale, with_accuracy))
        for i, window in enumerate(TABLE1_WINDOWS[k][:n_targets], start=1):
            search = run_search(
                k, AMF, window, scale, name=f"ADEPT-a{i}", seed=scale.seed + i
            )
            topo = search.topology
            acc = (
                train_eval_mesh(topo, k, scale, seed=scale.seed + i)[0]
                if with_accuracy
                else float("nan")
            )
            result.rows.append(
                MeshResult(
                    name=f"ADEPT-a{i}",
                    footprint=topo.footprint(AMF),
                    accuracy=acc,
                    window=window,
                    topology=topo,
                )
            )
        print_table(f"Table 1 - {k}x{k} PTCs on AMF", result.rows)
        out[k] = result
    return out


def check_table1_shape(results: Dict[int, Table1Result]) -> List[str]:
    """Verify the paper's comparative claims; returns violation strings
    (empty list = all shape targets hold)."""
    problems: List[str] = []
    for k, res in results.items():
        mzi = next(r for r in res.baselines if r.name == "MZI-ONN")
        for r in res.searched:
            f = r.footprint.in_paper_units()
            lo, hi = r.window
            if not (lo <= f <= hi):
                problems.append(
                    f"{k}x{k} {r.name}: footprint {f:.1f}k outside [{lo}, {hi}]"
                )
            if mzi.footprint.total < r.footprint.total * 2:
                problems.append(
                    f"{k}x{k} {r.name}: less than 2x smaller than MZI-ONN"
                )
        blocks = [r.footprint.n_blocks for r in res.searched]
        if sorted(blocks) != blocks:
            problems.append(f"{k}x{k}: block count not monotone in budget {blocks}")
    return problems
