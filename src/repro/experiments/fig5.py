"""Figure 5 ablations: permutation-ALM rho scan and footprint-penalty
beta scan.

(a) Scan the initial ALM coefficient rho0 from 1e-8 to 5e-6 and track
    the mean multiplier lambda and the permutation error Delta_P over
    optimization steps.  Claim: the method is insensitive to rho0 — the
    error converges toward zero for every setting under the adaptive
    schedule rho <- rho * gamma^t.

(b) Scan the footprint-penalty weight beta from 0.001 to 10 and track
    the expected footprint E[F].  Claim: only a sufficiently large beta
    (~10) keeps E[F] inside the constraint window; tiny beta leaves the
    constraint violated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor
from ..core import (
    FootprintPenaltyConfig,
    PermutationLearner,
    SuperMeshSpace,
    footprint_penalty,
)
from ..nn import CrossEntropyLoss
from ..optim import Adam
from ..photonics import AMF
from ..utils.rng import spawn_rng

RHO0_VALUES = (1e-8, 5e-8, 1e-7, 5e-7, 1e-6, 5e-6)
BETA_VALUES = (0.001, 0.01, 0.1, 1.0, 10.0)


@dataclass
class ALMTrace:
    rho0: float
    perm_error: List[float] = field(default_factory=list)
    mean_lambda: List[float] = field(default_factory=list)


def alm_scan_point(
    rho0: float,
    k: int = 8,
    n_blocks: int = 6,
    steps: int = 600,
    seed: int = 0,
) -> ALMTrace:
    """One rho0 setting of the Fig. 5(a) scan — the shard unit shared
    by the in-process loop and the design service's ``fig5a`` job."""
    rng = spawn_rng(seed)
    learner = PermutationLearner(k, n_blocks, rho0=rho0, total_steps=steps)
    x = Tensor(rng.normal(size=(16, k)))
    target = Tensor(rng.normal(size=(16, k)))
    opt = Adam([learner.raw], lr=0.02)
    trace = ALMTrace(rho0=rho0)
    for _ in range(steps):
        p = learner.relaxed()
        pred = x @ p[0].T
        task = ((pred - target) ** 2).mean()
        loss = task + learner.alm_loss(p)
        learner.raw.grad = None
        loss.backward()
        opt.step()
        learner.update_multipliers()
        learner.step_rho()
        trace.perm_error.append(learner.permutation_error())
        trace.mean_lambda.append(learner.mean_lambda())
    return trace


def run_fig5a(
    k: int = 8,
    n_blocks: int = 6,
    steps: int = 600,
    rho0_values: Sequence[float] = RHO0_VALUES,
    seed: int = 0,
    n_workers: int = 0,
) -> Dict[float, ALMTrace]:
    """ALM rho0 scan on a task-coupled permutation-learning problem.

    A small regression objective stands in for the task loss, so the
    permutations must trade task fit against legality — the same
    tension as in the full search.

    Since the campaign redesign this entry point is a thin shim over
    the ``alm-scan`` campaign (one cell per rho0; see
    :mod:`repro.campaign.studies`).  ``n_workers > 0`` shards the cells
    through the design service's persistent queue on a local
    multiprocess pool (identical traces).
    """
    from ..campaign.studies import fig5a_spec

    spec = fig5a_spec(k=k, n_blocks=n_blocks, steps=steps,
                      rho0_values=rho0_values, seed=seed)
    out: Dict[float, ALMTrace] = {}
    print("\n=== Fig. 5(a) - permutation ALM rho0 scan ===")
    run = _run_scan_campaign(spec, "fig5a", n_workers)
    for cell, r in zip(run.cells, run.results):
        rho0 = cell.coords["rho0"]
        out[rho0] = ALMTrace(
            rho0=rho0,
            perm_error=list(r["perm_error"]),
            mean_lambda=list(r["mean_lambda"]),
        )
    for rho0, trace in out.items():
        print(
            f"  rho0={rho0:7.0e}  Delta_P: {trace.perm_error[0]:.3f} -> "
            f"{trace.perm_error[-1]:.4f}   lambda_final={trace.mean_lambda[-1]:.2e}"
        )
    return out


def _run_scan_campaign(spec, label: str, n_workers: int):
    """Run a Fig. 5 scan campaign inline or service-sharded."""
    from ..campaign import run_campaign

    if n_workers > 0:
        import tempfile

        with tempfile.TemporaryDirectory(prefix=f"repro-{label}-") as root:
            return run_campaign(spec, n_workers=n_workers, root=root)
    return run_campaign(spec)


def check_fig5a_shape(traces: Dict[float, ALMTrace]) -> List[str]:
    problems = []
    for rho0, tr in traces.items():
        if tr.perm_error[-1] > tr.perm_error[0] * 0.5:
            problems.append(
                f"rho0={rho0:.0e}: error only {tr.perm_error[0]:.3f} -> "
                f"{tr.perm_error[-1]:.3f}"
            )
        if tr.mean_lambda[-1] <= 0:
            problems.append(f"rho0={rho0:.0e}: multipliers never grew")
    return problems


@dataclass
class PenaltyTrace:
    beta: float
    expected_footprint: List[float] = field(default_factory=list)
    penalty_over_beta: List[float] = field(default_factory=list)
    window: Tuple[float, float] = (0.0, 0.0)

    @property
    def final_in_window(self) -> bool:
        lo, hi = self.window
        return lo <= self.expected_footprint[-1] <= hi


def penalty_scan_point(
    beta: float,
    k: int = 8,
    window_kum2: Tuple[float, float] = (240.0, 300.0),
    steps: int = 150,
    seed: int = 0,
) -> PenaltyTrace:
    """One beta setting of the Fig. 5(b) scan — the shard unit shared
    by the in-process loop and the design service's ``fig5b`` job."""
    from ..core import SuperMeshLinear

    f_min, f_max = window_kum2[0] * 1000, window_kum2[1] * 1000
    rng = spawn_rng(seed)
    space = SuperMeshSpace(k=k, pdk=AMF, f_min=f_min, f_max=f_max, rng=rng)
    lin = SuperMeshLinear(space, 2 * k, 2 * k, rng=rng)
    # Regression to a random dense target: every extra active block
    # adds free phases, so the task loss genuinely prefers a large
    # expected footprint — the force the penalty must counteract.
    x = Tensor(rng.normal(size=(64, 2 * k)))
    w_star = rng.normal(size=(2 * k, 2 * k)) * 0.3
    y = Tensor(x.data @ w_star.T)
    # Execute-biased start (training converges there): E[F] begins
    # above the window, as in Fig. 5(b)'s red curves.
    space.theta.data[:] = np.array([[-2.0, 2.0]] * space.theta.shape[0])
    opt = Adam([space.theta], lr=5e-2)
    w_opt = Adam(lin.parameters(), lr=1e-2)
    cfg = FootprintPenaltyConfig(beta=beta)
    trace = PenaltyTrace(beta=beta, window=(f_min, f_max))
    for _ in range(steps):
        space.sample(tau=1.0, rng=rng)
        diff = lin(x) - y
        task = (diff * diff).mean()
        pen, e_exact = footprint_penalty(space, cfg)
        loss = task + pen
        space.theta.grad = None
        for p in lin.parameters():
            p.grad = None
        loss.backward()
        opt.step()
        w_opt.step()
        trace.expected_footprint.append(e_exact)
        trace.penalty_over_beta.append(
            float(pen.item()) / beta if beta else 0.0
        )
    return trace


def run_fig5b(
    k: int = 8,
    window_kum2: Tuple[float, float] = (240.0, 300.0),
    steps: int = 150,
    beta_values: Sequence[float] = BETA_VALUES,
    seed: int = 0,
    n_workers: int = 0,
) -> Dict[float, PenaltyTrace]:
    """Footprint-penalty beta scan (ADEPT-a1 window by default).

    Architecture logits are trained on task loss + penalty; with small
    beta the task term dominates and the expected footprint drifts out
    of the window.

    Since the campaign redesign this entry point is a thin shim over
    the ``penalty-scan`` campaign (one cell per beta; see
    :mod:`repro.campaign.studies`).  ``n_workers > 0`` shards the cells
    through the design service's persistent queue on a local
    multiprocess pool (identical traces).
    """
    from ..campaign.studies import fig5b_spec

    spec = fig5b_spec(k=k, window_kum2=window_kum2, steps=steps,
                      beta_values=beta_values, seed=seed)
    out: Dict[float, PenaltyTrace] = {}
    print("\n=== Fig. 5(b) - footprint penalty beta scan ===")
    run = _run_scan_campaign(spec, "fig5b", n_workers)
    for cell, r in zip(run.cells, run.results):
        beta = cell.coords["beta"]
        out[beta] = PenaltyTrace(
            beta=beta,
            expected_footprint=list(r["expected_footprint"]),
            penalty_over_beta=list(r["penalty_over_beta"]),
            window=tuple(r["window"]),
        )
    for beta, trace in out.items():
        status = "in window" if trace.final_in_window else "VIOLATED"
        print(
            f"  beta={beta:6.3f}  E[F]: {trace.expected_footprint[0] / 1000:6.1f}k "
            f"-> {trace.expected_footprint[-1] / 1000:6.1f}k  ({status})"
        )
    return out


def check_fig5b_shape(traces: Dict[float, PenaltyTrace]) -> List[str]:
    problems = []
    big = max(traces)
    small = min(traces)
    if not traces[big].final_in_window:
        problems.append(f"beta={big}: expected footprint not bounded")
    # Distance to the window must shrink as beta grows.
    def violation(tr: PenaltyTrace) -> float:
        lo, hi = tr.window
        e = tr.expected_footprint[-1]
        return max(0.0, e - hi, lo - e)

    if violation(traces[small]) < violation(traces[big]):
        problems.append("small beta unexpectedly tighter than large beta")
    return problems
