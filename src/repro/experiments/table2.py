"""Table 2: PDK adaptation — 16x16 PTCs on AIM Photonics PDKs.

AIM crossings (4900 um^2) are larger than couplers (4000 um^2), so the
searched topologies must avoid CR-heavy routing to honor the same
footprint windows.  The paper's headline: ADEPT-a0 matches FFT-ONN
accuracy at 2.4x smaller footprint; ADEPT-a5 is 2.9x more compact than
MZI-ONN with similar expressiveness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..photonics import AIM, butterfly_footprint, mzi_onn_footprint
from .common import (
    ExperimentScale,
    MeshResult,
    TABLE2_WINDOWS,
    baseline_results,
    run_search,
    train_eval_mesh,
)
from .report import print_table


@dataclass
class Table2Result:
    rows: List[MeshResult] = field(default_factory=list)

    @property
    def baselines(self) -> List[MeshResult]:
        return [r for r in self.rows if r.window is None]

    @property
    def searched(self) -> List[MeshResult]:
        return [r for r in self.rows if r.window is not None]


def run_table2(
    k: int = 16,
    n_targets: int = 6,
    scale: Optional[ExperimentScale] = None,
    with_accuracy: bool = True,
) -> Table2Result:
    scale = scale or ExperimentScale.from_env()
    result = Table2Result()
    result.rows.extend(baseline_results(k, AIM, scale, with_accuracy))
    for i, window in enumerate(TABLE2_WINDOWS[:n_targets]):
        name = f"ADEPT-a{i}"
        search = run_search(k, AIM, window, scale, name=name, seed=scale.seed + 100 + i)
        topo = search.topology
        acc = (
            train_eval_mesh(topo, k, scale, seed=scale.seed + 100 + i)[0]
            if with_accuracy
            else float("nan")
        )
        result.rows.append(
            MeshResult(
                name=name,
                footprint=topo.footprint(AIM),
                accuracy=acc,
                window=window,
                topology=topo,
            )
        )
    print_table(f"Table 2 - {k}x{k} PTCs on AIM", result.rows)
    return result


def check_table2_shape(result: Table2Result, k: int = 16) -> List[str]:
    """AIM-specific shape targets: constraint satisfaction plus
    crossing-avoidance versus the butterfly baseline."""
    problems: List[str] = []
    bf = butterfly_footprint(AIM, k)
    mzi = mzi_onn_footprint(AIM, k)
    for r in result.searched:
        f = r.footprint.in_paper_units()
        lo, hi = r.window
        if not (lo <= f <= hi):
            problems.append(f"{r.name}: footprint {f:.1f}k outside [{lo}, {hi}]")
        # Under *tight* windows the search must learn that AIM crossings
        # are expensive and stay below the butterfly's crossing rate
        # (the paper's adaptation claim); loose windows leave routing
        # headroom, so only constraint satisfaction is required there.
        tight = hi <= 700
        if tight and r.footprint.n_blocks and (
            r.footprint.n_cr / r.footprint.n_blocks
            > bf.n_cr / bf.n_blocks
        ):
            problems.append(f"{r.name}: crossing-heavier than butterfly on AIM")
    if result.searched:
        smallest = min(r.footprint.total for r in result.searched)
        if mzi.total < 2.5 * smallest:
            problems.append("smallest ADEPT not >2.5x more compact than MZI-ONN")
    return problems
