"""Synthetic datasets and loaders (offline stand-ins for the paper's
MNIST / FashionMNIST / SVHN / CIFAR-10; see DESIGN.md section 1)."""

from .loader import DataLoader
from .transforms import (
    Compose,
    GaussianNoise,
    Normalize,
    RandomHorizontalFlip,
    RandomShift,
)
from .synthetic import SPECS, Dataset, SyntheticSpec, make_dataset, train_test_split

__all__ = [
    "Compose",
    "DataLoader",
    "GaussianNoise",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomShift",
    "Dataset",
    "SPECS",
    "SyntheticSpec",
    "make_dataset",
    "train_test_split",
]
