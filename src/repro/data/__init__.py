"""Synthetic datasets and loaders — offline stand-ins for the paper's
MNIST / FashionMNIST / SVHN / CIFAR-10 (structured class-conditional
generators in :mod:`repro.data.synthetic`; no downloads required)."""

from .loader import DataLoader
from .transforms import (
    Compose,
    GaussianNoise,
    Normalize,
    RandomHorizontalFlip,
    RandomShift,
)
from .synthetic import SPECS, Dataset, SyntheticSpec, make_dataset, train_test_split

__all__ = [
    "Compose",
    "DataLoader",
    "GaussianNoise",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomShift",
    "Dataset",
    "SPECS",
    "SyntheticSpec",
    "make_dataset",
    "train_test_split",
]
