"""Mini-batch iteration over in-memory datasets."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..utils.rng import get_rng
from .synthetic import Dataset


class DataLoader:
    """Iterate a :class:`Dataset` in shuffled mini-batches.

    Yields ``(images, labels)`` numpy pairs; images are converted to
    tensors by the training loop so evaluation code can stay in numpy.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 64,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: np.random.Generator | None = None,
        transform=None,
    ):
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        #: Optional per-batch augmentation ``(images, rng) -> images``
        #: (see :mod:`repro.data.transforms`).
        self.transform = transform
        self._rng = get_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        idx = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(idx)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            sel = idx[start : start + self.batch_size]
            images = self.dataset.images[sel]
            if self.transform is not None:
                images = self.transform(images, self._rng)
            yield images, self.dataset.labels[sel]
