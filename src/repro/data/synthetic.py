"""Procedural class-conditional image datasets.

The paper evaluates PTC topologies by training image classifiers on
MNIST, FashionMNIST, SVHN, and CIFAR-10.  Those datasets cannot be
downloaded in this offline environment, so this module synthesizes
**drop-in equivalents with matched shapes and a matched difficulty
ladder**:

``mnist``
    28x28x1, ten digit classes rendered from seven-segment glyphs with
    small geometric jitter and pixel noise.  Easy: a 2-layer CNN
    reaches high-90s accuracy, mirroring real MNIST.
``fmnist``
    28x28x1, ten "garment" glyph classes with stronger deformation and
    occlusion.  Mid-80s/high-80s band, mirroring FashionMNIST.
``svhn``
    32x32x3, digit glyphs over colored backgrounds with distractor
    strokes at the borders (SVHN's cropped-neighbor artifact).
``cifar10``
    32x32x3, ten texture/shape classes with heavy intra-class
    variation; the hardest of the four.

Why this substitution preserves the paper's comparisons: the evaluation
uses accuracy purely as a proxy for the *matrix representability* of a
PTC topology — every model shares the same architecture and training
recipe, and only the structure of the photonic layer changes.  Any
class-conditional task whose decision boundary demands expressive
linear operators preserves the ordering between topologies; the
difficulty ladder reproduces the larger accuracy spreads the paper sees
on SVHN/CIFAR-10 versus MNIST.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..utils.rng import spawn_rng, stable_seed

Segment = Tuple[float, float, float, float]  # x0, y0, x1, y1 in [0, 1]

# ----------------------------------------------------------------------
# Glyph definitions
# ----------------------------------------------------------------------

# Seven-segment layout (unit square):
#    a
#  f   b
#    g
#  e   c
#    d
_SEG: Dict[str, Segment] = {
    "a": (0.25, 0.15, 0.75, 0.15),
    "b": (0.75, 0.15, 0.75, 0.50),
    "c": (0.75, 0.50, 0.75, 0.85),
    "d": (0.25, 0.85, 0.75, 0.85),
    "e": (0.25, 0.50, 0.25, 0.85),
    "f": (0.25, 0.15, 0.25, 0.50),
    "g": (0.25, 0.50, 0.75, 0.50),
}

_DIGIT_SEGMENTS: Dict[int, str] = {
    0: "abcdef",
    1: "bc",
    2: "abged",
    3: "abgcd",
    4: "fgbc",
    5: "afgcd",
    6: "afgedc",
    7: "abc",
    8: "abcdefg",
    9: "abcdfg",
}


def _digit_glyph(cls: int) -> List[Segment]:
    return [_SEG[s] for s in _DIGIT_SEGMENTS[cls]]


# Ten abstract "garment" glyphs for the FashionMNIST stand-in.  Each is
# a small polyline sketch; they share strokes (like shirts vs coats do)
# so the task is genuinely harder than digits.
_FASHION_GLYPHS: List[List[Segment]] = [
    # 0 t-shirt: torso + two short sleeves
    [(0.35, 0.3, 0.35, 0.8), (0.65, 0.3, 0.65, 0.8), (0.35, 0.8, 0.65, 0.8),
     (0.35, 0.3, 0.15, 0.45), (0.65, 0.3, 0.85, 0.45), (0.35, 0.3, 0.65, 0.3)],
    # 1 trouser: two legs
    [(0.4, 0.2, 0.35, 0.85), (0.6, 0.2, 0.65, 0.85), (0.4, 0.2, 0.6, 0.2),
     (0.5, 0.45, 0.5, 0.85)],
    # 2 pullover: torso + long sleeves
    [(0.35, 0.3, 0.35, 0.8), (0.65, 0.3, 0.65, 0.8), (0.35, 0.8, 0.65, 0.8),
     (0.35, 0.3, 0.12, 0.75), (0.65, 0.3, 0.88, 0.75), (0.35, 0.3, 0.65, 0.3)],
    # 3 dress: flared silhouette
    [(0.45, 0.15, 0.3, 0.85), (0.55, 0.15, 0.7, 0.85), (0.3, 0.85, 0.7, 0.85),
     (0.45, 0.15, 0.55, 0.15)],
    # 4 coat: torso + lapel diagonal
    [(0.32, 0.25, 0.32, 0.85), (0.68, 0.25, 0.68, 0.85), (0.32, 0.85, 0.68, 0.85),
     (0.32, 0.25, 0.5, 0.5), (0.68, 0.25, 0.5, 0.5), (0.5, 0.5, 0.5, 0.85)],
    # 5 sandal: sole + straps
    [(0.15, 0.7, 0.85, 0.7), (0.15, 0.78, 0.85, 0.78), (0.3, 0.7, 0.45, 0.45),
     (0.6, 0.7, 0.45, 0.45)],
    # 6 shirt: torso + collar V + sleeves
    [(0.35, 0.3, 0.35, 0.8), (0.65, 0.3, 0.65, 0.8), (0.35, 0.8, 0.65, 0.8),
     (0.45, 0.3, 0.5, 0.4), (0.55, 0.3, 0.5, 0.4),
     (0.35, 0.3, 0.2, 0.55), (0.65, 0.3, 0.8, 0.55)],
    # 7 sneaker: wedge profile
    [(0.15, 0.75, 0.85, 0.75), (0.15, 0.75, 0.15, 0.6), (0.15, 0.6, 0.5, 0.55),
     (0.5, 0.55, 0.85, 0.68), (0.85, 0.68, 0.85, 0.75)],
    # 8 bag: box + handle arc (approximated by segments)
    [(0.25, 0.45, 0.75, 0.45), (0.25, 0.45, 0.25, 0.8), (0.75, 0.45, 0.75, 0.8),
     (0.25, 0.8, 0.75, 0.8), (0.4, 0.45, 0.42, 0.3), (0.6, 0.45, 0.58, 0.3),
     (0.42, 0.3, 0.58, 0.3)],
    # 9 ankle boot: taller wedge + shaft
    [(0.2, 0.75, 0.85, 0.75), (0.2, 0.75, 0.2, 0.35), (0.2, 0.35, 0.45, 0.35),
     (0.45, 0.35, 0.45, 0.6), (0.45, 0.6, 0.85, 0.68), (0.85, 0.68, 0.85, 0.75)],
]


def _rasterize(
    segments: Sequence[Segment],
    size: int,
    thickness: float,
    dx: float = 0.0,
    dy: float = 0.0,
    angle: float = 0.0,
    scale: float = 1.0,
) -> np.ndarray:
    """Anti-aliased rendering of line segments onto a ``size``x``size``
    grid via signed distance: intensity = sigmoid((thickness - d)/soft).
    """
    ys, xs = np.mgrid[0:size, 0:size]
    px = (xs + 0.5) / size
    py = (ys + 0.5) / size
    # Inverse-transform pixel grid (rotate about center, then shift).
    cx, cy = 0.5 + dx, 0.5 + dy
    ca, sa = math.cos(-angle), math.sin(-angle)
    qx = (ca * (px - cx) - sa * (py - cy)) / scale + 0.5
    qy = (sa * (px - cx) + ca * (py - cy)) / scale + 0.5
    img = np.zeros((size, size))
    soft = 0.6 / size
    for x0, y0, x1, y1 in segments:
        vx, vy = x1 - x0, y1 - y0
        len2 = vx * vx + vy * vy
        if len2 == 0:
            t = np.zeros_like(qx)
        else:
            t = np.clip(((qx - x0) * vx + (qy - y0) * vy) / len2, 0.0, 1.0)
        dxp = qx - (x0 + t * vx)
        dyp = qy - (y0 + t * vy)
        d = np.sqrt(dxp * dxp + dyp * dyp)
        img = np.maximum(img, 1.0 / (1.0 + np.exp((d - thickness) / soft)))
    return img


# ----------------------------------------------------------------------
# Dataset configuration and generation
# ----------------------------------------------------------------------

@dataclass
class SyntheticSpec:
    """Difficulty knobs for a procedural dataset."""

    name: str
    image_size: int
    channels: int
    glyphs: List[List[Segment]]
    noise_std: float = 0.05
    max_shift: float = 0.04
    max_angle: float = 0.08
    scale_jitter: float = 0.08
    thickness: Tuple[float, float] = (0.035, 0.055)
    colored_background: bool = False
    distractors: int = 0
    occlusion_prob: float = 0.0
    texture_classes: bool = False


def _spec_registry() -> Dict[str, SyntheticSpec]:
    digits = [_digit_glyph(c) for c in range(10)]
    return {
        "mnist": SyntheticSpec(
            name="mnist", image_size=28, channels=1, glyphs=digits,
            noise_std=0.05, max_shift=0.05, max_angle=0.10, scale_jitter=0.10,
        ),
        "fmnist": SyntheticSpec(
            name="fmnist", image_size=28, channels=1, glyphs=_FASHION_GLYPHS,
            noise_std=0.10, max_shift=0.06, max_angle=0.16, scale_jitter=0.16,
            occlusion_prob=0.25,
        ),
        "svhn": SyntheticSpec(
            name="svhn", image_size=32, channels=3, glyphs=digits,
            noise_std=0.12, max_shift=0.08, max_angle=0.14, scale_jitter=0.18,
            colored_background=True, distractors=2, occlusion_prob=0.15,
        ),
        "cifar10": SyntheticSpec(
            name="cifar10", image_size=32, channels=3, glyphs=digits,
            noise_std=0.14, max_shift=0.09, max_angle=0.22, scale_jitter=0.20,
            colored_background=True, distractors=2, occlusion_prob=0.20,
            texture_classes=True,
        ),
    }


SPECS = _spec_registry()


def _texture_field(cls: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Class-conditional oriented sinusoidal texture (CIFAR-10 stand-in).

    Class k selects an (orientation, frequency) pair; random phase and
    amplitude provide heavy intra-class variation.
    """
    angle = (cls % 5) * math.pi / 5 + rng.normal(0, 0.12)
    freq = 2.0 + 2.0 * (cls // 5) + rng.normal(0, 0.25)
    ys, xs = np.mgrid[0:size, 0:size]
    u = (xs * math.cos(angle) + ys * math.sin(angle)) / size
    phase = rng.uniform(0, 2 * math.pi)
    amp = rng.uniform(0.5, 1.0)
    return 0.5 + 0.5 * amp * np.sin(2 * math.pi * freq * u + phase)


def _render_sample(spec: SyntheticSpec, cls: int, rng: np.random.Generator) -> np.ndarray:
    size = spec.image_size
    dx = rng.uniform(-spec.max_shift, spec.max_shift)
    dy = rng.uniform(-spec.max_shift, spec.max_shift)
    angle = rng.uniform(-spec.max_angle, spec.max_angle)
    scale = 1.0 + rng.uniform(-spec.scale_jitter, spec.scale_jitter)
    thickness = rng.uniform(*spec.thickness)
    fg = _rasterize(spec.glyphs[cls], size, thickness, dx, dy, angle, scale)

    if spec.distractors:
        for _ in range(rng.integers(0, spec.distractors + 1)):
            other = int(rng.integers(0, len(spec.glyphs)))
            edge_dx = rng.choice([-0.42, 0.42]) + rng.uniform(-0.04, 0.04)
            dist = _rasterize(
                spec.glyphs[other], size, thickness * 0.9,
                edge_dx, rng.uniform(-0.1, 0.1), angle, scale * 0.9,
            )
            fg = np.maximum(fg, 0.6 * dist)

    if spec.occlusion_prob and rng.random() < spec.occlusion_prob:
        # Zero out a random band (partial occlusion).
        h0 = int(rng.integers(0, size - size // 6))
        fg[h0 : h0 + size // 6, :] *= rng.uniform(0.0, 0.4)

    if spec.channels == 1:
        img = fg[None, :, :]
    else:
        if spec.colored_background:
            bg = rng.uniform(0.0, 0.45, size=3)[:, None, None] * np.ones((3, size, size))
            if spec.texture_classes:
                # Class-conditional texture modulates the background; the
                # glyph stays high-contrast foreground, so both carry the
                # class signal at different spatial frequencies.
                tex = _texture_field(cls, size, rng)
                bg = bg * (0.4 + 0.6 * tex[None])
            ink = rng.uniform(0.7, 1.0, size=3)
            img = bg * (1 - fg[None]) + ink[:, None, None] * fg[None]
        else:
            img = np.repeat(fg[None], 3, axis=0)

    img = img + rng.normal(0.0, spec.noise_std, size=img.shape)
    return np.clip(img, 0.0, 1.0)


@dataclass
class Dataset:
    """An in-memory dataset of images and integer labels."""

    images: np.ndarray  # (N, C, H, W) float64 in [0, 1], normalized later
    labels: np.ndarray  # (N,) int64
    name: str = "synthetic"
    num_classes: int = 10

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, idx):
        return self.images[idx], self.labels[idx]


def make_dataset(
    name: str,
    n_samples: int,
    seed: int = 0,
    normalize: bool = True,
) -> Dataset:
    """Generate a synthetic dataset by registry name.

    Parameters
    ----------
    name:
        One of ``mnist``, ``fmnist``, ``svhn``, ``cifar10``.
    n_samples:
        Number of images; classes are balanced (round-robin).
    seed:
        Generation seed; train/test splits should use different seeds.
    normalize:
        If True, standardize to zero mean / unit variance per dataset.
    """
    if name not in SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(SPECS)}")
    spec = SPECS[name]
    # stable_seed, not hash(): builtin string hashing is randomized per
    # process, which silently made every dataset draw irreproducible.
    rng = spawn_rng(stable_seed(name, seed))
    n_cls = len(spec.glyphs)
    labels = np.arange(n_samples) % n_cls
    rng.shuffle(labels)
    images = np.empty((n_samples, spec.channels, spec.image_size, spec.image_size))
    for i, cls in enumerate(labels):
        images[i] = _render_sample(spec, int(cls), rng)
    if normalize:
        mu = images.mean()
        sd = images.std() + 1e-8
        images = (images - mu) / sd
    return Dataset(images=images, labels=labels.astype(np.int64), name=name, num_classes=n_cls)


def train_test_split(
    name: str,
    n_train: int,
    n_test: int,
    seed: int = 0,
    normalize: bool = True,
) -> Tuple[Dataset, Dataset]:
    """Generate disjoint train/test datasets (different generator streams)."""
    train = make_dataset(name, n_train, seed=seed, normalize=normalize)
    test = make_dataset(name, n_test, seed=seed + 10_000, normalize=normalize)
    return train, test
