"""Training-time data augmentation for the synthetic datasets.

The paper's full-scale training uses the standard light augmentation
recipe for small image benchmarks (random shifts and flips).  These
transforms operate on (N, C, H, W) float arrays and compose; the
:class:`~repro.data.loader.DataLoader` applies an optional transform
per batch, so augmentation costs nothing when disabled.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..utils.rng import get_rng

__all__ = [
    "Compose",
    "GaussianNoise",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomShift",
]

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class Compose:
    """Apply transforms in sequence: ``Compose([A, B])(x) = B(A(x))``."""

    def __init__(self, transforms: Sequence[Transform]):
        self.transforms = list(transforms)

    def __call__(self, images: np.ndarray, rng=None) -> np.ndarray:
        rng = get_rng(rng)
        out = images
        for t in self.transforms:
            out = t(out, rng)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(type(t).__name__ for t in self.transforms)
        return f"Compose([{inner}])"


class RandomShift:
    """Shift each image by up to ``max_shift`` pixels per axis
    (zero-padded), drawn independently per image."""

    def __init__(self, max_shift: int = 2):
        if max_shift < 0:
            raise ValueError("max_shift must be >= 0")
        self.max_shift = max_shift

    def __call__(self, images: np.ndarray, rng=None) -> np.ndarray:
        rng = get_rng(rng)
        if self.max_shift == 0:
            return images
        n = images.shape[0]
        out = np.zeros_like(images)
        shifts = rng.integers(-self.max_shift, self.max_shift + 1, size=(n, 2))
        h, w = images.shape[2], images.shape[3]
        for i in range(n):
            dy, dx = int(shifts[i, 0]), int(shifts[i, 1])
            src_y = slice(max(0, -dy), min(h, h - dy))
            src_x = slice(max(0, -dx), min(w, w - dx))
            dst_y = slice(max(0, dy), min(h, h + dy))
            dst_x = slice(max(0, dx), min(w, w + dx))
            out[i, :, dst_y, dst_x] = images[i, :, src_y, src_x]
        return out


class RandomHorizontalFlip:
    """Mirror each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p

    def __call__(self, images: np.ndarray, rng=None) -> np.ndarray:
        rng = get_rng(rng)
        flip = rng.random(images.shape[0]) < self.p
        out = images.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class GaussianNoise:
    """Add zero-mean Gaussian pixel noise (regularizer)."""

    def __init__(self, std: float = 0.05):
        if std < 0:
            raise ValueError("std must be >= 0")
        self.std = std

    def __call__(self, images: np.ndarray, rng=None) -> np.ndarray:
        rng = get_rng(rng)
        if self.std == 0.0:
            return images
        return images + rng.normal(0.0, self.std, size=images.shape)


class Normalize:
    """Per-channel standardization with fixed statistics."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        self.mean = np.asarray(mean, dtype=float).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=float).reshape(1, -1, 1, 1)
        if (self.std <= 0).any():
            raise ValueError("std entries must be > 0")

    def __call__(self, images: np.ndarray, rng=None) -> np.ndarray:
        if images.shape[1] != self.mean.shape[1]:
            raise ValueError(
                f"expected {self.mean.shape[1]} channels, got {images.shape[1]}"
            )
        return (images - self.mean) / self.std
