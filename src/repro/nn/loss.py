"""Loss functions."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, log_softmax
from .module import Module


class CrossEntropyLoss(Module):
    """Softmax cross-entropy with integer class targets.

    ``logits``: (N, C) real tensor; ``target``: (N,) int array.
    """

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, logits: Tensor, target) -> Tensor:
        target = np.asarray(target, dtype=np.int64)
        logp = log_softmax(logits, axis=-1)
        n = logits.shape[0]
        picked = logp[np.arange(n), target]
        nll = -picked
        if self.reduction == "mean":
            return nll.mean()
        if self.reduction == "sum":
            return nll.sum()
        return nll


class MSELoss(Module):
    """Mean squared error; for complex inputs uses |a - b|^2."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        diff = pred - target
        if diff.is_complex:
            sq = (diff * diff.conj()).real()
        else:
            sq = diff * diff
        if self.reduction == "mean":
            return sq.mean()
        if self.reduction == "sum":
            return sq.sum()
        return sq


def accuracy(logits: Tensor, target) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    pred = np.argmax(logits.data, axis=-1)
    target = np.asarray(target)
    return float((pred == target).mean())
