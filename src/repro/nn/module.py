"""Minimal PyTorch-style module system.

Provides :class:`Parameter`, :class:`Module` (with recursive parameter
discovery, train/eval mode, and state-dict serialization),
:class:`Sequential`, and :class:`ModuleList`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` registered as a trainable leaf of a module."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None):
        super().__init__(np.asarray(data), requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses define parameters/submodules as attributes in
    ``__init__`` and implement :meth:`forward`.  Attribute assignment
    auto-registers :class:`Parameter` and :class:`Module` instances.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration ---------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved in the state dict
        (e.g., BatchNorm running statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of re-registering."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters, depth-first, deduplicated."""
        out: List[Parameter] = []
        seen = set()
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                out.append(p)
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (prefix + name, p)
        for name, m in self._modules.items():
            yield from m.named_parameters(prefix + name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (prefix + name, getattr(self, name))
        for name, m in self._modules.items():
            yield from m.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for m in self._modules.values():
            yield from m.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- mode ------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- serialization ----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state[name] = np.array(b, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        for name, val in state.items():
            if name in own_params:
                p = own_params[name]
                val = np.asarray(val)
                if val.dtype == p.data.dtype:
                    np.copyto(p.data, val)
                else:
                    # Adopt the stored dtype instead of silently casting
                    # into the destination array: a complex64-built
                    # artifact must reload as complex64.
                    p.data = np.array(val, copy=True)
        # Buffers must be re-bound on the owning module.
        self._load_buffers(state, prefix="")

    def _load_buffers(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for name in list(self._buffers):
            full = prefix + name
            if full in state:
                self._set_buffer(name, np.array(state[full], copy=True))
        for name, m in self._modules.items():
            m._load_buffers(state, prefix + name + ".")

    # -- call --------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


class Sequential(Module):
    """Chain modules, applying them in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for i, m in enumerate(modules):
            setattr(self, f"m{i}", m)
            self._order.append(f"m{i}")

    def append(self, module: Module) -> "Sequential":
        name = f"m{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, n) for n in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, i: int) -> Module:
        return getattr(self, self._order[i])

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x


class ModuleList(Module):
    """Hold submodules in a list (registered for parameter discovery)."""

    def __init__(self, modules=()):
        super().__init__()
        self._order: List[str] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        name = f"m{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, n) for n in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, i: int) -> Module:
        return getattr(self, self._order[i])
