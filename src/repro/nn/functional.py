"""Functional NN operations built on the autograd engine.

The convolution path uses an im2col transform implemented as a custom
autograd op (forward: ``sliding_window_view``; backward: col2im
scatter-add), after which convolution reduces to a matrix product —
the same lowering the paper's ONN layers use to map convolutions onto
photonic tensor cores.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor, custom_grad, ensure_tensor
from ..autograd import tensor as T


def _pair(v) -> Tuple[int, int]:
    if isinstance(v, (tuple, list)):
        return int(v[0]), int(v[1])
    return int(v), int(v)


def _im2col_array(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """(N, C, H, W) -> (N, OH, OW, C, kh, kw) patch view (copied)."""
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    # windows: (N, C, H-kh+1, W-kw+1, kh, kw)
    windows = windows[:, :, ::sh, ::sw, :, :]
    return np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5))


def _col2im_array(
    gcol: np.ndarray,
    x_shape: Tuple[int, ...],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col_array` (scatter-add patches back)."""
    n, c, h, w = x_shape
    gx = np.zeros(x_shape, dtype=gcol.dtype)
    # gcol: (N, OH, OW, C, kh, kw)
    oh, ow = gcol.shape[1], gcol.shape[2]
    g = gcol.transpose(0, 3, 4, 5, 1, 2)  # (N, C, kh, kw, OH, OW)
    for i in range(kh):
        h_end = i + sh * oh
        for j in range(kw):
            w_end = j + sw * ow
            gx[:, :, i:h_end:sh, j:w_end:sw] += g[:, :, i, j]
    return gx


def im2col(x: Tensor, kernel_size, stride=1) -> Tensor:
    """Differentiable im2col: (N,C,H,W) -> (N,OH,OW,C,kh,kw)."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride)
    col = _im2col_array(x.data, kh, kw, sh, sw)
    x_shape = x.shape

    def backward(g: np.ndarray):
        return (_col2im_array(g, x_shape, kh, kw, sh, sw),)

    return custom_grad(col, (x,), backward)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride=1,
    padding=0,
) -> Tensor:
    """2-D convolution (cross-correlation) via im2col + matmul.

    ``x``: (N, C, H, W); ``weight``: (O, C, kh, kw); ``bias``: (O,).
    """
    x = ensure_tensor(x)
    ph, pw = _pair(padding)
    if ph or pw:
        x = T.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    o, c, kh, kw = weight.shape
    col = im2col(x, (kh, kw), stride)  # (N, OH, OW, C, kh, kw)
    n, oh, ow = col.shape[0], col.shape[1], col.shape[2]
    col2 = col.reshape((n * oh * ow, c * kh * kw))
    w2 = weight.reshape((o, c * kh * kw))
    out = col2 @ w2.T  # (N*OH*OW, O)
    if bias is not None:
        out = out + bias
    out = out.reshape((n, oh, ow, o))
    return out.transpose((0, 3, 1, 2))


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``; ``weight``: (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def avg_pool2d(x: Tensor, kernel_size) -> Tensor:
    """Non-overlapping average pooling (kernel == stride)."""
    kh, kw = _pair(kernel_size)
    n, c, h, w = x.shape
    if h % kh or w % kw:
        # Crop the ragged border (matches "valid" pooling behaviour).
        x = x[:, :, : (h // kh) * kh, : (w // kw) * kw]
        n, c, h, w = x.shape
    x = x.reshape((n, c, h // kh, kh, w // kw, kw))
    return x.mean(axis=(3, 5))


def max_pool2d(x: Tensor, kernel_size) -> Tensor:
    """Non-overlapping max pooling (kernel == stride)."""
    kh, kw = _pair(kernel_size)
    n, c, h, w = x.shape
    if h % kh or w % kw:
        x = x[:, :, : (h // kh) * kh, : (w // kw) * kw]
        n, c, h, w = x.shape
    x = x.reshape((n, c, h // kh, kh, w // kw, kw))
    return x.max(axis=(3, 5))


def adaptive_avg_pool2d(x: Tensor, output_size) -> Tensor:
    """Adaptive average pooling for sizes that evenly divide the input."""
    oh, ow = _pair(output_size)
    n, c, h, w = x.shape
    if h % oh or w % ow:
        raise ValueError(
            f"adaptive_avg_pool2d requires divisible sizes, got {h}x{w} -> {oh}x{ow}"
        )
    return avg_pool2d(x, (h // oh, w // ow))


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scale kept activations by 1/(1-p) at train time."""
    if not training or p <= 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    return x.flatten(start_dim)
