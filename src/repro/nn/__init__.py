"""Neural-network layer library over :mod:`repro.autograd`."""

from . import functional
from .layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from .loss import CrossEntropyLoss, MSELoss, accuracy
from .module import Module, ModuleList, Parameter, Sequential
from .norm import BatchNorm1d, BatchNorm2d

__all__ = [
    "AdaptiveAvgPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "CrossEntropyLoss",
    "Dropout",
    "Flatten",
    "Identity",
    "Linear",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "ModuleList",
    "Parameter",
    "ReLU",
    "Sequential",
    "accuracy",
    "functional",
]
