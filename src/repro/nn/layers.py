"""Standard neural-network layers (electronic baseline building blocks).

The photonic counterparts (PTC-backed linear/conv) live in
:mod:`repro.onn.layers`; both share this module system so models can mix
electronic and photonic layers freely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..utils.rng import get_rng
from . import functional as F
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng=rng))
        if bias:
            self.bias = Parameter(init.uniform_bias((out_features,), self.weight.shape, rng=rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution layer (im2col lowering)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kh, kw), rng=rng)
        )
        if bias:
            self.bias = Parameter(init.uniform_bias((out_channels,), self.weight.shape, rng=rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class AvgPool2d(Module):
    def __init__(self, kernel_size):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)


class MaxPool2d(Module):
    def __init__(self, kernel_size):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        self.p = p
        self._rng = get_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
