"""Parameter initialization schemes (Kaiming / Xavier / uniform)."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..utils.rng import get_rng


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        o, c, kh, kw = shape
        fan_in = c * kh * kw
        fan_out = o * kh * kw
    else:
        n = int(np.prod(shape))
        fan_in = fan_out = max(1, n)
    return fan_in, fan_out


def kaiming_uniform(shape, a: float = math.sqrt(5), rng=None) -> np.ndarray:
    """He-uniform init (PyTorch's default for Conv/Linear weights)."""
    rng = get_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, gain: float = 1.0, rng=None) -> np.ndarray:
    rng = get_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform_bias(shape, weight_shape, rng=None) -> np.ndarray:
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    rng = get_rng(rng)
    fan_in, _ = _fan_in_out(weight_shape)
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)


def uniform_phases(shape, low: float = 0.0, high: float = 2 * math.pi, rng=None) -> np.ndarray:
    """Uniform phase init for photonic phase shifters."""
    rng = get_rng(rng)
    return rng.uniform(low, high, size=shape)
