"""Batch normalization layers.

BatchNorm is load-bearing in the paper's proxy model
(C32K5-BN-ReLU-C32K5-BN-ReLU-Pool5-FC10): without it the complex-valued
photonic layers' output statistics drift during SuperMesh relaxation,
which is exactly why the paper adds row/column L2 normalization.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .module import Module, Parameter


class _BatchNorm(Module):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1, affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_features))
            self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _stats_axes(self, x: Tensor):
        raise NotImplementedError

    def _reshape_param(self, p, x: Tensor):
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes = self._stats_axes(x)
        if self.training:
            mu = x.mean(axis=axes, keepdims=True)
            centered = x - mu
            var = (centered * centered).mean(axis=axes, keepdims=True)
            # Update running stats with unbiased variance.
            n = int(np.prod([x.shape[i] for i in axes]))
            unbiased = var.data * (n / max(1, n - 1))
            m = self.momentum
            self._set_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mu.data.reshape(-1),
            )
            self._set_buffer(
                "running_var",
                (1 - m) * self.running_var + m * unbiased.reshape(-1),
            )
            x_hat = centered / (var + self.eps).sqrt()
        else:
            mu = self._reshape_param(self.running_mean, x)
            var = self._reshape_param(self.running_var, x)
            x_hat = (x - Tensor(mu)) / Tensor(np.sqrt(var + self.eps))
        if self.affine:
            shape = self._param_shape(x)
            return x_hat * self.weight.reshape(shape) + self.bias.reshape(shape)
        return x_hat


class BatchNorm1d(_BatchNorm):
    """BatchNorm over (N, C) activations."""

    def _stats_axes(self, x: Tensor):
        return (0,)

    def _param_shape(self, x: Tensor):
        return (1, self.num_features)

    def _reshape_param(self, p, x: Tensor):
        return p.reshape(1, self.num_features)


class BatchNorm2d(_BatchNorm):
    """BatchNorm over (N, C, H, W) activations."""

    def _stats_axes(self, x: Tensor):
        return (0, 2, 3)

    def _param_shape(self, x: Tensor):
        return (1, self.num_features, 1, 1)

    def _reshape_param(self, p, x: Tensor):
        return p.reshape(1, self.num_features, 1, 1)
