"""Photonic device models and differentiable layer constructors.

Implements the transfer matrices of the paper's basic optical
components (section 2.1):

* **Phase shifter (PS)** — ``y = exp(-j*phi) * x`` (active, trainable).
* **Directional coupler (DC)** — 2x2 transfer ``[[t, j*s], [j*s, t]]``
  with ``s = sqrt(1 - t^2)``; passive, fixed after fabrication.  The
  paper restricts designs to 50:50 couplers, ``t = sqrt(2)/2``.
* **Waveguide crossing (CR)** — a permutation of waveguides.
* **Mach-Zehnder interferometer (MZI)** — two 50:50 DCs and two PSs;
  realizes an arbitrary 2-D unitary (up to phase), the building block
  of the MZI-ONN baseline.

Both plain-numpy constructors (for analysis/verification) and
autograd-aware constructors (for training) are provided.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor, concat, custom_grad, ensure_tensor
from ..autograd import tensor as T

#: Transmission coefficient of a 50:50 (3 dB) directional coupler.
T_5050 = math.sqrt(2.0) / 2.0


# ----------------------------------------------------------------------
# Plain numpy transfer matrices (analysis / ground truth for tests)
# ----------------------------------------------------------------------

def ps_matrix(phases: np.ndarray) -> np.ndarray:
    """Diagonal transfer matrix of a phase-shifter column: diag(e^{-j phi})."""
    return np.diag(np.exp(-1j * np.asarray(phases)))


def dc_matrix(t: float = T_5050) -> np.ndarray:
    """2x2 directional-coupler transfer matrix for transmission ``t``."""
    if not 0.0 <= t <= 1.0:
        raise ValueError(f"transmission must be in [0, 1], got {t}")
    s = math.sqrt(max(0.0, 1.0 - t * t))
    return np.array([[t, 1j * s], [1j * s, t]])

def dc_layer_matrix_np(ts: Sequence[float], k: int, offset: int) -> np.ndarray:
    """K x K transfer of a DC column; coupler ``i`` sits on waveguides
    ``(offset + 2i, offset + 2i + 1)``; uncovered waveguides pass through."""
    m = np.eye(k, dtype=complex)
    for i, t in enumerate(ts):
        p = offset + 2 * i
        q = p + 1
        if q >= k:
            break
        m[p : q + 1, p : q + 1] = dc_matrix(float(t))
    return m


def crossing_matrix(perm: Sequence[int]) -> np.ndarray:
    """Permutation matrix P with P[i, perm[i]] = 1 (row i reads input perm[i])."""
    k = len(perm)
    m = np.zeros((k, k))
    m[np.arange(k), np.asarray(perm)] = 1.0
    return m


def mzi_matrix(theta: float, phi: float) -> np.ndarray:
    """2x2 MZI transfer: DC * PS(theta on arm 0) * DC * PS(phi on arm 0).

    Cascading two 50:50 couplers around an internal differential phase
    ``theta`` plus an external phase ``phi`` spans all of SU(2) up to a
    global phase, which suffices for universal mesh construction.
    """
    dc = dc_matrix(T_5050)
    internal = np.diag([np.exp(-1j * theta), 1.0])
    external = np.diag([np.exp(-1j * phi), 1.0])
    return dc @ internal @ dc @ external


def is_unitary(m: np.ndarray, atol: float = 1e-8) -> bool:
    """Check M^H M = I."""
    m = np.asarray(m)
    return np.allclose(m.conj().T @ m, np.eye(m.shape[0]), atol=atol)


# ----------------------------------------------------------------------
# Scatter primitive (builds matrices from trainable entries)
# ----------------------------------------------------------------------

def scatter_matrix(
    values: Tensor,
    rows: np.ndarray,
    cols: np.ndarray,
    shape: Tuple[int, int],
) -> Tensor:
    """Build a dense matrix with ``out[rows[i], cols[i]] = values[i]``.

    Indices must be unique.  The backward rule gathers the upstream
    gradient back at the scattered locations.
    """
    values = ensure_tensor(values)
    out = np.zeros(shape, dtype=values.data.dtype)
    out[rows, cols] = values.data

    def backward(g: np.ndarray):
        return (g[rows, cols],)

    return custom_grad(out, (values,), backward)


# ----------------------------------------------------------------------
# Differentiable layer constructors (autograd Tensors)
# ----------------------------------------------------------------------

def ps_column(phases: Tensor) -> Tensor:
    """Column vector ``exp(-j * phi)`` of a PS layer.

    ``phases`` may have any shape ``(..., K)``; the result multiplies a
    field of shape ``(..., K, n)`` as ``ps[..., :, None] * field``.
    """
    phases = ensure_tensor(phases)
    return T.exp(T.mul(Tensor(np.array(-1j)), phases))


def apply_ps(field: Tensor, phases: Tensor) -> Tensor:
    """Apply a PS column: field (..., K, N) scaled per waveguide."""
    col = ps_column(phases)
    return T.mul(T.reshape(col, col.shape + (1,)), field)


def dc_layer_matrix(ts: Tensor, k: int, offset: int) -> Tensor:
    """Differentiable K x K DC-column transfer from transmissions ``ts``.

    ``ts`` has one entry per coupler position starting at waveguide
    ``offset``; entries equal to 1 mean "no coupler" (pass-through).
    """
    ts = ensure_tensor(ts)
    n = min(int(ts.shape[0]), (k - offset) // 2)
    pos = offset + 2 * np.arange(n)
    ts_used = ts[:n] if n < ts.shape[0] else ts

    # cross amplitude j * sqrt(1 - t^2); clamp keeps sqrt differentiable at t=1
    one_minus = T.clip(1.0 - ts_used * ts_used, 0.0, 1.0)
    s = T.sqrt(one_minus + 1e-12)
    js = T.mul(Tensor(np.array(1j)), s)
    tc = T.astype(ts_used, np.complex128)

    rows = np.concatenate([pos, pos + 1, pos, pos + 1])
    cols = np.concatenate([pos, pos + 1, pos + 1, pos])
    vals = concat([tc, tc, js, js], axis=0)
    mat = scatter_matrix(vals, rows, cols, (k, k))

    # Pass-through identity for waveguides not covered by a coupler.
    covered = np.zeros(k, dtype=bool)
    covered[pos] = True
    covered[pos + 1] = True
    eye_rest = np.diag((~covered).astype(complex))
    return mat + Tensor(eye_rest)


def mzi_layer_matrix(thetas: Tensor, phis: Tensor, k: int, offset: int) -> Tensor:
    """Differentiable K x K transfer of a column of MZIs.

    MZI ``i`` sits on waveguides ``(offset + 2i, offset + 2i + 1)``.
    Built by composing two DC columns with the internal/external phase
    columns, so it shares verified primitives with the search space.
    """
    thetas = ensure_tensor(thetas)
    phis = ensure_tensor(phis)
    n = min(int(thetas.shape[0]), (k - offset) // 2)
    pos = offset + 2 * np.arange(n)

    dc = Tensor(dc_layer_matrix_np([T_5050] * n, k, offset))

    def phase_diag(ph: Tensor) -> Tensor:
        # Phases act on the upper arm of each MZI; other waveguides get 0.
        full = np.zeros(k)
        col = T.exp(T.mul(Tensor(np.array(-1j)), ph[:n] if n < ph.shape[0] else ph))
        rows = pos
        diag = scatter_matrix(col, rows, rows, (k, k))
        rest = np.diag(np.asarray([0.0 if c else 1.0 for c in _covered_upper(k, pos)], dtype=complex))
        return diag + Tensor(rest)

    internal = phase_diag(thetas)
    external = phase_diag(phis)
    return dc @ internal @ dc @ external


def _covered_upper(k: int, pos: np.ndarray):
    covered = np.zeros(k, dtype=bool)
    covered[pos] = True
    return covered
