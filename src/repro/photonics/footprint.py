"""Footprint accounting for photonic tensor cores (paper section 3.4).

Implements the exact device-count footprint F(alpha), the per-block
minimum/maximum footprints, and the analytical SuperMesh block bounds
of Eq. (16):

    F_b_min = K * F_PS + F_DC
    F_b_max = F_b_min + K * F_DC / 2 + K (K - 1) * F_CR / 2
    B_max   = ceil(F_max / F_b_min)
    B_min   = floor(F_min / F_b_max)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from .pdk import FoundryPDK


@dataclass(frozen=True)
class FootprintBreakdown:
    """Device counts and total area of a PTC design."""

    n_ps: int
    n_dc: int
    n_cr: int
    total: float  # um^2
    n_blocks: int = 0

    def in_paper_units(self) -> float:
        """Area in the paper's reporting unit (1000 um^2)."""
        return self.total / 1000.0


def block_footprint(pdk: FoundryPDK, k: int, n_dc: int, n_cr: int) -> float:
    """Footprint of one SuperMesh block: a full PS column (K shifters,
    always present — they carry the programmability), ``n_dc`` couplers,
    and ``n_cr`` crossings."""
    return pdk.footprint(k, n_dc, n_cr)


def block_footprint_bounds(pdk: FoundryPDK, k: int) -> Tuple[float, float]:
    """(F_b_min, F_b_max) of Eq. (16).

    The minimum block has a PS column and a single coupler (a block with
    zero couplers performs no interference and is never useful); the
    maximum block has a full coupler column (K/2 couplers) plus the
    worst-case reversal permutation with K(K-1)/2 crossings.
    """
    f_min = k * pdk.ps_area + pdk.dc_area
    f_max = f_min + (k * pdk.dc_area) / 2.0 + (k * (k - 1) * pdk.cr_area) / 2.0
    return f_min, f_max


def supermesh_block_bounds(
    pdk: FoundryPDK, k: int, f_min: float, f_max: float
) -> Tuple[int, int]:
    """Analytical (B_min, B_max) for footprint window [f_min, f_max] um^2.

    B_max upper-bounds how many blocks could fit if each block were
    minimal; B_min lower-bounds how many are needed if each block were
    maximal.  B_min is clamped to at least 2 (one block per unitary U
    and V is the semantic minimum of the USV structure).
    """
    if f_min > f_max:
        raise ValueError(f"f_min ({f_min}) must be <= f_max ({f_max})")
    fb_min, fb_max = block_footprint_bounds(pdk, k)
    b_max = math.ceil(f_max / fb_min)
    b_min = math.floor(f_min / fb_max)
    return max(2, b_min), max(2, b_max)


def ptc_footprint(
    pdk: FoundryPDK, n_ps: int, n_dc: int, n_cr: int
) -> FootprintBreakdown:
    """Exact footprint of a PTC from its device counts."""
    return FootprintBreakdown(
        n_ps=n_ps, n_dc=n_dc, n_cr=n_cr, total=pdk.footprint(n_ps, n_dc, n_cr)
    )


def mzi_onn_footprint(pdk: FoundryPDK, k: int) -> FootprintBreakdown:
    """Footprint of the MZI-ONN baseline at size K (paper Table 1 row).

    The USV core uses two rectangular (Clements) meshes of K(K-1)/2
    MZIs each; every MZI contributes two DCs and two PS layers.  In the
    paper's block accounting each mesh is 2K blocks deep (each of the K
    MZI columns holds an internal and an external PS column), so
    #Blk = 4K, #PS = K * #Blk = 4K^2, #DC = 2K(K-1), #CR = 0.  These
    counts reproduce Table 1 exactly: at K = 8/16/32 on AMF the
    footprint evaluates to 1908.8 / 7683.2 / 30828.8 (paper: 1909 /
    7683 / 30829, in 1000 um^2).
    """
    n_blocks = 4 * k
    n_ps = k * n_blocks
    n_dc = 2 * k * (k - 1)
    return FootprintBreakdown(
        n_ps=n_ps,
        n_dc=n_dc,
        n_cr=0,
        total=pdk.footprint(n_ps, n_dc, 0),
        n_blocks=n_blocks,
    )


def butterfly_footprint(pdk: FoundryPDK, k: int) -> FootprintBreakdown:
    """Footprint of the FFT-ONN (butterfly) baseline at size K.

    Each of the two transforms has log2(K) stages; every stage is one
    block with a full PS column (K shifters), K/2 couplers, and a
    shuffle network, so #Blk = 2 log2(K), #PS = K * #Blk,
    #DC = #Blk * K/2, and #CR doubles the single-mesh butterfly
    crossing count.  These reproduce Table 1 exactly: at K = 8/16/32 the
    counts are CR/DC/Blk = 16/24/6, 88/64/8, 416/160/10 and AMF
    footprints 363.4 / 972.0 / 2442.6 (paper: 363 / 972 / 2443).
    """
    stages = int(math.log2(k))
    if 2 ** stages != k:
        raise ValueError(f"butterfly requires power-of-two size, got {k}")
    n_blocks = 2 * stages
    n_dc = n_blocks * (k // 2)
    n_ps = k * n_blocks
    n_cr = 2 * _butterfly_crossings(k)
    return FootprintBreakdown(
        n_ps=n_ps,
        n_dc=n_dc,
        n_cr=n_cr,
        total=pdk.footprint(n_ps, n_dc, n_cr),
        n_blocks=n_blocks,
    )


def _butterfly_crossings(k: int) -> int:
    """Total crossings of the butterfly permutation network of size K.

    Stage s (s = 1 .. log2 K - 1) pairs waveguides at stride 2^s; the
    crossing count of the stride-2^s shuffle on a group of 2^(s+1)
    waveguides is 2^s * (2^s - 1) / 2, with K / 2^(s+1) groups.
    """
    from .crossings import count_inversions

    total = 0
    stages = int(math.log2(k))
    for s in range(1, stages):
        stride = 2 ** s
        group = 2 * stride
        # Permutation that interleaves the two stride-halves of a group.
        perm = []
        for i in range(stride):
            perm.extend([i, i + stride])
        total += count_inversions(perm) * (k // group)
    return total
