"""Power, latency, and energy-per-MAC estimation for PTC designs.

The paper motivates photonic tensor cores with "sub-nanosecond latency
and near-zero energy" matrix multiplication.  This module makes those
claims quantitative for any design this library produces, with a
standard link-budget model:

* **Heaters** — thermo-optic phase shifters draw static power; the
  average setting is half a pi-shift, so each PS is billed half its
  P_pi.  Deep meshes (MZI-ONN) carry many more heaters.
* **Laser** — the input laser must deliver the detector sensitivity
  *after* the worst-case insertion-loss path through the mesh; loss
  compounds per device, so depth costs laser power exponentially (in
  dB, linearly).
* **Converters** — one DAC per phase shifter, one photodetector +
  ADC per output waveguide, billed per device.
* **Latency** — optical propagation over the floorplan length at the
  silicon group velocity; independent of K for fixed depth.

Energy per MAC divides total power by the K^2 MACs delivered per
modulation cycle.  All constants are configurable via
:class:`PowerConfig` and documented with typical silicon-photonics
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.topology import PTCTopology
from .nonideality import NonidealitySpec
from .pdk import FoundryPDK

__all__ = ["PowerConfig", "PowerReport", "estimate_power"]

#: Speed of light, um / ps.
_C_UM_PER_PS = 299.792458


@dataclass(frozen=True)
class PowerConfig:
    """Electrical/optical constants of the accelerator platform.

    Defaults are representative silicon-photonics numbers:
    thermo-optic P_pi ~ 25 mW; 8-bit current-steering DACs at a few
    mW; 10 GS/s ADC ~ 10 mW; -25 dBm detector sensitivity at 10 GHz;
    10 % laser wall-plug efficiency; group index 4.3 (silicon
    waveguide).
    """

    heater_p_pi_mw: float = 25.0
    dac_power_mw: float = 2.0
    adc_power_mw: float = 10.0
    detector_sensitivity_dbm: float = -25.0
    laser_wall_plug_efficiency: float = 0.10
    modulation_rate_ghz: float = 10.0
    group_index: float = 4.3

    def __post_init__(self) -> None:
        if not 0.0 < self.laser_wall_plug_efficiency <= 1.0:
            raise ValueError("laser_wall_plug_efficiency must be in (0, 1]")
        if self.modulation_rate_ghz <= 0:
            raise ValueError("modulation_rate_ghz must be > 0")
        if self.group_index < 1.0:
            raise ValueError("group_index must be >= 1")


@dataclass
class PowerReport:
    """Estimated electrical power, optical latency, and efficiency."""

    k: int
    heater_power_mw: float
    dac_power_mw: float
    adc_power_mw: float
    laser_power_mw: float
    worst_path_loss_db: float
    latency_ps: float
    macs_per_second: float

    @property
    def total_power_mw(self) -> float:
        return (self.heater_power_mw + self.dac_power_mw
                + self.adc_power_mw + self.laser_power_mw)

    @property
    def energy_per_mac_fj(self) -> float:
        """Total power divided by MAC throughput, in femtojoules."""
        if self.macs_per_second <= 0:
            return float("inf")
        return self.total_power_mw * 1e-3 / self.macs_per_second * 1e15

    def summary(self) -> str:
        return (
            f"power: {self.total_power_mw:.1f} mW "
            f"(heaters {self.heater_power_mw:.1f}, laser "
            f"{self.laser_power_mw:.2f}, DAC {self.dac_power_mw:.1f}, "
            f"ADC {self.adc_power_mw:.1f}); "
            f"latency {self.latency_ps:.1f} ps; "
            f"{self.energy_per_mac_fj:.1f} fJ/MAC "
            f"(worst path loss {self.worst_path_loss_db:.2f} dB)"
        )


def estimate_power(
    topology: PTCTopology,
    pdk: FoundryPDK,
    loss_spec: Optional[NonidealitySpec] = None,
    config: Optional[PowerConfig] = None,
) -> PowerReport:
    """Link-budget power/latency estimate for one PTC design.

    ``loss_spec`` supplies per-device insertion losses (defaults to
    0.2 / 0.15 / 0.1 dB for PS / DC / CR); the laser budget covers the
    worst positional path.  Latency uses the column floorplan of
    :func:`repro.layout.place` on ``pdk``.
    """
    from ..layout import build_netlist, place

    config = config or PowerConfig()
    if loss_spec is None:
        loss_spec = NonidealitySpec(loss_ps_db=0.2, loss_dc_db=0.15,
                                    loss_cr_db=0.1)
    netlist = build_netlist(topology)
    n_ps, _n_dc, _n_cr = netlist.device_counts()
    k = topology.k

    heater = n_ps * config.heater_p_pi_mw / 2.0  # mean setting: pi/2
    dac = n_ps * config.dac_power_mw
    adc = k * config.adc_power_mw  # one receiver chain per output port

    worst_loss_db = float(netlist.path_loss_db(loss_spec).max())
    # Laser must deliver sensitivity + loss at each of the K inputs.
    per_input_dbm = config.detector_sensitivity_dbm + worst_loss_db
    per_input_mw = 10.0 ** (per_input_dbm / 10.0)
    laser = k * per_input_mw / config.laser_wall_plug_efficiency

    chip_length_um = place(netlist, pdk).chip_length_um
    latency_ps = chip_length_um * config.group_index / _C_UM_PER_PS

    macs_per_second = k * k * config.modulation_rate_ghz * 1e9
    return PowerReport(
        k=k,
        heater_power_mw=heater,
        dac_power_mw=dac,
        adc_power_mw=adc,
        laser_power_mw=laser,
        worst_path_loss_db=worst_loss_db,
        latency_ps=latency_ps,
        macs_per_second=macs_per_second,
    )
