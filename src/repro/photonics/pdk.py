"""Foundry process design kits (PDKs).

A PDK specifies the layout footprint of each basic optical component.
The paper evaluates on two real foundry PDKs whose numbers it prints:

* **AMF** (Advanced Micro Foundry) [paper Table 1]:
  PS 6800 um^2, DC 1500 um^2, CR 64 um^2 — crossings are nearly free,
  so searched designs may use them liberally.
* **AIM Photonics** [paper Table 2]:
  PS 2500 um^2, DC 4000 um^2, CR 4900 um^2 — crossings are *larger
  than couplers*, so searched designs must avoid them.

All areas are in um^2.  Table footprints in the paper are reported in
units of 1000 um^2; :meth:`FoundryPDK.footprint_k` applies that scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class FoundryPDK:
    """Device footprint specification of a silicon-photonics foundry."""

    name: str
    ps_area: float  # phase shifter, um^2
    dc_area: float  # directional coupler, um^2
    cr_area: float  # waveguide crossing, um^2

    def footprint(self, n_ps: int, n_dc: int, n_cr: int) -> float:
        """Total circuit area in um^2 for the given device counts."""
        if min(n_ps, n_dc, n_cr) < 0:
            raise ValueError("device counts must be non-negative")
        return n_ps * self.ps_area + n_dc * self.dc_area + n_cr * self.cr_area

    def footprint_k(self, n_ps: int, n_dc: int, n_cr: int) -> float:
        """Total area in the paper's reporting unit (1000 um^2)."""
        return self.footprint(n_ps, n_dc, n_cr) / 1000.0


#: AMF foundry PDK (paper Table 1 caption).
AMF = FoundryPDK(name="AMF", ps_area=6800.0, dc_area=1500.0, cr_area=64.0)

#: AIM Photonics PDK (paper Table 2 caption).
AIM = FoundryPDK(name="AIM", ps_area=2500.0, dc_area=4000.0, cr_area=4900.0)

_REGISTRY: Dict[str, FoundryPDK] = {"amf": AMF, "aim": AIM}


def get_pdk(name: str) -> FoundryPDK:
    """Look up a PDK by case-insensitive name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown PDK {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def register_pdk(pdk: FoundryPDK) -> None:
    """Register a custom foundry PDK (e.g., for what-if studies)."""
    _REGISTRY[pdk.name.lower()] = pdk


def available_pdks():
    return sorted(_REGISTRY)
