"""Device-level nonideality models beyond Gaussian phase noise.

The paper's robustness study (Fig. 4) injects Gaussian phase drifts
``delta phi ~ N(0, sigma^2)`` into every phase shifter.  Real photonic
circuits suffer additional, *passive* nonidealities that are frozen at
fabrication time and cannot be trimmed away by reprogramming phases:

* **Insertion loss** — every device attenuates the optical signal.
  Loss is quoted in dB per device; amplitudes multiply along a path,
  so deep meshes (MZI-ONN) accumulate much more loss than shallow
  ones (FFT-ONN, ADEPT).  This is the physical mechanism behind the
  depth-robustness trade-off the paper observes.
* **Coupler imbalance** — a nominal 50:50 DC is fabricated with a
  transmission error ``t = t0 + delta t``, fixed for the life of the
  chip.
* **Thermal crosstalk** — heating one phase shifter leaks into its
  neighbours: the effective phase vector is ``phi_eff = C @ phi``
  with a banded coupling matrix ``C``.

:class:`NonidealitySpec` bundles the magnitudes;
:class:`FabricationSample` holds one frozen draw of the passive
errors; :class:`NonidealTopologyFactory` bakes a fabrication sample
into a trainable :class:`~repro.ptc.unitary.FixedTopologyFactory`, so
variation-aware *training* can run on a nonideal chip model, not only
nonideal inference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.topology import BlockSpec, PTCTopology
from ..utils.rng import get_rng
from .devices import T_5050, dc_layer_matrix_np, ps_matrix
from ..photonics.crossings import perm_to_matrix

__all__ = [
    "DriftSpec",
    "FabricationSample",
    "NonidealitySpec",
    "crosstalk_gamma_at",
    "NonidealTopologyFactory",
    "crossings_per_wire",
    "db_to_amplitude",
    "fabrication_const_stack",
    "fidelity",
    "noisy_block_matrix",
    "noisy_unitary",
    "noisy_unitary_trials",
    "sample_fabrication",
    "sample_fabrication_batch",
    "thermal_crosstalk_matrix",
    "unitary_fidelity_under_noise",
]


def db_to_amplitude(loss_db: float) -> float:
    """Field-amplitude factor of a ``loss_db`` dB insertion loss.

    Power loss of x dB scales power by 10^(-x/10), hence amplitude by
    10^(-x/20).  ``db_to_amplitude(0) == 1``; 3 dB gives ~0.708.
    """
    if loss_db < 0:
        raise ValueError(f"insertion loss must be >= 0 dB, got {loss_db}")
    return 10.0 ** (-loss_db / 20.0)


@dataclass(frozen=True)
class NonidealitySpec:
    """Magnitudes of all modelled nonidealities.

    Attributes
    ----------
    phase_noise_std: runtime Gaussian phase drift, radians (paper's
        Fig. 4 sigma).
    dc_t_std: fabrication-time std-dev of the DC transmission
        coefficient around its nominal value.
    loss_ps_db / loss_dc_db / loss_cr_db: insertion loss per device
        traversal, in dB.  Typical foundry numbers are ~0.1-0.3 dB
        per PS/DC and ~0.1-0.2 dB per crossing.
    crosstalk_gamma: nearest-neighbour thermal crosstalk coefficient;
        0 disables.  The coupling decays as gamma / distance within
        ``crosstalk_radius``.
    crosstalk_radius: how many neighbours each heater leaks into.
    """

    phase_noise_std: float = 0.0
    dc_t_std: float = 0.0
    loss_ps_db: float = 0.0
    loss_dc_db: float = 0.0
    loss_cr_db: float = 0.0
    crosstalk_gamma: float = 0.0
    crosstalk_radius: int = 1

    def __post_init__(self) -> None:
        for name in ("phase_noise_std", "dc_t_std", "loss_ps_db",
                     "loss_dc_db", "loss_cr_db"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.crosstalk_gamma < 1.0:
            raise ValueError("crosstalk_gamma must be in [0, 1)")
        if self.crosstalk_radius < 0:
            raise ValueError("crosstalk_radius must be >= 0")

    @property
    def is_ideal(self) -> bool:
        return (
            self.phase_noise_std == 0.0
            and self.dc_t_std == 0.0
            and self.loss_ps_db == 0.0
            and self.loss_dc_db == 0.0
            and self.loss_cr_db == 0.0
            and self.crosstalk_gamma == 0.0
        )


@dataclass(frozen=True)
class DriftSpec:
    """Magnitudes of the *time-dependent* nonidealities of a powered
    chip — the processes that make a freshly calibrated mesh degrade
    between recalibrations.  Static fabrication errors live in
    :class:`NonidealitySpec`; this spec only describes how the chip's
    effective state evolves over virtual time.

    Attributes
    ----------
    phase_walk_std: random-walk coefficient of per-heater phase drift,
        in rad / sqrt(s): after ``t`` seconds of operation each phase
        has drifted by ``N(0, phase_walk_std**2 * t)``.  The dominant
        aging process on thermo-optic shifters.
    ambient_amp / ambient_period_s: deterministic sinusoidal ambient
        swing (e.g. lab HVAC cycles): every phase additionally sees
        ``ambient_amp * sin(2 pi t / ambient_period_s)``.
    crosstalk_gamma_drift / crosstalk_tau_s: thermal-crosstalk
        buildup.  As heaters dissipate into the substrate the
        effective nearest-neighbour coupling grows from the
        fabrication-time value ``gamma0`` toward
        ``gamma0 + crosstalk_gamma_drift`` with time constant
        ``crosstalk_tau_s`` (see :func:`crosstalk_gamma_at`).
    """

    phase_walk_std: float = 0.0
    ambient_amp: float = 0.0
    ambient_period_s: float = 600.0
    crosstalk_gamma_drift: float = 0.0
    crosstalk_tau_s: float = 300.0

    def __post_init__(self) -> None:
        for name in ("phase_walk_std", "ambient_amp",
                     "crosstalk_gamma_drift"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("ambient_period_s", "crosstalk_tau_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")

    @property
    def is_static(self) -> bool:
        return (
            self.phase_walk_std == 0.0
            and self.ambient_amp == 0.0
            and self.crosstalk_gamma_drift == 0.0
        )


def crosstalk_gamma_at(
    gamma0: float, gamma_drift: float, tau_s: float, t_s: float
) -> float:
    """Effective thermal-crosstalk coefficient after ``t_s`` seconds
    of operation: exponential saturation from the fabrication-time
    ``gamma0`` toward ``gamma0 + gamma_drift``.

    The saturating form models substrate heating: crosstalk builds up
    quickly after power-on and levels off once the thermal gradient is
    established.
    """
    if t_s < 0:
        raise ValueError(f"t_s must be >= 0, got {t_s}")
    if tau_s <= 0:
        raise ValueError(f"tau_s must be > 0, got {tau_s}")
    return float(gamma0 + gamma_drift * (1.0 - math.exp(-t_s / tau_s)))


def thermal_crosstalk_matrix(k: int, gamma: float, radius: int = 1) -> np.ndarray:
    """Banded phase-coupling matrix C: ``phi_eff = C @ phi``.

    ``C[i, i] = 1`` and ``C[i, j] = gamma / |i - j|`` for
    ``0 < |i - j| <= radius`` — each heater leaks a fraction of its
    drive into nearby waveguides, decaying with distance.
    """
    if not 0.0 <= gamma < 1.0:
        raise ValueError("gamma must be in [0, 1)")
    c = np.eye(k)
    for d in range(1, radius + 1):
        if d >= k:
            break
        off = np.full(k - d, gamma / d)
        c += np.diag(off, k=d) + np.diag(off, k=-d)
    return c


def crossings_per_wire(perm: Sequence[int]) -> np.ndarray:
    """Number of crossings each *input* wire traverses when the
    permutation is routed as a minimal adjacent-swap network.

    Wire carrying value v participates in every inversion that
    involves v, so ``sum(crossings_per_wire) == 2 * count_inversions``.
    """
    p = list(perm)
    k = len(p)
    counts = np.zeros(k, dtype=int)
    for i in range(k):
        for j in range(i + 1, k):
            if p[i] > p[j]:
                counts[p[i]] += 1
                counts[p[j]] += 1
    return counts


@dataclass
class FabricationSample:
    """One frozen draw of the passive (fabrication-time) errors of a
    topology: the realized DC transmissions and the per-block loss
    diagonals.  Runtime phase noise is *not* part of a sample — it is
    redrawn on every inference."""

    k: int
    dc_t: List[np.ndarray]  # realized transmission per coupler slot, per block
    loss_diag: List[np.ndarray]  # per-wire amplitude factor, per block
    crosstalk: Optional[np.ndarray] = None  # K x K phase-coupling matrix

    @property
    def n_blocks(self) -> int:
        return len(self.dc_t)


def _block_loss_diag(block: BlockSpec, k: int, spec: NonidealitySpec) -> np.ndarray:
    """Per-wire amplitude attenuation of one block (PS + DC + CR)."""
    a = np.full(k, db_to_amplitude(spec.loss_ps_db))
    a_dc = db_to_amplitude(spec.loss_dc_db)
    mask = np.asarray(block.coupler_mask, dtype=bool)
    for i, placed in enumerate(mask):
        if not placed:
            continue
        p = block.offset + 2 * i
        if p + 1 < k:
            a[p] *= a_dc
            a[p + 1] *= a_dc
    if block.perm is not None and spec.loss_cr_db > 0.0:
        per_wire = crossings_per_wire(list(block.perm))
        a *= db_to_amplitude(spec.loss_cr_db) ** per_wire
    return a


def sample_fabrication(
    topology: PTCTopology,
    spec: NonidealitySpec,
    rng=None,
) -> Tuple[FabricationSample, FabricationSample]:
    """Draw one fabrication outcome for the U and V meshes.

    Returns ``(sample_u, sample_v)``.  Coupler transmissions are
    ``clip(t0 + N(0, dc_t_std), 0, 1)`` on placed couplers and exactly
    1 on pass-through slots; loss diagonals are deterministic given
    the spec.
    """
    rng = get_rng(rng)
    k = topology.k

    def draw(blocks: Sequence[BlockSpec]) -> FabricationSample:
        dc_t: List[np.ndarray] = []
        loss: List[np.ndarray] = []
        for block in blocks:
            mask = np.asarray(block.coupler_mask, dtype=bool)
            t = np.where(mask, T_5050, 1.0).astype(float)
            if spec.dc_t_std > 0.0:
                err = rng.normal(0.0, spec.dc_t_std, size=t.shape)
                t = np.clip(t + np.where(mask, err, 0.0), 0.0, 1.0)
            dc_t.append(t)
            loss.append(_block_loss_diag(block, k, spec))
        xtalk = None
        if spec.crosstalk_gamma > 0.0:
            xtalk = thermal_crosstalk_matrix(k, spec.crosstalk_gamma, spec.crosstalk_radius)
        return FabricationSample(k=k, dc_t=dc_t, loss_diag=loss, crosstalk=xtalk)

    return draw(topology.blocks_u), draw(topology.blocks_v)


def sample_fabrication_batch(
    topology: PTCTopology,
    spec: NonidealitySpec,
    n_samples: int,
    rng=None,
) -> List[Tuple[FabricationSample, FabricationSample]]:
    """``n_samples`` independent fabrication outcomes (U, V) — the
    fabrication axis of a scenario grid."""
    rng = get_rng(rng)
    return [sample_fabrication(topology, spec, rng=rng) for _ in range(n_samples)]


def fabrication_const_stack(
    blocks: Sequence[BlockSpec],
    k: int,
    spec: NonidealitySpec,
    sample: Optional[FabricationSample] = None,
) -> np.ndarray:
    """Stacked constant ``L @ P @ T(t)`` matrices of every block,
    shape (n_blocks, K, K).

    This is the passive (phase-independent) part of
    :func:`noisy_block_matrix`, precomputed once per fabrication
    sample so the per-trial work reduces to a phase-column cascade.
    With ``sample=None``, couplers are nominal and loss follows the
    spec deterministically.
    """
    const = np.empty((len(blocks), k, k), dtype=complex)
    for b, block in enumerate(blocks):
        mask = np.asarray(block.coupler_mask, dtype=bool)
        dc_t = (
            np.where(mask, T_5050, 1.0).astype(float)
            if sample is None
            else sample.dc_t[b]
        )
        t_mat = dc_layer_matrix_np(list(dc_t), k, block.offset)
        p_mat = np.eye(k) if block.perm is None else perm_to_matrix(block.perm)
        loss = (
            _block_loss_diag(block, k, spec)
            if sample is None
            else sample.loss_diag[b]
        )
        const[b] = np.diag(loss) @ p_mat @ t_mat
    return const


def noisy_unitary_trials(
    blocks: Sequence[BlockSpec],
    phases: np.ndarray,
    k: int,
    spec: NonidealitySpec,
    samples=None,
    n_trials: Optional[int] = None,
    rng=None,
    exec_backend=None,
) -> np.ndarray:
    """Vectorized Monte-Carlo twin of :func:`noisy_unitary`:
    ``T`` independent noisy realizations of one mesh in one batched
    cascade, shape (T, K, K).

    ``samples`` selects the fabrication axis: ``None`` (nominal chip,
    ``n_trials`` required), one :class:`FabricationSample` (shared by
    all trials), or a sequence of samples (one per trial).  Runtime
    phase noise is redrawn per trial from ``rng`` — with the same seed
    the draws match a sequential loop of :func:`noisy_unitary` calls
    exactly, because numpy generators produce identical streams for
    one batched ``normal`` draw and the equivalent per-trial draws.

    ``exec_backend`` selects the execution backend of the batched
    cascade (``None`` = process default).  The exact loop parity above
    holds on the complex128 ``"numpy"`` backend; the ``"numpy-c64"``
    fast lane matches within its 1e-4 relative precision contract.
    """
    rng = get_rng(rng)
    phases = np.asarray(phases, dtype=float)
    n_blocks = len(blocks)
    if phases.shape != (n_blocks, k):
        raise ValueError(
            f"phases must have shape ({n_blocks}, {k}), got {phases.shape}"
        )
    if samples is None:
        if n_trials is None:
            raise ValueError("n_trials is required when samples is None")
        sample_list: List[Optional[FabricationSample]] = [None]
        trial_sample = np.zeros(n_trials, dtype=int)
    elif isinstance(samples, FabricationSample):
        if n_trials is None:
            raise ValueError("n_trials is required with a single shared sample")
        sample_list = [samples]
        trial_sample = np.zeros(n_trials, dtype=int)
    else:
        sample_list = list(samples)
        if n_trials is not None and n_trials != len(sample_list):
            raise ValueError(
                f"n_trials={n_trials} != len(samples)={len(sample_list)}"
            )
        n_trials = len(sample_list)
        trial_sample = np.arange(n_trials)
    if n_trials == 0:
        return np.zeros((0, k, k), dtype=complex)

    consts = np.stack(
        [fabrication_const_stack(blocks, k, spec, s) for s in sample_list]
    )  # (n_samples, B, K, K)
    # Effective programmed phases per trial: crosstalk mixes the drive
    # of neighbouring heaters *before* runtime noise is added (same
    # order as noisy_block_matrix).
    phi = np.broadcast_to(phases, (n_trials, n_blocks, k)).copy()
    for i, s in enumerate(sample_list):
        if s is not None and s.crosstalk is not None:
            sel = trial_sample == i
            phi[sel] = phases @ s.crosstalk.T
    if spec.phase_noise_std > 0.0:
        phi = phi + rng.normal(0.0, spec.phase_noise_std, size=phi.shape)
    ps = np.exp(-1j * phi)  # (T, B, K)
    from ..autograd import phase_column_cascade_forward

    if len(sample_list) == 1:
        return phase_column_cascade_forward(consts[0], ps, backend=exec_backend)
    return phase_column_cascade_forward(consts[trial_sample], ps, backend=exec_backend)


def noisy_block_matrix(
    block: BlockSpec,
    phases: np.ndarray,
    k: int,
    spec: NonidealitySpec,
    dc_t: Optional[np.ndarray] = None,
    loss_diag: Optional[np.ndarray] = None,
    crosstalk: Optional[np.ndarray] = None,
    rng=None,
) -> np.ndarray:
    """K x K transfer of one block under the given nonidealities.

    Light traverses PS -> DC -> CR, so the matrix is
    ``L @ P @ T(t) @ R(C phi + noise)`` where ``L`` is the per-wire
    loss diagonal.  Passive errors (``dc_t``, ``loss_diag``,
    ``crosstalk``) normally come from a :class:`FabricationSample`;
    when omitted they are derived fresh from the spec (loss) or left
    nominal (couplers).
    """
    rng = get_rng(rng)
    phi = np.asarray(phases, dtype=float)
    if crosstalk is not None:
        phi = crosstalk @ phi
    if spec.phase_noise_std > 0.0:
        phi = phi + rng.normal(0.0, spec.phase_noise_std, size=phi.shape)
    r = ps_matrix(phi)
    mask = np.asarray(block.coupler_mask, dtype=bool)
    if dc_t is None:
        dc_t = np.where(mask, T_5050, 1.0).astype(float)
    t_mat = dc_layer_matrix_np(list(dc_t), k, block.offset)
    p_mat = np.eye(k) if block.perm is None else perm_to_matrix(block.perm)
    if loss_diag is None:
        loss_diag = _block_loss_diag(block, k, spec)
    return np.diag(loss_diag) @ p_mat @ t_mat @ r


def noisy_unitary(
    blocks: Sequence[BlockSpec],
    phases: np.ndarray,
    k: int,
    spec: NonidealitySpec,
    sample: Optional[FabricationSample] = None,
    rng=None,
) -> np.ndarray:
    """Cascade all blocks of one mesh: ``U = M_B ... M_2 M_1``.

    ``phases`` has shape (n_blocks, K).  With an all-zero spec and no
    sample this returns the exact ideal mesh transfer.
    """
    rng = get_rng(rng)
    phases = np.asarray(phases, dtype=float)
    if phases.shape != (len(blocks), k):
        raise ValueError(
            f"phases must have shape ({len(blocks)}, {k}), got {phases.shape}"
        )
    u = np.eye(k, dtype=complex)
    for b, block in enumerate(blocks):
        m = noisy_block_matrix(
            block,
            phases[b],
            k,
            spec,
            dc_t=None if sample is None else sample.dc_t[b],
            loss_diag=None if sample is None else sample.loss_diag[b],
            crosstalk=None if sample is None else sample.crosstalk,
            rng=rng,
        )
        u = m @ u
    return u


def fidelity(u: np.ndarray, v: np.ndarray) -> float:
    """Normalized overlap ``|tr(U V^H)| / K`` in [0, 1] for unitaries;
    below 1 also captures amplitude lost to attenuation."""
    u = np.asarray(u)
    k = u.shape[0]
    return float(abs(np.trace(u @ v.conj().T)) / k)


def unitary_fidelity_under_noise(
    topology: PTCTopology,
    spec: NonidealitySpec,
    n_trials: int = 10,
    rng=None,
) -> Tuple[float, float]:
    """Mean and std of the fidelity between the ideal and nonideal U
    mesh over ``n_trials`` independent (fabrication + runtime) draws.

    Phases are drawn once, uniformly in [0, 2 pi); each trial redraws
    the fabrication sample and the runtime phase noise.
    """
    rng = get_rng(rng)
    k = topology.k
    phases = rng.uniform(0.0, 2.0 * math.pi, size=(len(topology.blocks_u), k))
    ideal = noisy_unitary(topology.blocks_u, phases, k, NonidealitySpec())
    scores = []
    for _ in range(n_trials):
        sample_u, _ = sample_fabrication(topology, spec, rng=rng)
        noisy = noisy_unitary(topology.blocks_u, phases, k, spec, sample=sample_u, rng=rng)
        scores.append(fidelity(noisy, ideal))
    arr = np.asarray(scores)
    return float(arr.mean()), float(arr.std())


class NonidealTopologyFactory:
    """A trainable searched-topology mesh on a *nonideal chip model*.

    Wraps :class:`repro.ptc.unitary.FixedTopologyFactory`, replacing
    its nominal constant (P @ T) block matrices with ones built from a
    frozen :class:`FabricationSample` (realized coupler transmissions
    + loss diagonals) and routing runtime phase noise through the
    factory's ``noise_std``.  The returned object *is* a
    ``FixedTopologyFactory`` subclass instance, so it drops into any
    ONN layer that accepts a mesh factory.
    """

    def __new__(
        cls,
        k: int,
        n_units: int,
        blocks: Sequence[BlockSpec],
        spec: NonidealitySpec,
        sample: Optional[FabricationSample] = None,
        rng=None,
    ):
        from ..ptc.unitary import FixedTopologyFactory

        rng = get_rng(rng)
        if sample is None:
            topo = PTCTopology(k=k, blocks_u=list(blocks), blocks_v=[])
            sample, _ = sample_fabrication(topo, spec, rng=rng)
        factory = FixedTopologyFactory(
            k,
            n_units,
            [(b.perm, b.coupler_mask, b.offset) for b in blocks],
            rng=rng,
        )
        # Rebuild the constant per-block matrices with realized devices.
        factory._const = list(fabrication_const_stack(blocks, k, spec, sample))
        factory.noise_std = spec.phase_noise_std
        factory.fabrication_sample = sample
        factory.nonideality_spec = spec
        return factory
