"""Waveguide-crossing analysis for permutation layers.

The paper counts the crossings needed to realize a permutation layer as
the **minimum number of adjacent swaps** that sorts the permutation —
i.e., its inversion count (section 3.4, "Footprint of CR").  This module
provides an O(n log n) inversion counter, a routing schedule (the
actual list of adjacent swaps, bubble-sort order), and legality checks
for (relaxed) permutation matrices.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def count_inversions(perm: Sequence[int]) -> int:
    """Minimum number of adjacent transpositions to sort ``perm``.

    Implemented by merge-sort inversion counting, O(n log n).
    """
    arr = list(perm)

    def sort_count(a: List[int]) -> Tuple[List[int], int]:
        if len(a) <= 1:
            return a, 0
        mid = len(a) // 2
        left, cl = sort_count(a[:mid])
        right, cr = sort_count(a[mid:])
        merged: List[int] = []
        inv = cl + cr
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                inv += len(left) - i
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inv

    _, inv = sort_count(arr)
    return inv


def crossings_of_matrix(p: np.ndarray) -> int:
    """Crossing count of a (legal) permutation matrix."""
    perm = matrix_to_perm(p)
    return count_inversions(perm)


def matrix_to_perm(p: np.ndarray) -> np.ndarray:
    """Convert a permutation matrix (P[i, j] = 1 means output i reads
    input j) to the index vector ``perm`` with ``perm[i] = j``."""
    p = np.asarray(p)
    if not is_permutation_matrix(p):
        raise ValueError("matrix is not a legal permutation matrix")
    return np.argmax(p, axis=1)


def perm_to_matrix(perm: Sequence[int]) -> np.ndarray:
    k = len(perm)
    m = np.zeros((k, k))
    m[np.arange(k), np.asarray(perm)] = 1.0
    return m


def is_permutation_matrix(p: np.ndarray, atol: float = 1e-6) -> bool:
    """Legality check: square, binary, one 1 per row and per column."""
    p = np.asarray(p)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        return False
    binary = np.all(np.abs(p - np.round(p)) <= atol) and np.all(
        (np.round(p) == 0) | (np.round(p) == 1)
    )
    if not binary:
        return False
    r = np.round(p)
    return bool(np.all(r.sum(axis=0) == 1) and np.all(r.sum(axis=1) == 1))


def routing_schedule(perm: Sequence[int]) -> List[Tuple[int, int]]:
    """Adjacent-swap schedule realizing ``perm`` with the minimum number
    of crossings (bubble-sort order).

    Returns a list of waveguide index pairs ``(i, i+1)``; its length
    equals :func:`count_inversions`.
    """
    arr = list(perm)
    swaps: List[Tuple[int, int]] = []
    n = len(arr)
    changed = True
    while changed:
        changed = False
        for i in range(n - 1):
            if arr[i] > arr[i + 1]:
                arr[i], arr[i + 1] = arr[i + 1], arr[i]
                swaps.append((i, i + 1))
                changed = True
    return swaps


def random_permutation(k: int, rng: np.random.Generator) -> np.ndarray:
    """A uniformly random permutation index vector of size ``k``."""
    return rng.permutation(k)
