"""The ADEPT two-stage SuperMesh training flow (paper Fig. 2, §4.1).

Stage 1 — **SuperMesh Warmup**: only the weight group (Sigma, Phi,
couplers T, relaxed permutations P) trains, for initial exploration.

Stage 2 — **SuperMesh Search**: weight steps and architecture steps
alternate at a 3:1 ratio.  Weight steps minimize task loss + the
permutation ALM term; architecture steps update the depth logits theta
with task loss + the probabilistic footprint penalty.  The ALM dual
variables and the quadratic coefficient rho advance every weight step.

At the SPL epoch the relaxed permutations are forced to legal
permutations (stochastic permutation legalization) and frozen; training
then continues on the remaining weights.  Finally a SubMesh satisfying
the footprint constraint is sampled from the learned distribution and
returned as a :class:`~repro.core.topology.PTCTopology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor
from ..data import DataLoader, Dataset, train_test_split
from ..nn import BatchNorm2d, CrossEntropyLoss, Flatten, Module, ReLU, AvgPool2d, Sequential
from ..nn.module import Parameter
from ..optim import Adam, CosineAnnealingLR, clip_grad_norm_
from ..photonics.pdk import AMF, FoundryPDK
from ..utils.rng import spawn_rng
from .footprint_penalty import FootprintPenaltyConfig, footprint_penalty
from .gumbel import TemperatureSchedule
from .supermesh import SuperMeshConv2d, SuperMeshLinear, SuperMeshSpace
from .topology import PTCTopology


@dataclass
class ADEPTConfig:
    """Hyper-parameters of an ADEPT search run.

    Defaults are scaled-down versions of the paper's settings (90
    epochs on GPU) sized for CPU execution; the structure of the flow
    (warmup -> alternate search -> SPL -> continue) is identical.
    """

    k: int = 8
    pdk: FoundryPDK = AMF
    f_min: float = 240_000.0  # um^2
    f_max: float = 300_000.0  # um^2
    b_min: Optional[int] = None  # None = analytic Eq. (16)
    b_max: Optional[int] = None
    b_max_cap: int = 16  # tractability cap on total super blocks

    epochs: int = 12
    warmup_epochs: int = 2
    spl_epoch: int = 8
    arch_step_period: int = 4  # every 4th batch is an arch step (3:1)
    batch_size: int = 32
    lr: float = 1e-3
    arch_lr: float = 5e-3
    weight_decay: float = 1e-4
    arch_weight_decay: float = 5e-4
    grad_clip: float = 5.0
    tau_start: float = 5.0
    tau_end: float = 0.5
    rho0: Optional[float] = None  # None = (1e-7) * K / 8
    beta: float = 10.0
    beta_cr: float = 100.0
    spl_sigma: float = 0.05
    # Paper-exact init is jitter = 0; a modest jitter compensates for the
    # reproduction's ~100x smaller step budget (see smoothed_identity).
    perm_init_jitter: float = 0.3
    # "identity" is the paper-exact init (Fig. 3).  "local-shuffle" seeds
    # each CR layer near a random local routing pattern (smoothed, every
    # entry positive, so the paper's gradient-flow requirement holds) —
    # compensation for the compressed budget: the search prunes routing
    # it cannot afford (footprint penalty) instead of having to invent
    # routing from scratch.
    perm_init: str = "local-shuffle"
    # The paper applies the footprint penalty L_F only on architecture
    # steps (FBNet-style).  At compressed budgets we also apply its
    # OVER-budget branch on weight steps, so the pruning pressure
    # reaches the permutations and couplers directly (this is what lets
    # a tight AIM budget strip crossings in few steps).  The
    # under-budget branch stays arch-only: letting it fight the task
    # loss on every weight step hurts learning.  Set False for the
    # paper-exact schedule.
    penalty_on_weights: bool = True

    dataset: str = "mnist"
    n_train: int = 512
    n_test: int = 256
    proxy_channels: int = 8
    seed: int = 0
    verbose: bool = False


@dataclass
class SearchHistory:
    """Per-step traces used by the Fig. 5 ablation benches."""

    task_loss: List[float] = field(default_factory=list)
    alm_loss: List[float] = field(default_factory=list)
    perm_error: List[float] = field(default_factory=list)
    mean_lambda: List[float] = field(default_factory=list)
    rho: List[float] = field(default_factory=list)
    expected_footprint: List[float] = field(default_factory=list)
    penalty: List[float] = field(default_factory=list)
    epoch_boundaries: List[int] = field(default_factory=list)


@dataclass
class ADEPTSearchResult:
    """Outcome of a search: the discrete design plus diagnostics."""

    topology: PTCTopology
    history: SearchHistory
    spl_tries: Optional[np.ndarray] = None

    def summary(self) -> str:
        return self.topology.summary()


def build_proxy_model(
    space: SuperMeshSpace,
    in_channels: int = 1,
    image_size: int = 28,
    channels: int = 8,
    n_classes: int = 10,
    rng=None,
) -> Module:
    """The search-proxy CNN with SuperMesh-backed layers.

    Matches the paper's proxy (C-BN-ReLU-C-BN-ReLU-Pool5-FC) with a
    configurable channel count (the paper uses 32; CPU configs shrink).
    """
    feat = image_size - 4 - 4
    pooled = feat // 5
    return Sequential(
        SuperMeshConv2d(space, in_channels, channels, 5, rng=rng),
        BatchNorm2d(channels),
        ReLU(),
        SuperMeshConv2d(space, channels, channels, 5, rng=rng),
        BatchNorm2d(channels),
        ReLU(),
        AvgPool2d(5),
        Flatten(),
        SuperMeshLinear(space, channels * pooled * pooled, n_classes, rng=rng),
    )


class ADEPTSearch:
    """Orchestrates the full differentiable PTC topology search."""

    def __init__(
        self,
        config: ADEPTConfig,
        train_set: Optional[Dataset] = None,
        test_set: Optional[Dataset] = None,
    ):
        self.config = config
        self.rng = spawn_rng(config.seed)
        if train_set is None or test_set is None:
            train_set, test_set = train_test_split(
                config.dataset, config.n_train, config.n_test, seed=config.seed
            )
        self.train_set = train_set
        self.test_set = test_set

        steps_per_epoch = max(1, len(train_set) // config.batch_size)
        weight_steps = config.epochs * steps_per_epoch
        b_max = config.b_max
        if b_max is not None:
            b_max = min(b_max, config.b_max_cap)
        self.space = SuperMeshSpace(
            k=config.k,
            pdk=config.pdk,
            f_min=config.f_min,
            f_max=config.f_max,
            b_min=config.b_min,
            b_max=b_max,
            rho0=config.rho0,
            alm_total_steps=weight_steps,
            perm_init_jitter=config.perm_init_jitter,
            perm_init=config.perm_init,
            rng=self.rng,
        )
        if self.space.n_blocks > config.b_max_cap:
            # Re-derive with the cap (keeps supernets CPU-tractable).
            self.space = SuperMeshSpace(
                k=config.k,
                pdk=config.pdk,
                f_min=config.f_min,
                f_max=config.f_max,
                b_min=config.b_min,
                b_max=config.b_max_cap,
                rho0=config.rho0,
                alm_total_steps=weight_steps,
                perm_init_jitter=config.perm_init_jitter,
                perm_init=config.perm_init,
                rng=self.rng,
            )
        spec_channels = train_set.images.shape[1]
        image_size = train_set.images.shape[2]
        self.model = build_proxy_model(
            self.space,
            in_channels=spec_channels,
            image_size=image_size,
            channels=config.proxy_channels,
            n_classes=train_set.num_classes,
            rng=self.rng,
        )
        self.tau_schedule = TemperatureSchedule(
            config.tau_start, config.tau_end, config.epochs
        )
        self.penalty_config = FootprintPenaltyConfig(
            beta=config.beta, beta_cr=config.beta_cr
        )
        self.history = SearchHistory()
        self._spl_tries: Optional[np.ndarray] = None

    # -- parameter groups --------------------------------------------------
    def _weight_parameters(self) -> List[Parameter]:
        arch = {id(p) for p in self.space.arch_parameters()}
        return [p for p in self.model.parameters() if id(p) not in arch] + [
            p
            for p in self.space.parameters()
            if id(p) not in arch and p.requires_grad
        ]

    # -- main loop ------------------------------------------------------------
    def run(self) -> ADEPTSearchResult:
        cfg = self.config
        loss_fn = CrossEntropyLoss()
        weight_params = self._weight_parameters()
        # Deduplicate (space params may be reachable via model cores).
        seen = set()
        weight_params = [
            p for p in weight_params if not (id(p) in seen or seen.add(id(p)))
        ]
        w_opt = Adam(weight_params, lr=cfg.lr, weight_decay=cfg.weight_decay)
        a_opt = Adam(
            self.space.arch_parameters(),
            lr=cfg.arch_lr,
            weight_decay=cfg.arch_weight_decay,
        )
        w_sched = CosineAnnealingLR(w_opt, t_max=cfg.epochs)
        loader = DataLoader(
            self.train_set, batch_size=cfg.batch_size, shuffle=True, rng=self.rng
        )
        step = 0
        for epoch in range(cfg.epochs):
            # Start-of-epoch step: the final search epoch runs at the
            # annealed LR floor (see CosineAnnealingLR).
            w_sched.step()
            tau = self.tau_schedule.at_epoch(epoch)
            in_search = epoch >= cfg.warmup_epochs
            if epoch == cfg.spl_epoch and not self.space.perms.frozen:
                self._spl_tries = self.space.legalize_permutations(
                    sigma=cfg.spl_sigma, rng=self.rng
                )
                if cfg.verbose:
                    print(
                        f"[epoch {epoch}] SPL legalized permutations "
                        f"(tries: {list(self._spl_tries)})"
                    )
            for i, (xb, yb) in enumerate(loader):
                # Global-step scheduling keeps the 3:1 weight:arch ratio
                # even when an epoch has fewer batches than the period.
                arch_step = in_search and (
                    step % cfg.arch_step_period == cfg.arch_step_period - 1
                )
                self.space.sample(tau=tau, rng=self.rng)
                logits = self.model(Tensor(xb))
                task = loss_fn(logits, yb)
                if arch_step:
                    penalty, e_exact = footprint_penalty(self.space, self.penalty_config)
                    loss = task + penalty
                    self.model.zero_grad()
                    for p in self.space.parameters():
                        p.grad = None
                    loss.backward()
                    a_opt.step()
                    self.history.penalty.append(float(penalty.item()))
                    self.history.expected_footprint.append(e_exact)
                else:
                    alm = self.space.perms.alm_loss()
                    loss = task + alm
                    if cfg.penalty_on_weights and in_search:
                        penalty, e_exact = footprint_penalty(
                            self.space, self.penalty_config
                        )
                        if float(penalty.item()) > 0:  # over budget only
                            loss = loss + penalty
                    self.model.zero_grad()
                    for p in self.space.parameters():
                        p.grad = None
                    loss.backward()
                    if cfg.grad_clip:
                        clip_grad_norm_(weight_params, cfg.grad_clip)
                    w_opt.step()
                    self.space.perms.update_multipliers()
                    self.space.perms.step_rho()
                    self.history.alm_loss.append(float(alm.item()))
                self.history.task_loss.append(float(task.item()))
                self.history.perm_error.append(self.space.perms.permutation_error())
                self.history.mean_lambda.append(self.space.perms.mean_lambda())
                self.history.rho.append(self.space.perms.rho)
                step += 1
            self.history.epoch_boundaries.append(step)
            if cfg.verbose:
                probs = np.round(self.space.exec_probabilities(), 2)
                print(
                    f"[epoch {epoch}] task {self.history.task_loss[-1]:.3f} "
                    f"perm_err {self.history.perm_error[-1]:.4f} "
                    f"exec_probs {probs}"
                )
        if not self.space.perms.frozen:
            self._spl_tries = self.space.legalize_permutations(
                sigma=cfg.spl_sigma, rng=self.rng
            )
        topology = self.space.extract_topology(rng=self.rng)
        return ADEPTSearchResult(
            topology=topology, history=self.history, spl_tries=self._spl_tries
        )


def search_ptc(
    config: ADEPTConfig,
    train_set: Optional[Dataset] = None,
    test_set: Optional[Dataset] = None,
) -> ADEPTSearchResult:
    """One-call API: run an ADEPT search and return the result."""
    return ADEPTSearch(config, train_set=train_set, test_set=test_set).run()


def sample_candidate_topologies(
    space: SuperMeshSpace,
    n_candidates: int,
    rng: Optional[np.random.Generator] = None,
    max_tries: int = 200,
) -> List[PTCTopology]:
    """Draw up to ``n_candidates`` distinct feasible SubMeshes.

    Repeatedly calls :meth:`SuperMeshSpace.extract_topology` (which
    samples from the learned block distribution) and deduplicates by
    serialized structure.  Candidates can then be ranked in a single
    graph with :func:`rank_candidate_topologies`.
    """
    from ..utils.rng import get_rng

    rng = get_rng(rng) if rng is not None else space._rng
    out: List[PTCTopology] = []
    seen = set()
    for _ in range(4 * n_candidates):
        if len(out) >= n_candidates:
            break
        topo = space.extract_topology(rng=rng, max_tries=max_tries)
        key = topo.to_json()
        if key not in seen:
            seen.add(key)
            out.append(topo)
    return out


def rank_candidate_topologies(
    topologies,
    target: Optional[np.ndarray] = None,
    side: str = "u",
    steps: int = 200,
    lr: float = 0.05,
    rng: Optional[np.random.Generator] = None,
):
    """Score a population of candidate topologies in ONE fused graph.

    Fits every candidate's programmable phases to a common target
    unitary simultaneously (see
    :func:`repro.ptc.population.fit_unitary_population`) and returns
    the :class:`~repro.ptc.population.PopulationFitResult`, whose
    ``ranking`` orders candidates by expressivity.  With P candidates
    this costs one forward/backward per step total — the batched
    alternative to extracting and fitting SubMeshes one at a time.

    ``target=None`` draws a Haar-random unitary of the population's K.
    """
    from scipy.stats import unitary_group

    from ..ptc.population import fit_unitary_population
    from ..utils.rng import get_rng

    rng = get_rng(rng)
    if target is None:
        k = topologies[0].k
        target = unitary_group.rvs(k, random_state=int(rng.integers(0, 2**31 - 1)))
    return fit_unitary_population(
        topologies, target, side=side, steps=steps, lr=lr, rng=rng
    )
