"""Binarization-aware learning of directional-coupler placement
(paper section 3.3.3, Eq. 14).

Each DC slot carries a latent real weight t; its quantization is

    Q(t) = (sign(t) + 1) * (2 - sqrt(2)) / 4 + sqrt(2)/2
         = sqrt(2)/2   if t < 0   (a 50:50 coupler is placed)
         = 1           if t >= 0  (pass-through, no coupler)

Training uses a straight-through estimator whose gradient is scaled by
(2 - sqrt(2))/4 and clipped to [-1, 1].
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..autograd import Tensor, custom_grad
from ..nn.module import Module, Parameter
from ..utils.rng import get_rng

_SQRT2 = math.sqrt(2.0)
_STE_SCALE = (2.0 - _SQRT2) / 4.0


def quantize_t(t: np.ndarray) -> np.ndarray:
    """Hard binarization Q(t) in {sqrt(2)/2, 1} (numpy, no grad)."""
    return (np.sign(t) + 1.0) * _STE_SCALE + _SQRT2 / 2.0


def binarize_couplers(t: Tensor) -> Tensor:
    """Quantize latent coupler weights with the paper's clipped STE."""

    out = quantize_t(t.data)

    def backward(g: np.ndarray):
        return (np.clip(g * _STE_SCALE, -1.0, 1.0),)

    return custom_grad(out, (t,), backward)


def dc_count_expr(t_q: Tensor) -> Tensor:
    """Differentiable coupler count of Eq. (15).

    #DC = sum_i (2 Q(t_i) / (sqrt(2) - 2) + 2 / (2 - sqrt(2))); each
    term evaluates to 1 when a coupler is placed (Q = sqrt(2)/2) and to
    0 when not (Q = 1), while gradients flow through the STE.
    """
    a = 2.0 / (_SQRT2 - 2.0)
    b = 2.0 / (2.0 - _SQRT2)
    return (t_q * a + b).sum(axis=-1)


class CouplerLearner(Module):
    """Latent coupler placements for all SuperMesh blocks.

    Block ``b`` has ``(K - s_b) // 2`` coupler slots where
    ``s_b = b % 2`` — consecutive blocks interleave so light can reach
    non-adjacent waveguides (paper Fig. 1).  Slots are stored padded to
    the maximum count; a mask tracks validity.
    """

    def __init__(self, k: int, n_blocks: int, init_std: float = 0.1, rng=None):
        super().__init__()
        self.k = k
        self.n_blocks = n_blocks
        rng_ = get_rng(rng)
        self.offsets = np.array([b % 2 for b in range(n_blocks)])
        self.slot_counts = np.array([(k - off) // 2 for off in self.offsets])
        max_slots = int(self.slot_counts.max())
        self.max_slots = max_slots
        # Negative-mean init biases toward placing couplers early on, so
        # the warmup phase explores interference-rich topologies.
        init = rng_.normal(-0.05, init_std, size=(n_blocks, max_slots))
        self.latent = Parameter(init)
        mask = np.zeros((n_blocks, max_slots), dtype=bool)
        for b, cnt in enumerate(self.slot_counts):
            mask[b, :cnt] = True
        self.slot_mask = mask

    def quantized(self) -> Tensor:
        """(n_blocks, max_slots) binarized transmissions (STE grads)."""
        return binarize_couplers(self.latent)

    def block_transmissions(self, b: int) -> Tensor:
        """Quantized transmissions of block b's valid slots."""
        tq = self.quantized()
        return tq[b, : int(self.slot_counts[b])]

    def dc_counts(self) -> Tensor:
        """(n_blocks,) differentiable coupler counts (invalid slots = 0)."""
        tq = self.quantized()
        a = 2.0 / (_SQRT2 - 2.0)
        b = 2.0 / (2.0 - _SQRT2)
        per_slot = tq * a + b
        masked = per_slot * Tensor(self.slot_mask.astype(float))
        return masked.sum(axis=-1)

    def hard_masks(self) -> List[np.ndarray]:
        """Per-block boolean placement masks (True = coupler present)."""
        q = quantize_t(self.latent.data)
        out = []
        for b, cnt in enumerate(self.slot_counts):
            out.append(q[b, :cnt] < 1.0 - 1e-9)
        return out
