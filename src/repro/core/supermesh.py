"""Probabilistic photonic SuperMesh (paper section 3.3, Fig. 1-2).

The SuperMesh relaxes the discrete PTC design space into a trainable
supernet:

* every super block is PS column -> DC column -> CR layer;
* the **depth** of each unitary is stochastic: block b executes with
  probability given by Gumbel-softmax over its sampling coefficients
  ``theta_b`` (Eq. 5-7), with the last ``B_min/2`` blocks always on;
* the **CR layers** are relaxed doubly-stochastic matrices learned with
  ALM (:class:`~repro.core.permutation.PermutationLearner`);
* the **DC layers** are binarized with a straight-through estimator
  (:class:`~repro.core.coupler.CouplerLearner`);
* **phases and Sigma** are ordinary weights.

The topology (permutations, couplers, theta) is *shared* by every PTC
layer of the proxy model; each layer owns its per-block phases and
Sigma (:class:`SuperMeshCore`), mirroring Eq. (2) where the layout
``alpha`` is shared among all blocks.

Like the mesh factories in :mod:`repro.ptc.unitary`, the SuperMesh has
two build backends.  The default ``"fast"`` path assembles all DC
columns in one scatter, stacks the per-block transfer matrices with a
batched matmul, and runs each unitary as a single fused
:func:`repro.autograd.phase_column_cascade` node (including the
Gumbel execution gating).  ``backend="reference"`` keeps the original
per-block op loop as ground truth; parity between the two (forward and
gradients) is enforced by ``tests/core/test_supermesh_fastpath.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, custom_grad, l2_normalize, phase_column_cascade
from ..autograd import tensor as T
from ..nn import functional as F
from ..nn.module import Module, Parameter
from ..photonics.footprint import supermesh_block_bounds
from ..photonics.pdk import FoundryPDK
from ..utils.rng import get_rng
from .coupler import CouplerLearner
from .gumbel import categorical_probs, gumbel_softmax
from .permutation import PermutationLearner
from .spl import legalize_all
from .topology import BlockSpec, PTCTopology


@dataclass
class SuperMeshSample:
    """One sampled architecture state, shared by all cores in a step."""

    transfer: Tensor  # (n_blocks, K, K) complex stacked P~ @ T
    exec_prob: Tensor  # (n_blocks,) soft execution weights m_{b,2}

    @property
    def block_transfer(self) -> List[Tensor]:
        """Per-block (K, K) views of :attr:`transfer` (reference path)."""
        return [self.transfer[b] for b in range(self.transfer.shape[0])]


class SuperMeshSpace(Module):
    """Shared searchable state of the SuperMesh.

    Parameters
    ----------
    k: PTC size.
    pdk: foundry PDK (device areas).
    f_min, f_max: footprint constraint window in um^2.
    b_min, b_max: optional explicit total block bounds; when omitted
        they are derived analytically from the constraint (Eq. 16).
    """

    def __init__(
        self,
        k: int,
        pdk: FoundryPDK,
        f_min: float,
        f_max: float,
        b_min: Optional[int] = None,
        b_max: Optional[int] = None,
        rho0: Optional[float] = None,
        alm_total_steps: int = 2000,
        perm_init_jitter: float = 0.0,
        perm_init: str = "identity",
        rng=None,
    ):
        super().__init__()
        if b_min is None or b_max is None:
            auto_min, auto_max = supermesh_block_bounds(pdk, k, f_min, f_max)
            b_min = auto_min if b_min is None else b_min
            b_max = auto_max if b_max is None else b_max
        self.k = k
        self.pdk = pdk
        self.f_min = f_min
        self.f_max = f_max
        # Per-unitary super blocks; cap keeps supernets tractable.
        self.half_max = max(1, b_max // 2)
        self.half_min = max(1, min(b_min // 2, self.half_max))
        self.n_blocks = 2 * self.half_max
        self.n_searchable_per_side = self.half_max - self.half_min

        searchable = np.array(
            [self._searchable_index_static(b) is not None
             for b in range(self.n_blocks)]
        )
        # Vectorized block bookkeeping for the fast sample path: the
        # theta row feeding each global block (0 for always-on blocks,
        # which the mask filters out).
        self._searchable_mask = searchable
        self._theta_rows = np.array(
            [si if si is not None else 0
             for si in map(self._searchable_index_static, range(self.n_blocks))]
        )
        self.perms = PermutationLearner(
            k,
            self.n_blocks,
            rho0=rho0,
            total_steps=alm_total_steps,
            init_jitter=perm_init_jitter,
            init=perm_init,
            shuffle_mask=searchable,
            rng=rng,
        )
        self.couplers = CouplerLearner(k, self.n_blocks, rng=rng)
        # Flattened (block, slot, waveguide) indices of every valid DC
        # slot plus the pass-through diagonal of each column — the
        # scatter pattern of the batched DC-column assembly.
        blk, slot = np.nonzero(self.couplers.slot_mask)
        pos = self.couplers.offsets[blk] + 2 * slot
        self._dc_blk, self._dc_slot, self._dc_pos = blk, slot, pos
        covered = np.zeros((self.n_blocks, k), dtype=bool)
        covered[blk, pos] = True
        covered[blk, pos + 1] = True
        diag = np.zeros((self.n_blocks, k, k), dtype=complex)
        idx = np.arange(k)
        diag[:, idx, idx] = (~covered).astype(complex)
        self._dc_diag = diag
        n_search = 2 * self.n_searchable_per_side
        # theta[:, 0] = skip logit, theta[:, 1] = execute logit.
        self.theta = Parameter(np.zeros((max(1, n_search), 2)))
        self._has_search = n_search > 0
        self.current: Optional[SuperMeshSample] = None
        self._rng = get_rng(rng)

    # -- block bookkeeping -------------------------------------------------
    def _searchable_index_static(self, global_b: int):
        side = 0 if global_b < self.half_max else 1
        local = global_b - side * self.half_max
        if local >= self.n_searchable_per_side:
            return None
        return side * self.n_searchable_per_side + local

    def side_blocks(self, side: str) -> range:
        """Global block indices of unitary 'u' or 'v'."""
        if side == "u":
            return range(0, self.half_max)
        if side == "v":
            return range(self.half_max, self.n_blocks)
        raise ValueError("side must be 'u' or 'v'")

    def _searchable_index(self, global_b: int) -> Optional[int]:
        """Map a global block index to its theta row (None = always-on).

        Within each side, the *last* half_min blocks are always on
        (paper: lower-bounds the search space).
        """
        return self._searchable_index_static(global_b)

    # -- sampling ------------------------------------------------------------
    def _dc_columns(self) -> Tensor:
        """(n_blocks, K, K) differentiable DC-column matrices.

        Batched equivalent of :func:`_dc_matrix_from_transmissions`:
        all blocks' quantized transmissions are turned into column
        matrices with a single scatter, so STE gradients reach the
        coupler latents through one graph node instead of O(B).
        """
        tq = self.couplers.quantized()  # (n_blocks, max_slots)
        one_minus = T.clip(1.0 - tq * tq, 0.0, 1.0)
        s = T.sqrt(one_minus + 1e-12)
        js = T.mul(Tensor(np.array(1j)), s)
        tc = tq.astype(np.complex128)
        blk, slot, pos = self._dc_blk, self._dc_slot, self._dc_pos
        out = self._dc_diag.copy()
        out[blk, pos, pos] = tc.data[blk, slot]
        out[blk, pos + 1, pos + 1] = tc.data[blk, slot]
        out[blk, pos, pos + 1] = js.data[blk, slot]
        out[blk, pos + 1, pos] = js.data[blk, slot]

        def backward(g: np.ndarray):
            gt = np.zeros(tc.shape, dtype=complex)
            gj = np.zeros(js.shape, dtype=complex)
            gt[blk, slot] = g[blk, pos, pos] + g[blk, pos + 1, pos + 1]
            gj[blk, slot] = g[blk, pos, pos + 1] + g[blk, pos + 1, pos]
            return gt, gj

        return custom_grad(out, (tc, js), backward)

    def sample(
        self,
        tau: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        stochastic: bool = True,
    ) -> SuperMeshSample:
        """Draw an architecture sample and cache it as ``current``.

        ``stochastic=False`` uses noise-free selection probabilities
        (used for expected-footprint evaluation and deterministic eval).

        The whole sample is assembled with batched ops: one scatter for
        all DC columns, one batched matmul against the relaxed
        permutations, and one gather/where pair for the execution
        probabilities.
        """
        rng = rng if rng is not None else self._rng
        p_tilde = self.perms.relaxed()  # (n_blocks, K, K)
        transfer = p_tilde.astype(np.complex128) @ self._dc_columns()
        if self._has_search:
            if stochastic:
                m = gumbel_softmax(self.theta, tau, rng=rng)  # (n_search, 2)
            else:
                m = categorical_probs(self.theta)
            gathered = m[self._theta_rows, np.ones(self.n_blocks, dtype=int)]
            exec_prob = T.where(
                self._searchable_mask, gathered, Tensor(np.ones(self.n_blocks))
            )
        else:
            exec_prob = Tensor(np.ones(self.n_blocks))
        sample = SuperMeshSample(transfer=transfer, exec_prob=exec_prob)
        self.current = sample
        return sample

    def exec_probabilities(self) -> np.ndarray:
        """Noise-free execution probability of every global block."""
        probs = np.ones(self.n_blocks)
        if self._has_search:
            soft = categorical_probs(self.theta).data
            mask = self._searchable_mask
            probs[mask] = soft[self._theta_rows[mask], 1]
        return probs

    # -- architecture parameter group ---------------------------------------
    def arch_parameters(self) -> List[Parameter]:
        return [self.theta]

    def weight_parameters(self) -> List[Parameter]:
        out = [self.couplers.latent]
        if not self.perms.frozen:
            out.append(self.perms.raw)
        return out

    # -- legalization ----------------------------------------------------------
    def legalize_permutations(
        self, sigma: float = 0.05, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Run SPL on every CR layer and freeze them (paper: epoch 50)."""
        relaxed = self.perms.relaxed().data
        legal, tries = legalize_all(relaxed, sigma=sigma, rng=rng or self._rng)
        self.perms.freeze_to(legal)
        return tries

    # -- topology extraction ------------------------------------------------
    def extract_topology(
        self,
        rng: Optional[np.random.Generator] = None,
        max_tries: int = 200,
        name: str = "adept",
    ) -> PTCTopology:
        """Derive a discrete PTC design from the trained SuperMesh.

        Samples SubMeshes from the learned block distribution until the
        exact footprint satisfies the constraint (paper section 4.1);
        falls back to a greedy probability-ordered selection.
        """
        rng = rng if rng is not None else self._rng
        if not self.perms.frozen:
            self.legalize_permutations(rng=rng)
        probs = self.exec_probabilities()
        coupler_masks = self.couplers.hard_masks()
        perms = self.perms.raw.data  # legal permutation matrices

        def build(selected: np.ndarray) -> PTCTopology:
            blocks_u, blocks_v = [], []
            for b in range(self.n_blocks):
                if not selected[b]:
                    continue
                perm_idx = np.argmax(perms[b], axis=1)
                perm = None if np.array_equal(perm_idx, np.arange(self.k)) else perm_idx
                spec = BlockSpec(
                    coupler_mask=coupler_masks[b].copy(),
                    offset=int(self.couplers.offsets[b]),
                    perm=perm,
                )
                (blocks_u if b < self.half_max else blocks_v).append(spec)
            return PTCTopology(
                k=self.k,
                blocks_u=blocks_u,
                blocks_v=blocks_v,
                name=name,
                pdk_name=self.pdk.name,
                footprint_constraint=(self.f_min, self.f_max),
            )

        def feasible(topo: PTCTopology) -> bool:
            if not topo.blocks_u or not topo.blocks_v:
                return False
            f = topo.footprint(self.pdk).total
            return self.f_min <= f <= self.f_max

        # 1) Stochastic SubMesh sampling from P_theta; among feasible
        # samples prefer the one spending least area on crossings (the
        # paper's designs "avoid using many crossings" under strict
        # budgets).
        best_feasible = None
        best_cr_area = np.inf
        for _ in range(max_tries):
            selected = rng.random(self.n_blocks) < probs
            for b in range(self.n_blocks):
                if self._searchable_index(b) is None:
                    selected[b] = True
            topo = build(selected)
            if feasible(topo):
                cr_area = topo.device_counts()[2] * self.pdk.cr_area
                if cr_area < best_cr_area:
                    best_feasible, best_cr_area = topo, cr_area
        if best_feasible is not None:
            return best_feasible
        # 2) Greedy fallback: most-probable blocks first until feasible.
        order = np.argsort(-probs)
        selected = np.array(
            [self._searchable_index(b) is None for b in range(self.n_blocks)]
        )
        best = build(selected)
        for b in order:
            if selected[b]:
                continue
            selected[b] = True
            cand = build(selected)
            if cand.footprint(self.pdk).total > self.f_max:
                selected[b] = False
                continue
            best = cand
            if feasible(best):
                return best
        return best


def _dc_matrix_from_transmissions(ts: Tensor, k: int, offset: int) -> Tensor:
    """Differentiable K x K DC-column matrix from quantized transmissions.

    Mirrors :func:`repro.photonics.devices.dc_layer_matrix` but takes an
    autograd tensor of (already binarized) transmissions so STE
    gradients reach the coupler latents.
    """
    from ..photonics.devices import scatter_matrix

    n = int(ts.shape[0])
    if n == 0:
        return Tensor(np.eye(k, dtype=complex))
    pos = offset + 2 * np.arange(n)
    one_minus = T.clip(1.0 - ts * ts, 0.0, 1.0)
    s = T.sqrt(one_minus + 1e-12)
    js = T.mul(Tensor(np.array(1j)), s)
    tc = ts.astype(np.complex128)
    rows = np.concatenate([pos, pos + 1, pos, pos + 1])
    cols = np.concatenate([pos, pos + 1, pos + 1, pos])
    vals = T.concat([tc, tc, js, js], axis=0)
    mat = scatter_matrix(vals, rows, cols, (k, k))
    covered = np.zeros(k, dtype=bool)
    covered[pos] = True
    covered[pos + 1] = True
    return mat + Tensor(np.diag((~covered).astype(complex)))


class SuperMeshCore(Module):
    """Per-layer weights of a SuperMesh-backed USV block matrix.

    Owns phases (n_units, n_blocks, K) and Sigma (n_units, K); the
    topology state lives in the shared :class:`SuperMeshSpace`.  The
    forward pass consumes ``space.current`` — the trainer samples the
    architecture once per step so all layers see the same SubMesh.

    ``backend="fast"`` (default) builds each unitary as one fused
    cascade node; ``backend="reference"`` keeps the per-block op loop
    (see the module docstring).
    """

    def __init__(
        self,
        space: SuperMeshSpace,
        rows: int,
        cols: int,
        rng=None,
        backend: Optional[str] = None,
        exec_backend=None,
    ):
        super().__init__()
        # Imported lazily: repro.ptc pulls in repro.core.topology at
        # package-import time, so a module-level import would cycle.
        from ..ptc.unitary import _BACKENDS, DEFAULT_BACKEND

        backend = DEFAULT_BACKEND if backend is None else backend
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        #: Execution backend (array engine / dtype) for the fused
        #: cascade, or None to follow the process-wide default.
        self.exec_backend = exec_backend
        self.space = space
        self.rows = rows
        self.cols = cols
        k = space.k
        self.k = k
        self.p = math.ceil(rows / k)
        self.q = math.ceil(cols / k)
        self.n_units = self.p * self.q
        rng_ = get_rng(rng)
        self.phases = Parameter(
            rng_.uniform(0, 2 * math.pi, size=(self.n_units, space.n_blocks, k))
        )
        bound = 2.0 * math.sqrt(3.0 * k / max(1, cols))
        self.sigma = Parameter(rng_.uniform(-bound, bound, size=(self.n_units, k)))
        self.noise_std = 0.0
        self._rng = rng_
        # Constant tensors reused across fast forwards (graph leaves
        # without gradients are safe to share between graphs).
        self._neg_j = Tensor(np.array(-1j))
        self._tile_consts = Tensor(np.ones((2, self.n_units, 1, 1, 1)))
        self._tile_gates = Tensor(np.ones((2, self.n_units, 1)))

    def _noisy_phases(self) -> Tensor:
        phases = self.phases
        if self.noise_std > 0.0:
            phases = phases + Tensor(
                self._rng.normal(0.0, self.noise_std, size=phases.shape)
            )
        return phases

    def _unitaries_fast(self, sample: SuperMeshSample) -> Tuple[Tensor, Tensor]:
        """Fused build of BOTH unitaries as one cascade node.

        The U and V sides are independent chains of equal length
        (``half_max`` blocks each), so they fold into the cascade's
        batch dimension: one call runs half as many sequential batched
        matmuls as two per-side calls would.
        """
        n, k = self.n_units, self.k
        half = self.space.half_max
        ps_all = T.exp(
            T.mul(self._neg_j, self._noisy_phases())
        )  # (n_units, n_blocks, K)
        # Fold the side axis into the mesh batch: (2 * n_units, half, ...).
        ps = (
            ps_all.reshape((n, 2, half, k))
            .transpose((1, 0, 2, 3))
            .reshape((2 * n, half, k))
        )
        # Per-mesh constants/gates: tile each side's blocks across its
        # n_units meshes (the ones-multiply broadcast keeps gradients
        # flowing back to the shared sample tensors).
        consts = (
            sample.transfer.reshape((2, 1, half, k, k)) * self._tile_consts
        ).reshape((2 * n, half, k, k))
        gates = (
            sample.exec_prob.reshape((2, 1, half)) * self._tile_gates
        ).reshape((2 * n, half))
        uv = phase_column_cascade(consts, ps, gates, backend=self.exec_backend)
        uv = uv.reshape((2, n, k, k))
        return uv[0], uv[1]

    def _unitary(self, sample: SuperMeshSample, side: str) -> Tensor:
        """Reference per-block build (ground truth for the fast path)."""
        k = self.k
        u: Optional[Tensor] = None
        eye = Tensor(np.eye(k, dtype=complex))
        phases = self._noisy_phases()
        block_transfer = sample.block_transfer
        for b in self.space.side_blocks(side):
            ps = T.exp(
                T.mul(Tensor(np.array(-1j)), phases[:, b, :])
            )  # (n_units, K)
            cb = block_transfer[b]  # (K, K)
            if u is None:
                block = cb * ps.reshape((self.n_units, 1, k))
            else:
                block = cb @ (ps.reshape((self.n_units, k, 1)) * u)
            m = sample.exec_prob[b]
            skip = eye if u is None else u
            u = m * block + (1.0 - m) * skip
        assert u is not None
        return u

    def forward(self) -> Tensor:
        sample = self.space.current
        if sample is None:
            sample = self.space.sample(stochastic=False)
        # Stabilization (paper 3.3.2): row-normalize U, column-normalize V
        # so the cascade of relaxed (non-orthogonal) CR layers keeps
        # healthy statistics.  No-op once U, V are true unitaries.
        if self.backend == "fast":
            u, v = self._unitaries_fast(sample)
            u = l2_normalize(u, axis=-1)
            v = l2_normalize(v, axis=-2)
        else:
            u = self._unitary(sample, "u")
            v = self._unitary(sample, "v")
            u = u / (T.sum_(u * u.conj(), axis=-1, keepdims=True).real() + 1e-12).sqrt().astype(
                np.complex128
            )
            v = v / (T.sum_(v * v.conj(), axis=-2, keepdims=True).real() + 1e-12).sqrt().astype(
                np.complex128
            )
        # Sigma follows the built dtype (complex64 under a forward-only
        # low-precision execution backend, complex128 otherwise).
        cdtype = np.result_type(u.data.dtype, np.complex64)
        sv = self.sigma.astype(cdtype).reshape((self.n_units, self.k, 1)) * v
        blocks = (u @ sv).real()
        w = blocks.reshape((self.p, self.q, self.k, self.k))
        w = w.transpose((0, 2, 1, 3)).reshape((self.p * self.k, self.q * self.k))
        if self.p * self.k != self.rows or self.q * self.k != self.cols:
            w = w[: self.rows, : self.cols]
        return w


class SuperMeshLinear(Module):
    """Fully-connected layer backed by a SuperMesh core."""

    def __init__(
        self,
        space: SuperMeshSpace,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.core = SuperMeshCore(space, out_features, in_features, rng=rng)
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.core(), self.bias)


class SuperMeshConv2d(Module):
    """Convolution backed by a SuperMesh core (im2col lowering)."""

    def __init__(
        self,
        space: SuperMeshSpace,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.core = SuperMeshCore(space, out_channels, in_channels * kh * kw, rng=rng)
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        kh, kw = self.kernel_size
        w = self.core().reshape((self.out_channels, self.in_channels, kh, kw))
        return F.conv2d(x, w, self.bias, stride=self.stride, padding=self.padding)
