"""Searched PTC topology artifact.

The output of an ADEPT search is a *topology*: the block count of each
unitary (B_U, B_V), the CR-layer permutation of every block, and the
DC-layer coupler placement of every block.  Phases are **not** part of
a topology — they remain programmable after fabrication and are trained
per task (variation-aware retraining).

Topologies serialize to JSON so searched designs can be shipped,
compared, and instantiated into ONN layers
(:class:`repro.onn.layers.PTCLinear` accepts a topology as its mesh).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..photonics.crossings import count_inversions
from ..photonics.footprint import FootprintBreakdown
from ..photonics.pdk import FoundryPDK


@dataclass
class BlockSpec:
    """One SuperMesh block: PS column + DC column + CR network."""

    coupler_mask: np.ndarray  # bool, one per slot
    offset: int  # 0 or 1 (DC column interleave)
    perm: Optional[np.ndarray] = None  # index vector; None = identity

    def n_dc(self) -> int:
        return int(np.asarray(self.coupler_mask).sum())

    def n_cr(self) -> int:
        if self.perm is None:
            return 0
        return count_inversions(list(self.perm))

    def to_dict(self) -> dict:
        return {
            "coupler_mask": [bool(x) for x in np.asarray(self.coupler_mask)],
            "offset": int(self.offset),
            "perm": None if self.perm is None else [int(x) for x in self.perm],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BlockSpec":
        return cls(
            coupler_mask=np.asarray(d["coupler_mask"], dtype=bool),
            offset=int(d["offset"]),
            perm=None if d.get("perm") is None else np.asarray(d["perm"], dtype=int),
        )


@dataclass
class PTCTopology:
    """A complete searched PTC design for the blocked USV layer."""

    k: int
    blocks_u: List[BlockSpec] = field(default_factory=list)
    blocks_v: List[BlockSpec] = field(default_factory=list)
    name: str = "adept"
    pdk_name: str = ""
    footprint_constraint: Tuple[float, float] = (0.0, float("inf"))

    # -- accounting -------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return len(self.blocks_u) + len(self.blocks_v)

    def device_counts(self) -> Tuple[int, int, int]:
        """(n_ps, n_dc, n_cr) over all blocks of U and V."""
        blocks = self.blocks_u + self.blocks_v
        n_ps = self.k * len(blocks)
        n_dc = sum(b.n_dc() for b in blocks)
        n_cr = sum(b.n_cr() for b in blocks)
        return n_ps, n_dc, n_cr

    def footprint(self, pdk: FoundryPDK) -> FootprintBreakdown:
        n_ps, n_dc, n_cr = self.device_counts()
        return FootprintBreakdown(
            n_ps=n_ps,
            n_dc=n_dc,
            n_cr=n_cr,
            total=pdk.footprint(n_ps, n_dc, n_cr),
            n_blocks=self.n_blocks,
        )

    def summary(self, pdk: Optional[FoundryPDK] = None) -> str:
        n_ps, n_dc, n_cr = self.device_counts()
        s = (
            f"PTCTopology {self.name!r}: K={self.k}, "
            f"#Blk={self.n_blocks} (U:{len(self.blocks_u)} V:{len(self.blocks_v)}), "
            f"#PS={n_ps}, #DC={n_dc}, #CR={n_cr}"
        )
        if pdk is not None:
            s += f", footprint={self.footprint(pdk).in_paper_units():.1f}k um^2 [{pdk.name}]"
        return s

    # -- serialization ------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "k": self.k,
                "name": self.name,
                "pdk_name": self.pdk_name,
                "footprint_constraint": list(self.footprint_constraint),
                "blocks_u": [b.to_dict() for b in self.blocks_u],
                "blocks_v": [b.to_dict() for b in self.blocks_v],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "PTCTopology":
        d = json.loads(text)
        return cls(
            k=int(d["k"]),
            name=d.get("name", "adept"),
            pdk_name=d.get("pdk_name", ""),
            footprint_constraint=tuple(d.get("footprint_constraint", (0.0, float("inf")))),
            blocks_u=[BlockSpec.from_dict(b) for b in d["blocks_u"]],
            blocks_v=[BlockSpec.from_dict(b) for b in d["blocks_v"]],
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PTCTopology":
        return cls.from_json(Path(path).read_text())


def random_topology(
    k: int,
    n_blocks_u: int,
    n_blocks_v: int,
    rng: np.random.Generator,
    coupler_density: float = 0.7,
    permute_prob: float = 0.5,
    name: str = "random",
) -> PTCTopology:
    """A random topology in ADEPT's search space (baseline / testing)."""

    def make_block(b: int) -> BlockSpec:
        offset = b % 2
        slots = (k - offset) // 2
        mask = rng.random(slots) < coupler_density
        if not mask.any():
            mask[int(rng.integers(0, slots))] = True
        perm = rng.permutation(k) if rng.random() < permute_prob else None
        return BlockSpec(coupler_mask=mask, offset=offset, perm=perm)

    return PTCTopology(
        k=k,
        blocks_u=[make_block(b) for b in range(n_blocks_u)],
        blocks_v=[make_block(b) for b in range(n_blocks_v)],
        name=name,
    )
