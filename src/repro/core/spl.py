"""Stochastic permutation legalization (SPL, paper Eq. 13 / Fig. 3).

The ALM relaxation does not guarantee convergence to a *legal*
permutation — it can stall on saddle points where two rows tie on the
same column.  SPL forces legality:

1. ``Softmax(P / tau), tau -> 0+`` — row-wise hard argmax (binarize).
2. SVD projection ``P S Q* = SVD(...)`` and take ``|U V^H|`` — the
   closest orthogonal matrix, which pushes mass away from saddle
   points.
3. Add Gaussian perturbations ``delta ~ N(0, sigma^2)`` to break row
   ties, re-binarize, and check legality; repeat until a legal
   permutation appears.

A deterministic Hungarian-assignment fallback guarantees termination
(used only if the stochastic loop exhausts its budget, which the test
suite shows is rare).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..photonics.crossings import count_inversions, is_permutation_matrix
from ..utils.rng import get_rng


def _row_argmax_binarize(p: np.ndarray) -> np.ndarray:
    """Softmax(P / tau) in the tau -> 0+ limit: row-wise one-hot."""
    out = np.zeros_like(p, dtype=float)
    out[np.arange(p.shape[0]), np.argmax(p, axis=1)] = 1.0
    return out


def _orthogonal_projection(p: np.ndarray) -> np.ndarray:
    """Polar/SVD projection onto the orthogonal group: U @ V^H."""
    u, _, vh = np.linalg.svd(p)
    return u @ vh


def legalize_one(
    p_relaxed: np.ndarray,
    sigma: float = 0.05,
    max_tries: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, int]:
    """Legalize a single relaxed K x K matrix.

    Returns ``(P_legal, tries)``; ``tries`` counts stochastic rounds
    (0 means the straight binarization was already legal).  Among legal
    candidates encountered, the one with the fewest crossings is kept —
    SPL should not inflate the CR budget ("without introducing too many
    extra crossings").
    """
    rng = get_rng(rng)
    p = np.asarray(p_relaxed, dtype=float)
    k = p.shape[0]

    binarized = _row_argmax_binarize(p)
    if is_permutation_matrix(binarized):
        return binarized, 0

    q_star = _orthogonal_projection(binarized)
    base = np.abs(q_star)
    best: Optional[np.ndarray] = None
    best_crossings = np.inf
    for attempt in range(1, max_tries + 1):
        noisy = base + rng.normal(0.0, sigma, size=base.shape)
        cand = _row_argmax_binarize(noisy)
        if is_permutation_matrix(cand):
            crossings = count_inversions(list(np.argmax(cand, axis=1)))
            if crossings < best_crossings:
                best, best_crossings = cand, crossings
            # A handful of legal samples is enough to pick a cheap one.
            if attempt >= 10 and best is not None:
                return best, attempt
    if best is not None:
        return best, max_tries
    # Deterministic fallback: maximum-weight assignment on the relaxed
    # scores — always a legal permutation.
    rows, cols = linear_sum_assignment(-p)
    fallback = np.zeros_like(p)
    fallback[rows, cols] = 1.0
    return fallback, max_tries


def legalize_all(
    p_relaxed: np.ndarray,
    sigma: float = 0.05,
    max_tries: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Legalize a stack (B, K, K) of relaxed permutations.

    Returns ``(P_legal, tries)`` with shapes (B, K, K) and (B,).
    """
    rng = get_rng(rng)
    p = np.asarray(p_relaxed, dtype=float)
    out = np.empty_like(p)
    tries = np.empty(p.shape[0], dtype=int)
    for b in range(p.shape[0]):
        out[b], tries[b] = legalize_one(p[b], sigma=sigma, max_tries=max_tries, rng=rng)
    return out, tries
