"""Variation-aware training and noise-robustness evaluation (paper
section 4.1-4.2, Fig. 4).

After the topology search, target ONNs are retrained with Gaussian
phase noise Delta-phi ~ N(0, sigma^2) injected into every phase shifter
(sigma = 0.02 in the paper), which makes the deployed circuit robust to
thermal crosstalk and control quantization.  Robustness is then
evaluated by sweeping the inference-time noise intensity and averaging
over repeated noisy runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data import Dataset
from ..nn import Module
from ..onn.layers import set_model_phase_noise
from ..onn.trainer import TrainConfig, TrainResult, evaluate, train
from ..utils.rng import spawn_rng
from .supermesh import SuperMeshCore


def _set_any_phase_noise(model: Module, std: float) -> int:
    """Set phase noise on PTC cores and SuperMesh cores alike."""
    count = set_model_phase_noise(model, std)
    for m in model.modules():
        if isinstance(m, SuperMeshCore):
            m.noise_std = std
            count += 1
    return count


def variation_aware_train(
    model: Module,
    train_set: Dataset,
    test_set: Optional[Dataset] = None,
    noise_std: float = 0.02,
    config: Optional[TrainConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> TrainResult:
    """Train ``model`` with phase-noise injection enabled.

    Noise is active during training batches and disabled for the test
    evaluations inside the loop (clean accuracy is reported; noisy
    accuracy comes from :func:`noise_robustness_curve`).
    """
    n_cores = _set_any_phase_noise(model, noise_std)
    if n_cores == 0:
        raise ValueError("model has no photonic cores to inject noise into")
    try:
        result = train(model, train_set, test_set, config=config, rng=rng)
    finally:
        _set_any_phase_noise(model, 0.0)
    return result


@dataclass
class RobustnessPoint:
    """Accuracy statistics at one phase-noise intensity."""

    noise_std: float
    mean_acc: float
    std_acc: float
    runs: List[float]


def noise_robustness_curve(
    model: Module,
    test_set: Dataset,
    noise_stds: Sequence[float] = (0.02, 0.04, 0.06, 0.08, 0.10),
    n_runs: int = 20,
    seed: int = 0,
) -> List[RobustnessPoint]:
    """Accuracy-vs-noise curve (paper Fig. 4; +-3 sigma over n_runs).

    Each run draws fresh phase noise in every photonic core, evaluates
    clean-labels accuracy on ``test_set``, and restores the model.
    """
    points: List[RobustnessPoint] = []
    for std in noise_stds:
        accs: List[float] = []
        for run in range(n_runs):
            # Reseed core RNGs per run for independent noise draws.
            rng = spawn_rng(hash((seed, float(std), run)) % (2**31))
            _seed_core_rngs(model, rng)
            _set_any_phase_noise(model, std)
            try:
                accs.append(evaluate(model, test_set))
            finally:
                _set_any_phase_noise(model, 0.0)
        arr = np.asarray(accs)
        points.append(
            RobustnessPoint(
                noise_std=float(std),
                mean_acc=float(arr.mean()),
                std_acc=float(arr.std()),
                runs=accs,
            )
        )
    return points


def _seed_core_rngs(model: Module, rng: np.random.Generator) -> None:
    from ..onn.layers import BlockUSV

    for m in model.modules():
        if isinstance(m, BlockUSV):
            m.u_factory._rng = rng
            m.v_factory._rng = rng
        elif isinstance(m, SuperMeshCore):
            m._rng = rng
