"""Variation-aware training and Monte-Carlo noise-robustness evaluation
(paper section 4.1-4.2, Fig. 4).

After the topology search, target ONNs are retrained with Gaussian
phase noise Delta-phi ~ N(0, sigma^2) injected into every phase shifter
(sigma = 0.02 in the paper), which makes the deployed circuit robust to
thermal crosstalk and control quantization.  Robustness is then
evaluated by sweeping the inference-time noise intensity and averaging
over repeated noisy runs.

Trial-batched Monte-Carlo engine
--------------------------------
The Fig. 4 sweep evaluates ``len(noise_stds) x n_runs`` independent
noisy realizations of one trained model.  Naively that is one full
test-set pass per realization, with every noisy build bypassing the
eval-mode unitary cache.  :func:`evaluate_noise_grid` instead treats a
realization as a *trial*:

1. phase-noise offsets for **all** trials are drawn in one call per
   mesh factory (:meth:`~repro.ptc.unitary.UnitaryFactory.draw_trial_noise`),
2. each factory builds its ``(T, n_units, K, K)`` stack of noisy
   transfer matrices through one forward-only fused cascade
   (:meth:`~repro.ptc.unitary.UnitaryFactory.build_trials`),
3. the resulting per-trial effective weights are frozen into
   lightweight :class:`~repro.onn.layers.FrozenPhotonicView` wrappers
   and the whole grid is scored in a single shared pass over the test
   data via :func:`~repro.onn.trainer.evaluate_population`.

``backend="reference"`` keeps the sequential loop — per-trial
per-column builds and one test-set pass per trial — as the parity and
benchmark baseline (``benchmarks/test_perf_robustness.py`` gates the
speedup).  Both backends consume the *same* pre-drawn noise offsets,
so their per-run accuracies agree exactly at a fixed seed.

Trial stacks default to the complex64 execution backend
(:data:`TRIAL_EXEC_BACKEND`) — Monte-Carlo builds are forward-only, so
the half-precision complex lane halves their memory traffic without
touching any training numerics; pass ``exec_backend="numpy"`` for full
double precision.

Noise semantics: each run is one frozen noisy chip realization (drawn
once per trial), matching the paper's "repeated noisy runs".  Models
containing :class:`SuperMeshCore` fall back to the legacy resampling
loop, which redraws noise inside every forward.

:func:`scenario_robustness_grid` extends the same engine to the
fabrication axis: F frozen fabrication samples x S phase-noise levels
x R runs, with the per-sample passive errors entering the fused build
as per-trial constant block stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data import Dataset
from ..nn import Module
from ..onn.layers import (
    BlockUSV,
    FrozenPhotonicView,
    photonic_cores,
    set_model_phase_noise,
)
from ..onn.trainer import TrainConfig, TrainResult, evaluate, evaluate_population, train
from ..utils.rng import spawn_rng, stable_seed
from .supermesh import SuperMeshCore


def _set_any_phase_noise(model: Module, std: float) -> int:
    """Set phase noise on PTC cores and SuperMesh cores alike."""
    count = set_model_phase_noise(model, std)
    for m in model.modules():
        if isinstance(m, SuperMeshCore):
            m.noise_std = std
            count += 1
    return count


def variation_aware_train(
    model: Module,
    train_set: Dataset,
    test_set: Optional[Dataset] = None,
    noise_std: float = 0.02,
    config: Optional[TrainConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> TrainResult:
    """Train ``model`` with phase-noise injection enabled.

    Noise is active during training batches and disabled for the test
    evaluations inside the loop (clean accuracy is reported; noisy
    accuracy comes from :func:`noise_robustness_curve`).
    """
    n_cores = _set_any_phase_noise(model, noise_std)
    if n_cores == 0:
        raise ValueError("model has no photonic cores to inject noise into")
    try:
        result = train(model, train_set, test_set, config=config, rng=rng)
    finally:
        _set_any_phase_noise(model, 0.0)
    return result


@dataclass
class RobustnessPoint:
    """Accuracy statistics at one phase-noise intensity."""

    noise_std: float
    mean_acc: float
    std_acc: float
    runs: List[float]


# ----------------------------------------------------------------------
# Trial-batched Monte-Carlo engine
# ----------------------------------------------------------------------

_ENGINE_BACKENDS = ("fast", "reference")

#: Default execution backend for Monte-Carlo trial stacks.  Trials are
#: forward-only by construction, so they default to the complex64 fast
#: lane — halving the memory traffic of the (T, n_units, K, K) builds —
#: while accuracies stay within Monte-Carlo resolution of complex128.
#: Pass ``exec_backend="numpy"`` to any grid entry point to force full
#: precision.
TRIAL_EXEC_BACKEND = "numpy-c64"


def _draw_grid_offsets(
    cores: Sequence[BlockUSV],
    scenario_stds: np.ndarray,
    rng: np.random.Generator,
) -> List[Tuple[Tuple[np.ndarray, ...], Tuple[np.ndarray, ...]]]:
    """Pre-draw phase-noise offsets for every (core, trial).

    One deterministic draw order — cores in traversal order, U mesh
    before V mesh — consumed identically by both engine backends, so
    parity holds by construction.
    """
    draws = []
    for core in cores:
        off_u = core.u_factory.draw_trial_noise(scenario_stds, rng)
        off_v = core.v_factory.draw_trial_noise(scenario_stds, rng)
        draws.append((off_u, off_v))
    return draws


def _run_weight_trials(
    model: Module,
    cores: Sequence[BlockUSV],
    offsets,
    test_set: Dataset,
    backend: str,
    batch_size: int,
    const_stacks=None,
    exec_backend=None,
) -> np.ndarray:
    """Score T frozen noisy realizations of ``model``; returns (T,).

    ``backend="fast"``: every core builds all trials in one fused op
    and the trials share a single pass over ``test_set``.
    ``backend="reference"``: the sequential baseline — per trial, the
    trial's phase offsets are installed into the factories and a full
    :func:`evaluate` pass runs, so every batch pays a mesh rebuild
    (the offsets bypass the eval-mode build cache).  That matches the
    pre-engine loop's *cost structure*; the noise semantics differ
    deliberately — one frozen realization per run (a deployed noisy
    chip) instead of the old per-batch redraw, which averaged noise
    within a run and understated the run-to-run variance.  Both
    backends consume identical offsets, so their per-run accuracies
    agree at a fixed seed.

    ``exec_backend`` selects the array engine / dtype of the trial
    builds; None uses :data:`TRIAL_EXEC_BACKEND` (the complex64 fast
    lane).  The reference backend installs the same execution backend
    on the factories, so both engine backends produce bitwise-identical
    noisy weights at a fixed seed regardless of precision.
    """
    if backend not in _ENGINE_BACKENDS:
        raise ValueError(
            f"backend must be one of {_ENGINE_BACKENDS}, got {backend!r}"
        )
    eb = TRIAL_EXEC_BACKEND if exec_backend is None else exec_backend
    if const_stacks is None:
        const_stacks = [(None, None)] * len(cores)
    n_trials = len(offsets[0][0][0])
    if backend == "fast":
        weights = [
            core.build_weight_trials(
                off_u,
                off_v,
                backend="fast",
                const_stacks_u=cu,
                const_stacks_v=cv,
                exec_backend=eb,
            )
            for core, (off_u, off_v), (cu, cv) in zip(cores, offsets, const_stacks)
        ]
        views = [
            FrozenPhotonicView(model, [(c, w[t]) for c, w in zip(cores, weights)])
            for t in range(n_trials)
        ]
        return np.asarray(evaluate_population(views, test_set, batch_size=batch_size))

    accs = np.empty(n_trials)
    saved_consts = [
        (
            None if cu is None else list(core.u_factory._const),
            None if cv is None else list(core.v_factory._const),
        )
        for core, (cu, cv) in zip(cores, const_stacks)
    ]
    saved_exec = [
        (core.u_factory.exec_backend, core.v_factory.exec_backend)
        for core in cores
    ]
    try:
        for core in cores:
            core.u_factory.exec_backend = eb
            core.v_factory.exec_backend = eb
        for t in range(n_trials):
            for core, (off_u, off_v), (cu, cv) in zip(cores, offsets, const_stacks):
                core.u_factory.trial_phase_offsets = tuple(o[t] for o in off_u)
                core.v_factory.trial_phase_offsets = tuple(o[t] for o in off_v)
                if cu is not None:
                    core.u_factory._const = list(cu[t])
                if cv is not None:
                    core.v_factory._const = list(cv[t])
            accs[t] = evaluate(model, test_set, batch_size=batch_size)
    finally:
        for core, (su, sv), (eu, ev) in zip(cores, saved_consts, saved_exec):
            core.u_factory.trial_phase_offsets = None
            core.v_factory.trial_phase_offsets = None
            core.u_factory.exec_backend = eu
            core.v_factory.exec_backend = ev
            if su is not None:
                core.u_factory._const = su
            if sv is not None:
                core.v_factory._const = sv
    return accs


def evaluate_noise_grid(
    model: Module,
    test_set: Dataset,
    noise_stds: Sequence[float],
    n_runs: int,
    seed: int = 0,
    backend: str = "fast",
    batch_size: int = 256,
    exec_backend=None,
) -> np.ndarray:
    """Accuracies of the full (noise level x run) Monte-Carlo grid,
    shape ``(len(noise_stds), n_runs)``.

    See the module docstring for the engine; at a fixed ``seed`` the
    two backends return identical grids.  ``exec_backend`` selects the
    trial-build precision (None = :data:`TRIAL_EXEC_BACKEND`, the
    complex64 lane).
    """
    cores = photonic_cores(model)
    if not cores:
        raise ValueError("model has no photonic cores to inject noise into")
    stds = np.asarray([float(s) for s in noise_stds], dtype=float)
    scenario_stds = np.repeat(stds, n_runs)  # trial order: (level, run)
    rng = spawn_rng(stable_seed("noise-grid", seed))
    offsets = _draw_grid_offsets(cores, scenario_stds, rng)
    accs = _run_weight_trials(
        model, cores, offsets, test_set, backend=backend, batch_size=batch_size,
        exec_backend=exec_backend,
    )
    return accs.reshape(len(stds), n_runs)


def evaluate_noise_grid_shard(
    model: Module,
    test_set: Dataset,
    noise_stds: Sequence[float],
    n_runs: int,
    lo: int,
    hi: int,
    seed: int = 0,
    backend: str = "fast",
    batch_size: int = 256,
    exec_backend=None,
) -> np.ndarray:
    """Accuracies of trials ``lo:hi`` of the flattened noise grid.

    The sharded counterpart of :func:`evaluate_noise_grid` for the
    design service's multiprocess workers: the full grid's noise
    offsets are drawn exactly as the unsharded call draws them (one
    rng stream seeded from ``("noise-grid", seed)``), then only the
    ``[lo, hi)`` slice of trials is built and scored.  Because each
    trial's build and evaluation are independent of which other trials
    share the batch (``evaluate_population`` scores every view on the
    same data batches), concatenating shard results in index order
    reproduces ``evaluate_noise_grid(...).reshape(-1)[lo:hi]`` bit for
    bit — regardless of how the trial range was partitioned.

    Trial order is C-order over ``(noise level, run)``, matching
    ``evaluate_noise_grid``'s ``(len(noise_stds), n_runs)`` reshape.
    """
    cores = photonic_cores(model)
    if not cores:
        raise ValueError("model has no photonic cores to inject noise into")
    stds = np.asarray([float(s) for s in noise_stds], dtype=float)
    n_trials = len(stds) * n_runs
    if not (0 <= lo <= hi <= n_trials):
        raise ValueError(
            f"invalid trial slice [{lo}, {hi}) for {n_trials} trials"
        )
    scenario_stds = np.repeat(stds, n_runs)
    rng = spawn_rng(stable_seed("noise-grid", seed))
    offsets = _draw_grid_offsets(cores, scenario_stds, rng)
    sliced = [
        (
            tuple(o[lo:hi] for o in off_u),
            tuple(o[lo:hi] for o in off_v),
        )
        for off_u, off_v in offsets
    ]
    if hi == lo:
        return np.empty(0)
    return _run_weight_trials(
        model, cores, sliced, test_set, backend=backend,
        batch_size=batch_size, exec_backend=exec_backend,
    )


def noise_robustness_curve(
    model: Module,
    test_set: Dataset,
    noise_stds: Sequence[float] = (0.02, 0.04, 0.06, 0.08, 0.10),
    n_runs: int = 20,
    seed: int = 0,
    backend: str = "fast",
    batch_size: int = 256,
    exec_backend=None,
) -> List[RobustnessPoint]:
    """Accuracy-vs-noise curve (paper Fig. 4; +-3 sigma over n_runs).

    Each run draws one frozen phase-noise realization for every
    photonic core and evaluates clean-labels accuracy on ``test_set``;
    the model itself is never mutated.  PTC models run through the
    trial-batched engine (:func:`evaluate_noise_grid`); SuperMesh
    models fall back to the legacy sequential resampling loop.
    """
    has_supermesh = any(isinstance(m, SuperMeshCore) for m in model.modules())
    if has_supermesh or not photonic_cores(model):
        return _resample_robustness_curve(
            model, test_set, noise_stds=noise_stds, n_runs=n_runs, seed=seed,
            batch_size=batch_size,
        )
    grid = evaluate_noise_grid(
        model, test_set, noise_stds, n_runs, seed=seed, backend=backend,
        batch_size=batch_size, exec_backend=exec_backend,
    )
    points = []
    for std, runs in zip(noise_stds, grid):
        points.append(
            RobustnessPoint(
                noise_std=float(std),
                mean_acc=float(runs.mean()),
                std_acc=float(runs.std()),
                runs=[float(a) for a in runs],
            )
        )
    return points


@dataclass
class ScenarioGrid:
    """Accuracy grid of a fabrication x phase-noise scenario sweep.

    ``accs[f, s, r]`` is the accuracy of fabrication sample ``f`` at
    phase-noise level ``noise_stds[s]``, run ``r``.
    """

    noise_stds: Tuple[float, ...]
    accs: np.ndarray  # (n_fab_samples, len(noise_stds), n_runs)

    @property
    def n_fab_samples(self) -> int:
        return self.accs.shape[0]

    @property
    def n_runs(self) -> int:
        return self.accs.shape[2]

    def mean_over_runs(self) -> np.ndarray:
        """(n_fab_samples, len(noise_stds)) mean accuracy."""
        return self.accs.mean(axis=-1)

    def curve(self) -> List[RobustnessPoint]:
        """Collapse the fabrication axis: one robustness point per
        noise level over all (fab sample, run) trials."""
        points = []
        for s, std in enumerate(self.noise_stds):
            runs = self.accs[:, s, :].reshape(-1)
            points.append(
                RobustnessPoint(
                    noise_std=float(std),
                    mean_acc=float(runs.mean()),
                    std_acc=float(runs.std()),
                    runs=[float(a) for a in runs],
                )
            )
        return points


def scenario_robustness_grid(
    model: Module,
    test_set: Dataset,
    spec,
    noise_stds: Sequence[float] = (0.02, 0.06, 0.10),
    n_fab_samples: int = 3,
    n_runs: int = 5,
    seed: int = 0,
    backend: str = "fast",
    batch_size: int = 256,
    exec_backend=None,
) -> ScenarioGrid:
    """Monte-Carlo sweep over fabrication samples x phase noise x runs.

    ``spec`` is a :class:`repro.photonics.nonideality.NonidealitySpec`
    describing the *passive* nonidealities (coupler imbalance,
    insertion loss, thermal crosstalk); its ``phase_noise_std`` field
    is ignored — the runtime phase-noise axis is ``noise_stds``.  For
    each of ``n_fab_samples`` frozen fabrication outcomes the engine
    substitutes the realized per-block constant matrices into the
    fused trial build, so the whole (F x S x R) grid costs one batched
    build per mesh factory plus one shared pass over ``test_set``.

    Requires a searched-topology model: every photonic core must be
    backed by :class:`~repro.ptc.unitary.FixedTopologyFactory` meshes.
    """
    from ..photonics.nonideality import (
        fabrication_const_stack,
        sample_fabrication_batch,
    )
    from ..ptc.unitary import FixedTopologyFactory
    from .topology import BlockSpec, PTCTopology

    cores = photonic_cores(model)
    if not cores:
        raise ValueError("model has no photonic cores to inject noise into")
    for core in cores:
        for factory in (core.u_factory, core.v_factory):
            if not isinstance(factory, FixedTopologyFactory):
                raise ValueError(
                    "scenario_robustness_grid requires searched-topology "
                    f"meshes (FixedTopologyFactory); got {type(factory).__name__}"
                )
    stds = np.asarray([float(s) for s in noise_stds], dtype=float)
    n_levels = len(stds)
    n_trials = n_fab_samples * n_levels * n_runs
    # Trial order (fab, level, run), C-order.
    scenario_stds = np.tile(np.repeat(stds, n_runs), n_fab_samples)
    fab_of_trial = np.repeat(np.arange(n_fab_samples), n_levels * n_runs)
    rng = spawn_rng(stable_seed("scenario-grid", seed))

    offsets = []
    const_stacks = []
    for core in cores:
        per_factory_offs = []
        per_factory_consts = []
        for factory in (core.u_factory, core.v_factory):
            blocks = [
                BlockSpec(coupler_mask=mask, offset=off, perm=perm)
                for perm, mask, off in factory.blocks_spec
            ]
            topo = PTCTopology(k=factory.k, blocks_u=blocks, blocks_v=[])
            samples = [
                u for u, _ in sample_fabrication_batch(
                    topo, spec, n_fab_samples, rng=rng
                )
            ]
            consts = np.stack(
                [
                    fabrication_const_stack(blocks, factory.k, spec, s)
                    for s in samples
                ]
            )  # (F, B, K, K)
            (off,) = factory.draw_trial_noise(scenario_stds, rng)
            xtalk = samples[0].crosstalk if samples else None
            if xtalk is not None:
                # Crosstalk mixes the *programmed* drive (post phase
                # transform, pre runtime noise); the coupling matrix is
                # spec-determined, hence identical across samples —
                # fold it into the additive offsets once.
                base = factory._transformed_phase_data(factory.phases)
                off = off + (base @ xtalk.T - base)[None]
            per_factory_offs.append((off,))
            per_factory_consts.append(consts[fab_of_trial])  # (T, B, K, K)
        offsets.append(tuple(per_factory_offs))
        const_stacks.append(tuple(per_factory_consts))

    accs = _run_weight_trials(
        model, cores, offsets, test_set, backend=backend, batch_size=batch_size,
        const_stacks=const_stacks, exec_backend=exec_backend,
    )
    return ScenarioGrid(
        noise_stds=tuple(float(s) for s in stds),
        accs=accs.reshape(n_fab_samples, n_levels, n_runs),
    )


# ----------------------------------------------------------------------
# Legacy resampling loop (SuperMesh models)
# ----------------------------------------------------------------------


def _resample_robustness_curve(
    model: Module,
    test_set: Dataset,
    noise_stds: Sequence[float],
    n_runs: int,
    seed: int,
    batch_size: int = 256,
) -> List[RobustnessPoint]:
    """Sequential curve with noise redrawn inside every forward —
    needed for SuperMesh cores, whose noise injection lives in the
    sampling path rather than a phase parameter."""
    points: List[RobustnessPoint] = []
    for std in noise_stds:
        accs: List[float] = []
        for run in range(n_runs):
            # Reseed core RNGs per run for independent noise draws.
            rng = spawn_rng(stable_seed(seed, float(std), run))
            _seed_core_rngs(model, rng)
            _set_any_phase_noise(model, float(std))
            try:
                accs.append(evaluate(model, test_set, batch_size=batch_size))
            finally:
                _set_any_phase_noise(model, 0.0)
        arr = np.asarray(accs)
        points.append(
            RobustnessPoint(
                noise_std=float(std),
                mean_acc=float(arr.mean()),
                std_acc=float(arr.std()),
                runs=accs,
            )
        )
    return points


def _seed_core_rngs(model: Module, rng: np.random.Generator) -> None:
    for m in model.modules():
        if isinstance(m, BlockUSV):
            m.u_factory._rng = rng
            m.v_factory._rng = rng
        elif isinstance(m, SuperMeshCore):
            m._rng = rng
