"""Gumbel-softmax relaxation for SuperMesh depth search (paper Eq. 5-7).

Each super block b carries a sampling coefficient vector theta_b in R^2;
``m_b = GumbelSoftmax(theta_b, tau)`` gives the soft (differentiable)
probability of [skip block, execute block].  The temperature ``tau`` is
annealed from 5 to 0.5 during the search.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, softmax
from ..utils.rng import get_rng


def sample_gumbel(shape, rng: Optional[np.random.Generator] = None, eps: float = 1e-10) -> np.ndarray:
    """Draw standard Gumbel(0, 1) noise."""
    rng = get_rng(rng)
    u = rng.uniform(eps, 1.0 - eps, size=shape)
    return -np.log(-np.log(u))


def gumbel_softmax(
    theta: Tensor,
    tau: float,
    rng: Optional[np.random.Generator] = None,
    hard: bool = False,
) -> Tensor:
    """Differentiable sample from the categorical parametrized by ``theta``.

    ``theta``: (..., n_choices) logits.  Returns soft one-hot weights of
    the same shape.  With ``hard=True``, the forward value is a true
    one-hot (argmax of the noisy logits) while gradients flow through
    the soft sample (straight-through Gumbel).
    """
    if tau <= 0:
        raise ValueError(f"temperature must be positive, got {tau}")
    g = Tensor(sample_gumbel(theta.shape, rng))
    soft = softmax((theta + g) * (1.0 / tau), axis=-1)
    if not hard:
        return soft
    idx = np.argmax(soft.data, axis=-1)
    one_hot = np.zeros_like(soft.data)
    np.put_along_axis(one_hot, idx[..., None], 1.0, axis=-1)
    # Straight-through: forward hard, backward soft.
    from ..autograd import custom_grad

    def backward(grad):
        return (grad,)

    return custom_grad(one_hot, (soft,), backward)


def categorical_probs(theta: Tensor) -> Tensor:
    """Noise-free selection probabilities P_theta (paper Eq. 5)."""
    return softmax(theta, axis=-1)


class TemperatureSchedule:
    """Exponential decay of the Gumbel temperature tau.

    The paper decays tau from 5 to 0.5 over the course of training.
    """

    def __init__(self, tau_start: float = 5.0, tau_end: float = 0.5, total_epochs: int = 90):
        if tau_start <= 0 or tau_end <= 0:
            raise ValueError("temperatures must be positive")
        self.tau_start = tau_start
        self.tau_end = tau_end
        self.total_epochs = max(1, total_epochs)
        self._decay = (tau_end / tau_start) ** (1.0 / self.total_epochs)

    def at_epoch(self, epoch: int) -> float:
        e = min(max(epoch, 0), self.total_epochs)
        return self.tau_start * self._decay ** e
