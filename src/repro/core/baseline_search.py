"""Non-differentiable search baselines over ADEPT's topology space.

The paper motivates the differentiable SuperMesh by the size of the
discrete design space, O((K * K!/2)^B_max) — too large for brute
force.  These baselines make that claim testable: they search the
*same* space (block count, coupler masks, CR permutations) under the
*same* footprint window, but with black-box methods:

* :class:`RandomSearch` — draw feasible topologies, evaluate, keep
  the best (the "no intelligence" floor).
* :class:`EvolutionarySearch` — mutation-based (mu + lambda)
  hill climbing with tournament selection over topology edits.

The candidate evaluator is injectable.  The default,
:func:`make_expressivity_evaluator`, scores a topology by how well it
fits random unitaries (cheap, no dataset);
:func:`make_accuracy_evaluator` trains a small ONN for a few epochs
(closer to the ADEPT objective, much slower).  The ablation bench
compares both baselines against the differentiable flow at matched
evaluation budgets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..photonics.footprint import supermesh_block_bounds
from ..photonics.pdk import FoundryPDK
from ..utils.rng import get_rng
from .topology import BlockSpec, PTCTopology

__all__ = [
    "BaselineSearchResult",
    "EvolutionarySearch",
    "RandomSearch",
    "is_feasible",
    "make_expressivity_evaluator",
    "mutate_topology",
    "random_feasible_topology",
]

Evaluator = Callable[[PTCTopology], float]


def is_feasible(
    topology: PTCTopology, pdk: FoundryPDK, f_min: float, f_max: float
) -> bool:
    """True if the exact footprint lies inside [f_min, f_max] (um^2)."""
    total = topology.footprint(pdk).total
    return f_min <= total <= f_max


def _fresh_offsets(blocks: List[BlockSpec], k: int) -> List[BlockSpec]:
    """Re-derive the interleaved DC offsets (s_b = b mod 2) after a
    structural edit, resizing coupler masks to the slot count."""
    fixed: List[BlockSpec] = []
    for b, block in enumerate(blocks):
        offset = b % 2
        slots = (k - offset) // 2
        mask = np.asarray(block.coupler_mask, dtype=bool)
        if mask.size < slots:
            mask = np.concatenate([mask, np.zeros(slots - mask.size, dtype=bool)])
        elif mask.size > slots:
            mask = mask[:slots]
        if not mask.any():
            mask = mask.copy()
            mask[0] = True
        fixed.append(BlockSpec(coupler_mask=mask, offset=offset, perm=block.perm))
    return fixed


def _random_block(b: int, k: int, rng, coupler_density: float,
                  permute_prob: float, local: bool = True) -> BlockSpec:
    offset = b % 2
    slots = (k - offset) // 2
    mask = rng.random(slots) < coupler_density
    if not mask.any():
        mask[int(rng.integers(0, slots))] = True
    perm = None
    if rng.random() < permute_prob:
        if local:
            # Local shuffle: swap a few adjacent pairs — cheap in
            # crossings, the regime footprint windows actually admit.
            perm = np.arange(k)
            for _ in range(int(rng.integers(1, max(2, k // 2)))):
                i = int(rng.integers(0, k - 1))
                perm[i], perm[i + 1] = perm[i + 1], perm[i]
        else:
            perm = rng.permutation(k)
    return BlockSpec(coupler_mask=mask, offset=offset, perm=perm)


def random_feasible_topology(
    k: int,
    pdk: FoundryPDK,
    f_min: float,
    f_max: float,
    rng=None,
    max_tries: int = 200,
    name: str = "random",
) -> PTCTopology:
    """Rejection-sample a topology inside the footprint window.

    Block counts are drawn inside the analytic bounds of Eq. (16);
    over-budget candidates are repaired by stripping crossings and
    couplers before being rejected outright.
    """
    rng = get_rng(rng)
    b_min, b_max = supermesh_block_bounds(pdk, k, f_min, f_max)
    b_min = max(1, b_min)
    b_max = max(b_min, b_max)
    for _ in range(max_tries):
        n_u = int(rng.integers(max(1, b_min // 2), max(2, b_max // 2) + 1))
        n_v = int(rng.integers(max(1, b_min // 2), max(2, b_max // 2) + 1))
        density = float(rng.uniform(0.3, 1.0))
        p_perm = float(rng.uniform(0.0, 0.8))
        blocks_u = [_random_block(b, k, rng, density, p_perm) for b in range(n_u)]
        blocks_v = [_random_block(b, k, rng, density, p_perm) for b in range(n_v)]
        topo = PTCTopology(k=k, blocks_u=blocks_u, blocks_v=blocks_v, name=name,
                           pdk_name=pdk.name, footprint_constraint=(f_min, f_max))
        total = topo.footprint(pdk).total
        if total > f_max:
            # Repair: drop crossings first (they are pure overhead for
            # feasibility), then thin couplers.
            for block in blocks_u + blocks_v:
                block.perm = None
            total = topo.footprint(pdk).total
        if f_min <= total <= f_max:
            return topo
    raise RuntimeError(
        f"could not sample a feasible topology in [{f_min}, {f_max}] um^2 "
        f"after {max_tries} tries"
    )


def mutate_topology(
    topology: PTCTopology,
    rng=None,
    n_edits: int = 1,
) -> PTCTopology:
    """Apply ``n_edits`` random local edits, returning a new topology.

    Edit moves: toggle a coupler, swap two adjacent entries of a CR
    permutation, clear a CR layer, insert a fresh block, delete a
    block.  Offsets are re-derived after structural edits so the
    interleaving invariant (s_b = b mod 2) holds.
    """
    rng = get_rng(rng)
    k = topology.k
    blocks_u = [BlockSpec(b.coupler_mask.copy(), b.offset,
                          None if b.perm is None else b.perm.copy())
                for b in topology.blocks_u]
    blocks_v = [BlockSpec(b.coupler_mask.copy(), b.offset,
                          None if b.perm is None else b.perm.copy())
                for b in topology.blocks_v]

    for _ in range(n_edits):
        side = blocks_u if rng.random() < 0.5 else blocks_v
        move = rng.choice(["toggle_dc", "swap_perm", "clear_perm",
                           "add_block", "drop_block"])
        if move == "add_block":
            b = len(side)
            side.append(_random_block(b, k, rng, 0.6, 0.5))
            continue
        if move == "drop_block":
            if len(side) > 1:
                side.pop(int(rng.integers(0, len(side))))
            continue
        block = side[int(rng.integers(0, len(side)))]
        if move == "toggle_dc":
            i = int(rng.integers(0, block.coupler_mask.size))
            block.coupler_mask[i] = not block.coupler_mask[i]
            if not block.coupler_mask.any():
                block.coupler_mask[i] = True  # keep >= 1 coupler
        elif move == "swap_perm":
            if block.perm is None:
                block.perm = np.arange(k)
            i = int(rng.integers(0, k - 1))
            block.perm[i], block.perm[i + 1] = block.perm[i + 1], block.perm[i]
        elif move == "clear_perm":
            block.perm = None

    return PTCTopology(
        k=k,
        blocks_u=_fresh_offsets(blocks_u, k),
        blocks_v=_fresh_offsets(blocks_v, k),
        name=topology.name,
        pdk_name=topology.pdk_name,
        footprint_constraint=topology.footprint_constraint,
    )


def make_expressivity_evaluator(
    steps: int = 120,
    n_targets: int = 1,
    lr: float = 0.05,
    seed: int = 0,
) -> Evaluator:
    """Score = 1 - mean relative fit error to random unitaries.

    Dataset-free and fast enough for hundreds of evaluations; the
    ranking it induces (deeper / better-connected topologies score
    higher) tracks the accuracy ranking in the paper's tables.
    """

    def evaluate(topology: PTCTopology) -> float:
        from ..analysis.expressivity import build_factory, unitary_expressivity

        rng = np.random.default_rng(seed)
        res = unitary_expressivity(
            lambda: build_factory("topology", topology.k, topology=topology,
                                  rng=np.random.default_rng(seed + 1)),
            n_targets=n_targets, steps=steps, lr=lr, rng=rng)
        return 1.0 - res.error

    return evaluate


@dataclass
class BaselineSearchResult:
    """Best design found by a black-box baseline."""

    topology: PTCTopology
    score: float
    n_evaluated: int
    history: List[float] = field(default_factory=list)  # best-so-far trace


class RandomSearch:
    """Evaluate ``n_samples`` feasible random topologies, keep the best."""

    def __init__(
        self,
        k: int,
        pdk: FoundryPDK,
        f_min: float,
        f_max: float,
        evaluate: Optional[Evaluator] = None,
        seed: int = 0,
    ):
        self.k = k
        self.pdk = pdk
        self.f_min = f_min
        self.f_max = f_max
        self.evaluate = evaluate or make_expressivity_evaluator(seed=seed)
        self.rng = np.random.default_rng(seed)

    def run(self, n_samples: int = 16) -> BaselineSearchResult:
        best: Optional[PTCTopology] = None
        best_score = -math.inf
        history: List[float] = []
        for i in range(n_samples):
            topo = random_feasible_topology(
                self.k, self.pdk, self.f_min, self.f_max, rng=self.rng,
                name=f"random-{i}")
            score = float(self.evaluate(topo))
            if score > best_score:
                best, best_score = topo, score
            history.append(best_score)
        assert best is not None
        best.name = "random-search-best"
        return BaselineSearchResult(topology=best, score=best_score,
                                    n_evaluated=n_samples, history=history)


class EvolutionarySearch:
    """(mu + lambda) evolutionary search with feasibility repair.

    Each generation mutates tournament-selected parents; children that
    violate the footprint window are repaired (crossings stripped) or
    discarded.  Elitism keeps the best individual alive.
    """

    def __init__(
        self,
        k: int,
        pdk: FoundryPDK,
        f_min: float,
        f_max: float,
        evaluate: Optional[Evaluator] = None,
        population: int = 8,
        seed: int = 0,
    ):
        if population < 2:
            raise ValueError("population must be >= 2")
        self.k = k
        self.pdk = pdk
        self.f_min = f_min
        self.f_max = f_max
        self.evaluate = evaluate or make_expressivity_evaluator(seed=seed)
        self.population = population
        self.rng = np.random.default_rng(seed)

    def _repair(self, topo: PTCTopology) -> Optional[PTCTopology]:
        total = topo.footprint(self.pdk).total
        if total > self.f_max:
            for block in topo.blocks_u + topo.blocks_v:
                block.perm = None
            total = topo.footprint(self.pdk).total
        if self.f_min <= total <= self.f_max:
            return topo
        return None

    def run(self, generations: int = 6, children_per_gen: int = 8) -> BaselineSearchResult:
        pop: List[Tuple[PTCTopology, float]] = []
        for i in range(self.population):
            topo = random_feasible_topology(
                self.k, self.pdk, self.f_min, self.f_max, rng=self.rng,
                name=f"evo-init-{i}")
            pop.append((topo, float(self.evaluate(topo))))
        n_evaluated = len(pop)
        history = [max(s for _, s in pop)]
        for _gen in range(generations):
            children: List[Tuple[PTCTopology, float]] = []
            for _ in range(children_per_gen):
                # Binary tournament.
                i, j = self.rng.integers(0, len(pop), size=2)
                parent = pop[i][0] if pop[i][1] >= pop[j][1] else pop[j][0]
                child = mutate_topology(parent, rng=self.rng,
                                        n_edits=int(self.rng.integers(1, 4)))
                child = self._repair(child)
                if child is None:
                    continue
                children.append((child, float(self.evaluate(child))))
                n_evaluated += 1
            pop = sorted(pop + children, key=lambda t: t[1], reverse=True)
            pop = pop[: self.population]
            history.append(pop[0][1])
        best, best_score = pop[0]
        best.name = "evolutionary-best"
        return BaselineSearchResult(topology=best, score=best_score,
                                    n_evaluated=n_evaluated, history=history)
