"""Differentiable permutation learning (paper section 3.3.2).

The CR layer of each block is a permutation matrix — a doubly
stochastic binary matrix.  Directly searching the (K!)^B space is
hopeless, so ADEPT:

1. **Reparametrizes** a free matrix into (approximately) the Birkhoff
   polytope: absolute value -> column normalization -> row
   normalization -> row-wise *soft projection* that rounds rows already
   within ``eps`` of binary and stops their gradients (Eq. 11).
2. Adds an **augmented-Lagrangian (ALM)** term driving the l1-norm of
   every row/column toward its l2-norm — the continuous
   characterization of permutation matrices (Eq. 8-10).  Unlike
   standard ALM, the quadratic term is also scaled by the multipliers,
   so the task loss dominates early and the constraint tightens as the
   multipliers grow (Eq. 12).
3. Initializes with a **smoothed identity** — random permutations are
   useless because zero entries receive no gradient.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor, custom_grad
from ..autograd import tensor as T
from ..nn.module import Module, Parameter


def smoothed_identity(
    k: int,
    n: int = 1,
    jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Initialization P0 = I*(1/2 - 1/(2K-2)) + 1/(2K-2) (paper Fig. 3).

    Every entry is strictly positive so gradients reach all of them;
    the diagonal is dominant so the relaxation starts near "no
    routing".  Rows and columns already sum to ~1.

    ``jitter`` adds positive uniform noise of relative strength
    ``jitter`` to the off-diagonal floor.  The paper uses jitter = 0;
    at the heavily compressed training budgets of this reproduction a
    modest jitter substitutes for the exploration that tens of
    thousands of extra SuperMesh steps would otherwise provide (without
    it, the ALM attractor at the identity wins before the task loss can
    justify any routing).
    """
    if k < 2:
        raise ValueError("permutation size must be >= 2")
    off = 1.0 / (2 * k - 2)
    base = np.eye(k) * (0.5 - off) + off
    out = np.broadcast_to(base, (n, k, k)).copy()
    if jitter > 0.0:
        from ..utils.rng import get_rng

        out += get_rng(rng).uniform(0.0, jitter * off, size=out.shape)
    return out


def smoothed_permutation(
    perms: np.ndarray, jitter: float = 0.0, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Smoothed relaxation of given permutations (batch of index vectors).

    Same smoothing as :func:`smoothed_identity` — every entry strictly
    positive so gradients flow — but centered on arbitrary permutations
    instead of the identity.
    """
    perms = np.atleast_2d(np.asarray(perms, dtype=int))
    n, k = perms.shape
    off = 1.0 / (2 * k - 2)
    out = np.full((n, k, k), off)
    rows = np.repeat(np.arange(n), k)
    out[rows, np.tile(np.arange(k), n), perms.ravel()] += 0.5 - off
    if jitter > 0.0:
        from ..utils.rng import get_rng

        out += get_rng(rng).uniform(0.0, jitter * off, size=out.shape)
    return out


def local_shuffle_permutations(
    k: int,
    n: int,
    max_swaps: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Random permutations built from a few adjacent swaps.

    Used by the ``local-shuffle`` SuperMesh initialization: each block's
    CR layer starts near a *local* routing pattern (r ~ U(0, 2K)
    adjacent swaps), giving the search routing diversity to prune
    rather than requiring it to invent routing from the identity — the
    exploration that the paper's 100x larger step budget provides.
    """
    from ..utils.rng import get_rng

    rng = get_rng(rng)
    max_swaps = 2 * k if max_swaps is None else max_swaps
    out = np.empty((n, k), dtype=int)
    for b in range(n):
        perm = np.arange(k)
        for _ in range(int(rng.integers(0, max_swaps + 1))):
            i = int(rng.integers(0, k - 1))
            perm[i], perm[i + 1] = perm[i + 1], perm[i]
        out[b] = perm
    return out


def _row_col_normalize(p: Tensor) -> Tensor:
    """|P| -> column-normalize -> row-normalize (Eq. 11, first two steps)."""
    p_abs = p.abs() + 1e-12
    p_col = p_abs / p_abs.sum(axis=-2, keepdims=True)
    p_row = p_col / p_col.sum(axis=-1, keepdims=True)
    return p_row


def soft_projection(p: Tensor, eps: float = 0.05) -> Tensor:
    """Row-wise soft projection Omega_P (Eq. 11, third step).

    Rows whose maximum entry is within ``eps`` of 1 are rounded to
    binary **and their gradients are stopped** — this prevents the
    rapidly growing linear ALM term from destabilizing rows that have
    already converged.
    """
    data = p.data
    row_max = data.max(axis=-1, keepdims=True)
    frozen = row_max >= (1.0 - eps)  # (..., K, 1)
    rounded = np.round(data)
    out = np.where(frozen, rounded, data)
    mask = (~frozen).astype(data.dtype)

    def backward(g: np.ndarray):
        return (g * mask,)

    return custom_grad(out, (p,), backward)


def delta_l1_l2(p: Tensor, axis: int) -> Tensor:
    """Per-row (axis=-1) or per-column (axis=-2) ||.||_1 - ||.||_2.

    Zero exactly when the vector has a single nonzero entry — together
    with the Birkhoff constraints this characterizes permutations.
    """
    l1 = p.abs().sum(axis=axis)
    l2 = (p * p).sum(axis=axis).sqrt()
    return l1 - l2


class PermutationLearner(Module):
    """Relaxed permutations for all SuperMesh blocks plus ALM state.

    Parameters
    ----------
    k: permutation size (number of waveguides).
    n_blocks: number of CR layers (B_max of the SuperMesh).
    rho0: initial quadratic penalty coefficient; the paper uses
        (1e-7) * K / 8 and grows it geometrically so that
        rho_T ~= 1e4 * rho0 over the training horizon.
    eps: soft-projection threshold (paper: 0.05).
    """

    def __init__(
        self,
        k: int,
        n_blocks: int,
        rho0: Optional[float] = None,
        eps: float = 0.05,
        total_steps: int = 2000,
        init_jitter: float = 0.0,
        init: str = "identity",
        shuffle_mask: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.k = k
        self.n_blocks = n_blocks
        self.eps = eps
        if init == "identity":
            raw = smoothed_identity(k, n_blocks, jitter=init_jitter, rng=rng)
        elif init in ("local-shuffle", "random"):
            if init == "local-shuffle":
                perms = local_shuffle_permutations(k, n_blocks, rng=rng)
            else:
                from ..utils.rng import get_rng

                perms = np.stack(
                    [get_rng(rng).permutation(k) for _ in range(n_blocks)]
                )
            if shuffle_mask is not None:
                # Blocks outside the mask (e.g. the always-on blocks that
                # every SubMesh must include) keep the conservative
                # identity init so tight budgets stay reachable.
                perms[~np.asarray(shuffle_mask, dtype=bool)] = np.arange(k)
            raw = smoothed_permutation(perms, jitter=init_jitter, rng=rng)
        else:
            raise ValueError(
                f"unknown init {init!r}; choose identity|local-shuffle|random"
            )
        self.raw = Parameter(raw)
        self.rho0 = rho0 if rho0 is not None else 1e-7 * k / 8.0
        self.rho = self.rho0
        self.total_steps = max(1, total_steps)
        # rho_T ~= 1e4 * rho0 => gamma = 1e4^(1/total_steps)
        self.gamma = 10.0 ** (4.0 / self.total_steps)
        self.lambda_row = np.zeros((n_blocks, k))
        self.lambda_col = np.zeros((n_blocks, k))
        self._frozen = False

    # -- forward --------------------------------------------------------
    def relaxed(self) -> Tensor:
        """The reparametrized (approximately doubly-stochastic) P-tilde."""
        if self._frozen:
            return Tensor(self.raw.data)
        return soft_projection(_row_col_normalize(self.raw), self.eps)

    def forward(self) -> Tensor:
        return self.relaxed()

    # -- ALM ------------------------------------------------------------
    def alm_loss(self, p_tilde: Optional[Tensor] = None) -> Tensor:
        """L_P of Eq. (10): lambda-weighted linear + quadratic penalties."""
        if self._frozen:
            return Tensor(0.0)
        if p_tilde is None:
            p_tilde = self.relaxed()
        d_row = delta_l1_l2(p_tilde, axis=-1)  # (B, K)
        d_col = delta_l1_l2(p_tilde, axis=-2)  # (B, K)
        lam_r = Tensor(self.lambda_row)
        lam_c = Tensor(self.lambda_col)
        linear = (lam_r * d_row).sum() + (lam_c * d_col).sum()
        quad = (
            (lam_r * d_row * d_row).sum() + (lam_c * d_col * d_col).sum()
        ) * (self.rho / 2.0)
        return linear + quad

    def update_multipliers(self) -> None:
        """Dual update of Eq. (12): lambda += rho * (Delta + Delta^2/2).

        The whole increment is scaled by rho: with the tiny rho0 of the
        paper (1e-7 * K/8) the multipliers stay negligible early — "the
        optimization is dominated by the task-specific loss at the
        beginning and gradually honors the constraint" — and only grow
        once the geometric rho schedule has advanced (Fig. 5(a) shows
        lambda reaching ~5e-3 after 2000 steps, not O(1)).
        """
        if self._frozen:
            return
        with_np = self.relaxed().data
        d_row = np.abs(with_np).sum(-1) - np.sqrt((with_np ** 2).sum(-1))
        d_col = np.abs(with_np).sum(-2) - np.sqrt((with_np ** 2).sum(-2))
        self.lambda_row += self.rho * (d_row + 0.5 * d_row ** 2)
        self.lambda_col += self.rho * (d_col + 0.5 * d_col ** 2)

    def step_rho(self) -> None:
        """Geometric schedule rho <- rho * gamma (Eq. text, 'Scheduling')."""
        if not self._frozen:
            self.rho *= self.gamma

    # -- diagnostics / control -------------------------------------------
    def permutation_error(self) -> float:
        """Average l1-l2 gap — the 'Permutation Loss Delta_P' of Fig. 5(a)."""
        p = self.relaxed().data
        d_row = np.abs(p).sum(-1) - np.sqrt((p ** 2).sum(-1))
        d_col = np.abs(p).sum(-2) - np.sqrt((p ** 2).sum(-2))
        return float((d_row.mean() + d_col.mean()) / 2.0)

    def mean_lambda(self) -> float:
        return float((self.lambda_row.mean() + self.lambda_col.mean()) / 2.0)

    def freeze_to(self, permutations: np.ndarray) -> None:
        """Replace the relaxation with legal permutation matrices.

        Called after stochastic permutation legalization; afterwards the
        CR layers are fixed (no gradient), as they would be after chip
        fabrication.
        """
        permutations = np.asarray(permutations, dtype=float)
        if permutations.shape != (self.n_blocks, self.k, self.k):
            raise ValueError(
                f"expected shape {(self.n_blocks, self.k, self.k)}, got {permutations.shape}"
            )
        np.copyto(self.raw.data, permutations)
        self.raw.requires_grad = False
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen
