"""ADEPT core: differentiable photonic tensor-core topology search.

The search assembles the lower layers of the stack (see
``docs/ARCHITECTURE.md``): the SuperMesh supernet
(:mod:`repro.core.supermesh`) couples relaxed permutations
(:mod:`repro.core.permutation`), STE-binarized couplers
(:mod:`repro.core.coupler`), and Gumbel depth sampling
(:mod:`repro.core.gumbel`) under the footprint penalty
(:mod:`repro.core.footprint_penalty`); the two-stage training flow
lives in :mod:`repro.core.search` and the serializable result in
:mod:`repro.core.topology`.
"""

from .baseline_search import (
    BaselineSearchResult,
    EvolutionarySearch,
    RandomSearch,
    is_feasible,
    make_expressivity_evaluator,
    mutate_topology,
    random_feasible_topology,
)
from .coupler import CouplerLearner, binarize_couplers, dc_count_expr, quantize_t
from .footprint_penalty import (
    FootprintPenaltyConfig,
    block_footprints_exact,
    expected_footprint_exact,
    expected_footprint_proxy,
    footprint_penalty,
)
from .gumbel import TemperatureSchedule, categorical_probs, gumbel_softmax, sample_gumbel
from .permutation import (
    PermutationLearner,
    delta_l1_l2,
    smoothed_identity,
    soft_projection,
)
from .quantization import (
    PhaseQuantConfig,
    QuantizationPoint,
    make_phase_quantizer,
    phase_grid,
    phase_resolution,
    quantization_robustness_curve,
    quantize_phase,
    ste_quantize_phase,
)
from .search import (
    ADEPTConfig,
    ADEPTSearch,
    ADEPTSearchResult,
    SearchHistory,
    build_proxy_model,
    rank_candidate_topologies,
    sample_candidate_topologies,
    search_ptc,
)
from .spl import legalize_all, legalize_one
from .supermesh import (
    SuperMeshConv2d,
    SuperMeshCore,
    SuperMeshLinear,
    SuperMeshSample,
    SuperMeshSpace,
)
from .topology import BlockSpec, PTCTopology, random_topology
from .variation import (
    RobustnessPoint,
    ScenarioGrid,
    evaluate_noise_grid,
    evaluate_noise_grid_shard,
    noise_robustness_curve,
    scenario_robustness_grid,
    variation_aware_train,
)

__all__ = [
    "ADEPTConfig",
    "ADEPTSearch",
    "ADEPTSearchResult",
    "BaselineSearchResult",
    "EvolutionarySearch",
    "RandomSearch",
    "BlockSpec",
    "CouplerLearner",
    "FootprintPenaltyConfig",
    "PTCTopology",
    "PhaseQuantConfig",
    "QuantizationPoint",
    "PermutationLearner",
    "RobustnessPoint",
    "ScenarioGrid",
    "SearchHistory",
    "SuperMeshConv2d",
    "SuperMeshCore",
    "SuperMeshLinear",
    "SuperMeshSample",
    "SuperMeshSpace",
    "TemperatureSchedule",
    "binarize_couplers",
    "block_footprints_exact",
    "build_proxy_model",
    "categorical_probs",
    "dc_count_expr",
    "delta_l1_l2",
    "expected_footprint_exact",
    "expected_footprint_proxy",
    "footprint_penalty",
    "gumbel_softmax",
    "legalize_all",
    "legalize_one",
    "is_feasible",
    "make_expressivity_evaluator",
    "mutate_topology",
    "random_feasible_topology",
    "evaluate_noise_grid",
    "evaluate_noise_grid_shard",
    "noise_robustness_curve",
    "scenario_robustness_grid",
    "quantize_t",
    "make_phase_quantizer",
    "phase_grid",
    "phase_resolution",
    "quantization_robustness_curve",
    "quantize_phase",
    "ste_quantize_phase",
    "random_topology",
    "sample_gumbel",
    "rank_candidate_topologies",
    "sample_candidate_topologies",
    "search_ptc",
    "smoothed_identity",
    "soft_projection",
    "variation_aware_train",
]
