"""Low-bit phase-control quantization with straight-through training.

Phase shifters on a real chip are driven by b-bit DACs, so the
programmable phases only take ``2^b`` discrete values in ``[0, 2 pi)``.
The paper's robustness reference [8] (ROQ, DATE 2020) shows ONNs must
be *trained* under this quantization to stay accurate at low bit
widths.  This module provides:

* :func:`quantize_phase` — plain numpy uniform quantizer (analysis).
* :func:`ste_quantize_phase` — the same quantizer as an autograd op
  with a straight-through gradient, usable during training.
* :func:`make_phase_quantizer` — a closure suitable for
  ``UnitaryFactory.phase_transform``, turning any mesh factory into a
  quantized-control model.
* :func:`quantization_robustness_curve` — accuracy (or fidelity)
  versus bit width, the ROQ-style ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, ensure_tensor, straight_through

__all__ = [
    "PhaseQuantConfig",
    "QuantizationPoint",
    "make_phase_quantizer",
    "phase_grid",
    "phase_resolution",
    "quantization_robustness_curve",
    "quantize_phase",
    "ste_quantize_phase",
]

_TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class PhaseQuantConfig:
    """Uniform phase-quantizer settings.

    ``bits`` control levels = 2^bits over one full period.  ``wrap``
    folds phases into [0, 2 pi) before quantizing (the physical DAC
    view); with ``wrap=False`` out-of-range phases snap to the nearest
    grid point of the *unwrapped* lattice, which is periodic anyway.
    """

    bits: int
    wrap: bool = True

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")

    @property
    def n_levels(self) -> int:
        return 2 ** self.bits

    @property
    def step(self) -> float:
        return _TWO_PI / self.n_levels


def phase_resolution(bits: int) -> float:
    """Smallest phase increment of a b-bit control: 2 pi / 2^b."""
    return PhaseQuantConfig(bits=bits).step


def phase_grid(bits: int) -> np.ndarray:
    """All representable phases of a b-bit control in [0, 2 pi)."""
    cfg = PhaseQuantConfig(bits=bits)
    return np.arange(cfg.n_levels) * cfg.step


def quantize_phase(phases: np.ndarray, bits: int, wrap: bool = True) -> np.ndarray:
    """Round phases to the nearest b-bit grid point (numpy).

    The grid is periodic: with ``wrap=True`` the value 2 pi - eps maps
    to 0 (the nearest representable setting modulo the period).
    """
    cfg = PhaseQuantConfig(bits=bits, wrap=wrap)
    phi = np.asarray(phases, dtype=float)
    if wrap:
        phi = np.mod(phi, _TWO_PI)
    q = np.round(phi / cfg.step) * cfg.step
    if wrap:
        q = np.mod(q, _TWO_PI)
    return q


def ste_quantize_phase(phases: Tensor, bits: int, wrap: bool = True) -> Tensor:
    """Quantize in the forward pass, identity gradient in the backward.

    The straight-through estimator lets gradient descent move the
    latent continuous phase even though the forward value is snapped
    to the DAC grid — the same trick the paper uses for coupler
    binarization (Eq. 14), applied to phase controls.
    """
    phases = ensure_tensor(phases)
    q = quantize_phase(phases.data, bits, wrap=wrap)
    return straight_through(q, phases)


def make_phase_quantizer(bits: int, wrap: bool = True) -> Callable[[Tensor], Tensor]:
    """A ``phase_transform`` hook for :class:`UnitaryFactory`.

    Example::

        factory = MZIMeshFactory(k=8, n_units=4)
        factory.phase_transform = make_phase_quantizer(bits=4)
        # every build() now sees 4-bit phases, trained with STE
    """

    def transform(phases: Tensor) -> Tensor:
        return ste_quantize_phase(phases, bits, wrap=wrap)

    transform.bits = bits  # introspectable for reports
    return transform


@dataclass
class QuantizationPoint:
    """One point of a bit-width robustness sweep."""

    bits: int
    score: float
    score_std: float = 0.0


def quantization_robustness_curve(
    evaluate: Callable[[Optional[int]], float],
    bit_widths: Sequence[int] = (8, 6, 5, 4, 3, 2, 1),
    n_trials: int = 1,
) -> List[QuantizationPoint]:
    """Evaluate a model at several phase bit widths.

    ``evaluate(bits)`` must return a scalar score (accuracy, fidelity,
    negative loss, ...) with the given quantization applied; ``bits``
    is None for the full-precision reference, which is prepended to
    the returned list with ``bits = 0`` as a sentinel.
    """
    points: List[QuantizationPoint] = []
    ref = [float(evaluate(None)) for _ in range(n_trials)]
    points.append(QuantizationPoint(bits=0, score=float(np.mean(ref)),
                                    score_std=float(np.std(ref))))
    for bits in bit_widths:
        scores = [float(evaluate(int(bits))) for _ in range(n_trials)]
        points.append(QuantizationPoint(bits=int(bits), score=float(np.mean(scores)),
                                        score_std=float(np.std(scores))))
    return points
