"""PDK-adaptive probabilistic footprint penalty (paper section 3.4).

The expected SuperMesh footprint is

    E[F(alpha)] = sum_b m_{b,2} * F_b,
    F_b = #PS * F_PS + #DC(T_b) * F_DC + #CR(P_b) * F_CR

with #PS = K (a full phase-shifter column is always kept — PS carry the
post-fabrication programmability).  The crossing count #CR(P_b) — the
minimum adjacent swaps sorting P_b — is not differentiable, so the
penalty uses the proxy ``beta_CR * ||P~_b - I||_F^2 * F_CR`` while the
*decision* of which penalty branch applies uses the exact count
(Eq. 15).  A 5% margin is kept on both constraint edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..autograd import Tensor
from ..autograd import tensor as T
from .gumbel import categorical_probs
from .supermesh import SuperMeshSpace


@dataclass
class FootprintPenaltyConfig:
    """Hyper-parameters of the footprint penalty (paper: beta = 10,
    beta_CR = 100, 5 % constraint margin)."""

    beta: float = 10.0
    beta_cr: float = 100.0
    margin: float = 0.05


def _inversion_count_with_ties(idx: np.ndarray) -> int:
    """Inversions of an index sequence that may contain duplicates
    (relaxed permutations argmax to such sequences before legality)."""
    count = 0
    n = len(idx)
    for i in range(n):
        count += int(np.sum(idx[i + 1 :] < idx[i]))
    return count


def block_footprints_exact(space: SuperMeshSpace) -> np.ndarray:
    """Exact F_b per block (um^2): hard coupler counts + argmax-routing
    crossing counts."""
    k = space.k
    pdk = space.pdk
    dc_counts = [int(m.sum()) for m in space.couplers.hard_masks()]
    p = space.perms.relaxed().data
    out = np.empty(space.n_blocks)
    for b in range(space.n_blocks):
        perm_idx = np.argmax(p[b], axis=1)
        n_cr = _inversion_count_with_ties(perm_idx)
        out[b] = k * pdk.ps_area + dc_counts[b] * pdk.dc_area + n_cr * pdk.cr_area
    return out


def expected_footprint_exact(space: SuperMeshSpace) -> float:
    """E[F(alpha)] with exact per-block footprints (um^2)."""
    probs = space.exec_probabilities()
    return float(np.dot(probs, block_footprints_exact(space)))


def expected_footprint_proxy(
    space: SuperMeshSpace, beta_cr: float = 100.0
) -> Tensor:
    """Differentiable E[F_prox(alpha)] (um^2).

    Gradients reach the depth logits theta (through the execution
    probabilities), the coupler latents (through the STE coupler
    count), and the relaxed permutations (through ||P~ - I||^2).
    """
    k = space.k
    pdk = space.pdk
    dc_counts = space.couplers.dc_counts()  # (n_blocks,) Tensor
    p_tilde = space.perms.relaxed()  # (n_blocks, K, K)
    diff = p_tilde - Tensor(np.eye(k))
    cr_proxy = (diff * diff).sum(axis=(-2, -1))  # (n_blocks,)
    f_b = (
        k * pdk.ps_area
        + dc_counts * pdk.dc_area
        + cr_proxy * (beta_cr * pdk.cr_area)
    )
    # Execution probabilities as a Tensor (always-on blocks -> 1).
    if space._has_search:
        soft = categorical_probs(space.theta)  # (n_search, 2)
        parts = []
        for b in range(space.n_blocks):
            si = space._searchable_index(b)
            parts.append(Tensor(np.array(1.0)) if si is None else soft[si, 1])
        probs = T.stack(parts)
    else:
        probs = Tensor(np.ones(space.n_blocks))
    return (probs * f_b).sum()


def footprint_penalty(
    space: SuperMeshSpace, config: FootprintPenaltyConfig = FootprintPenaltyConfig()
) -> Tuple[Tensor, float]:
    """The penalty L_F of Eq. (15).

    Returns ``(penalty_tensor, expected_footprint_exact_um2)``; the
    penalty is positive when over budget (pushes footprint down),
    negative-signed (reward-shaped) when under, zero inside the margin.
    """
    e_exact = expected_footprint_exact(space)
    f_max_hat = (1.0 - config.margin) * space.f_max
    f_min_hat = (1.0 + config.margin) * space.f_min
    if e_exact > f_max_hat:
        proxy = expected_footprint_proxy(space, config.beta_cr)
        return proxy * (config.beta / f_max_hat), e_exact
    if e_exact < f_min_hat:
        proxy = expected_footprint_proxy(space, config.beta_cr)
        return proxy * (-config.beta / f_min_hat), e_exact
    return Tensor(np.array(0.0)), e_exact
