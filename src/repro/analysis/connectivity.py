"""Structural mixing analysis: which inputs can reach which outputs.

A mesh can only be expressive if light from every input port can
interfere with light from every other.  Each block mixes adjacent
pairs (its DC column) and relabels wires (its CR layer); cascading
blocks grows each output's *light cone*.  The butterfly reaches full
mixing in exactly log2(K) stages — the structural reason the paper's
FFT-ONN baseline is the shallow-depth reference — while a coupler-poor
ADEPT block needs more.

This is a zero-optimization, purely combinatorial complement to the
fit-based expressivity measures: a topology whose reachability matrix
is not all-ones cannot realize any dense operator, no matter how its
phases are programmed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.topology import BlockSpec, PTCTopology

__all__ = [
    "block_adjacency",
    "light_cone_sizes",
    "mixing_depth",
    "reachability",
]


def block_adjacency(block: BlockSpec, k: int) -> np.ndarray:
    """Boolean K x K matrix: ``A[i, j]`` true if output wire i of the
    block can carry light from its input wire j."""
    a = np.eye(k, dtype=bool)
    mask = np.asarray(block.coupler_mask, dtype=bool)
    for slot, placed in enumerate(mask):
        if not placed:
            continue
        p = block.offset + 2 * slot
        if p + 1 < k:
            a[p, p + 1] = a[p + 1, p] = True
    if block.perm is not None:
        perm_mat = np.zeros((k, k), dtype=bool)
        perm_mat[np.arange(k), np.asarray(block.perm)] = True
        a = perm_mat @ a
    return a


def reachability(blocks: Sequence[BlockSpec], k: int) -> np.ndarray:
    """Boolean K x K reachability through the whole cascade."""
    r = np.eye(k, dtype=bool)
    for block in blocks:
        r = block_adjacency(block, k) @ r
    return r


def light_cone_sizes(blocks: Sequence[BlockSpec], k: int) -> np.ndarray:
    """Number of inputs reaching each output after the cascade."""
    return reachability(blocks, k).sum(axis=1)


def mixing_depth(blocks: Sequence[BlockSpec], k: int) -> Optional[int]:
    """Number of leading blocks needed for full input-output mixing.

    Returns the smallest prefix length ``d`` such that every output
    of ``blocks[:d]`` sees every input, or ``None`` if the full
    cascade never mixes completely.
    """
    r = np.eye(k, dtype=bool)
    for d, block in enumerate(blocks, start=1):
        r = block_adjacency(block, k) @ r
        if r.all():
            return d
    return None


def topology_mixing_report(topology: PTCTopology) -> str:
    """One-line structural mixing summary of a topology's U mesh."""
    k = topology.k
    depth = mixing_depth(topology.blocks_u, k)
    cones = light_cone_sizes(topology.blocks_u, k)
    if depth is not None:
        return (f"{topology.name!r}: fully mixed after {depth}/"
                f"{len(topology.blocks_u)} U blocks")
    return (f"{topology.name!r}: NOT fully mixed "
            f"(light cones {int(cones.min())}-{int(cones.max())} of {k})")
