"""Expressiveness, spectrum, and Pareto analysis of PTC designs."""

from .connectivity import (
    block_adjacency,
    light_cone_sizes,
    mixing_depth,
    reachability,
    topology_mixing_report,
)
from .expressivity import (
    FitResult,
    build_factory,
    fit_unitary,
    matrix_expressivity,
    unitary_expressivity,
)
from .pareto import ParetoPoint, dominates, hypervolume_2d, pareto_front
from .spectrum import (
    SpectrumStats,
    condition_number,
    effective_rank,
    factory_spectrum_stats,
    singular_spectrum,
    unitarity_error,
)

__all__ = [
    "FitResult",
    "ParetoPoint",
    "SpectrumStats",
    "block_adjacency",
    "build_factory",
    "condition_number",
    "dominates",
    "effective_rank",
    "factory_spectrum_stats",
    "fit_unitary",
    "hypervolume_2d",
    "light_cone_sizes",
    "mixing_depth",
    "matrix_expressivity",
    "pareto_front",
    "reachability",
    "singular_spectrum",
    "unitarity_error",
    "topology_mixing_report",
    "unitary_expressivity",
]
