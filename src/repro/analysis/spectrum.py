"""Singular-spectrum statistics of realized PTC transfer matrices.

A mesh's expressiveness is visible in the *spectra* of the matrices it
realizes: a true unitary mesh has all singular values equal to 1
(effective rank K); a lossy or rank-deficient construction shows
spectral decay.  These statistics complement the fit-based measures in
:mod:`repro.analysis.expressivity` and require no optimization, so
they scale to large K.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..ptc.unitary import UnitaryFactory
from ..utils.rng import get_rng

__all__ = [
    "SpectrumStats",
    "condition_number",
    "effective_rank",
    "factory_spectrum_stats",
    "singular_spectrum",
    "unitarity_error",
]


def singular_spectrum(matrix: np.ndarray) -> np.ndarray:
    """Singular values of a matrix, descending."""
    return np.linalg.svd(np.asarray(matrix), compute_uv=False)


def effective_rank(singular_values: Sequence[float]) -> float:
    """Shannon effective rank: ``exp(H(p))`` with ``p = s / sum(s)``.

    Equals the true rank for a flat spectrum (e.g. K for a unitary)
    and degrades continuously as the spectrum decays (Roy & Vetterli,
    EUSIPCO 2007).
    """
    s = np.asarray(singular_values, dtype=float)
    s = s[s > 0]
    if s.size == 0:
        return 0.0
    p = s / s.sum()
    h = -(p * np.log(p)).sum()
    return float(math.exp(h))


def condition_number(matrix: np.ndarray) -> float:
    """Ratio of the largest to the smallest singular value (inf if
    singular)."""
    s = singular_spectrum(matrix)
    if s[-1] <= 0:
        return float("inf")
    return float(s[0] / s[-1])


def unitarity_error(matrix: np.ndarray) -> float:
    """Frobenius distance of ``M^H M`` from the identity, normalized
    by sqrt(K) so the value is comparable across sizes."""
    m = np.asarray(matrix)
    k = m.shape[-1]
    g = m.conj().swapaxes(-1, -2) @ m
    return float(np.linalg.norm(g - np.eye(k)) / math.sqrt(k))


@dataclass
class SpectrumStats:
    """Aggregate singular-spectrum statistics over random phase draws."""

    mean_effective_rank: float
    mean_condition_number: float
    mean_unitarity_error: float
    mean_smax: float
    mean_smin: float
    n_samples: int


def factory_spectrum_stats(
    factory: UnitaryFactory,
    n_samples: int = 8,
    rng=None,
) -> SpectrumStats:
    """Sample random phase configurations of ``factory`` and collect
    spectrum statistics of the realized transfer matrices.

    The factory's phase parameters are resampled uniformly in
    [0, 2 pi) for every draw (its own values are restored afterwards).
    """
    rng = get_rng(rng)
    saved = [p.data.copy() for p in factory.parameters()]
    eranks: List[float] = []
    conds: List[float] = []
    uerrs: List[float] = []
    smaxs: List[float] = []
    smins: List[float] = []
    try:
        for _ in range(n_samples):
            for p in factory.parameters():
                p.data = rng.uniform(0.0, 2.0 * math.pi, size=p.data.shape)
            mats = factory.build().data
            for i in range(mats.shape[0]):
                s = singular_spectrum(mats[i])
                eranks.append(effective_rank(s))
                conds.append(float(s[0] / s[-1]) if s[-1] > 0 else float("inf"))
                uerrs.append(unitarity_error(mats[i]))
                smaxs.append(float(s[0]))
                smins.append(float(s[-1]))
    finally:
        for p, data in zip(factory.parameters(), saved):
            p.data = data
    return SpectrumStats(
        mean_effective_rank=float(np.mean(eranks)),
        mean_condition_number=float(np.mean(conds)),
        mean_unitarity_error=float(np.mean(uerrs)),
        mean_smax=float(np.mean(smaxs)),
        mean_smin=float(np.mean(smins)),
        n_samples=len(eranks),
    )
