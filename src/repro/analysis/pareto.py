"""Pareto-front utilities for the footprint / expressiveness trade-off.

ADEPT's output is not one design but a *family* (a1..a5 in the paper's
tables): one design per footprint budget.  Comparing families —
ADEPT's vs the manual baselines — is a bi-objective question
(minimize footprint, maximize score), so the natural summary is the
Pareto front and its hypervolume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = [
    "ParetoPoint",
    "dominates",
    "hypervolume_2d",
    "pareto_front",
]


@dataclass(frozen=True)
class ParetoPoint:
    """One design: ``footprint`` to minimize, ``score`` to maximize."""

    footprint: float
    score: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.footprint < 0:
            raise ValueError("footprint must be >= 0")


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True if ``a`` is at least as good as ``b`` on both objectives
    and strictly better on at least one."""
    as_good = a.footprint <= b.footprint and a.score >= b.score
    better = a.footprint < b.footprint or a.score > b.score
    return as_good and better


def pareto_front(points: Iterable[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset, sorted by ascending footprint.

    Duplicate points are kept once.  Within equal footprints only the
    best score survives.
    """
    pts = list(dict.fromkeys(points))
    front = [p for p in pts if not any(dominates(q, p) for q in pts)]
    front.sort(key=lambda p: (p.footprint, -p.score))
    dedup: List[ParetoPoint] = []
    for p in front:
        if dedup and dedup[-1].footprint == p.footprint:
            continue
        dedup.append(p)
    return dedup


def hypervolume_2d(
    front: Sequence[ParetoPoint],
    ref_footprint: float,
    ref_score: float = 0.0,
) -> float:
    """Area dominated by the front w.r.t. a reference point.

    The reference must be worse than every front point (largest
    acceptable footprint, smallest acceptable score); points outside
    the reference box contribute nothing.  Larger is better.
    """
    pts = [p for p in pareto_front(front)
           if p.footprint <= ref_footprint and p.score >= ref_score]
    if not pts:
        return 0.0
    # Along a front sorted by ascending footprint, scores ascend too;
    # on [fp_i, fp_{i+1}) the best achievable score is s_i, so the
    # dominated area is a staircase integral.
    area = 0.0
    for i, p in enumerate(pts):
        right = pts[i + 1].footprint if i + 1 < len(pts) else ref_footprint
        area += (right - p.footprint) * (p.score - ref_score)
    return area
