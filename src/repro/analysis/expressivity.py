"""Matrix-representability measurement for PTC topologies.

The paper's central quality axis is *expressiveness*: how well a mesh
topology can realize arbitrary linear operators.  Classification
accuracy is its proxy in the evaluation; this module measures the
quantity directly, by gradient-fitting a mesh's programmable phases to
random target matrices and reporting the residual error:

* a **universal** mesh (full MZI rectangle) fits any unitary to
  numerical precision;
* a **restricted** mesh (butterfly, or a small searched topology)
  plateaus at an error floor determined by its parameter count and
  connectivity — exactly the expressiveness/footprint trade-off that
  ADEPT navigates.

Entry points: :func:`fit_unitary` (one target),
:func:`unitary_expressivity` (average over random unitary targets),
and :func:`matrix_expressivity` (full W = U Sigma V blocked fit to
random Gaussian matrices).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np
from scipy.stats import unitary_group

from ..autograd import Tensor
from ..core.topology import PTCTopology
from ..nn.module import Parameter
from ..optim import Adam
from ..ptc.unitary import (
    ButterflyFactory,
    FixedTopologyFactory,
    MZIMeshFactory,
    UnitaryFactory,
)
from ..utils.rng import get_rng

__all__ = [
    "FitResult",
    "build_factory",
    "fit_unitary",
    "matrix_expressivity",
    "unitary_expressivity",
]


@dataclass
class FitResult:
    """Outcome of fitting mesh phases to one target matrix.

    ``error`` is the relative Frobenius error
    ``||A_hat - A|| / ||A||``; ``fidelity`` is the normalized overlap
    ``|tr(A_hat A^H)| / ||A_hat|| ||A||`` (1 means perfect up to global
    phase and scale).
    """

    error: float
    fidelity: float
    history: List[float] = field(default_factory=list)
    #: Trained output phase-shifter column (radians), when the fit ran
    #: with ``output_phases=True``; the realized matrix is
    #: ``diag(exp(-j psi)) @ factory.build()``.
    output_phase: Optional[np.ndarray] = None

    @property
    def converged(self) -> bool:
        return self.error < 1e-3


def build_factory(
    kind: str,
    k: int,
    topology: Optional[PTCTopology] = None,
    n_units: int = 1,
    rng=None,
) -> UnitaryFactory:
    """Factory constructor by family name.

    ``kind`` is one of ``"mzi"``, ``"butterfly"`` (alias ``"fft"``),
    or ``"topology"`` (requires ``topology``; uses its U blocks).
    """
    rng = get_rng(rng)
    if kind == "mzi":
        return MZIMeshFactory(k, n_units, rng=rng)
    if kind in ("butterfly", "fft"):
        return ButterflyFactory(k, n_units, rng=rng)
    if kind == "topology":
        if topology is None:
            raise ValueError("kind='topology' requires a topology")
        blocks = [(b.perm, b.coupler_mask, b.offset) for b in topology.blocks_u]
        return FixedTopologyFactory(k, n_units, blocks, rng=rng)
    raise ValueError(f"unknown factory kind {kind!r}")


def _frob_sq(t: Tensor) -> Tensor:
    return (t * t.conj()).real().sum()


def fit_unitary(
    factory: UnitaryFactory,
    target: np.ndarray,
    steps: int = 300,
    lr: float = 0.05,
    record_every: int = 10,
    output_phases: bool = True,
    output_phase_init: Optional[np.ndarray] = None,
    rng=None,
) -> FitResult:
    """Gradient-fit ``factory``'s phases to a K x K target matrix.

    Minimizes ``||D(psi) U(phi) - target||_F^2`` with Adam over the
    factory's parameters, where ``D(psi)`` is an extra trainable
    output phase-shifter column (enabled by default).  Physical meshes
    always carry such a screen, and without it even the full MZI
    rectangle is universal only up to output phases.  The factory must
    have ``n_units == 1``.
    """
    if factory.n_units != 1:
        raise ValueError("fit_unitary requires a factory with n_units == 1")
    rng = get_rng(rng)
    target = np.asarray(target, dtype=complex)
    k = factory.k
    if target.shape != (k, k):
        raise ValueError(f"target must be {k} x {k}, got {target.shape}")
    t_target = Tensor(target.reshape(1, k, k))
    params = list(factory.parameters())
    psi: Optional[Parameter] = None
    if output_phases:
        init = (rng.uniform(0.0, 2.0 * math.pi, size=(k,))
                if output_phase_init is None
                else np.asarray(output_phase_init, dtype=float).copy())
        psi = Parameter(init)
        params.append(psi)
    opt = Adam(params, lr=lr)

    def realize() -> Tensor:
        u = factory.build()
        if psi is None:
            return u
        screen = (Tensor(np.array(-1j)) * psi).exp()
        return screen.reshape((1, k, 1)) * u

    history: List[float] = []
    target_norm = float(np.linalg.norm(target))
    for step in range(steps):
        opt.zero_grad()
        u = realize()
        loss = _frob_sq(u - t_target)
        loss.backward()
        opt.step()
        if step % record_every == 0:
            history.append(math.sqrt(max(float(loss.data), 0.0)) / max(target_norm, 1e-30))
    u_final = realize().data[0]
    err = float(np.linalg.norm(u_final - target)) / max(target_norm, 1e-30)
    denom = float(np.linalg.norm(u_final)) * target_norm
    fid = float(abs(np.trace(u_final @ target.conj().T))) / max(denom, 1e-30)
    history.append(err)
    return FitResult(error=err, fidelity=fid, history=history,
                     output_phase=None if psi is None else psi.data.copy())


def unitary_expressivity(
    make_factory: Callable[[], UnitaryFactory],
    n_targets: int = 3,
    steps: int = 300,
    lr: float = 0.05,
    rng=None,
) -> FitResult:
    """Mean fit quality over random unitary targets (Haar measure).

    A fresh factory is built per target so each fit starts from an
    independent initialization.
    """
    rng = get_rng(rng)
    errors, fids = [], []
    for _ in range(n_targets):
        factory = make_factory()
        seed = int(rng.integers(0, 2**31 - 1))
        target = unitary_group.rvs(factory.k, random_state=seed)
        # The fit rng must derive from the caller's rng too: falling
        # back to the library-wide generator here made the score depend
        # on unrelated earlier draws in the process.
        res = fit_unitary(factory, target, steps=steps, lr=lr,
                          rng=np.random.default_rng(seed))
        errors.append(res.error)
        fids.append(res.fidelity)
    return FitResult(error=float(np.mean(errors)), fidelity=float(np.mean(fids)),
                     history=errors)


def matrix_expressivity(
    kind: str,
    k: int,
    topology: Optional[PTCTopology] = None,
    n_targets: int = 2,
    steps: int = 300,
    lr: float = 0.05,
    rng=None,
) -> FitResult:
    """Fit the full blocked layer ``W = U Sigma V`` to random Gaussian
    K x K targets (general matrices, not unitaries).

    Builds independent U and V factories of the given family plus a
    trainable diagonal Sigma, mirroring one (p, q) block of an ONN
    layer (paper Eq. (1)).
    """
    rng = get_rng(rng)
    errors, fids = [], []
    for _ in range(n_targets):
        fu = build_factory(kind, k, topology=topology, rng=rng)
        fv = build_factory(kind, k, topology=topology, rng=rng)
        sigma = Parameter(rng.normal(0.0, 0.5, size=(k,)))
        target = rng.normal(size=(k, k)) / math.sqrt(k)
        t_target = Tensor(target.astype(complex).reshape(1, k, k))
        params = list(fu.parameters()) + list(fv.parameters()) + [sigma]
        opt = Adam(params, lr=lr)
        target_norm = float(np.linalg.norm(target))
        for _step in range(steps):
            opt.zero_grad()
            u = fu.build()
            v = fv.build()
            w = u @ (sigma.reshape((1, k, 1)) * v)
            loss = _frob_sq(w - t_target)
            loss.backward()
            opt.step()
        u = fu.build().data[0]
        v = fv.build().data[0]
        w = u @ np.diag(sigma.data) @ v
        err = float(np.linalg.norm(w - target)) / max(target_norm, 1e-30)
        denom = float(np.linalg.norm(w)) * target_norm
        fids.append(float(abs(np.trace(w @ target.conj().T))) / max(denom, 1e-30))
        errors.append(err)
    return FitResult(error=float(np.mean(errors)), fidelity=float(np.mean(fids)),
                     history=errors)
