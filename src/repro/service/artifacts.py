"""Content-addressed artifact store for job and shard results.

Every result the service produces is a JSON document stored at
``<root>/<digest>.json`` where ``digest`` is the blake2b content
address of its canonical encoding
(:func:`repro.utils.serialization.json_digest`).  Properties that the
queue and the crash/resume machinery lean on:

* **idempotent writes** — a shard re-executed after a worker crash
  produces the same bytes and therefore the same path; concurrent
  duplicate writers race benignly (last atomic rename wins, contents
  identical);
* **no torn reads** — writes go through
  :func:`repro.utils.serialization.atomic_write_text`, so a reader
  sees a complete document or nothing;
* **self-verifying** — :meth:`ArtifactStore.get` re-hashes what it
  read and rejects a document whose digest does not match its name.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..utils.serialization import (
    atomic_write_text,
    canonical_json_dumps,
    json_digest,
)

__all__ = ["ArtifactStore"]


class ArtifactStore:
    """Directory of content-addressed canonical-JSON documents."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, ref: str) -> Path:
        if not ref or any(c in ref for c in "/\\."):
            raise ValueError(f"malformed artifact ref {ref!r}")
        return self.root / f"{ref}.json"

    def put(self, obj) -> str:
        """Store ``obj``; returns its content address (idempotent)."""
        ref = json_digest(obj)
        path = self._path(ref)
        if not path.exists():
            atomic_write_text(path, canonical_json_dumps(obj))
        return ref

    def get(self, ref: str):
        """Load and verify the artifact at ``ref``."""
        text = self._path(ref).read_text()
        obj = json.loads(text)
        actual = json_digest(obj)
        if actual != ref:
            raise ValueError(
                f"artifact {ref} failed content verification (got {actual})"
            )
        return obj

    def has(self, ref: str) -> bool:
        return self._path(ref).exists()

    def raw_bytes(self, ref: str) -> bytes:
        """Exact stored bytes (byte-identity assertions in tests)."""
        return self._path(ref).read_bytes()

    def refs(self) -> List[str]:
        return sorted(p.stem for p in self.root.glob("*.json"))
