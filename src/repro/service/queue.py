"""Crash-safe persistent job queue (SQLite, multiprocess).

The queue is the durable heart of the design service: jobs and their
shards live in one SQLite database in WAL mode, safe for concurrent
access by many worker processes on one machine.  Everything that
matters for crash-safety is expressed as *atomic state transitions*
inside ``BEGIN IMMEDIATE`` transactions:

* **states** — jobs move ``pending -> running -> done | failed``;
  shards move ``pending -> running -> done | failed`` with the single
  extra edge ``running -> pending`` (lease expiry or retry-with-
  backoff).  Every transition is validated against
  :data:`JOB_TRANSITIONS` / :data:`SHARD_TRANSITIONS` — an illegal
  edge raises :class:`IllegalTransition` instead of corrupting state —
  and appended to a ``transitions`` audit table that tests replay to
  prove no state was ever skipped.
* **leases** — a claimed shard carries ``lease_until``; a worker that
  dies (``kill -9``) simply stops heartbeating and its shard is
  requeued the moment any other participant observes the expired
  lease.  Claims and lease recovery happen in one transaction, so two
  workers can never both own a shard with a live lease.
* **retry with backoff** — a failing shard is requeued with
  ``not_before = now + backoff * 2**(attempts-1)`` until
  ``max_attempts``, then the shard and its job fail permanently.
* **stale-worker fencing** — completions/failures name the worker
  that claimed the shard; a worker whose lease expired (and whose
  shard was handed to someone else) gets a no-op ``False`` back
  rather than double-applying a transition.

The queue stores only control state and artifact *references*; result
payloads live in the content-addressed
:class:`repro.service.artifacts.ArtifactStore`.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import json

from ..utils.serialization import canonical_json_dumps
from .jobs import JobSpec

__all__ = [
    "ClaimedShard",
    "IllegalTransition",
    "JobQueue",
    "JOB_TRANSITIONS",
    "SHARD_TRANSITIONS",
]

#: Legal job state machine; submission creates jobs directly in
#: ``pending`` (recorded as a ``None -> pending`` audit row).
JOB_TRANSITIONS: Dict[Optional[str], set] = {
    None: {"pending"},
    "pending": {"running", "failed"},
    "running": {"done", "failed"},
    "done": set(),
    "failed": set(),
}

#: Legal shard state machine.  ``running -> pending`` covers both
#: lease expiry (a dead worker's shard going back up for grabs) and
#: retry-with-backoff after a failed attempt.
SHARD_TRANSITIONS: Dict[Optional[str], set] = {
    None: {"pending"},
    "pending": {"running"},
    "running": {"done", "pending", "failed"},
    "done": set(),
    "failed": set(),
}


class IllegalTransition(RuntimeError):
    """A state change violating the job/shard state machine."""


@dataclass
class ClaimedShard:
    """A leased unit of work handed to a worker."""

    job_id: str
    kind: str
    params: dict
    idx: int
    payload: dict
    attempts: int
    lease_until: float


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id         TEXT PRIMARY KEY,
    kind       TEXT NOT NULL,
    params     TEXT NOT NULL,
    status     TEXT NOT NULL,
    n_shards   INTEGER NOT NULL,
    result_ref TEXT,
    error      TEXT,
    created    REAL NOT NULL,
    updated    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS shards (
    job_id     TEXT NOT NULL,
    idx        INTEGER NOT NULL,
    payload    TEXT NOT NULL,
    status     TEXT NOT NULL,
    attempts   INTEGER NOT NULL DEFAULT 0,
    lease_until REAL NOT NULL DEFAULT 0,
    not_before REAL NOT NULL DEFAULT 0,
    worker     TEXT,
    result_ref TEXT,
    error      TEXT,
    updated    REAL NOT NULL,
    PRIMARY KEY (job_id, idx)
);
CREATE TABLE IF NOT EXISTS transitions (
    seq        INTEGER PRIMARY KEY AUTOINCREMENT,
    entity     TEXT NOT NULL,          -- 'job' or 'shard'
    job_id     TEXT NOT NULL,
    idx        INTEGER,                -- NULL for jobs
    from_state TEXT,                   -- NULL on creation
    to_state   TEXT NOT NULL,
    reason     TEXT,
    at         REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_shards_claim
    ON shards (status, not_before);
"""


class JobQueue:
    """One SQLite-backed queue; construct one instance per process."""

    def __init__(self, path: Union[str, Path], busy_timeout: float = 30.0):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=busy_timeout)
        self._conn.row_factory = sqlite3.Row
        self._conn.isolation_level = None  # explicit transactions only
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
        # executescript manages its own transaction (implicit commit).
        self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        self._conn.close()

    # -- transactions ---------------------------------------------------

    def _txn(self):
        return _Transaction(self._conn)

    # -- validated transitions ------------------------------------------

    def _transition_job(
        self, job_id: str, new: str, now: float, reason: str = ""
    ) -> None:
        row = self._conn.execute(
            "SELECT status FROM jobs WHERE id=?", (job_id,)
        ).fetchone()
        old = row["status"] if row else None
        if new not in JOB_TRANSITIONS.get(old, set()):
            raise IllegalTransition(f"job {job_id}: {old} -> {new}")
        if old is None:
            raise IllegalTransition(f"job {job_id} does not exist")
        self._conn.execute(
            "UPDATE jobs SET status=?, updated=? WHERE id=?",
            (new, now, job_id),
        )
        self._record(("job", job_id, None, old, new, reason, now))

    def _transition_shard(
        self, job_id: str, idx: int, new: str, now: float, reason: str = ""
    ) -> None:
        row = self._conn.execute(
            "SELECT status FROM shards WHERE job_id=? AND idx=?",
            (job_id, idx),
        ).fetchone()
        old = row["status"] if row else None
        if old is None:
            raise IllegalTransition(f"shard {job_id}[{idx}] does not exist")
        if new not in SHARD_TRANSITIONS.get(old, set()):
            raise IllegalTransition(f"shard {job_id}[{idx}]: {old} -> {new}")
        self._conn.execute(
            "UPDATE shards SET status=?, updated=? WHERE job_id=? AND idx=?",
            (new, now, job_id, idx),
        )
        self._record(("shard", job_id, idx, old, new, reason, now))

    def _record(self, row) -> None:
        entity, job_id, idx, old, new, reason, at = row
        self._conn.execute(
            "INSERT INTO transitions (entity, job_id, idx, from_state, "
            "to_state, reason, at) VALUES (?,?,?,?,?,?,?)",
            (entity, job_id, idx, old, new, reason, at),
        )

    # -- submission -----------------------------------------------------

    def submit(self, spec: JobSpec, now: Optional[float] = None) -> str:
        """Enqueue ``spec``; idempotent on its content-addressed id."""
        now = time.time() if now is None else now
        spec.validate()
        shards = spec.expand()
        job_id = spec.job_id
        with self._txn():
            exists = self._conn.execute(
                "SELECT 1 FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            if exists:
                return job_id
            self._conn.execute(
                "INSERT INTO jobs (id, kind, params, status, n_shards, "
                "created, updated) VALUES (?,?,?,?,?,?,?)",
                (
                    job_id,
                    spec.kind,
                    canonical_json_dumps(spec.params),
                    "pending",
                    len(shards),
                    now,
                    now,
                ),
            )
            self._record(("job", job_id, None, None, "pending", "submit", now))
            for idx, payload in enumerate(shards):
                self._conn.execute(
                    "INSERT INTO shards (job_id, idx, payload, status, "
                    "updated) VALUES (?,?,?,?,?)",
                    (job_id, idx, canonical_json_dumps(payload), "pending", now),
                )
                self._record(
                    ("shard", job_id, idx, None, "pending", "submit", now)
                )
        return job_id

    # -- claiming -------------------------------------------------------

    def requeue_expired(self, now: Optional[float] = None) -> int:
        """Return expired-lease running shards to ``pending``."""
        now = time.time() if now is None else now
        with self._txn():
            return self._requeue_expired_locked(now)

    def _requeue_expired_locked(self, now: float) -> int:
        rows = self._conn.execute(
            "SELECT job_id, idx FROM shards WHERE status='running' "
            "AND lease_until < ?",
            (now,),
        ).fetchall()
        for r in rows:
            self._transition_shard(
                r["job_id"], r["idx"], "pending", now, "lease-expired"
            )
            self._conn.execute(
                "UPDATE shards SET worker=NULL, lease_until=0 "
                "WHERE job_id=? AND idx=?",
                (r["job_id"], r["idx"]),
            )
        return len(rows)

    def claim_shard(
        self,
        worker: str,
        lease_seconds: float = 60.0,
        now: Optional[float] = None,
    ) -> Optional[ClaimedShard]:
        """Atomically lease the next available shard, or None.

        Lease recovery and the claim happen in one transaction, so a
        shard whose worker died is claimable the instant its lease
        lapses, and no two workers ever hold a live lease on the same
        shard.
        """
        now = time.time() if now is None else now
        with self._txn():
            self._requeue_expired_locked(now)
            row = self._conn.execute(
                "SELECT s.job_id, s.idx, s.payload, s.attempts, "
                "       j.kind, j.params "
                "FROM shards s JOIN jobs j ON j.id = s.job_id "
                "WHERE s.status='pending' AND s.not_before <= ? "
                "      AND j.status IN ('pending', 'running') "
                "ORDER BY j.created, s.job_id, s.idx LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            job_id, idx = row["job_id"], row["idx"]
            job_status = self._conn.execute(
                "SELECT status FROM jobs WHERE id=?", (job_id,)
            ).fetchone()["status"]
            if job_status == "pending":
                self._transition_job(job_id, "running", now, "first-claim")
            self._transition_shard(job_id, idx, "running", now, "claim")
            lease_until = now + lease_seconds
            self._conn.execute(
                "UPDATE shards SET attempts=attempts+1, lease_until=?, "
                "worker=? WHERE job_id=? AND idx=?",
                (lease_until, worker, job_id, idx),
            )
            return ClaimedShard(
                job_id=job_id,
                kind=row["kind"],
                params=json.loads(row["params"]),
                idx=idx,
                payload=json.loads(row["payload"]),
                attempts=row["attempts"] + 1,
                lease_until=lease_until,
            )

    # -- completion / failure -------------------------------------------

    def _owns(self, job_id: str, idx: int, worker: str) -> bool:
        row = self._conn.execute(
            "SELECT status, worker FROM shards WHERE job_id=? AND idx=?",
            (job_id, idx),
        ).fetchone()
        return (
            row is not None
            and row["status"] == "running"
            and row["worker"] == worker
        )

    def complete_shard(
        self,
        job_id: str,
        idx: int,
        result_ref: str,
        worker: str,
        now: Optional[float] = None,
    ) -> bool:
        """Mark a leased shard done.  Returns False for stale workers
        (lease expired and the shard was since requeued or finished
        elsewhere) — the deterministic result they computed is simply
        dropped."""
        now = time.time() if now is None else now
        with self._txn():
            if not self._owns(job_id, idx, worker):
                return False
            self._transition_shard(job_id, idx, "done", now, "complete")
            self._conn.execute(
                "UPDATE shards SET result_ref=?, error=NULL "
                "WHERE job_id=? AND idx=?",
                (result_ref, job_id, idx),
            )
            return True

    def fail_shard(
        self,
        job_id: str,
        idx: int,
        error: str,
        worker: str,
        max_attempts: int = 3,
        backoff_seconds: float = 0.5,
        now: Optional[float] = None,
    ) -> bool:
        """Record a failed attempt: requeue with exponential backoff
        while attempts remain, else fail the shard and its job."""
        now = time.time() if now is None else now
        with self._txn():
            if not self._owns(job_id, idx, worker):
                return False
            attempts = self._conn.execute(
                "SELECT attempts FROM shards WHERE job_id=? AND idx=?",
                (job_id, idx),
            ).fetchone()["attempts"]
            if attempts >= max_attempts:
                self._transition_shard(job_id, idx, "failed", now, "exhausted")
                self._conn.execute(
                    "UPDATE shards SET error=? WHERE job_id=? AND idx=?",
                    (error, job_id, idx),
                )
                self._transition_job(job_id, "failed", now, "shard-failed")
                self._conn.execute(
                    "UPDATE jobs SET error=? WHERE id=?",
                    (f"shard {idx}: {error}", job_id),
                )
            else:
                delay = backoff_seconds * (2.0 ** (attempts - 1))
                self._transition_shard(job_id, idx, "pending", now, "retry")
                self._conn.execute(
                    "UPDATE shards SET not_before=?, worker=NULL, "
                    "lease_until=0, error=? WHERE job_id=? AND idx=?",
                    (now + delay, error, job_id, idx),
                )
            return True

    # -- finalization ---------------------------------------------------

    def finalizable_jobs(self) -> List[str]:
        """Running jobs whose shards are all done (awaiting aggregate)."""
        rows = self._conn.execute(
            "SELECT j.id FROM jobs j WHERE j.status='running' AND NOT EXISTS "
            "(SELECT 1 FROM shards s WHERE s.job_id=j.id AND s.status!='done')"
            " ORDER BY j.created"
        ).fetchall()
        return [r["id"] for r in rows]

    def finalize_job(
        self, job_id: str, result_ref: str, now: Optional[float] = None
    ) -> bool:
        """Transition a fully-sharded-done job to ``done``.  Returns
        False if someone else finalized it first."""
        now = time.time() if now is None else now
        with self._txn():
            row = self._conn.execute(
                "SELECT status FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            if row is None or row["status"] != "running":
                return False
            remaining = self._conn.execute(
                "SELECT COUNT(*) AS n FROM shards WHERE job_id=? "
                "AND status!='done'",
                (job_id,),
            ).fetchone()["n"]
            if remaining:
                return False
            self._transition_job(job_id, "done", now, "aggregate")
            self._conn.execute(
                "UPDATE jobs SET result_ref=? WHERE id=?", (result_ref, job_id)
            )
            return True

    # -- introspection --------------------------------------------------

    def job_status(self, job_id: str) -> dict:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE id=?", (job_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no such job {job_id!r}")
        counts: Dict[str, int] = {}
        for r in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM shards WHERE job_id=? "
            "GROUP BY status",
            (job_id,),
        ):
            counts[r["status"]] = r["n"]
        return {
            "id": row["id"],
            "kind": row["kind"],
            "params": json.loads(row["params"]),
            "status": row["status"],
            "n_shards": row["n_shards"],
            "shards": counts,
            "result_ref": row["result_ref"],
            "error": row["error"],
        }

    def list_jobs(self) -> List[dict]:
        rows = self._conn.execute(
            "SELECT id FROM jobs ORDER BY created"
        ).fetchall()
        return [self.job_status(r["id"]) for r in rows]

    def shard_result_refs(self, job_id: str) -> List[Optional[str]]:
        """Result refs in shard-index order (None where not done)."""
        rows = self._conn.execute(
            "SELECT result_ref FROM shards WHERE job_id=? ORDER BY idx",
            (job_id,),
        ).fetchall()
        return [r["result_ref"] for r in rows]

    def unfinished(self) -> int:
        """Number of jobs still pending or running."""
        return self._conn.execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE status IN "
            "('pending','running')"
        ).fetchone()["n"]

    def history(self, job_id: Optional[str] = None) -> List[dict]:
        """The append-only transition audit trail, oldest first."""
        if job_id is None:
            rows = self._conn.execute(
                "SELECT * FROM transitions ORDER BY seq"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM transitions WHERE job_id=? ORDER BY seq",
                (job_id,),
            ).fetchall()
        return [dict(r) for r in rows]


class _Transaction:
    """``BEGIN IMMEDIATE`` context manager (commit/rollback on exit)."""

    def __init__(self, conn: sqlite3.Connection):
        self.conn = conn

    def __enter__(self):
        self.conn.execute("BEGIN IMMEDIATE")
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.conn.execute("COMMIT")
        else:
            self.conn.execute("ROLLBACK")
        return False
