"""Builtin job kinds for the design service.

Each handler is registered with :mod:`repro.service.jobs` and follows
the determinism contract spelled out there: shard decomposition
depends only on the job params, shard execution is a pure function of
``(params, shard)`` with all randomness derived from in-params seeds
via :func:`repro.utils.rng.stable_seed`, and aggregation consumes
shard results in index order.  Heavy experiment-layer imports happen
inside the functions so that ``import repro.service`` stays cheap.

Kinds
-----
``robustness-grid``
    The flagship sharded workload: a Monte-Carlo phase-noise grid of
    one mesh design, split into fixed-size trial chunks through
    :func:`repro.core.evaluate_noise_grid_shard` — byte-identical
    aggregates at any worker count.
``evaluate``
    Train + score one design (single shard).
``search``
    One ADEPT topology search (single shard; the topology comes back
    inline as JSON).
``export``
    Netlist/footprint accounting of a topology (single shard).
``fig4-part``
    Paper Fig. 4 robustness curves, one shard per mesh design.
``fig5a`` / ``fig5b``
    Paper Fig. 5 ablation scans, one shard per scan point.
``recalibrate``
    Online recalibration of a chip snapshot (single shard): rebuild
    the frozen digital twin from JSON params and solve for new phases
    — the job the streaming server submits when its quality window
    trips (:mod:`repro.hardware.recalibration`).
"""

from __future__ import annotations

import json
from typing import List, Optional

import numpy as np

from ..utils.rng import spawn_rng, stable_seed
from ..utils.serialization import canonical_json_dumps
from .jobs import JobType, register_job_type

__all__ = [
    "resolve_mesh",
    "topology_param",
]


# ----------------------------------------------------------------------
# shared param plumbing
# ----------------------------------------------------------------------

def topology_param(topology) -> dict:
    """A :class:`repro.core.PTCTopology` as a JSON-native params value."""
    return json.loads(topology.to_json())


def resolve_mesh(mesh):
    """Params mesh spec -> library mesh spec.

    Strings (``"mzi"``/``"butterfly"``) pass through; a dict is parsed
    back into a :class:`repro.core.PTCTopology`.
    """
    if isinstance(mesh, str):
        return mesh
    from ..core.topology import PTCTopology

    return PTCTopology.from_json(canonical_json_dumps(mesh))


def _with_defaults(params: dict, defaults: dict) -> dict:
    unknown = set(params) - set(defaults)
    if unknown:
        raise ValueError(f"unknown params {sorted(unknown)}; "
                         f"expected a subset of {sorted(defaults)}")
    merged = dict(defaults)
    merged.update(params)
    return merged


def _floats(xs) -> List[float]:
    return [float(x) for x in xs]


# ----------------------------------------------------------------------
# robustness-grid: sharded Monte-Carlo noise grid
# ----------------------------------------------------------------------

_ROBUSTNESS_DEFAULTS = {
    "mesh": "mzi",               # "mzi" | "butterfly" | topology dict
    "k": 8,
    "dataset": "mnist",
    "n_test": 192,
    "data_seed": 7,
    "model_seed": 0,
    "train_epochs": 0,           # optional pre-grid training budget
    "n_train": 96,
    "noise_stds": [0.02, 0.04, 0.06, 0.08, 0.10],
    "n_runs": 5,
    "seed": 0,
    "shard_trials": 8,           # trials per shard (fixed decomposition)
    "batch_size": 64,
    "backend": "fast",
    "exec_backend": None,
}


def _robustness_model(p: dict):
    """Deterministically (re)build the model a grid job measures.

    Every shard rebuilds the identical model from ``model_seed`` — a
    cheap rng-driven phase init (plus an optional tiny training run),
    so shards stay pure functions of the job params.
    """
    from .. import nn
    from ..data import train_test_split
    from ..onn import PTCLinear, train as train_model
    from ..onn.trainer import TrainConfig

    train_set, test_set = train_test_split(
        p["dataset"], p["n_train"], p["n_test"], seed=p["data_seed"]
    )
    in_features = int(np.prod(train_set.images.shape[1:]))
    n_classes = int(train_set.labels.max()) + 1
    rng = spawn_rng(stable_seed("service-robustness-model", p["model_seed"]))
    model = nn.Sequential(
        nn.Flatten(),
        PTCLinear(in_features, n_classes, k=int(p["k"]),
                  mesh=resolve_mesh(p["mesh"]), rng=rng),
    )
    if p["train_epochs"]:
        train_model(
            model, train_set,
            config=TrainConfig(epochs=int(p["train_epochs"]),
                               batch_size=int(p["batch_size"])),
            rng=rng,
        )
    return model, test_set


def _robustness_expand(params: dict) -> List[dict]:
    p = _with_defaults(params, _ROBUSTNESS_DEFAULTS)
    n_trials = len(p["noise_stds"]) * int(p["n_runs"])
    step = max(1, int(p["shard_trials"]))
    return [
        {"lo": lo, "hi": min(lo + step, n_trials)}
        for lo in range(0, n_trials, step)
    ]


def _robustness_run_shard(params: dict, shard: dict) -> dict:
    from ..core import evaluate_noise_grid_shard

    p = _with_defaults(params, _ROBUSTNESS_DEFAULTS)
    model, test_set = _robustness_model(p)
    accs = evaluate_noise_grid_shard(
        model, test_set, _floats(p["noise_stds"]), int(p["n_runs"]),
        lo=int(shard["lo"]), hi=int(shard["hi"]), seed=int(p["seed"]),
        backend=p["backend"], batch_size=int(p["batch_size"]),
        exec_backend=p["exec_backend"],
    )
    return {"lo": shard["lo"], "hi": shard["hi"], "accs": _floats(accs)}


def _robustness_aggregate(params: dict, shard_results: List[dict]) -> dict:
    p = _with_defaults(params, _ROBUSTNESS_DEFAULTS)
    flat: List[float] = []
    for r in shard_results:
        flat.extend(r["accs"])
    n_runs = int(p["n_runs"])
    stds = _floats(p["noise_stds"])
    grid = np.asarray(flat).reshape(len(stds), n_runs)
    return {
        "noise_stds": stds,
        "n_runs": n_runs,
        "grid": [list(map(float, row)) for row in grid],
        "mean_acc": _floats(grid.mean(axis=1)),
        "std_acc": _floats(grid.std(axis=1)),
    }


register_job_type(JobType(
    kind="robustness-grid",
    expand=_robustness_expand,
    run_shard=_robustness_run_shard,
    aggregate=_robustness_aggregate,
    description="Monte-Carlo phase-noise grid, sharded over trials",
))


# ----------------------------------------------------------------------
# evaluate: train + score one design (single shard)
# ----------------------------------------------------------------------

_EVALUATE_DEFAULTS = {
    "mesh": "mzi",
    "k": 8,
    "dataset": "mnist",
    "model": "cnn2",
    "epochs": 2,
    "noise_std": 0.0,
    "seed": 0,
}


def _evaluate_run_shard(params: dict, shard: dict) -> dict:
    from ..experiments.common import ExperimentScale, train_eval_mesh

    p = _with_defaults(params, _EVALUATE_DEFAULTS)
    scale = ExperimentScale()
    scale.retrain_epochs = int(p["epochs"])
    scale.seed = int(p["seed"])
    acc, _ = train_eval_mesh(
        resolve_mesh(p["mesh"]), int(p["k"]), scale, dataset=p["dataset"],
        model_name=p["model"], noise_std=float(p["noise_std"]),
        seed=int(p["seed"]),
    )
    return {"accuracy": float(acc)}


register_job_type(JobType(
    kind="evaluate",
    expand=lambda params: [{}],
    run_shard=_evaluate_run_shard,
    aggregate=lambda params, results: results[0],
    description="train + evaluate one mesh design",
))


# ----------------------------------------------------------------------
# search: one ADEPT topology search (single shard)
# ----------------------------------------------------------------------

_SEARCH_DEFAULTS = {
    "k": 8,
    "pdk": "amf",
    "f_min": 240.0,              # paper units (1000 um^2)
    "f_max": 300.0,
    "epochs": 4,
    "n_train": 96,
    "seed": 0,
    "name": "adept-service",
}


def _search_run_shard(params: dict, shard: dict) -> dict:
    from ..core import ADEPTConfig, search_ptc
    from ..photonics import get_pdk

    p = _with_defaults(params, _SEARCH_DEFAULTS)
    pdk = get_pdk(p["pdk"])
    cfg = ADEPTConfig(
        k=int(p["k"]),
        pdk=pdk,
        f_min=float(p["f_min"]) * 1000.0,
        f_max=float(p["f_max"]) * 1000.0,
        epochs=int(p["epochs"]),
        warmup_epochs=max(1, int(p["epochs"]) // 6),
        spl_epoch=max(2, (2 * int(p["epochs"])) // 3),
        n_train=int(p["n_train"]),
        n_test=max(64, int(p["n_train"]) // 2),
        seed=int(p["seed"]),
    )
    result = search_ptc(cfg)
    topo = result.topology
    topo.name = p["name"]
    return {
        "topology": topology_param(topo),
        "footprint_kum2": float(topo.footprint(pdk).in_paper_units()),
        "n_blocks": topo.n_blocks,
    }


register_job_type(JobType(
    kind="search",
    expand=lambda params: [{}],
    run_shard=_search_run_shard,
    aggregate=lambda params, results: results[0],
    description="one ADEPT topology search",
))


# ----------------------------------------------------------------------
# export: netlist / footprint accounting (single shard)
# ----------------------------------------------------------------------

_EXPORT_DEFAULTS = {
    "topology": None,            # required: topology dict
    "pdk": "amf",
}


def _export_run_shard(params: dict, shard: dict) -> dict:
    from ..layout import build_netlist
    from ..photonics import get_pdk
    from ..photonics.power import estimate_power

    p = _with_defaults(params, _EXPORT_DEFAULTS)
    if not isinstance(p["topology"], dict):
        raise ValueError("export requires params['topology'] (a dict)")
    topo = resolve_mesh(p["topology"])
    pdk = get_pdk(p["pdk"])
    netlist = build_netlist(topo)
    n_ps, n_dc, n_cr = netlist.device_counts()
    power = estimate_power(topo, pdk)
    return {
        "name": topo.name,
        "k": topo.k,
        "devices": {"ps": n_ps, "dc": n_dc, "cr": n_cr},
        "n_columns": netlist.n_columns,
        "optical_depth": netlist.optical_depth(),
        "footprint_kum2": float(topo.footprint(pdk).in_paper_units()),
        "power_mw": float(power.total_power_mw),
    }


register_job_type(JobType(
    kind="export",
    expand=lambda params: [{}],
    run_shard=_export_run_shard,
    aggregate=lambda params, results: results[0],
    description="netlist + footprint/power accounting of a topology",
))


# ----------------------------------------------------------------------
# fig4-part: paper Fig. 4 robustness curves, one shard per mesh
# ----------------------------------------------------------------------

_FIG4_DEFAULTS = {
    "part": "a",
    "k": 16,
    "meshes": None,              # [[name, "mzi"|"butterfly"|topo dict]...]
    "scale": None,               # ExperimentScale field overrides
    "noise_stds": [0.02, 0.04, 0.06, 0.08, 0.10],
    "backend": "fast",
}


def _fig4_meshes(p: dict) -> List[list]:
    meshes = p["meshes"]
    if meshes is None:
        meshes = [["MZI", "mzi"], ["FFT", "butterfly"]]
    return meshes


def _fig4_expand(params: dict) -> List[dict]:
    p = _with_defaults(params, _FIG4_DEFAULTS)
    return [{"mesh_index": i} for i in range(len(_fig4_meshes(p)))]


def _fig4_run_shard(params: dict, shard: dict) -> dict:
    from ..experiments.common import ExperimentScale
    from ..experiments.fig4 import mesh_noise_curve

    p = _with_defaults(params, _FIG4_DEFAULTS)
    name, mesh = _fig4_meshes(p)[int(shard["mesh_index"])]
    scale = ExperimentScale(**(p["scale"] or {}))
    curve = mesh_noise_curve(
        p["part"], name, resolve_mesh(mesh), int(p["k"]), scale,
        _floats(p["noise_stds"]), p["backend"],
    )
    return {"name": name, "curve": [list(map(float, c)) for c in curve]}


def _fig4_aggregate(params: dict, shard_results: List[dict]) -> dict:
    p = _with_defaults(params, _FIG4_DEFAULTS)
    return {
        "part": p["part"],
        "curves": {r["name"]: r["curve"] for r in shard_results},
    }


register_job_type(JobType(
    kind="fig4-part",
    expand=_fig4_expand,
    run_shard=_fig4_run_shard,
    aggregate=_fig4_aggregate,
    description="Fig. 4 noise-robustness curves, one shard per mesh",
))


# ----------------------------------------------------------------------
# fig5a / fig5b: ablation scans, one shard per scan point
# ----------------------------------------------------------------------

_FIG5A_DEFAULTS = {
    "k": 8,
    "n_blocks": 6,
    "steps": 600,
    "rho0_values": [1e-8, 5e-8, 1e-7, 5e-7, 1e-6, 5e-6],
    "seed": 0,
}


def _fig5a_run_shard(params: dict, shard: dict) -> dict:
    from ..experiments.fig5 import alm_scan_point

    p = _with_defaults(params, _FIG5A_DEFAULTS)
    rho0 = float(p["rho0_values"][int(shard["point_index"])])
    trace = alm_scan_point(
        rho0, k=int(p["k"]), n_blocks=int(p["n_blocks"]),
        steps=int(p["steps"]), seed=int(p["seed"]),
    )
    return {
        "rho0": rho0,
        "perm_error": _floats(trace.perm_error),
        "mean_lambda": _floats(trace.mean_lambda),
    }


register_job_type(JobType(
    kind="fig5a",
    expand=lambda params: [
        {"point_index": i}
        for i in range(len(_with_defaults(
            params, _FIG5A_DEFAULTS)["rho0_values"]))
    ],
    run_shard=_fig5a_run_shard,
    aggregate=lambda params, results: {"traces": results},
    description="Fig. 5(a) ALM rho0 scan, one shard per rho0",
))


_FIG5B_DEFAULTS = {
    "k": 8,
    "window_kum2": [240.0, 300.0],
    "steps": 150,
    "beta_values": [0.001, 0.01, 0.1, 1.0, 10.0],
    "seed": 0,
}


def _fig5b_run_shard(params: dict, shard: dict) -> dict:
    from ..experiments.fig5 import penalty_scan_point

    p = _with_defaults(params, _FIG5B_DEFAULTS)
    beta = float(p["beta_values"][int(shard["point_index"])])
    lo, hi = p["window_kum2"]
    trace = penalty_scan_point(
        beta, k=int(p["k"]), window_kum2=(float(lo), float(hi)),
        steps=int(p["steps"]), seed=int(p["seed"]),
    )
    return {
        "beta": beta,
        "expected_footprint": _floats(trace.expected_footprint),
        "penalty_over_beta": _floats(trace.penalty_over_beta),
        "window": [float(w) for w in trace.window],
    }


# ----------------------------------------------------------------------
# recalibrate: drive-program solve for one chip snapshot (single shard)
# ----------------------------------------------------------------------

_RECALIBRATE_DEFAULTS = {
    "k": None,                   # required: mesh size
    "blocks": None,              # required: [BlockSpec dicts]
    "phases": None,              # required: current (B, K) drive program
    "target_re": None,           # required: target real part, (K, K)
    "target_im": None,           # required: target imaginary part
    "method": "adjoint",         # "adjoint" | "spsa"
    "steps": 150,
    "lr": 0.05,
    "seed": 0,
    "t_s": 0.0,                  # snapshot virtual time (provenance)
    "phase_offsets": None,       # frozen drift offsets, (B, K)
    "crosstalk_gamma": 0.0,      # frozen effective coupling
    "crosstalk_radius": 1,
    "dc_t": None,                # realized coupler transmissions
    "loss_diag": None,           # realized per-wire loss
}


def _recalibrate_run_shard(params: dict, shard: dict) -> dict:
    from ..hardware.recalibration import recalibrate_snapshot

    p = _with_defaults(params, _RECALIBRATE_DEFAULTS)
    for key in ("k", "blocks", "phases", "target_re", "target_im"):
        if p[key] is None:
            raise ValueError(f"recalibrate requires params[{key!r}]")
    return recalibrate_snapshot(p)


register_job_type(JobType(
    kind="recalibrate",
    expand=lambda params: [{}],
    run_shard=_recalibrate_run_shard,
    aggregate=lambda params, results: results[0],
    description="solve new drive phases for one frozen chip snapshot",
))


register_job_type(JobType(
    kind="fig5b",
    expand=lambda params: [
        {"point_index": i}
        for i in range(len(_with_defaults(
            params, _FIG5B_DEFAULTS)["beta_values"]))
    ],
    run_shard=_fig5b_run_shard,
    aggregate=lambda params, results: {"traces": results},
    description="Fig. 5(b) footprint-penalty beta scan, one shard per beta",
))


# ----------------------------------------------------------------------
# campaign: one declarative experiment matrix, one shard per cell
# ----------------------------------------------------------------------


def _campaign_spec(params: dict):
    from ..campaign import CampaignSpec

    if set(params) != {"spec"}:
        raise ValueError("campaign params must be exactly {'spec': ...} "
                         "(see repro.campaign.campaign_job_params)")
    return CampaignSpec.from_dict(params["spec"]).validate()


def _campaign_expand(params: dict) -> List[dict]:
    from ..campaign import expand

    return [
        {"cell_index": cell.index, "cell_id": cell.cell_id}
        for cell in expand(_campaign_spec(params))
    ]


def _campaign_run_shard(params: dict, shard: dict) -> dict:
    from ..campaign import expand, get_runner

    spec = _campaign_spec(params)
    cell = expand(spec)[int(shard["cell_index"])]
    if cell.cell_id != shard["cell_id"]:
        raise ValueError(
            f"cell id mismatch at index {cell.index}: the spec no longer "
            "expands to the submitted matrix"
        )
    return {
        "cell_id": cell.cell_id,
        "coords": cell.coords,
        "result": get_runner(spec.kind).run(cell.params),
    }


def _campaign_aggregate(params: dict, shard_results: List[dict]) -> dict:
    spec = _campaign_spec(params)
    return {
        "campaign_id": spec.campaign_id,
        "name": spec.name,
        "kind": spec.kind,
        "cells": shard_results,
    }


register_job_type(JobType(
    kind="campaign",
    expand=_campaign_expand,
    run_shard=_campaign_run_shard,
    aggregate=_campaign_aggregate,
    description="declarative campaign matrix, one shard per cell",
))
