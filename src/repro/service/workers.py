"""Sharded multiprocess worker pool over the persistent queue.

A *worker* is a loop: claim a leased shard, execute its job kind's
``run_shard``, write the result to the content-addressed artifact
store, mark the shard done, and — if that was the job's last shard —
aggregate and finalize.  Workers are stateless: every byte of durable
state lives in the queue and the artifact store, so a worker killed
with ``kill -9`` mid-shard loses nothing; its lease expires and any
other worker (or a freshly restarted pool) re-executes the shard to
the identical result.

Determinism contract: shard decomposition is a pure function of the
job params, shard execution is a pure function of ``(params, shard)``,
and aggregation consumes shard results in shard-index order — so the
final artifact bytes do not depend on the number of workers, the
claiming order, or how many crash/resume cycles happened along the
way.  ``tests/service/test_resume.py`` locks this.

:class:`WorkerPool` spawns N OS processes (``multiprocessing``); pass
``n_workers=0`` to :func:`run_until_idle` for a fully in-process
single-worker drain (the reference path for determinism checks and
the baseline for ``benchmarks/test_perf_service.py``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from pathlib import Path
from typing import List, Optional, Union

from .artifacts import ArtifactStore
from .jobs import get_job_type
from .queue import JobQueue

__all__ = ["WorkerPool", "run_until_idle", "worker_loop"]

#: Default lease on a claimed shard; a worker that dies is recovered
#: after at most this long.
DEFAULT_LEASE_SECONDS = 30.0


def _execute_claim(queue: JobQueue, store: ArtifactStore, claim, worker_id: str,
                   max_attempts: int, backoff_seconds: float) -> None:
    """Run one claimed shard end to end (result, completion, finalize)."""
    try:
        job_type = get_job_type(claim.kind)
        result = job_type.run_shard(claim.params, claim.payload)
        ref = store.put(result)
    except Exception:
        queue.fail_shard(
            claim.job_id,
            claim.idx,
            traceback.format_exc(limit=8),
            worker_id,
            max_attempts=max_attempts,
            backoff_seconds=backoff_seconds,
        )
        return
    queue.complete_shard(claim.job_id, claim.idx, ref, worker_id)
    _try_finalize(queue, store, claim.job_id)


def _try_finalize(queue: JobQueue, store: ArtifactStore, job_id: str) -> bool:
    """Aggregate + finalize ``job_id`` if all its shards are done.

    Safe to call from any process at any time: aggregation is a pure
    function of the (deterministic) shard results, and the queue-side
    ``finalize_job`` transition admits exactly one winner.
    """
    refs = queue.shard_result_refs(job_id)
    if any(r is None for r in refs):
        return False
    status = queue.job_status(job_id)
    if status["status"] != "running":
        return False
    job_type = get_job_type(status["kind"])
    shard_results = [store.get(r) for r in refs]
    final = job_type.aggregate(status["params"], shard_results)
    final_ref = store.put(final)
    return queue.finalize_job(job_id, final_ref)


def worker_loop(
    queue_path: Union[str, Path],
    artifact_root: Union[str, Path],
    worker_id: Optional[str] = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    poll_seconds: float = 0.05,
    max_attempts: int = 3,
    backoff_seconds: float = 0.5,
    until_idle: bool = True,
    max_shards: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> int:
    """Claim-and-execute loop; returns the number of shards executed.

    ``until_idle=True`` exits once the queue holds no unfinished jobs;
    otherwise the loop serves forever (the ``repro serve`` daemon
    mode).  ``max_shards`` bounds the number of executed shards — the
    crash-injection tests use it to stop a worker at a known point.
    ``cache_dir`` points the process-global unitary build cache at a
    shared multiprocess-safe directory (see :mod:`repro.ptc.cache`),
    so pool workers reuse each other's eval-mode mesh builds.
    """
    worker_id = worker_id or f"worker-{os.getpid()}"
    prev_cache_dir = None
    if cache_dir is not None:
        from ..ptc.cache import set_unitary_cache_dir

        prev_cache_dir = set_unitary_cache_dir(cache_dir)
    queue = JobQueue(queue_path)
    store = ArtifactStore(artifact_root)
    executed = 0
    try:
        while True:
            claim = queue.claim_shard(worker_id, lease_seconds=lease_seconds)
            if claim is not None:
                _execute_claim(
                    queue, store, claim, worker_id, max_attempts,
                    backoff_seconds,
                )
                executed += 1
                if max_shards is not None and executed >= max_shards:
                    return executed
                continue
            # No claimable shard: pick up orphaned finalizations (a
            # worker that died between its last complete_shard and
            # finalize_job leaves the job running with all shards done).
            for job_id in queue.finalizable_jobs():
                _try_finalize(queue, store, job_id)
            if until_idle and queue.unfinished() == 0:
                return executed
            time.sleep(poll_seconds)
    finally:
        queue.close()
        if cache_dir is not None:
            # Restore for inline (n_workers=0) callers; moot in a
            # dedicated worker process.
            from ..ptc.cache import set_unitary_cache_dir

            set_unitary_cache_dir(prev_cache_dir)


class WorkerPool:
    """N worker processes draining one queue directory.

    The pool only *hosts* the workers; all coordination is through the
    queue, so killing any subset of processes (or the whole pool) and
    starting a new one resumes exactly where the dead workers' leases
    left off.
    """

    def __init__(
        self,
        queue_path: Union[str, Path],
        artifact_root: Union[str, Path],
        n_workers: int = 2,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_seconds: float = 0.05,
        max_attempts: int = 3,
        backoff_seconds: float = 0.5,
        until_idle: bool = True,
        max_shards: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ):
        if n_workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        self.queue_path = str(queue_path)
        self.artifact_root = str(artifact_root)
        self.n_workers = n_workers
        self.kwargs = dict(
            lease_seconds=lease_seconds,
            poll_seconds=poll_seconds,
            max_attempts=max_attempts,
            backoff_seconds=backoff_seconds,
            until_idle=until_idle,
            max_shards=max_shards,
            cache_dir=None if cache_dir is None else str(cache_dir),
        )
        self.processes: List[mp.Process] = []

    def start(self) -> "WorkerPool":
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                             else "spawn")
        for i in range(self.n_workers):
            p = ctx.Process(
                target=worker_loop,
                args=(self.queue_path, self.artifact_root),
                kwargs=dict(self.kwargs, worker_id=None),
                daemon=True,
                name=f"repro-worker-{i}",
            )
            p.start()
            self.processes.append(p)
        return self

    def pids(self) -> List[int]:
        return [p.pid for p in self.processes if p.pid is not None]

    def join(self, timeout: Optional[float] = None) -> None:
        deadline = None if timeout is None else time.time() + timeout
        for p in self.processes:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.time())
            )
            p.join(remaining)

    def alive(self) -> int:
        return sum(p.is_alive() for p in self.processes)

    def terminate(self) -> None:
        for p in self.processes:
            if p.is_alive():
                p.terminate()
        for p in self.processes:
            p.join(5.0)


def run_until_idle(
    queue_path: Union[str, Path],
    artifact_root: Union[str, Path],
    n_workers: int = 0,
    timeout: Optional[float] = None,
    **worker_kwargs,
) -> None:
    """Drain the queue: in-process when ``n_workers == 0``, else with a
    pool of worker processes joined under ``timeout``.

    ``until_idle=False`` (forwarded to the workers) turns this into
    the serve-forever daemon mode: workers keep polling for new jobs
    and the call only returns if the pool is externally terminated.
    """
    worker_kwargs.setdefault("until_idle", True)
    if n_workers <= 0:
        worker_loop(queue_path, artifact_root, **worker_kwargs)
        return
    pool = WorkerPool(
        queue_path, artifact_root, n_workers=n_workers, **worker_kwargs,
    ).start()
    pool.join(timeout)
    if pool.alive():
        pool.terminate()
        raise TimeoutError(
            f"worker pool did not drain the queue within {timeout}s"
        )
