"""High-level facade: one directory = one design service instance.

A service root holds the persistent queue (``queue.sqlite``) and the
content-addressed artifact store (``artifacts/``).  Everything is
file-backed, so any number of processes — submitters, workers, status
watchers — can open the same root concurrently, and a service killed
at any instant resumes from its directory.

Typical flow (mirrored by ``python -m repro submit/serve/status``)::

    svc = DesignService("runs/service")
    job_id = svc.submit("robustness-grid", {"mesh": "mzi", "k": 8})
    svc.run(n_workers=4)            # or `python -m repro serve` elsewhere
    result = svc.result(job_id)
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Optional, Union

from .artifacts import ArtifactStore
from .jobs import JobSpec
from .queue import JobQueue
from .workers import WorkerPool, run_until_idle, _try_finalize

__all__ = ["DesignService"]


class DesignService:
    """Submit / execute / inspect jobs rooted at one directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.queue_path = self.root / "queue.sqlite"
        self.artifact_root = self.root / "artifacts"
        self.queue = JobQueue(self.queue_path)
        self.store = ArtifactStore(self.artifact_root)

    def close(self) -> None:
        self.queue.close()

    # -- client side ----------------------------------------------------

    def submit(self, kind: str, params: Optional[dict] = None) -> str:
        """Enqueue a job; returns its content-addressed id
        (resubmitting identical params is a no-op)."""
        return self.queue.submit(JobSpec(kind=kind, params=params or {}))

    def status(self, job_id: str) -> dict:
        return self.queue.job_status(job_id)

    def jobs(self) -> List[dict]:
        return self.queue.list_jobs()

    def result(self, job_id: str):
        """The final aggregated result of a ``done`` job."""
        status = self.queue.job_status(job_id)
        if status["status"] == "failed":
            raise RuntimeError(f"job {job_id} failed: {status['error']}")
        if status["status"] != "done":
            # A crash between the last shard completion and the
            # finalize transition leaves the aggregate computable by
            # anyone — including the client asking for it.
            if not _try_finalize(self.queue, self.store, job_id):
                raise RuntimeError(
                    f"job {job_id} is {status['status']}; result not ready"
                )
            status = self.queue.job_status(job_id)
        return self.store.get(status["result_ref"])

    def result_bytes(self, job_id: str) -> bytes:
        """Exact artifact bytes of a finished job (determinism tests)."""
        status = self.queue.job_status(job_id)
        if status["status"] != "done":
            self.result(job_id)  # finalize if possible, raise if not
            status = self.queue.job_status(job_id)
        return self.store.raw_bytes(status["result_ref"])

    def wait(self, job_id: str, timeout: float = 60.0,
             poll_seconds: float = 0.05):
        """Block until ``job_id`` finishes; returns its result."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            status = self.queue.job_status(job_id)
            if status["status"] in ("done", "failed"):
                return self.result(job_id)
            time.sleep(poll_seconds)
        raise TimeoutError(f"job {job_id} did not finish within {timeout}s")

    # -- worker side ----------------------------------------------------

    def run(self, n_workers: int = 0, timeout: Optional[float] = None,
            **worker_kwargs) -> None:
        """Drain the queue (``n_workers=0`` = in-process single worker).

        Workers share the root's multiprocess-safe unitary build cache
        (``unitary-cache/``) unless ``cache_dir`` is overridden.
        """
        worker_kwargs.setdefault("cache_dir", str(self.root / "unitary-cache"))
        run_until_idle(
            self.queue_path, self.artifact_root, n_workers=n_workers,
            timeout=timeout, **worker_kwargs,
        )

    def pool(self, n_workers: int, **worker_kwargs) -> WorkerPool:
        """An unstarted :class:`WorkerPool` attached to this root."""
        worker_kwargs.setdefault("cache_dir", str(self.root / "unitary-cache"))
        return WorkerPool(
            self.queue_path, self.artifact_root, n_workers=n_workers,
            **worker_kwargs,
        )
