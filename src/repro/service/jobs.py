"""Job model for the concurrent design service.

A *job* is one user-level request — a topology search, a train/eval
run, a Monte-Carlo robustness grid, a netlist export — described by a
``kind`` string and a JSON-serializable ``params`` dict.  Jobs are
content-addressed: the job id is the blake2b digest of the canonical
JSON encoding of ``(kind, params)`` (see
:func:`repro.utils.serialization.json_digest`), so submitting the same
request twice is idempotent by construction.

Each kind registers a :class:`JobType` with three pure functions:

``expand(params) -> [shard payloads]``
    Deterministic decomposition into independent *shards* — the unit
    of work a worker claims.  The decomposition depends only on
    ``params`` (never on worker count or wall-clock), which is what
    makes aggregated results reproducible regardless of how many
    workers executed them.

``run_shard(params, shard) -> result``
    Execute one shard; a pure function of its arguments (all
    randomness derives from seeds inside ``params`` via
    :func:`repro.utils.rng.stable_seed`), returning a JSON-serializable
    result.

``aggregate(params, shard_results) -> result``
    Combine shard results (given in shard-index order) into the final
    job result.  Because shard results and the combination are both
    deterministic, the final artifact bytes are identical whether the
    shards ran in one process or across a crash-recovering pool.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..utils.serialization import canonical_json_dumps, json_digest

__all__ = [
    "JobSpec",
    "JobType",
    "available_job_kinds",
    "get_job_type",
    "register_job_type",
]


@dataclass(frozen=True)
class JobType:
    """A registered job kind: shard decomposition, execution, merge."""

    kind: str
    expand: Callable[[dict], List[dict]]
    run_shard: Callable[[dict, dict], dict]
    aggregate: Callable[[dict, List[dict]], dict]
    description: str = ""


_REGISTRY: Dict[str, JobType] = {}


def register_job_type(job_type: JobType) -> JobType:
    """Register (or replace) a job kind; returns the registered type."""
    _REGISTRY[job_type.kind] = job_type
    return job_type


def get_job_type(kind: str) -> JobType:
    _ensure_builtin_handlers()
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown job kind {kind!r}; available: {available_job_kinds()}"
        ) from None


def available_job_kinds() -> List[str]:
    _ensure_builtin_handlers()
    return sorted(_REGISTRY)


def _ensure_builtin_handlers() -> None:
    # Builtin handlers live in repro.service.handlers and register
    # themselves on import; imported lazily to keep `import repro`
    # free of experiment-layer dependencies.
    from . import handlers  # noqa: F401


@dataclass
class JobSpec:
    """A submittable request: kind + JSON-serializable parameters."""

    kind: str
    params: dict = field(default_factory=dict)

    def canonical(self) -> str:
        """Canonical JSON of ``(kind, params)`` — the hashed identity."""
        return canonical_json_dumps({"kind": self.kind, "params": self.params})

    @property
    def job_id(self) -> str:
        """Content address: equal requests always share one id."""
        return json_digest({"kind": self.kind, "params": self.params})

    def validate(self) -> "JobSpec":
        """Check the payload round-trips losslessly through JSON."""
        encoded = self.canonical()
        decoded = json.loads(encoded)
        if decoded["params"] != self.params:
            raise ValueError(
                "job params do not survive a JSON round-trip; use only "
                "JSON-native types (dict/list/str/int/float/bool/None)"
            )
        get_job_type(self.kind)  # raises on unknown kind
        return self

    def expand(self) -> List[dict]:
        """The job's deterministic shard decomposition."""
        shards = get_job_type(self.kind).expand(self.params)
        if not shards:
            raise ValueError(f"job kind {self.kind!r} expanded to zero shards")
        return shards
