"""Concurrent design service: persistent jobs, sharded workers.

Turns the one-shot ``python -m repro search/evaluate/robustness``
scripts into a service: requests become content-addressed *jobs* in a
crash-safe SQLite queue, deterministically decomposed into independent
*shards* that a pool of worker processes executes across cores, with
results aggregated into a content-addressed artifact store.  Killing
any worker (or the whole machine) loses nothing — leases expire,
shards re-run, and the aggregated artifact comes out byte-identical.

Layers (bottom up):

* :mod:`repro.service.jobs` — job model, kind registry, shard
  decomposition contract;
* :mod:`repro.service.artifacts` — content-addressed JSON artifacts;
* :mod:`repro.service.queue` — persistent queue with validated state
  transitions, leases, and retry-with-backoff;
* :mod:`repro.service.workers` — the multiprocess worker pool;
* :mod:`repro.service.handlers` — builtin kinds (``robustness-grid``,
  ``evaluate``, ``search``, ``export``, ``fig4-part``, ``fig5a/b``);
* :mod:`repro.service.service` — the :class:`DesignService` facade the
  CLI (``repro serve / submit / status``) and experiment drivers use.
"""

from .artifacts import ArtifactStore
from .jobs import (
    JobSpec,
    JobType,
    available_job_kinds,
    get_job_type,
    register_job_type,
)
from .queue import (
    JOB_TRANSITIONS,
    SHARD_TRANSITIONS,
    ClaimedShard,
    IllegalTransition,
    JobQueue,
)
from .service import DesignService
from .workers import WorkerPool, run_until_idle, worker_loop

__all__ = [
    "ArtifactStore",
    "ClaimedShard",
    "DesignService",
    "IllegalTransition",
    "JOB_TRANSITIONS",
    "JobQueue",
    "JobSpec",
    "JobType",
    "SHARD_TRANSITIONS",
    "WorkerPool",
    "available_job_kinds",
    "get_job_type",
    "register_job_type",
    "run_until_idle",
    "worker_loop",
]
