"""Fused autograd kernels for photonic mesh simulation.

The hot loop of every PTC forward pass is a *column cascade*: a mesh of
``B`` blocks applies, block by block, a diagonal phase-shifter column
followed by a constant-ish coupler/crossing matrix,

    U = C_{B-1} D(ps_{B-1}) ... C_1 D(ps_1) C_0 D(ps_0),

optionally soft-gated per block by Gumbel execution probabilities
(the SuperMesh of paper Eq. 5-7).  Composing this out of elementary
:mod:`repro.autograd.tensor` ops costs O(B) graph nodes *per mesh* and
dominates runtime with Python dispatch overhead rather than FLOPs.

This module provides two fused primitives that run the whole cascade
as a single graph node with a hand-derived backward pass:

* :func:`phase_column_cascade` — the PS-column cascade above, with
  gradients for the phase factors, the block matrices (needed by the
  SuperMesh, where blocks depend on trainable permutations and
  couplers), and the execution probabilities.
* :func:`matmul_chain` — a left-fold of batched matrix products
  ``M_{B-1} @ ... @ M_0`` used by the MZI rectangle, whose column
  matrices are themselves phase-dependent.

Both follow the complex gradient convention of
:mod:`repro.autograd.tensor` (``z.grad = dL/dx + i dL/dy``); their
backward rules are the exact composition of the ``mul``/``matmul``
rules the unfused graph would apply, so fast-path gradients match the
reference path to floating-point rounding.  Parity is locked in by
``tests/autograd/test_fused.py`` and ``tests/ptc/test_fast_path_parity.py``.

**Debug mode** — with ``REPRO_CHECK_FINITE=1`` in the environment,
every fused-kernel output is scanned and a :class:`FloatingPointError`
names the kernel the first time a NaN/Inf appears, instead of the
non-finite values laundering through accuracy scores as silently wrong
numbers (a single bad phase otherwise surfaces only as a model that
mysteriously never learns).  The check costs one ``isfinite`` scan per
kernel call and is off by default.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from .backend import BackendLike, resolve_backend
from .tensor import Tensor, _make, ensure_tensor, is_grad_enabled

__all__ = [
    "finite_checks_enabled",
    "l2_normalize",
    "matmul_chain",
    "matmul_chain_forward",
    "phase_column_cascade",
    "phase_column_cascade_forward",
]


def finite_checks_enabled() -> bool:
    """True when ``REPRO_CHECK_FINITE`` requests NaN/Inf output checks.

    Read per call so tests (and long-lived services) can flip the mode
    without reimporting; any value other than empty/``"0"`` enables.
    """
    return os.environ.get("REPRO_CHECK_FINITE", "0") not in ("", "0")


def _check_finite(out: np.ndarray, kernel: str) -> np.ndarray:
    """Raise ``FloatingPointError`` on non-finite ``out`` in debug mode."""
    if finite_checks_enabled() and not np.all(np.isfinite(out)):
        n_bad = int(np.size(out) - np.count_nonzero(np.isfinite(out)))
        raise FloatingPointError(
            f"{kernel} produced {n_bad} non-finite value(s) "
            f"(shape {out.shape}); set REPRO_CHECK_FINITE=0 to disable "
            "this check"
        )
    return out


def _recording(*tensors: Optional[Tensor]) -> bool:
    """True when a graph node would actually be created for ``tensors``
    — the condition under which a forward-only backend must demote to
    its grad-capable fallback."""
    return is_grad_enabled() and any(
        t is not None and (t.requires_grad or t._parents) for t in tensors
    )


def l2_normalize(x: Tensor, axis: int, eps: float = 1e-12) -> Tensor:
    """Fused L2 row/column normalization ``x / sqrt(sum |x|^2 + eps)``.

    One graph node replacing the six-op elementary composition
    ``x / (sum_(x * conj(x), axis, keepdims).real() + eps).sqrt()
    .astype(complex)`` used by the SuperMesh stabilization (paper
    3.3.2).  The backward rule is the exact composition of the
    elementary rules (with the real-projection at the sqrt boundary):

        ``g_x = g / d - x * Re(sum(g * conj(x))) / d^3``,
        ``d = sqrt(sum |x|^2 + eps)``.
    """
    x = ensure_tensor(x)
    xd = x.data
    n2 = (xd * np.conj(xd)).real.sum(axis=axis, keepdims=True) + eps
    d = np.sqrt(n2)
    out = xd / d

    def backward(g: np.ndarray):
        dot = (g * np.conj(xd)).sum(axis=axis, keepdims=True).real
        return (g / d - xd * (dot / (n2 * d)),)

    return _make(out, (x,), backward)


def phase_column_cascade_forward(
    consts: np.ndarray,
    ps: np.ndarray,
    exec_prob: Optional[np.ndarray] = None,
    backend: Optional[BackendLike] = None,
) -> np.ndarray:
    """Forward-only twin of :func:`phase_column_cascade`.

    Computes ``C_{B-1} @ diag(ps_{B-1}) @ ... @ C_0 @ diag(ps_0)`` for a
    batch of ``N`` meshes without building a graph node or retaining
    per-block intermediates — the inner kernel of the trial-batched
    Monte-Carlo robustness engine (:mod:`repro.core.variation`), where
    ``N`` is (trials x units) and no gradients are ever needed.

    ``consts`` has shape ``(B, K, K)`` (shared) or ``(N, B, K, K)``
    (per-mesh); ``ps`` has shape ``(N, B, K)``; ``exec_prob``, when
    given, has shape ``(B,)`` or ``(N, B)`` and soft-gates each block
    exactly like the graph kernel.  ``backend`` selects the execution
    backend (:mod:`repro.autograd.backend`); ``None`` uses the process
    default.  On the ``"numpy"`` backend the arithmetic is identical,
    op for op, to the autograd kernel's forward loop, so results agree
    bit-for-bit with the trainable path; the ``"numpy-c64"`` fast lane
    trades that for complex64 stacked-GEMM folding.
    """
    out = resolve_backend(backend).phase_column_cascade_forward(
        consts, ps, exec_prob
    )
    return _check_finite(out, "phase_column_cascade_forward")


def matmul_chain_forward(
    mats: np.ndarray, backend: Optional[BackendLike] = None
) -> np.ndarray:
    """Forward-only twin of :func:`matmul_chain`.

    ``mats`` has shape ``(N, B, K, K)``; returns
    ``mats[:, B-1] @ ... @ mats[:, 0]`` of shape ``(N, K, K)`` without
    graph bookkeeping or stored prefixes.  ``backend`` selects the
    execution backend (``None`` = process default).
    """
    return _check_finite(
        resolve_backend(backend).matmul_chain_forward(mats), "matmul_chain_forward"
    )


def phase_column_cascade(
    consts: Tensor,
    ps: Tensor,
    exec_prob: Optional[Tensor] = None,
    backend: Optional[BackendLike] = None,
) -> Tensor:
    """Fused forward of a phase-shifter/constant-column mesh cascade.

    Computes, in one graph node,

        ``u_0 = I``,
        ``block_b = C_b @ diag(ps_b) @ u_b``,
        ``u_{b+1} = m_b * block_b + (1 - m_b) * u_b``,

    returning ``u_B`` of shape ``(N, K, K)``.

    Parameters
    ----------
    consts:
        Block matrices ``C_b``; shape ``(B, K, K)`` (shared by all N
        meshes) or ``(N, B, K, K)`` (per-mesh).  May carry gradients —
        in the SuperMesh they depend on the relaxed permutations and
        STE-binarized couplers.
    ps:
        Complex phase factors ``exp(-j phi)``, shape ``(N, B, K)``.
    exec_prob:
        Optional per-block execution weights ``m_b``; shape ``(B,)``
        (shared) or ``(N, B)``.  ``None`` means every block executes
        (``m_b = 1``), which skips the gating arithmetic entirely.
    backend:
        Execution backend (:mod:`repro.autograd.backend`); ``None``
        uses the process default.  A forward-only backend (e.g. the
        complex64 fast lane) is honored only when no gradients would be
        recorded; under grad recording the kernel demotes to the
        backend's grad-capable fallback so training code can run
        unchanged with a low-precision default installed.
    """
    consts = ensure_tensor(consts)
    ps = ensure_tensor(ps)
    if exec_prob is not None:
        exec_prob = ensure_tensor(exec_prob)
    eb = resolve_backend(backend)
    if eb.forward_only and not _recording(consts, ps, exec_prob):
        ed_ = None if exec_prob is None else exec_prob.data
        return Tensor(_check_finite(
            eb.phase_column_cascade_forward(consts.data, ps.data, ed_),
            "phase_column_cascade",
        ))
    pd = ps.data
    if pd.ndim != 3:
        raise ValueError(f"ps must have shape (N, B, K), got {pd.shape}")
    n, n_blocks, k = pd.shape
    cd = consts.data
    shared_c = cd.ndim == 3
    if shared_c:
        if cd.shape != (n_blocks, k, k):
            raise ValueError(f"consts shape {cd.shape} != ({n_blocks}, {k}, {k})")
    elif cd.shape != (n, n_blocks, k, k):
        raise ValueError(f"consts shape {cd.shape} != ({n}, {n_blocks}, {k}, {k})")
    ed = None
    if exec_prob is not None:
        exec_prob = ensure_tensor(exec_prob)
        ed = exec_prob.data
        if ed.shape not in ((n_blocks,), (n, n_blocks)):
            raise ValueError(f"exec_prob shape {ed.shape} invalid for B={n_blocks}")

    eye = np.eye(k, dtype=complex)
    if n_blocks == 0:
        return Tensor(np.broadcast_to(eye, (n, k, k)).copy())

    # Forward, keeping per-block intermediates for the backward pass.
    # The gated block outputs are only retained when the gates can
    # actually receive gradients — a constant exec mask (population
    # padding) would otherwise pin B extra (N, K, K) arrays per build.
    need_e = exec_prob is not None and (
        exec_prob.requires_grad or bool(exec_prob._parents)
    )
    prevs = []  # u_b entering block b; None encodes the identity
    blocks = []  # C_b @ diag(ps_b) @ u_b (needed for exec_prob grads)
    u: Optional[np.ndarray] = None
    for b in range(n_blocks):
        c_b = cd[b] if shared_c else cd[:, b]
        ps_b = pd[:, b, :]
        prevs.append(u)
        if u is None:
            block = c_b * ps_b[:, None, :]
        else:
            block = c_b @ (ps_b[:, :, None] * u)
        if ed is None:
            u = block
        else:
            m = ed[b] if ed.ndim == 1 else ed[:, b][:, None, None]
            skip = eye if u is None else u
            u = m * block + (1.0 - m) * skip
            if need_e:
                blocks.append(block)
    out = u

    def backward(g: np.ndarray):
        need_c = consts.requires_grad or consts._parents
        g_ps = np.zeros((n, n_blocks, k), dtype=complex)
        g_c = np.zeros(cd.shape, dtype=complex) if need_c else None
        g_e = np.zeros(ed.shape, dtype=complex) if need_e else None
        gu = np.asarray(g)
        for b in reversed(range(n_blocks)):
            c_b = cd[b] if shared_c else cd[:, b]
            ps_b = pd[:, b, :]
            prev = prevs[b]
            if ed is not None:
                m = ed[b] if ed.ndim == 1 else ed[:, b][:, None, None]
                if need_e:
                    skip = eye if prev is None else prev
                    diff = gu * np.conj(blocks[b] - skip)
                    if ed.ndim == 1:
                        g_e[b] += diff.sum()
                    else:
                        g_e[:, b] += diff.sum(axis=(-1, -2))
                g_block = m * gu
                g_skip = (1.0 - m) * gu
            else:
                g_block = gu
                g_skip = None
            if prev is None:
                # block = C_b * ps_b[:, None, :] (column scaling).
                if need_c:
                    gc = g_block * np.conj(ps_b[:, None, :])
                    if shared_c:
                        g_c[b] += gc.sum(axis=0)
                    else:
                        g_c[:, b] += gc
                g_ps[:, b, :] = (g_block * np.conj(c_b)).sum(axis=-2)
                g_prev = None
            else:
                v = ps_b[:, :, None] * prev
                g_v = np.conj(np.swapaxes(c_b, -1, -2)) @ g_block
                if need_c:
                    gc = g_block @ np.conj(np.swapaxes(v, -1, -2))
                    if shared_c:
                        g_c[b] += gc.sum(axis=0)
                    else:
                        g_c[:, b] += gc
                g_ps[:, b, :] = (g_v * np.conj(prev)).sum(axis=-1)
                g_prev = g_v * np.conj(ps_b)[:, :, None]
            if g_prev is None:
                gu = g_skip if g_skip is not None else None
            elif g_skip is not None:
                gu = g_prev + g_skip
            else:
                gu = g_prev
            if gu is None and b > 0:
                # Fully-gated remainder (m = 1 on the first block without
                # a skip path cannot happen: g_skip exists whenever ed
                # does, and g_prev exists whenever b > 0).
                gu = np.zeros((n, k, k), dtype=complex)
        if exec_prob is None:
            return g_c, g_ps
        return g_c, g_ps, g_e

    parents = (consts, ps) if exec_prob is None else (consts, ps, exec_prob)
    return _make(
        _check_finite(np.ascontiguousarray(out), "phase_column_cascade"),
        parents,
        backward,
    )


def matmul_chain(mats: Tensor, backend: Optional[BackendLike] = None) -> Tensor:
    """Fused left-fold of batched matrix products.

    ``mats`` has shape ``(N, B, K, K)``; the result is
    ``mats[:, B-1] @ ... @ mats[:, 1] @ mats[:, 0]`` of shape
    ``(N, K, K)`` — block 0 acts on the input first, matching the
    light-propagation order used throughout :mod:`repro.ptc`.

    A single graph node replaces the ``B - 1`` matmul nodes the
    unfused composition would create; the backward pass replays the
    chain with the stored prefixes (``grad_{M_b} = g_b @ conj(P_{b-1})^T``,
    ``g_{b-1} = conj(M_b)^T @ g_b``).

    ``backend`` follows the same rules as :func:`phase_column_cascade`:
    forward-only backends apply only when no gradients would be
    recorded, otherwise the grad-capable fallback runs.
    """
    mats = ensure_tensor(mats)
    eb = resolve_backend(backend)
    if eb.forward_only and not _recording(mats):
        return Tensor(
            _check_finite(eb.matmul_chain_forward(mats.data), "matmul_chain")
        )
    md = mats.data
    if md.ndim != 4 or md.shape[-1] != md.shape[-2]:
        raise ValueError(f"mats must have shape (N, B, K, K), got {md.shape}")
    n, n_blocks, k, _ = md.shape
    if n_blocks == 0:
        return Tensor(np.broadcast_to(np.eye(k, dtype=complex), (n, k, k)).copy())

    prefixes = []  # running product entering block b; None = identity
    u: Optional[np.ndarray] = None
    for b in range(n_blocks):
        prefixes.append(u)
        u = md[:, b] if u is None else md[:, b] @ u

    def backward(g: np.ndarray):
        gm = np.zeros_like(md)
        gu = np.asarray(g)
        for b in reversed(range(n_blocks)):
            prev = prefixes[b]
            if prev is None:
                gm[:, b] += gu
            else:
                gm[:, b] += gu @ np.conj(np.swapaxes(prev, -1, -2))
                gu = np.conj(np.swapaxes(md[:, b], -1, -2)) @ gu
        return (gm,)

    return _make(
        _check_finite(np.ascontiguousarray(u), "matmul_chain"), (mats,), backward
    )
