"""Pluggable execution backends for the fused forward kernels.

The fused kernels in :mod:`repro.autograd.fused` used to call NumPy
directly in complex128.  Every *forward-only* workload — Monte-Carlo
robustness trials, eval passes, population scoring — paid double the
memory bandwidth it needed, and no alternative array engine could be
slotted in.  This module breaks that coupling: an
:class:`ExecutionBackend` bundles a name, a complex/real dtype pair,
and the forward kernel implementations, and a small registry dispatches
per-call or via a process-wide default.

Two backends are registered out of the box:

* ``"numpy"`` — the reference engine: complex128, grad-capable.  Its
  forward kernels are, op for op, the seed implementation, so results
  agree bit-for-bit with the autograd graph kernels.
* ``"numpy-c64"`` — the complex64 **fast lane**: forward-only, half
  the memory traffic and flop cost, sized for K = 16/32 meshes (the
  cascade is folded as large-batch single-precision GEMMs writing into
  a pair of reused ping-pong buffers, so the hot loop allocates
  nothing per block).

Forward-only backends cannot record gradients.  The graph kernels
(:func:`repro.autograd.fused.phase_column_cascade`,
:func:`repro.autograd.fused.matmul_chain`) therefore *demote*
automatically: when grad recording is active and the resolved backend
is forward-only, the kernel silently runs on the backend's
``grad_fallback`` (complex128) instead.  That makes
``set_default_backend("numpy-c64")`` globally safe — training stays at
full precision while eval/Monte-Carlo paths take the fast lane.

Selection
---------
* per call: every fused kernel and factory build method accepts a
  ``backend=`` / ``exec_backend=`` argument (a name or an
  :class:`ExecutionBackend`);
* process-wide: :func:`set_default_backend` (also re-exported as
  ``repro.set_default_backend``) switches the default immediately and
  returns a guard usable as a context manager that restores the prior
  default on exit;
* environment: the ``REPRO_EXEC_BACKEND`` variable picks the initial
  default at import time (used by the CI complex64 matrix leg).

Precision guarantees are spelled out in ``docs/ARCHITECTURE.md``
("Execution backends") and locked down by
``tests/autograd/test_backend_parity.py``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Optional, Tuple, Union

import numpy as np

__all__ = [
    "ExecutionBackend",
    "available_backends",
    "backend_scope",
    "default_backend",
    "get_backend",
    "grad_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
]

BackendLike = Union[str, "ExecutionBackend"]


def _check_cascade_shapes(
    consts: np.ndarray, ps: np.ndarray, exec_prob
) -> Tuple[int, int, int, bool, Optional[np.ndarray]]:
    """Shared argument validation of the cascade kernels.

    Returns ``(n, n_blocks, k, shared_consts, exec_data)``.
    """
    if ps.ndim != 3:
        raise ValueError(f"ps must have shape (N, B, K), got {ps.shape}")
    n, n_blocks, k = ps.shape
    shared_c = consts.ndim == 3
    if shared_c:
        if consts.shape != (n_blocks, k, k):
            raise ValueError(f"consts shape {consts.shape} != ({n_blocks}, {k}, {k})")
    elif consts.shape != (n, n_blocks, k, k):
        raise ValueError(f"consts shape {consts.shape} != ({n}, {n_blocks}, {k}, {k})")
    ed = None
    if exec_prob is not None:
        ed = np.asarray(exec_prob)
        if ed.shape not in ((n_blocks,), (n, n_blocks)):
            raise ValueError(f"exec_prob shape {ed.shape} invalid for B={n_blocks}")
    return n, n_blocks, k, shared_c, ed


class ExecutionBackend:
    """One array engine + dtype lane for the fused forward kernels.

    Attributes
    ----------
    name: registry key (also part of every build-cache key).
    complex_dtype / real_dtype: the dtype lane the kernels compute in.
    forward_only: True if the backend cannot participate in autograd
        graph recording; the graph kernels then demote to
        :attr:`grad_fallback` whenever gradients are being recorded.
    grad_fallback: name of the grad-capable backend substituted for a
        forward-only backend under grad recording.
    """

    name: str = "abstract"
    complex_dtype = np.complex128
    real_dtype = np.float64
    forward_only: bool = False
    grad_fallback: Optional[str] = None

    def cache_token(self) -> bytes:
        """Backend identity folded into unitary build-cache keys.

        Covers both the engine name and the complex dtype so a cached
        complex128 build can never be served to a complex64 request
        (or vice versa) — see ``tests/ptc/test_unitary_cache.py``.
        """
        return f"|{self.name}|{np.dtype(self.complex_dtype)}|".encode()

    # -- forward kernels -----------------------------------------------
    def phase_column_cascade_forward(
        self,
        consts: np.ndarray,
        ps: np.ndarray,
        exec_prob: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def matmul_chain_forward(self, mats: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "forward-only" if self.forward_only else "grad-capable"
        return f"ExecutionBackend({self.name!r}, {np.dtype(self.complex_dtype)}, {kind})"


class NumpyBackend(ExecutionBackend):
    """Reference engine: complex128 NumPy, grad-capable.

    The kernels below keep the exact op order of the seed
    implementation, so they agree **bit-for-bit** with the forwards of
    the autograd graph kernels (locked by
    ``tests/autograd/test_fused.py::TestForwardOnlyKernels``).
    """

    name = "numpy"
    complex_dtype = np.complex128
    real_dtype = np.float64
    forward_only = False

    def phase_column_cascade_forward(self, consts, ps, exec_prob=None):
        ps = np.asarray(ps)
        consts = np.asarray(consts)
        n, n_blocks, k, shared_c, ed = _check_cascade_shapes(consts, ps, exec_prob)
        eye = np.eye(k, dtype=complex)
        if n_blocks == 0:
            return np.broadcast_to(eye, (n, k, k)).copy()
        u: Optional[np.ndarray] = None
        for b in range(n_blocks):
            c_b = consts[b] if shared_c else consts[:, b]
            ps_b = ps[:, b, :]
            if u is None:
                block = c_b * ps_b[:, None, :]
            else:
                block = c_b @ (ps_b[:, :, None] * u)
            if ed is None:
                u = block
            else:
                # Same gating arithmetic, in the same order, as the
                # graph kernel: u = m * block + (1 - m) * skip.
                m = ed[b] if ed.ndim == 1 else ed[:, b][:, None, None]
                skip = eye if u is None else u
                u = m * block + (1.0 - m) * skip
        return np.ascontiguousarray(u)

    def matmul_chain_forward(self, mats):
        mats = np.asarray(mats)
        if mats.ndim != 4 or mats.shape[-1] != mats.shape[-2]:
            raise ValueError(f"mats must have shape (N, B, K, K), got {mats.shape}")
        n, n_blocks, k, _ = mats.shape
        if n_blocks == 0:
            return np.broadcast_to(np.eye(k, dtype=complex), (n, k, k)).copy()
        u: Optional[np.ndarray] = None
        for b in range(n_blocks):
            u = mats[:, b] if u is None else mats[:, b] @ u
        return np.ascontiguousarray(u)


class NumpyC64Backend(ExecutionBackend):
    """Forward-only complex64 fast lane with buffered batched-BLAS folds.

    Inputs are cast to complex64 once on entry, then the cascade is
    folded block by block as large-batch ``(N, K, K)`` GEMMs — single
    precision halves both the memory traffic and the BLAS flop cost —
    with a pair of ping-pong output buffers so the hot loop performs no
    per-block allocations (``np.multiply``/``np.matmul`` with ``out=``).
    This is what ``benchmarks/test_perf_lowprec.py`` gates at K = 16:
    the trial-stack forward must run >= 1.5x faster than the complex128
    reference engine.

    The gated path (``exec_prob`` given) folds the gate linearly per
    block, ``m_b * C_b D_b u + (1 - m_b) * u``, matching the graph
    kernel's arithmetic.
    """

    name = "numpy-c64"
    complex_dtype = np.complex64
    real_dtype = np.float32
    forward_only = True
    grad_fallback = "numpy"

    def phase_column_cascade_forward(self, consts, ps, exec_prob=None):
        ps = np.asarray(ps)
        consts = np.asarray(consts)
        n, n_blocks, k, shared_c, ed = _check_cascade_shapes(consts, ps, exec_prob)
        cdt = self.complex_dtype
        if n_blocks == 0:
            return np.broadcast_to(np.eye(k, dtype=cdt), (n, k, k)).copy()
        ps = ps.astype(cdt, copy=False)
        consts = consts.astype(cdt, copy=False)
        if ed is not None:
            return self._gated_cascade(consts, ps, ed, n, n_blocks, k, shared_c)
        c0 = consts[0] if shared_c else consts[:, 0]
        u = np.multiply(c0, ps[:, 0, None, :])  # (N, K, K)
        buf = np.empty_like(u)
        for b in range(1, n_blocks):
            c_b = consts[b] if shared_c else consts[:, b]
            np.multiply(ps[:, b, :, None], u, out=u)
            np.matmul(c_b, u, out=buf)
            u, buf = buf, u
        return u

    def _gated_cascade(self, consts, ps, ed, n, n_blocks, k, shared_c):
        eye = np.eye(k, dtype=consts.dtype)
        m = ed.astype(self.real_dtype, copy=False)
        u = None
        for b in range(n_blocks):
            c_b = consts[b] if shared_c else consts[:, b]
            ps_b = ps[:, b, :]
            if u is None:
                block = c_b * ps_b[:, None, :]
            else:
                block = c_b @ (ps_b[:, :, None] * u)
            m_b = m[b] if m.ndim == 1 else m[:, b][:, None, None]
            skip = eye if u is None else u
            u = m_b * block + (1.0 - m_b) * skip
        return np.ascontiguousarray(u)

    def matmul_chain_forward(self, mats):
        mats = np.asarray(mats)
        if mats.ndim != 4 or mats.shape[-1] != mats.shape[-2]:
            raise ValueError(f"mats must have shape (N, B, K, K), got {mats.shape}")
        n, n_blocks, k, _ = mats.shape
        cdt = self.complex_dtype
        if n_blocks == 0:
            return np.broadcast_to(np.eye(k, dtype=cdt), (n, k, k)).copy()
        mats = mats.astype(cdt, copy=False)
        u = np.ascontiguousarray(mats[:, 0])
        buf = np.empty_like(u)
        for b in range(1, n_blocks):
            np.matmul(mats[:, b], u, out=buf)
            u, buf = buf, u
        return u


# ----------------------------------------------------------------------
# Registry and process-wide default
# ----------------------------------------------------------------------

_REGISTRY: "OrderedDict[str, ExecutionBackend]" = OrderedDict()


def register_backend(backend: ExecutionBackend, overwrite: bool = False) -> ExecutionBackend:
    """Register ``backend`` under ``backend.name``; returns it."""
    if not isinstance(backend, ExecutionBackend):
        raise TypeError(f"expected an ExecutionBackend, got {type(backend).__name__}")
    if backend.name in _REGISTRY and not overwrite:
        raise ValueError(f"execution backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names of all registered execution backends."""
    return tuple(_REGISTRY)


def get_backend(backend: BackendLike) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"registered: {available_backends()}"
        ) from None


register_backend(NumpyBackend())
register_backend(NumpyC64Backend())

#: Process-wide default, overridable at import time for CI matrix legs.
_DEFAULT: ExecutionBackend = get_backend(os.environ.get("REPRO_EXEC_BACKEND", "numpy"))


def default_backend() -> ExecutionBackend:
    """The process-wide default execution backend."""
    return _DEFAULT


def resolve_backend(backend: Optional[BackendLike] = None) -> ExecutionBackend:
    """Per-call resolution: ``None`` means the process default."""
    if backend is None:
        return _DEFAULT
    return get_backend(backend)


def grad_backend(backend: Optional[BackendLike] = None) -> ExecutionBackend:
    """Like :func:`resolve_backend`, but demoted to a grad-capable
    engine: forward-only backends resolve to their ``grad_fallback``."""
    eb = resolve_backend(backend)
    if eb.forward_only:
        eb = get_backend(eb.grad_fallback or "numpy")
    return eb


class _DefaultBackendGuard:
    """Returned by :func:`set_default_backend`.

    The new default is already active when this object is handed back;
    using it as a context manager (or calling :meth:`restore`) puts the
    *prior* default back — so
    ``with set_default_backend("numpy-c64"): ...`` scopes the switch.
    """

    def __init__(self, previous: ExecutionBackend):
        self.previous = previous
        self._restored = False

    def __enter__(self) -> ExecutionBackend:
        return default_backend()

    def __exit__(self, *exc) -> bool:
        self.restore()
        return False

    def restore(self) -> None:
        if not self._restored:
            global _DEFAULT
            _DEFAULT = self.previous
            self._restored = True


def set_default_backend(backend: BackendLike) -> _DefaultBackendGuard:
    """Switch the process-wide default backend immediately.

    Returns a guard that restores the previous default when used as a
    context manager (or via ``.restore()``).  Ignoring the guard makes
    the switch permanent for the process.
    """
    global _DEFAULT
    prev = _DEFAULT
    _DEFAULT = get_backend(backend)
    return _DefaultBackendGuard(prev)


@contextmanager
def backend_scope(backend: Optional[BackendLike]):
    """Temporarily install ``backend`` as the default (``None`` = no-op).

    The keyword-threading convenience used by eval paths
    (:func:`repro.onn.trainer.evaluate_population`): scoping the
    default lets every nested build — including ones that never see the
    keyword — pick up the requested lane.
    """
    if backend is None:
        yield _DEFAULT
        return
    guard = set_default_backend(backend)
    try:
        yield _DEFAULT
    finally:
        guard.restore()
