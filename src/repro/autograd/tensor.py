"""Reverse-mode automatic differentiation over numpy arrays.

This module is the substrate that replaces PyTorch for the ADEPT
reproduction.  It implements a :class:`Tensor` wrapper around
``numpy.ndarray`` with a dynamically-built computation graph and a
``backward()`` pass, including full support for **complex-valued
tensors**, which photonic circuit simulation requires (phase shifters
apply ``exp(-j*phi)``, couplers have imaginary cross terms).

Gradient convention for complex tensors
---------------------------------------
For a real scalar loss ``L`` and a complex leaf ``z = x + i*y`` the
gradient stored in ``z.grad`` is::

    z.grad = dL/dx + i * dL/dy        (= 2 * dL/d(conj(z)))

This is exactly PyTorch's convention, so update rules such as
``z -= lr * z.grad`` perform steepest descent on ``L``.  For a
holomorphic elementary operation ``w = f(z)`` the chain rule under this
convention reads ``grad_z = grad_w * conj(f'(z))``; non-holomorphic
operations (``conj``, ``real``, ``imag``, ``abs``) implement their own
rules, each verified against finite differences in the test suite.

Gradients flowing into a *real* leaf from a complex subgraph are
projected onto the real axis (again matching PyTorch), which is what
makes ``exp(-1j * phi)`` with real ``phi`` trainable.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

Arrayable = Union["Tensor", np.ndarray, float, int, complex, list, tuple]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Inside the block, all operations produce constant tensors; this is
    used for evaluation loops and in-place parameter updates.
    """
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _as_array(data: Arrayable) -> np.ndarray:
    if isinstance(data, Tensor):
        return data.data
    arr = np.asarray(data)
    if arr.dtype == np.float64 or arr.dtype == np.float32:
        return arr
    if np.issubdtype(arr.dtype, np.integer) or arr.dtype == np.bool_:
        return arr.astype(np.float64)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _match_dtype(grad: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Project a gradient onto the dtype of the tensor it belongs to.

    A complex gradient accumulating into a real leaf keeps only its real
    part (the imaginary direction is not a degree of freedom of the
    leaf).
    """
    if np.iscomplexobj(grad) and not np.iscomplexobj(target):
        # np.asarray (not ascontiguousarray) keeps 0-d arrays 0-d.
        return np.asarray(grad.real)
    return grad


class Tensor:
    """A numpy-backed tensor that records operations for backprop."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")
    __array_priority__ = 100.0  # make numpy defer to our reflected dunders

    def __init__(
        self,
        data: Arrayable,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]] = None,
        name: Optional[str] = None,
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_complex(self) -> bool:
        return np.iscomplexobj(self.data)

    @property
    def is_leaf(self) -> bool:
        return not self._parents

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_str = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_str})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> Union[float, complex]:
        return self.data.item()

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        out = _make(self.data.copy(), (self,), lambda g: (g,))
        return out

    def copy_(self, other: "Tensor") -> "Tensor":
        """In-place copy of ``other``'s data (no graph recorded)."""
        np.copyto(self.data, np.asarray(other.data, dtype=self.data.dtype))
        return self

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[Union[np.ndarray, "Tensor"]] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to 1 for scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        elif isinstance(grad, Tensor):
            grad = grad.data
        grad = np.asarray(grad)

        topo: List[Tensor] = []
        visited = set()

        def build(t: Tensor) -> None:
            if id(t) in visited:
                return
            visited.add(id(t))
            for p in t._parents:
                build(p)
            topo.append(t)

        build(self)

        grads: dict = {id(self): grad}
        for t in reversed(topo):
            g = grads.pop(id(t), None)
            if g is None:
                continue
            if t.requires_grad and t.is_leaf:
                g_leaf = _match_dtype(g, t.data)
                if t.grad is None:
                    t.grad = np.array(g_leaf, copy=True)
                else:
                    t.grad = t.grad + g_leaf
            if t._backward is None:
                continue
            parent_grads = t._backward(g)
            for p, pg in zip(t._parents, parent_grads):
                if pg is None:
                    continue
                pg = _match_dtype(pg, p.data)
                key = id(p)
                if key in grads:
                    grads[key] = grads[key] + pg
                else:
                    grads[key] = pg

    # ------------------------------------------------------------------
    # Operator overloads (implementations below, module level)
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayable) -> "Tensor":
        return add(self, other)

    def __radd__(self, other: Arrayable) -> "Tensor":
        return add(other, self)

    def __sub__(self, other: Arrayable) -> "Tensor":
        return sub(self, other)

    def __rsub__(self, other: Arrayable) -> "Tensor":
        return sub(other, self)

    def __mul__(self, other: Arrayable) -> "Tensor":
        return mul(self, other)

    def __rmul__(self, other: Arrayable) -> "Tensor":
        return mul(other, self)

    def __truediv__(self, other: Arrayable) -> "Tensor":
        return div(self, other)

    def __rtruediv__(self, other: Arrayable) -> "Tensor":
        return div(other, self)

    def __neg__(self) -> "Tensor":
        return neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return pow_(self, exponent)

    def __matmul__(self, other: Arrayable) -> "Tensor":
        return matmul(self, other)

    def __rmatmul__(self, other: Arrayable) -> "Tensor":
        return matmul(other, self)

    def __getitem__(self, idx) -> "Tensor":
        return getitem(self, idx)

    # Comparison operators return plain numpy boolean arrays (no grad).
    def __gt__(self, other: Arrayable):
        return self.data > _as_array(other)

    def __lt__(self, other: Arrayable):
        return self.data < _as_array(other)

    def __ge__(self, other: Arrayable):
        return self.data >= _as_array(other)

    def __le__(self, other: Arrayable):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Method-style ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 0:
            axes = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return transpose(self, axes)

    @property
    def T(self) -> "Tensor":
        return transpose(self, None)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        return swapaxes(self, a, b)

    def exp(self) -> "Tensor":
        return exp(self)

    def log(self) -> "Tensor":
        return log(self)

    def sqrt(self) -> "Tensor":
        return sqrt(self)

    def abs(self) -> "Tensor":
        return abs_(self)

    def conj(self) -> "Tensor":
        return conj(self)

    def real(self) -> "Tensor":
        return real(self)

    def imag(self) -> "Tensor":
        return imag(self)

    def relu(self) -> "Tensor":
        return relu(self)

    def sigmoid(self) -> "Tensor":
        return sigmoid(self)

    def tanh(self) -> "Tensor":
        return tanh(self)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return max_(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return neg(max_(neg(self), axis=axis, keepdims=keepdims))

    def clip(self, lo: Optional[float], hi: Optional[float]) -> "Tensor":
        return clip(self, lo, hi)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return reshape(self, shape)

    def astype(self, dtype) -> "Tensor":
        return astype(self, dtype)


# ----------------------------------------------------------------------
# Core op plumbing
# ----------------------------------------------------------------------

def _make(
    data: np.ndarray,
    parents: Tuple[Tensor, ...],
    backward: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]],
) -> Tensor:
    """Create a graph node if grad mode is on and any parent needs grad."""
    if _GRAD_ENABLED and any(p.requires_grad or p._parents for p in parents):
        return Tensor(data, requires_grad=False, _parents=parents, _backward=backward)
    return Tensor(data)


def ensure_tensor(x: Arrayable) -> Tensor:
    """Coerce ``x`` to a :class:`Tensor` (constants become leaves)."""
    return x if isinstance(x, Tensor) else Tensor(x)


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

def add(a: Arrayable, b: Arrayable) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data + b.data

    def backward(g: np.ndarray):
        return _unbroadcast(g, a.shape), _unbroadcast(g, b.shape)

    return _make(out, (a, b), backward)


def sub(a: Arrayable, b: Arrayable) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data - b.data

    def backward(g: np.ndarray):
        return _unbroadcast(g, a.shape), _unbroadcast(-g, b.shape)

    return _make(out, (a, b), backward)


def mul(a: Arrayable, b: Arrayable) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data * b.data

    def backward(g: np.ndarray):
        ga = _unbroadcast(g * np.conj(b.data), a.shape)
        gb = _unbroadcast(g * np.conj(a.data), b.shape)
        return ga, gb

    return _make(out, (a, b), backward)


def div(a: Arrayable, b: Arrayable) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data / b.data

    def backward(g: np.ndarray):
        ga = _unbroadcast(g * np.conj(1.0 / b.data), a.shape)
        gb = _unbroadcast(g * np.conj(-a.data / (b.data * b.data)), b.shape)
        return ga, gb

    return _make(out, (a, b), backward)


def neg(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)

    def backward(g: np.ndarray):
        return (-g,)

    return _make(-a.data, (a,), backward)


def pow_(a: Arrayable, exponent: float) -> Tensor:
    """Elementwise power with a constant (real) exponent."""
    a = ensure_tensor(a)
    out = a.data ** exponent

    def backward(g: np.ndarray):
        return (g * np.conj(exponent * a.data ** (exponent - 1)),)

    return _make(out, (a,), backward)


def exp(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = np.exp(a.data)

    def backward(g: np.ndarray):
        return (g * np.conj(out),)

    return _make(out, (a,), backward)


def log(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = np.log(a.data)

    def backward(g: np.ndarray):
        return (g * np.conj(1.0 / a.data),)

    return _make(out, (a,), backward)


def sqrt(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = np.sqrt(a.data)

    def backward(g: np.ndarray):
        return (g * np.conj(0.5 / out),)

    return _make(out, (a,), backward)


def abs_(a: Arrayable) -> Tensor:
    """Elementwise absolute value / complex magnitude.

    For complex inputs, ``d|z|/dz-bar`` style handling gives
    ``grad = g * z / |z|`` under the PyTorch convention.  The gradient at
    exactly zero is defined as zero.
    """
    a = ensure_tensor(a)
    out = np.abs(a.data)

    def backward(g: np.ndarray):
        denom = np.where(out == 0, 1.0, out)
        if np.iscomplexobj(a.data):
            return (g * a.data / denom,)
        return (g * np.sign(a.data),)

    return _make(out, (a,), backward)


def conj(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)

    def backward(g: np.ndarray):
        return (np.conj(g),)

    return _make(np.conj(a.data), (a,), backward)


def real(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = np.asarray(a.data.real).copy()

    def backward(g: np.ndarray):
        if np.iscomplexobj(a.data):
            return (g.real.astype(a.data.dtype),)
        return (g,)

    return _make(out, (a,), backward)


def imag(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = np.asarray(a.data.imag).copy()

    def backward(g: np.ndarray):
        # z.grad = dL/dx + i dL/dy; y = Im(z) so dL/dy = g, dL/dx = 0.
        return ((1j * g.real).astype(a.data.dtype),)

    return _make(out, (a,), backward)


def astype(a: Arrayable, dtype) -> Tensor:
    a = ensure_tensor(a)
    dtype = np.dtype(dtype)
    out = a.data.astype(dtype)

    def backward(g: np.ndarray):
        return (g,)

    return _make(out, (a,), backward)


# ----------------------------------------------------------------------
# Nonlinearities
# ----------------------------------------------------------------------

def relu(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    out = a.data * mask

    def backward(g: np.ndarray):
        return (g * mask,)

    return _make(out, (a,), backward)


def sigmoid(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = 1.0 / (1.0 + np.exp(-a.data))

    def backward(g: np.ndarray):
        return (g * out * (1.0 - out),)

    return _make(out, (a,), backward)


def tanh(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = np.tanh(a.data)

    def backward(g: np.ndarray):
        return (g * (1.0 - out * out),)

    return _make(out, (a,), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def sum_(a: Arrayable, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(g: np.ndarray):
        g = np.asarray(g)
        if axis is None:
            return (np.broadcast_to(g, a.shape).copy(),)
        ax = axis if isinstance(axis, tuple) else (axis,)
        if not keepdims:
            g = np.expand_dims(g, ax)
        return (np.broadcast_to(g, a.shape).copy(),)

    return _make(out, (a,), backward)


def mean(a: Arrayable, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    if axis is None:
        count = a.size
    else:
        ax = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.shape[i] for i in ax]))
    return mul(sum_(a, axis=axis, keepdims=keepdims), 1.0 / count)


def max_(a: Arrayable, axis=None, keepdims: bool = False) -> Tensor:
    """Maximum reduction; gradient is split evenly among ties."""
    a = ensure_tensor(a)
    out = a.data.max(axis=axis, keepdims=keepdims)

    def backward(g: np.ndarray):
        g = np.asarray(g)
        if axis is None:
            full = np.broadcast_to(out, a.shape)
            gfull = np.broadcast_to(g, a.shape)
        else:
            ax = axis if isinstance(axis, tuple) else (axis,)
            o = out if keepdims else np.expand_dims(out, ax)
            gg = g if keepdims else np.expand_dims(g, ax)
            full = np.broadcast_to(o, a.shape)
            gfull = np.broadcast_to(gg, a.shape)
        mask = (a.data == full)
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        if axis is not None:
            counts = np.broadcast_to(counts, a.shape)
        return (gfull * mask / counts,)

    return _make(out, (a,), backward)


# ----------------------------------------------------------------------
# Shape ops
# ----------------------------------------------------------------------

def reshape(a: Arrayable, shape: Sequence[int]) -> Tensor:
    a = ensure_tensor(a)
    out = a.data.reshape(shape)

    def backward(g: np.ndarray):
        return (g.reshape(a.shape),)

    return _make(out, (a,), backward)


def transpose(a: Arrayable, axes: Optional[Sequence[int]]) -> Tensor:
    a = ensure_tensor(a)
    out = np.transpose(a.data, axes)
    if axes is None:
        inv = None
    else:
        inv = np.argsort(axes)

    def backward(g: np.ndarray):
        return (np.transpose(g, inv),)

    return _make(out, (a,), backward)


def swapaxes(a: Arrayable, ax1: int, ax2: int) -> Tensor:
    a = ensure_tensor(a)
    out = np.swapaxes(a.data, ax1, ax2)

    def backward(g: np.ndarray):
        return (np.swapaxes(g, ax1, ax2),)

    return _make(out, (a,), backward)


def getitem(a: Arrayable, idx) -> Tensor:
    a = ensure_tensor(a)
    out = a.data[idx]

    def backward(g: np.ndarray):
        ga = np.zeros_like(a.data)
        np.add.at(ga, idx, g.astype(ga.dtype, copy=False))
        return (ga,)

    return _make(out, (a,), backward)


def concat(tensors: Iterable[Arrayable], axis: int = 0) -> Tensor:
    ts = [ensure_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.shape[axis] for t in ts]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray):
        return tuple(np.split(g, splits, axis=axis))

    return _make(out, tuple(ts), backward)


def stack(tensors: Iterable[Arrayable], axis: int = 0) -> Tensor:
    ts = [ensure_tensor(t) for t in tensors]
    out = np.stack([t.data for t in ts], axis=axis)

    def backward(g: np.ndarray):
        parts = np.split(g, len(ts), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in parts)

    return _make(out, tuple(ts), backward)


def pad(a: Arrayable, pad_width, constant: float = 0.0) -> Tensor:
    a = ensure_tensor(a)
    out = np.pad(a.data, pad_width, mode="constant", constant_values=constant)
    slices = tuple(
        slice(pw[0], pw[0] + s) for pw, s in zip(pad_width, a.shape)
    )

    def backward(g: np.ndarray):
        return (g[slices],)

    return _make(out, (a,), backward)


def where(cond: np.ndarray, a: Arrayable, b: Arrayable) -> Tensor:
    """Elementwise select; ``cond`` is a constant boolean array."""
    cond = np.asarray(cond, dtype=bool)
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray):
        ga = _unbroadcast(np.where(cond, g, 0.0), a.shape)
        gb = _unbroadcast(np.where(cond, 0.0, g), b.shape)
        return ga, gb

    return _make(out, (a, b), backward)


def clip(a: Arrayable, lo: Optional[float], hi: Optional[float]) -> Tensor:
    """Clamp values into ``[lo, hi]``; gradient is zero outside."""
    a = ensure_tensor(a)
    out = np.clip(a.data, lo, hi)
    mask = np.ones_like(a.data, dtype=float)
    if lo is not None:
        mask = mask * (a.data >= lo)
    if hi is not None:
        mask = mask * (a.data <= hi)

    def backward(g: np.ndarray):
        return (g * mask,)

    return _make(out, (a,), backward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------

def matmul(a: Arrayable, b: Arrayable) -> Tensor:
    """Batched matrix multiplication with broadcasting.

    Complex gradient rules (PyTorch convention):
    ``grad_a = g @ conj(b).T``, ``grad_b = conj(a).T @ g``.
    """
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data @ b.data

    def backward(g: np.ndarray):
        ad, bd = a.data, b.data
        if ad.ndim == 1 and bd.ndim == 1:
            # inner product
            ga = g * np.conj(bd)
            gb = g * np.conj(ad)
        elif ad.ndim == 1:
            # (k,) @ (..., k, n) -> (..., n)
            ga = (np.expand_dims(g, -2) @ np.conj(np.swapaxes(bd, -1, -2))).squeeze(-2)
            ga = _unbroadcast(ga, a.shape)
            gb = np.conj(ad)[..., :, None] * np.expand_dims(g, -2)
            gb = _unbroadcast(gb, b.shape)
        elif bd.ndim == 1:
            # (..., m, k) @ (k,) -> (..., m)
            ga = np.expand_dims(g, -1) * np.conj(bd)
            ga = _unbroadcast(ga, a.shape)
            gb = np.conj(np.swapaxes(ad, -1, -2)) @ np.expand_dims(g, -1)
            gb = _unbroadcast(gb.squeeze(-1), b.shape)
        else:
            ga = g @ np.conj(np.swapaxes(bd, -1, -2))
            gb = np.conj(np.swapaxes(ad, -1, -2)) @ g
            ga = _unbroadcast(ga, a.shape)
            gb = _unbroadcast(gb, b.shape)
        return ga, gb

    return _make(out, (a, b), backward)


# ----------------------------------------------------------------------
# Softmax family (numerically stable, used by losses and Gumbel)
# ----------------------------------------------------------------------

def softmax(a: Arrayable, axis: int = -1) -> Tensor:
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return _make(out, (a,), backward)


def log_softmax(a: Arrayable, axis: int = -1) -> Tensor:
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    soft = np.exp(out)

    def backward(g: np.ndarray):
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return _make(out, (a,), backward)


# ----------------------------------------------------------------------
# Straight-through / custom-gradient helpers
# ----------------------------------------------------------------------

def straight_through(forward_value: np.ndarray, a: Tensor, grad_scale=1.0) -> Tensor:
    """Return ``forward_value`` in the forward pass but route gradients
    straight through to ``a`` (optionally scaled).

    This is the primitive behind binarization-aware training of
    directional couplers (Eq. 14 of the paper).
    """
    a = ensure_tensor(a)

    def backward(g: np.ndarray):
        return (g * grad_scale,)

    return _make(np.asarray(forward_value), (a,), backward)


def custom_grad(forward_value: np.ndarray, parents: Tuple[Tensor, ...], backward) -> Tensor:
    """Create a tensor with a user-supplied backward rule."""
    return _make(np.asarray(forward_value), parents, backward)
