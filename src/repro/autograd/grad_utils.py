"""Gradient verification utilities.

``gradcheck`` compares analytic gradients produced by the autograd
engine against central finite differences, including for complex
leaves, where the real and imaginary axes are perturbed independently
(matching the ``dL/dx + i dL/dy`` convention of
:mod:`repro.autograd.tensor`).  Because both axes are perturbed, the
check is valid for holomorphic ops (where the two directional
derivatives are linked by Cauchy-Riemann) and non-holomorphic ones
(``abs``, ``real``, ``conj``, ...) alike — no analyticity assumption is
made anywhere.

``forward_backward_parity`` runs two implementations of the same map
over shared leaves and asserts that forwards and every leaf gradient
agree.  Kernel tests use it to pin fused implementations against their
elementary-op references without re-deriving numeric gradients at each
call site.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_grad(fn: Callable[..., Tensor], inputs: Sequence[Tensor], index: int, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` must return a real scalar :class:`Tensor`.  The returned array
    has the same shape and dtype as the perturbed input; for complex
    inputs it contains ``dL/dx + i*dL/dy``.
    """
    target = inputs[index]
    base = target.data
    grad = np.zeros_like(base)
    flat = base.ravel()
    gflat = grad.ravel()

    def eval_loss() -> float:
        out = fn(*inputs)
        val = out.data
        if np.iscomplexobj(val):
            raise ValueError("gradcheck requires a real scalar loss")
        return float(val)

    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = eval_loss()
        flat[i] = orig - eps
        f_minus = eval_loss()
        flat[i] = orig
        d_real = (f_plus - f_minus) / (2 * eps)
        if np.iscomplexobj(base):
            flat[i] = orig + 1j * eps
            f_plus = eval_loss()
            flat[i] = orig - 1j * eps
            f_minus = eval_loss()
            flat[i] = orig
            d_imag = (f_plus - f_minus) / (2 * eps)
            gflat[i] = d_real + 1j * d_imag
        else:
            gflat[i] = d_real
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-3,
) -> bool:
    """Check analytic vs numeric gradients for every input needing grad.

    Raises ``AssertionError`` with a diagnostic message on mismatch;
    returns ``True`` on success so it can be used inside ``assert``.
    """
    for t in inputs:
        t.grad = None
    out = fn(*inputs)
    out.backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numeric_grad(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            err = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {err:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True


def _scalar_loss(out: Tensor) -> Tensor:
    """Reduce an arbitrary output tensor to a real scalar loss."""
    if out.data.ndim == 0 and not np.iscomplexobj(out.data):
        return out
    return (out * out.conj()).real().sum()


def forward_backward_parity(
    fn_a: Callable[..., Tensor],
    fn_b: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    ftol: float = 1e-12,
    gtol: float = 1e-9,
) -> bool:
    """Assert two implementations agree on forward values and leaf grads.

    Both ``fn_a`` and ``fn_b`` are called on the same ``inputs``; their
    outputs must match within ``ftol`` (max abs).  Each output is then
    reduced to the real scalar ``sum(|out|^2)`` (or used directly if
    already a real scalar) and back-propagated; every leaf with
    ``requires_grad`` must receive matching gradients within ``gtol``.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns
    ``True`` on success so it can sit inside ``assert``.
    """
    grads = []
    outs = []
    for fn in (fn_a, fn_b):
        for t in inputs:
            t.grad = None
        out = fn(*inputs)
        outs.append(out.data.copy())
        _scalar_loss(out).backward()
        grads.append(
            [None if t.grad is None else t.grad.copy() for t in inputs]
        )
    ferr = np.abs(outs[0] - outs[1]).max() if outs[0].size else 0.0
    if ferr > ftol:
        raise AssertionError(
            f"forward parity failed: max abs err {ferr:.3e} > {ftol:.1e}"
        )
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        ga, gb = grads[0][i], grads[1][i]
        if ga is None and gb is None:
            continue
        if ga is None or gb is None:
            raise AssertionError(
                f"grad parity failed for input {i}: one implementation "
                f"produced no gradient"
            )
        gerr = np.abs(ga - gb).max()
        if gerr > gtol:
            raise AssertionError(
                f"grad parity failed for input {i}: max abs err "
                f"{gerr:.3e} > {gtol:.1e}\nA:\n{ga}\nB:\n{gb}"
            )
    return True
