"""Gradient verification utilities.

``gradcheck`` compares analytic gradients produced by the autograd
engine against central finite differences, including for complex
leaves, where the real and imaginary axes are perturbed independently
(matching the ``dL/dx + i dL/dy`` convention of
:mod:`repro.autograd.tensor`).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_grad(fn: Callable[..., Tensor], inputs: Sequence[Tensor], index: int, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` must return a real scalar :class:`Tensor`.  The returned array
    has the same shape and dtype as the perturbed input; for complex
    inputs it contains ``dL/dx + i*dL/dy``.
    """
    target = inputs[index]
    base = target.data
    grad = np.zeros_like(base)
    flat = base.ravel()
    gflat = grad.ravel()

    def eval_loss() -> float:
        out = fn(*inputs)
        val = out.data
        if np.iscomplexobj(val):
            raise ValueError("gradcheck requires a real scalar loss")
        return float(val)

    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = eval_loss()
        flat[i] = orig - eps
        f_minus = eval_loss()
        flat[i] = orig
        d_real = (f_plus - f_minus) / (2 * eps)
        if np.iscomplexobj(base):
            flat[i] = orig + 1j * eps
            f_plus = eval_loss()
            flat[i] = orig - 1j * eps
            f_minus = eval_loss()
            flat[i] = orig
            d_imag = (f_plus - f_minus) / (2 * eps)
            gflat[i] = d_real + 1j * d_imag
        else:
            gflat[i] = d_real
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-3,
) -> bool:
    """Check analytic vs numeric gradients for every input needing grad.

    Raises ``AssertionError`` with a diagnostic message on mismatch;
    returns ``True`` on success so it can be used inside ``assert``.
    """
    for t in inputs:
        t.grad = None
    out = fn(*inputs)
    out.backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numeric_grad(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            err = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {err:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
