"""Terminal plotting for experiment outputs.

The benchmark harness and the examples run in headless environments,
so every figure of the paper is rendered as text: multi-series line
plots (Fig. 4/5 curves), horizontal bar charts (footprint
comparisons), and sparklines (training traces).  Pure string
manipulation — no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["bar_chart", "line_plot", "sparkline"]

_GLYPHS = "ox+*#@%&"
_BLOCKS = " .:-=+*#%@"


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.1e}"
    return f"{v:.3g}"


def line_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series scatter/line plot on a character grid.

    ``series`` maps a legend label to ``(xs, ys)``.  Each series gets
    its own glyph; the legend, axis ranges, and optional labels are
    appended below the grid.
    """
    if not series:
        raise ValueError("need at least one series")
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: xs and ys lengths differ")
        if len(xs) == 0:
            raise ValueError(f"series {name!r} is empty")
    all_x = [float(x) for xs, _ in series.values() for x in xs]
    all_y = [float(y) for _, ys in series.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for x, y in zip(xs, ys):
            col = int(round((float(x) - x_lo) / x_span * (width - 1)))
            row = int(round((float(y) - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"{y_label[:10]:>10}")
    lines.append(f"{_fmt(y_hi):>10} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{_fmt(y_lo):>10} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{_fmt(x_lo)}" + " " * max(1, width - len(_fmt(x_lo)) - len(_fmt(x_hi))) + f"{_fmt(x_hi)}")
    if x_label:
        lines.append(" " * 12 + x_label)
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart; bar lengths proportional to values."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        raise ValueError("need at least one bar")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    v_max = max(values) or 1.0
    name_w = max(len(str(label)) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, v in zip(labels, values):
        n = int(round(v / v_max * width))
        lines.append(f"{str(label):>{name_w}} |{'#' * n:<{width}}| "
                     f"{_fmt(v)}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trace using density glyphs (min -> ' ', max -> '@')."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("need at least one value")
    lo, hi = min(vals), max(vals)
    span = hi - lo or 1.0
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)
