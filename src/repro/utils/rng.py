"""Centralized random-number management.

All stochastic components (parameter init, Gumbel noise, dropout,
dataset synthesis, phase-noise injection) draw from explicit
``numpy.random.Generator`` objects so that every experiment is
reproducible from a single seed.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

_GLOBAL_RNG = np.random.default_rng(0)


def _feed_stable(h, value) -> None:
    """Canonically encode ``value`` into hash state ``h``.

    Supports the primitives experiment code derives seeds from (None,
    bool, int, float, str, bytes, and nested tuples/lists).  Every
    value is prefixed with a type tag so e.g. ``1`` and ``1.0`` and
    ``"1"`` hash differently.
    """
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"B1" if value else b"B0")
    elif isinstance(value, (int, np.integer)):
        enc = str(int(value)).encode()
        h.update(b"I" + struct.pack("<q", len(enc)) + enc)
    elif isinstance(value, (float, np.floating)):
        h.update(b"F" + struct.pack("<d", float(value)))
    elif isinstance(value, str):
        enc = value.encode("utf-8")
        h.update(b"S" + struct.pack("<q", len(enc)) + enc)
    elif isinstance(value, (bytes, bytearray)):
        h.update(b"Y" + struct.pack("<q", len(value)) + bytes(value))
    elif isinstance(value, (tuple, list)):
        h.update(b"T" + struct.pack("<q", len(value)))
        for item in value:
            _feed_stable(h, item)
    else:
        raise TypeError(
            f"stable_hash does not support {type(value).__name__}; "
            "pass ints, floats, strings, bytes, or tuples thereof"
        )


def stable_hash(*parts) -> int:
    """Deterministic 63-bit hash of seed-derivation tuples.

    Unlike builtin ``hash`` on strings/tuples, the result does not
    depend on ``PYTHONHASHSEED`` (Python randomizes string hashing per
    process), so seeds derived from ``(name, index)``-style tuples are
    reproducible across runs and machines.  Use this everywhere a seed
    is derived from labels — never ``hash(...)``.
    """
    h = hashlib.blake2b(digest_size=8)
    _feed_stable(h, parts)
    return int.from_bytes(h.digest(), "little") & 0x7FFF_FFFF_FFFF_FFFF


def stable_seed(*parts) -> int:
    """A 31-bit ``numpy``-friendly seed derived via :func:`stable_hash`."""
    return stable_hash(*parts) % (2**31)


def set_seed(seed: int) -> None:
    """Re-seed the library-wide default generator."""
    global _GLOBAL_RNG
    _GLOBAL_RNG = np.random.default_rng(seed)


def get_rng(rng: np.random.Generator | None = None) -> np.random.Generator:
    """Return ``rng`` if given, else the library-wide default generator."""
    return rng if rng is not None else _GLOBAL_RNG


def spawn_rng(seed: int | None = None) -> np.random.Generator:
    """Create an independent generator (seeded from the default if None)."""
    if seed is None:
        seed = int(get_rng().integers(0, 2**31 - 1))
    return np.random.default_rng(seed)
