"""Centralized random-number management.

All stochastic components (parameter init, Gumbel noise, dropout,
dataset synthesis, phase-noise injection) draw from explicit
``numpy.random.Generator`` objects so that every experiment is
reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

_GLOBAL_RNG = np.random.default_rng(0)


def set_seed(seed: int) -> None:
    """Re-seed the library-wide default generator."""
    global _GLOBAL_RNG
    _GLOBAL_RNG = np.random.default_rng(seed)


def get_rng(rng: np.random.Generator | None = None) -> np.random.Generator:
    """Return ``rng`` if given, else the library-wide default generator."""
    return rng if rng is not None else _GLOBAL_RNG


def spawn_rng(seed: int | None = None) -> np.random.Generator:
    """Create an independent generator (seeded from the default if None)."""
    if seed is None:
        seed = int(get_rng().integers(0, 2**31 - 1))
    return np.random.default_rng(seed)
