"""Model checkpointing: save/load state dicts with shape validation.

State dicts map parameter/buffer names to numpy arrays (complex arrays
included — photonic phases are real but intermediate buffers may not
be).  The format is a single ``.npz`` file plus a JSON manifest of
shapes/dtypes for validation on load.

Round-trips preserve the array dtype end to end: the manifest records
each array's dtype, the stored ``.npz`` entries are validated against
it on load, and :meth:`repro.nn.Module.load_state_dict` adopts the
stored dtype rather than casting into the destination parameter — so
an artifact built under the complex64 execution backend reloads as
complex64 and re-scores identically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..nn.module import Module


def save_checkpoint(model: Module, path: Union[str, Path]) -> None:
    """Serialize a model's state dict to ``path`` (.npz)."""
    path = Path(path)
    state = model.state_dict()
    manifest = {
        name: {"shape": list(arr.shape), "dtype": str(arr.dtype)}
        for name, arr in state.items()
    }
    np.savez(path, __manifest__=json.dumps(manifest), **state)


def load_checkpoint(model: Module, path: Union[str, Path], strict: bool = True) -> None:
    """Load a checkpoint into ``model``.

    With ``strict=True`` every model parameter must be present in the
    checkpoint with a matching shape, and every stored array must match
    the dtype its manifest entry records (guards against corrupted or
    hand-edited artifacts silently changing precision).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        manifest = json.loads(str(data["__manifest__"]))
        state = {name: data[name] for name in data.files if name != "__manifest__"}
    if strict:
        own = dict(model.named_parameters())
        missing = [n for n in own if n not in state]
        if missing:
            raise KeyError(f"checkpoint missing parameters: {missing}")
        for name, p in own.items():
            want = tuple(manifest[name]["shape"])
            if tuple(p.shape) != want:
                raise ValueError(
                    f"shape mismatch for {name}: model {tuple(p.shape)} vs "
                    f"checkpoint {want}"
                )
        for name, arr in state.items():
            recorded = manifest.get(name, {}).get("dtype")
            if recorded is not None and str(arr.dtype) != recorded:
                raise ValueError(
                    f"dtype mismatch for {name}: stored {arr.dtype} vs "
                    f"manifest {recorded}"
                )
    model.load_state_dict(state)
